//! Figure 1's worked example: the `[tumor - 1]` vertex.
//!
//! The paper walks one token through Algorithm 1: in the labelled data,
//! "wilms tumor - 1" is a gene, but "tumor - 1 subclone" is not, so the
//! CRF prefers O for the "-" inside an unseen gene variant. Graph
//! propagation links `[tumor - 1]` to I-labelled neighbours such as
//! `[tumor - 3]` and flips the belief; the final Viterbi decode then
//! recovers the full mention.
//!
//! ```sh
//! cargo run --release --example worked_example
//! ```

use graphner::prelude::*;
use BioTag::*;

fn main() {
    let mk = |id: &str, text: &str, tags: Vec<BioTag>| Sentence::labelled(id, tokenize(text), tags);
    // Labelled data: "wilms tumor - <n>" genes in several contexts, and
    // the "tumor - <n> subclone" distractor where "-" is O.
    let mut sentences = vec![
        mk(
            "l0",
            "drug response was significant in wilms tumor - 3 positive patients .",
            vec![O, O, O, O, O, B, I, I, I, O, O, O],
        ),
        mk(
            "l1",
            "we observed the following mutations in wilms tumor - 3 .",
            vec![O, O, O, O, O, O, B, I, I, I, O],
        ),
        mk("l2", "expression of wilms tumor - 5 was low .", vec![O, O, B, I, I, I, O, O, O]),
        mk(
            "l3",
            "we did not observe this mutation in the patient ' s tumor - 9 subclone .",
            vec![O, O, O, O, O, O, O, O, O, O, O, O, O, O, O, O],
        ),
        mk(
            "l4",
            "this mutation was absent in the tumor - 7 subclone .",
            vec![O, O, O, O, O, O, O, O, O, O, O],
        ),
        mk("l5", "no mutation was found .", vec![O, O, O, O, O]),
    ];
    // pad with repeats so the CRF has enough signal
    for k in 0..3 {
        for s in sentences.clone() {
            let mut s2 = s.clone();
            s2.id = format!("{}r{k}", s.id);
            sentences.push(s2);
        }
    }
    let train = Corpus::from_sentences(sentences);

    let cfg = NerConfig {
        train: TrainConfig { max_iterations: 100, l2: 1.0, ..Default::default() },
        ..Default::default()
    };
    let graph_cfg = GraphNerConfig::builder().build().expect("defaults are valid");
    let (model, _) = GraphNer::train(&train, &cfg, None, graph_cfg);

    // Unlabelled test data: an unseen "wilms tumor - 1" variant, plus
    // the non-gene distractor.
    let test = Corpus::from_sentences(vec![
        Sentence::unlabelled("u0", tokenize("wilms tumor - 1 ( WT1 ) gene was highly expressed .")),
        Sentence::unlabelled(
            "u1",
            tokenize("we did not observe this mutation in the patient ' s tumor - 2 subclone ."),
        ),
    ]);

    // What does the CRF alone believe about each "-"?
    let post0 = model.base().posteriors(&test.sentences[0]);
    let post1 = model.base().posteriors(&test.sentences[1]);
    let dash0 = test.sentences[0].tokens.iter().position(|t| t == "-").unwrap();
    let dash1 = test.sentences[1].tokens.iter().rposition(|t| t == "-").unwrap();
    println!(
        "CRF posterior for '-' in the gene sentence      (B,I,O) = ({:.2},{:.2},{:.2})",
        post0[dash0][0], post0[dash0][1], post0[dash0][2]
    );
    println!(
        "CRF posterior for '-' in the subclone sentence  (B,I,O) = ({:.2},{:.2},{:.2})",
        post1[dash1][0], post1[dash1][1], post1[dash1][2]
    );

    // Full GraphNER test: propagation + combination + Viterbi.
    let out = model.test(&test);
    for (sentence, tags) in test.sentences.iter().zip(&out.predictions) {
        println!("\n{}", sentence.text());
        for (tok, tag) in sentence.tokens.iter().zip(tags) {
            print!("{tok}/{tag} ");
        }
        println!();
    }

    let gene_dash = out.predictions[0][dash0];
    let subclone_dash = out.predictions[1][dash1];
    println!("\nafter GraphNER: gene '-' = {gene_dash}, subclone '-' = {subclone_dash}");
    assert_eq!(gene_dash, I, "the gene-internal dash must be I");
    assert_eq!(subclone_dash, O, "the subclone dash must stay O");
    println!("Figure 1's correction reproduced.");
}
