//! Using GraphNER on your own documents: tokenize raw text, train on a
//! hand-labelled mini corpus, tag new abstracts, and export the
//! detections in the BioCreative II annotation format.
//!
//! ```sh
//! cargo run --release --example custom_corpus
//! ```

use graphner::prelude::*;

fn main() {
    // Hand-labelled training data: mark gene mentions by token span.
    // (In a real project these come from an annotation tool.)
    let labelled: Vec<(&str, Vec<(usize, usize)>)> = vec![
        ("Overexpression of MYC drives proliferation.", vec![(2, 3)]),
        ("The BRCA1 gene is linked to hereditary breast cancer.", vec![(1, 2)]),
        ("Loss of PTEN was frequent in these tumors.", vec![(2, 3)]),
        ("We sequenced EGFR and KRAS in all samples.", vec![(2, 3), (4, 5)]),
        ("No genetic alterations were identified.", vec![]),
        ("Patients received standard chemotherapy.", vec![]),
        ("The BRCA2 gene was also screened.", vec![(1, 2)]),
        ("Activation of JAK2 was confirmed by sequencing.", vec![(2, 3)]),
    ];
    let train = Corpus::from_sentences(
        labelled
            .into_iter()
            .enumerate()
            .map(|(i, (text, spans))| {
                let tokens = tokenize(text);
                let mentions: Vec<Mention> =
                    spans.into_iter().map(|(s, e)| Mention::new(s, e)).collect();
                let tags = mentions_to_tags(&mentions, tokens.len());
                Sentence::labelled(format!("train{i}"), tokens, tags)
            })
            .collect(),
    );

    let graph_cfg = GraphNerConfig::builder().build().expect("defaults are valid");
    let (model, _) = GraphNer::train(&train, &NerConfig::default(), None, graph_cfg);

    // New, unlabelled abstracts.
    let documents = [
        "We found that TP53 and MYC were co-amplified.",
        "Mutations in JAK2 were absent from the control cohort.",
        "The patients were treated at three centers.",
    ];
    let test = Corpus::from_sentences(
        documents
            .iter()
            .enumerate()
            .map(|(i, text)| Sentence::unlabelled(format!("doc{i}"), tokenize(text)))
            .collect(),
    );

    let out = model.test(&test);
    println!("tagged documents:");
    for (sentence, tags) in test.sentences.iter().zip(&out.predictions) {
        println!("\n  {}", sentence.text());
        for m in tags_to_mentions(tags) {
            println!("    gene: {:?} (tokens {}..{})", sentence.mention_text(&m), m.start, m.end);
        }
    }

    // Export in the BC2GM GENE-file format (space-free char offsets).
    let annotations = annotations_from_predictions(&test, &out.predictions);
    println!("\nBC2-format GENE file:\n{}", annotations.gene_file());
}
