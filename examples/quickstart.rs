//! Quickstart: train GraphNER on a handful of labelled sentences and
//! tag new text.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphner::prelude::*;
use BioTag::*;

fn main() {
    // A miniature labelled corpus. In practice this is the BC2GM
    // training set; tags follow the BIO scheme (B/I = gene mention).
    let mk = |id: &str, text: &str, tags: Vec<BioTag>| Sentence::labelled(id, tokenize(text), tags);
    let train = Corpus::from_sentences(vec![
        mk("s0", "the WT1 gene was expressed", vec![O, B, O, O, O]),
        mk("s1", "mutation of SH2B3 was detected", vec![O, O, B, O, O]),
        mk("s2", "the KRAS gene was mutated", vec![O, B, O, O, O]),
        mk("s3", "expression of TP53 was low", vec![O, O, B, O, O]),
        mk("s4", "the patient was treated", vec![O, O, O, O]),
        mk("s5", "no mutation was found", vec![O, O, O, O]),
    ]);

    // TRAIN: fits the base CRF (a BANNER-style feature-rich tagger) and
    // the reference label distributions over training 3-grams. The
    // builder validates the configuration up front (k = 0, a
    // non-simplex alpha, zero iterations, … are typed errors).
    let graph_cfg = GraphNerConfig::builder().build().expect("Table IV defaults are valid");
    let (model, report) = GraphNer::train(
        &train,
        &NerConfig::default(),
        None, // Some(resources) would build the BANNER-ChemDNER variant
        graph_cfg,
    );
    println!(
        "base CRF trained: {} L-BFGS iterations, objective {:.3}",
        report.report.iterations, report.report.objective
    );

    // TEST: transductive — the unlabelled test text itself joins the
    // similarity graph.
    let test = Corpus::from_sentences(vec![
        Sentence::unlabelled("t0", tokenize("the FLT3 gene was expressed")),
        Sentence::unlabelled("t1", tokenize("no mutation was found")),
    ]);
    let out = model.test(&test);

    for (sentence, tags) in test.sentences.iter().zip(&out.predictions) {
        println!("\n{}", sentence.text());
        for (tok, tag) in sentence.tokens.iter().zip(tags) {
            print!("{tok}/{tag} ");
        }
        println!();
        for m in tags_to_mentions(tags) {
            println!("  gene mention: {:?}", sentence.mention_text(&m));
        }
    }
    println!(
        "\ngraph: {} vertices, {} edges, {:.0}% labelled",
        out.stats.num_vertices,
        out.stats.num_edges,
        out.stats.pct_labelled * 100.0
    );
}
