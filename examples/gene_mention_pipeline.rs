//! The full evaluation pipeline on a synthetic BC2GM-profile corpus:
//! generate, train BANNER and GraphNER, score both with the BioCreative
//! II evaluator, and run a significance test — a miniature of the
//! paper's Table I + Table V experiment.
//!
//! ```sh
//! cargo run --release --example gene_mention_pipeline
//! ```

use graphner::eval::{sigf, Metric};
use graphner::prelude::*;

fn main() {
    // a small instance of the BC2GM stand-in corpus (2 % of paper size)
    let profile = CorpusProfile::bc2gm().scaled(0.05);
    println!(
        "generating {}: {} train / {} test sentences",
        profile.name, profile.train_sentences, profile.test_sentences
    );
    let corpus = generate(&profile);

    let (model, _) = GraphNer::train(
        &corpus.train,
        &NerConfig::default(),
        None,
        GraphNerConfig::table_iv("BC2GM", false),
    );
    let out = model.test(&corpus.test.without_tags());

    let base_det = annotations_from_predictions(&corpus.test, &out.base_predictions);
    let graph_det = annotations_from_predictions(&corpus.test, &out.predictions);
    let base_eval = evaluate(&base_det, &corpus.test_gold);
    let graph_eval = evaluate(&graph_det, &corpus.test_gold);

    println!("\n{:<12} {:>10} {:>10} {:>10}", "system", "P(%)", "R(%)", "F(%)");
    for (name, e) in [("BANNER", &base_eval), ("GraphNER", &graph_eval)] {
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2}",
            name,
            e.precision() * 100.0,
            e.recall() * 100.0,
            e.f_score() * 100.0
        );
    }

    let test = sigf(&base_eval, &graph_eval, Metric::FScore, 10_000, 7);
    println!(
        "\nsigf (F-score, 10 000 shuffles): observed |ΔF| = {:.4}, p = {:.4}",
        test.observed_diff, test.p_value
    );

    println!(
        "\ngraph: {} vertices ({:.1}% labelled, {:.2}% positive), {} weakly connected component(s)",
        out.stats.num_vertices,
        out.stats.pct_labelled * 100.0,
        out.stats.pct_positive * 100.0,
        out.stats.components
    );
    println!(
        "timings: posteriors {:.2}s, graph {:.2}s, propagate {:.3}s, decode {:.3}s",
        out.timings.posterior_seconds,
        out.timings.graph_seconds,
        out.timings.propagate_seconds,
        out.timings.decode_seconds
    );
}
