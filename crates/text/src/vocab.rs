//! String interning.
//!
//! Hot paths throughout the workspace (feature extraction, n-gram
//! handling, graph construction) key maps by words. Interning maps each
//! distinct string to a dense `u32` id so those maps can be keyed by
//! integers instead (see the hashing guidance in the perf book).

use rustc_hash::FxHashMap;

/// Dense string interner: `&str -> u32` and back.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    by_str: FxHashMap<String, u32>,
    by_id: Vec<String>,
}

impl Vocab {
    /// Create an empty vocabulary.
    pub fn new() -> Vocab {
        Vocab::default()
    }

    /// Intern `s`, returning its id (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        let id = self.by_id.len() as u32;
        self.by_id.push(s.to_string());
        self.by_str.insert(s.to_string(), id);
        id
    }

    /// Look up an already-interned string.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.by_str.get(s).copied()
    }

    /// The string for an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    pub fn resolve(&self, id: u32) -> &str {
        &self.by_id[id as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.by_id.iter().enumerate().map(|(i, s)| (i as u32, s.as_str()))
    }

    /// Rebuild a vocabulary from strings listed in id order, as produced
    /// by [`iter`](Vocab::iter). The string at position `i` gets id `i`,
    /// so a round trip through `iter`/`from_strings` is the identity.
    pub fn from_strings(strings: Vec<String>) -> Vocab {
        let by_str = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect::<FxHashMap<_, _>>();
        Vocab { by_str, by_id: strings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("gene");
        let b = v.intern("gene");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut v = Vocab::new();
        let ids: Vec<u32> = ["a", "b", "c"].iter().map(|s| v.intern(s)).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(v.resolve(1), "b");
        assert_eq!(v.get("c"), Some(2));
        assert_eq!(v.get("d"), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut v = Vocab::new();
        v.intern("x");
        v.intern("y");
        let pairs: Vec<(u32, &str)> = v.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }
}
