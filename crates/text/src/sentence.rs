//! Sentences, token spans, and gene mentions.
//!
//! A [`Sentence`] is a tokenized unit of text with an identifier and
//! optional gold BIO tags. A [`Mention`] is a half-open token span
//! `[start, end)` naming a gene mention; conversions between tag
//! sequences, token spans, and the BC2GM space-free character offsets
//! live here.

use crate::tag::{repair_bio, BioTag};

/// A gene mention as a half-open token span `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mention {
    /// Index of the first token of the mention.
    pub start: usize,
    /// One past the index of the last token of the mention.
    pub end: usize,
}

impl Mention {
    /// Create a mention covering tokens `[start, end)`.
    ///
    /// # Panics
    /// Panics if the span is empty or inverted.
    pub fn new(start: usize, end: usize) -> Mention {
        assert!(start < end, "empty or inverted mention span {start}..{end}");
        Mention { start, end }
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always false: mentions are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the span contains token index `i`.
    pub fn contains(&self, i: usize) -> bool {
        (self.start..self.end).contains(&i)
    }

    /// Whether two mentions overlap in token space.
    pub fn overlaps(&self, other: &Mention) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// A tokenized sentence, optionally carrying gold BIO tags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sentence {
    /// Stable identifier (BC2GM-style sentence id, e.g. `P00015731A0362`).
    pub id: String,
    /// Tokens in order.
    pub tokens: Vec<String>,
    /// Gold tags, if this sentence is labelled. When present, the length
    /// equals `tokens.len()`.
    pub tags: Option<Vec<BioTag>>,
}

impl Sentence {
    /// Build a labelled sentence.
    ///
    /// # Panics
    /// Panics if `tokens` and `tags` lengths differ.
    pub fn labelled(id: impl Into<String>, tokens: Vec<String>, tags: Vec<BioTag>) -> Sentence {
        assert_eq!(tokens.len(), tags.len(), "token/tag length mismatch");
        Sentence { id: id.into(), tokens, tags: Some(tags) }
    }

    /// Build an unlabelled sentence.
    pub fn unlabelled(id: impl Into<String>, tokens: Vec<String>) -> Sentence {
        Sentence { id: id.into(), tokens, tags: None }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sentence has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Gold mentions decoded from the gold tags, or `None` if unlabelled.
    pub fn gold_mentions(&self) -> Option<Vec<Mention>> {
        self.tags.as_ref().map(|t| tags_to_mentions(t))
    }

    /// The sentence text with tokens joined by single spaces.
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }

    /// A copy with the gold tags stripped (for use as unlabelled data in
    /// the transductive setting).
    pub fn without_tags(&self) -> Sentence {
        Sentence { id: self.id.clone(), tokens: self.tokens.clone(), tags: None }
    }

    /// Space-free character offset of the start of token `i`, i.e. the
    /// number of non-space characters strictly before it — the offset
    /// convention of the BC2GM annotation format ("the space characters
    /// are ignored").
    pub fn spacefree_start(&self, i: usize) -> usize {
        self.tokens[..i].iter().map(|t| t.chars().count()).sum()
    }

    /// Convert a token-span mention into BC2GM space-free character
    /// offsets `(first, last)`, both inclusive, as used by the
    /// evaluation script.
    pub fn mention_to_offsets(&self, m: &Mention) -> (usize, usize) {
        let first = self.spacefree_start(m.start);
        let last = self.spacefree_start(m.end - 1) + self.tokens[m.end - 1].chars().count() - 1;
        (first, last)
    }

    /// Convert BC2GM inclusive space-free offsets back into a token span,
    /// if the offsets line up with token boundaries.
    pub fn offsets_to_mention(&self, first: usize, last: usize) -> Option<Mention> {
        let mut start_tok = None;
        let mut pos = 0usize;
        let mut end_tok = None;
        for (i, tok) in self.tokens.iter().enumerate() {
            let len = tok.chars().count();
            if pos == first {
                start_tok = Some(i);
            }
            if pos + len - 1 == last {
                end_tok = Some(i + 1);
                break;
            }
            pos += len;
        }
        match (start_tok, end_tok) {
            (Some(s), Some(e)) if s < e => Some(Mention::new(s, e)),
            _ => None,
        }
    }

    /// The text of a mention (tokens joined with spaces).
    pub fn mention_text(&self, m: &Mention) -> String {
        self.tokens[m.start..m.end].join(" ")
    }
}

/// Decode a BIO tag sequence into mentions. Ill-formed `I` tags (those
/// not preceded by `B`/`I`) are treated as if they opened a mention,
/// matching the standard lenient decoding of NER evaluators.
pub fn tags_to_mentions(tags: &[BioTag]) -> Vec<Mention> {
    let mut mentions = Vec::new();
    let mut open: Option<usize> = None;
    for (i, &t) in tags.iter().enumerate() {
        match t {
            BioTag::B => {
                if let Some(s) = open.take() {
                    mentions.push(Mention::new(s, i));
                }
                open = Some(i);
            }
            BioTag::I => {
                if open.is_none() {
                    open = Some(i);
                }
            }
            BioTag::O => {
                if let Some(s) = open.take() {
                    mentions.push(Mention::new(s, i));
                }
            }
        }
    }
    if let Some(s) = open {
        mentions.push(Mention::new(s, tags.len()));
    }
    mentions
}

/// Encode mentions as a BIO tag sequence of length `len`.
///
/// Overlapping mentions are resolved in favour of the earlier one; the
/// result is always well-formed BIO.
pub fn mentions_to_tags(mentions: &[Mention], len: usize) -> Vec<BioTag> {
    let mut tags = vec![BioTag::O; len];
    let mut sorted: Vec<&Mention> = mentions.iter().collect();
    sorted.sort();
    for m in sorted {
        debug_assert!(m.end <= len, "mention {m:?} out of range for length {len}");
        if tags[m.start..m.end.min(len)].iter().any(|t| t.is_entity()) {
            continue; // overlap with an earlier mention
        }
        tags[m.start] = BioTag::B;
        for t in tags[m.start + 1..m.end.min(len)].iter_mut() {
            *t = BioTag::I;
        }
    }
    repair_bio(&mut tags);
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use BioTag::*;

    fn s(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn decode_paper_example() {
        // Recently , the mutation of lymphocyte adaptor protein ( LNK or
        // SH2B3 ) was detected in MPN — three mentions.
        let tags = vec![O, O, O, O, O, B, I, I, O, B, O, B, O, O, O, O, O];
        let mentions = tags_to_mentions(&tags);
        assert_eq!(mentions, vec![Mention::new(5, 8), Mention::new(9, 10), Mention::new(11, 12)]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mentions = vec![Mention::new(1, 3), Mention::new(5, 6)];
        let tags = mentions_to_tags(&mentions, 7);
        assert_eq!(tags, vec![O, B, I, O, O, B, O]);
        assert_eq!(tags_to_mentions(&tags), mentions);
    }

    #[test]
    fn adjacent_mentions_stay_distinct() {
        let tags = vec![B, B, I, O];
        assert_eq!(tags_to_mentions(&tags), vec![Mention::new(0, 1), Mention::new(1, 3)]);
    }

    #[test]
    fn dangling_inside_opens_mention() {
        let tags = vec![O, I, I, O];
        assert_eq!(tags_to_mentions(&tags), vec![Mention::new(1, 3)]);
    }

    #[test]
    fn mention_at_sentence_end() {
        let tags = vec![O, B, I];
        assert_eq!(tags_to_mentions(&tags), vec![Mention::new(1, 3)]);
    }

    #[test]
    fn overlapping_mentions_resolved() {
        let mentions = vec![Mention::new(0, 3), Mention::new(2, 4)];
        let tags = mentions_to_tags(&mentions, 4);
        assert_eq!(tags, vec![B, I, I, O]);
    }

    #[test]
    fn spacefree_offsets_match_bc2_convention() {
        // "wilms tumor - 1" -> space-free text "wilmstumor-1";
        // mention over all four tokens covers offsets 0..=11.
        let sent = Sentence::unlabelled("s1", s(&["wilms", "tumor", "-", "1"]));
        let m = Mention::new(0, 4);
        assert_eq!(sent.mention_to_offsets(&m), (0, 11));
        // single-token mention "tumor": starts after "wilms" (5 chars)
        let m2 = Mention::new(1, 2);
        assert_eq!(sent.mention_to_offsets(&m2), (5, 9));
    }

    #[test]
    fn offsets_round_trip() {
        let sent = Sentence::unlabelled("s", s(&["the", "LNK", "gene", "(", "SH2B3", ")", "."]));
        for start in 0..sent.len() {
            for end in start + 1..=sent.len() {
                let m = Mention::new(start, end);
                let (f, l) = sent.mention_to_offsets(&m);
                assert_eq!(sent.offsets_to_mention(f, l), Some(m));
            }
        }
    }

    #[test]
    fn misaligned_offsets_rejected() {
        let sent = Sentence::unlabelled("s", s(&["abc", "def"]));
        // offset 1 is inside "abc"
        assert_eq!(sent.offsets_to_mention(1, 5), None);
    }

    #[test]
    fn mention_text_and_len() {
        let sent = Sentence::unlabelled("s", s(&["wilms", "tumor", "-", "1"]));
        let m = Mention::new(0, 4);
        assert_eq!(sent.mention_text(&m), "wilms tumor - 1");
        assert_eq!(m.len(), 4);
        assert!(m.contains(3));
        assert!(!m.contains(4));
    }

    #[test]
    fn labelled_ctor_checks_lengths() {
        let sent = Sentence::labelled("s", s(&["a", "b"]), vec![O, B]);
        assert_eq!(sent.gold_mentions().unwrap(), vec![Mention::new(1, 2)]);
    }

    #[test]
    #[should_panic]
    fn labelled_ctor_rejects_mismatch() {
        let _ = Sentence::labelled("s", s(&["a", "b"]), vec![O]);
    }
}
