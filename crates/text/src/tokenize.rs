//! Biomedical tokenizer.
//!
//! The corpora in the paper are pre-tokenized with every punctuation
//! character as its own token (e.g. `wilms tumor - 1`, `( LNK`,
//! `patient ' s`). This tokenizer reproduces that convention: maximal
//! runs of alphanumeric characters form tokens, and every other
//! non-whitespace character is a single-character token.

/// Tokenize raw text into BANNER-style tokens.
///
/// Rules:
/// * whitespace separates tokens and is discarded;
/// * a maximal run of ASCII alphanumerics (plus non-ASCII letters, which
///   occur in Greek gene names such as `TGFβ`) forms one token;
/// * any other character is emitted as a single-character token.
///
/// ```
/// use graphner_text::tokenize;
/// assert_eq!(
///     tokenize("wilm's tumor-1 (WT1) gene"),
///     vec!["wilm", "'", "s", "tumor", "-", "1", "(", "WT1", ")", "gene"]
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        } else if ch.is_alphanumeric() {
            current.push(ch);
        } else {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            tokens.push(ch.to_string());
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_punctuation() {
        assert_eq!(
            tokenize("the mutation of LNK (SH2B3) was detected."),
            vec!["the", "mutation", "of", "LNK", "(", "SH2B3", ")", "was", "detected", "."]
        );
    }

    #[test]
    fn hyphenated_gene_names() {
        assert_eq!(tokenize("tumor-1"), vec!["tumor", "-", "1"]);
        assert_eq!(tokenize("IL-2R alpha"), vec!["IL", "-", "2R", "alpha"]);
    }

    #[test]
    fn apostrophes_split() {
        assert_eq!(tokenize("patient's"), vec!["patient", "'", "s"]);
    }

    #[test]
    fn greek_letters_kept_in_token() {
        assert_eq!(tokenize("TGFβ pathway"), vec!["TGFβ", "pathway"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn consecutive_punctuation() {
        assert_eq!(tokenize("a..b"), vec!["a", ".", ".", "b"]);
    }

    #[test]
    fn no_information_lost_modulo_whitespace() {
        let text = "Recently, the mutation of lymphocyte adaptor protein (LNK or SH2B3) was detected in MPN.";
        let joined: String = tokenize(text).concat();
        let spacefree: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(joined, spacefree);
    }
}
