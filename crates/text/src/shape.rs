//! Word-shape features in the BANNER style.
//!
//! Shapes abstract the orthography of a token: uppercase letters map to
//! `A`, lowercase to `a`, digits to `0`, and everything else to `-`. The
//! *brief* shape additionally collapses runs, so `SH2B3` has shape
//! `AA0A0` and brief shape `A0A0`.

/// Full word shape: one class character per input character.
pub fn word_shape(token: &str) -> String {
    token.chars().map(class_of).collect()
}

/// Brief word shape: the full shape with consecutive duplicate class
/// characters collapsed to one.
pub fn brief_shape(token: &str) -> String {
    let mut out = String::new();
    let mut last = None;
    for c in token.chars().map(class_of) {
        if last != Some(c) {
            out.push(c);
            last = Some(c);
        }
    }
    out
}

fn class_of(c: char) -> char {
    if c.is_uppercase() {
        'A'
    } else if c.is_lowercase() {
        'a'
    } else if c.is_ascii_digit() {
        '0'
    } else {
        '-'
    }
}

/// Orthographic predicates over a token, used as boolean CRF features.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Orthography {
    /// Entirely uppercase letters.
    pub all_caps: bool,
    /// First character uppercase, at least one lowercase after.
    pub init_cap: bool,
    /// Mixed case inside the token (e.g. `kDa`, `RhoA`).
    pub mixed_case: bool,
    /// Entirely ASCII digits.
    pub all_digits: bool,
    /// Contains at least one digit.
    pub has_digit: bool,
    /// Contains letters and digits.
    pub alphanumeric: bool,
    /// Contains a hyphen character.
    pub has_dash: bool,
    /// Single punctuation character.
    pub is_punct: bool,
    /// Looks like a Roman numeral (I, II, IV, ...).
    pub roman_numeral: bool,
    /// Is a spelled-out Greek letter (alpha, beta, ...) or a Greek glyph.
    pub greek: bool,
    /// Single character token.
    pub single_char: bool,
}

const GREEK_WORDS: [&str; 10] =
    ["alpha", "beta", "gamma", "delta", "epsilon", "kappa", "lambda", "sigma", "theta", "omega"];

/// Compute all orthographic predicates for a token.
pub fn orthography(token: &str) -> Orthography {
    let chars: Vec<char> = token.chars().collect();
    let n = chars.len();
    let n_upper = chars.iter().filter(|c| c.is_uppercase()).count();
    let n_lower = chars.iter().filter(|c| c.is_lowercase()).count();
    let n_digit = chars.iter().filter(|c| c.is_ascii_digit()).count();
    let n_alpha = n_upper + n_lower;
    let lower = token.to_lowercase();
    Orthography {
        all_caps: n > 0 && n_upper == n,
        init_cap: n > 1 && chars[0].is_uppercase() && chars[1..].iter().all(|c| c.is_lowercase()),
        mixed_case: n_upper > 0 && n_lower > 0 && chars[1..].iter().any(|c| c.is_uppercase()),
        all_digits: n > 0 && n_digit == n,
        has_digit: n_digit > 0,
        alphanumeric: n_alpha > 0 && n_digit > 0,
        has_dash: chars.contains(&'-'),
        is_punct: n == 1 && !chars[0].is_alphanumeric(),
        roman_numeral: n > 0 && chars.iter().all(|c| "IVXLCDM".contains(*c)),
        greek: GREEK_WORDS.contains(&lower.as_str())
            || chars.iter().any(|c| ('\u{0370}'..='\u{03ff}').contains(c)),
        single_char: n == 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(word_shape("SH2B3"), "AA0A0");
        assert_eq!(word_shape("Wilms"), "Aaaaa");
        assert_eq!(word_shape("il-2"), "aa-0");
        assert_eq!(brief_shape("SH2B3"), "A0A0");
        assert_eq!(brief_shape("Wilms"), "Aa");
    }

    #[test]
    fn brief_shape_collapses_runs() {
        assert_eq!(brief_shape("aaaBBB111"), "aA0");
        assert_eq!(brief_shape(""), "");
        assert_eq!(brief_shape("-"), "-");
    }

    #[test]
    fn orthographic_predicates() {
        let o = orthography("SH2B3");
        assert!(o.has_digit && o.alphanumeric && !o.all_caps && !o.init_cap);
        let o = orthography("LNK");
        assert!(o.all_caps && !o.roman_numeral);
        let o = orthography("IV");
        assert!(o.roman_numeral && o.all_caps);
        let o = orthography("Wilms");
        assert!(o.init_cap && !o.mixed_case);
        let o = orthography("kDa");
        assert!(o.mixed_case);
        let o = orthography("42");
        assert!(o.all_digits && o.has_digit);
        let o = orthography("-");
        assert!(o.is_punct && o.has_dash && o.single_char);
        let o = orthography("alpha");
        assert!(o.greek);
        let o = orthography("β");
        assert!(o.greek);
    }
}
