//! Text substrate for GraphNER.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about biomedical text: tokens and token spans, the BIO tag scheme used
//! for gene-mention detection, sentences and corpora, a biomedical
//! tokenizer, a rule-based lemmatizer, word-shape functions, the BC2GM
//! annotation format (space-free character offsets with alternative
//! annotations), and interned n-gram extraction used by the similarity
//! graph.
//!
//! The design follows the paper's framing: NER is a sequence-tagging
//! problem over sentences `x_1..x_l` with tags `t_1..t_l` drawn from
//! `{B, I, O}` (a single entity type, *gene*), and the graph component
//! operates on 3-grams of tokens.

pub mod approx;
pub mod bc2;
pub mod corpus;
pub mod ngram;
pub mod sentence;
pub mod shape;
pub mod stem;
pub mod tag;
pub mod tagger;
pub mod tokenize;
pub mod vocab;

pub use approx::{approx_eq, approx_eq_tol, exactly_zero, exactly_zero_f32, is_zero};
pub use bc2::{AnnotationSet, Bc2Annotation};
pub use corpus::{Corpus, Split};
pub use ngram::{Trigram, TrigramInterner, BOUNDARY_LEFT, BOUNDARY_RIGHT};
pub use sentence::{Mention, Sentence};
pub use shape::{brief_shape, word_shape};
pub use stem::lemma;
pub use tag::{BioTag, NUM_TAGS};
pub use tagger::{
    check_posteriors_finite, validate_sentences, TagError, Tagger, MAX_SENTENCE_TOKENS,
};
pub use tokenize::tokenize;
pub use vocab::Vocab;
