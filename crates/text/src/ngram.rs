//! 3-gram extraction and interning.
//!
//! GraphNER's similarity graph has one vertex per *unique* token 3-gram.
//! Following Subramanya et al. (2010), every token of every sentence
//! contributes one 3-gram token, centred on it, with sentence-boundary
//! padding; the distribution attached to the vertex `(w₋₁, w, w₊₁)` is a
//! belief about the label of the *centre* word `w`.

use crate::sentence::Sentence;
use crate::vocab::Vocab;
use rustc_hash::FxHashMap;

/// Pseudo-token padding the left sentence boundary.
pub const BOUNDARY_LEFT: &str = "<s>";
/// Pseudo-token padding the right sentence boundary.
pub const BOUNDARY_RIGHT: &str = "</s>";

/// A 3-gram as interned word ids `(left, centre, right)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Trigram(pub [u32; 3]);

impl Trigram {
    /// The centre word id — the word whose label the vertex describes.
    #[inline]
    pub fn centre(&self) -> u32 {
        self.0[1]
    }
}

/// Interner mapping unique 3-grams to dense vertex ids, sharing a word
/// [`Vocab`].
#[derive(Clone, Debug, Default)]
pub struct TrigramInterner {
    /// Word-level vocabulary (includes the boundary pseudo-tokens).
    pub words: Vocab,
    by_trigram: FxHashMap<Trigram, u32>,
    by_id: Vec<Trigram>,
}

impl TrigramInterner {
    /// Create an empty interner.
    pub fn new() -> TrigramInterner {
        TrigramInterner::default()
    }

    /// Intern the 3-gram centred on token `i` of `sentence`, padding with
    /// the boundary pseudo-tokens, and return its vertex id.
    pub fn intern_at(&mut self, sentence: &Sentence, i: usize) -> u32 {
        let tg = self.trigram_at(sentence, i);
        self.intern(tg)
    }

    /// The (non-interned) 3-gram centred on token `i`, interning the
    /// individual words.
    pub fn trigram_at(&mut self, sentence: &Sentence, i: usize) -> Trigram {
        let left = if i == 0 { BOUNDARY_LEFT } else { &sentence.tokens[i - 1] };
        let right = if i + 1 >= sentence.len() { BOUNDARY_RIGHT } else { &sentence.tokens[i + 1] };
        let l = self.words.intern(left);
        let c = self.words.intern(&sentence.tokens[i]);
        let r = self.words.intern(right);
        Trigram([l, c, r])
    }

    /// Intern a 3-gram, returning its dense vertex id.
    pub fn intern(&mut self, tg: Trigram) -> u32 {
        if let Some(&id) = self.by_trigram.get(&tg) {
            return id;
        }
        let id = self.by_id.len() as u32;
        self.by_id.push(tg);
        self.by_trigram.insert(tg, id);
        id
    }

    /// Vertex id of a 3-gram, if it has been interned.
    pub fn get(&self, tg: Trigram) -> Option<u32> {
        self.by_trigram.get(&tg).copied()
    }

    /// Look up the vertex id of the 3-gram at `(sentence, i)` without
    /// interning anything new. Returns `None` if any word or the 3-gram
    /// itself is unseen.
    pub fn lookup_at(&self, sentence: &Sentence, i: usize) -> Option<u32> {
        let left = if i == 0 { BOUNDARY_LEFT } else { &sentence.tokens[i - 1] };
        let right = if i + 1 >= sentence.len() { BOUNDARY_RIGHT } else { &sentence.tokens[i + 1] };
        let l = self.words.get(left)?;
        let c = self.words.get(&sentence.tokens[i])?;
        let r = self.words.get(right)?;
        self.by_trigram.get(&Trigram([l, c, r])).copied()
    }

    /// The 3-gram for a vertex id.
    pub fn resolve(&self, id: u32) -> Trigram {
        self.by_id[id as usize]
    }

    /// Render a vertex id as `[left centre right]` (the paper's notation,
    /// e.g. `[tumor - 1]`).
    pub fn render(&self, id: u32) -> String {
        let tg = self.resolve(id);
        format!(
            "[{} {} {}]",
            self.words.resolve(tg.0[0]),
            self.words.resolve(tg.0[1]),
            self.words.resolve(tg.0[2])
        )
    }

    /// All interned 3-grams in vertex-id order (index `i` is vertex `i`).
    pub fn trigrams(&self) -> &[Trigram] {
        &self.by_id
    }

    /// Rebuild an interner from its word vocabulary and the 3-gram list
    /// in vertex-id order, as exposed by [`trigrams`](TrigramInterner::trigrams).
    /// A round trip through `trigrams`/`from_parts` preserves every
    /// vertex id.
    pub fn from_parts(words: Vocab, trigrams: Vec<Trigram>) -> TrigramInterner {
        let by_trigram =
            trigrams.iter().enumerate().map(|(i, &tg)| (tg, i as u32)).collect::<FxHashMap<_, _>>();
        TrigramInterner { words, by_trigram, by_id: trigrams }
    }

    /// Number of unique 3-grams (graph vertices).
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no 3-grams have been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(words: &[&str]) -> Sentence {
        Sentence::unlabelled("s", words.iter().map(|w| w.to_string()).collect())
    }

    #[test]
    fn boundary_padding() {
        let mut it = TrigramInterner::new();
        let s = sent(&["a", "b"]);
        let t0 = it.trigram_at(&s, 0);
        let t1 = it.trigram_at(&s, 1);
        assert_eq!(it.words.resolve(t0.0[0]), BOUNDARY_LEFT);
        assert_eq!(it.words.resolve(t0.0[1]), "a");
        assert_eq!(it.words.resolve(t0.0[2]), "b");
        assert_eq!(it.words.resolve(t1.0[2]), BOUNDARY_RIGHT);
    }

    #[test]
    fn single_token_sentence_padded_both_sides() {
        let mut it = TrigramInterner::new();
        let s = sent(&["x"]);
        let t = it.trigram_at(&s, 0);
        assert_eq!(it.words.resolve(t.0[0]), BOUNDARY_LEFT);
        assert_eq!(it.words.resolve(t.0[2]), BOUNDARY_RIGHT);
    }

    #[test]
    fn unique_trigrams_share_vertex() {
        let mut it = TrigramInterner::new();
        let s1 = sent(&["wilms", "tumor", "-", "1", "positive"]);
        let s2 = sent(&["in", "wilms", "tumor", "-", "1", "."]);
        // "tumor - 1" occurs centred on "-" in both sentences
        let v1 = it.intern_at(&s1, 2);
        let v2 = it.intern_at(&s2, 3);
        assert_eq!(v1, v2);
        assert_eq!(it.render(v1), "[tumor - 1]");
    }

    #[test]
    fn lookup_without_interning() {
        let mut it = TrigramInterner::new();
        let s = sent(&["a", "b", "c"]);
        let v = it.intern_at(&s, 1);
        assert_eq!(it.lookup_at(&s, 1), Some(v));
        let s2 = sent(&["a", "b", "z"]);
        assert_eq!(it.lookup_at(&s2, 1), None);
    }

    #[test]
    fn centre_word() {
        let mut it = TrigramInterner::new();
        let s = sent(&["p", "q", "r"]);
        let tg = it.trigram_at(&s, 1);
        assert_eq!(it.words.resolve(tg.centre()), "q");
    }
}
