//! The BIO tag scheme for single-entity-type named entity recognition.
//!
//! The paper detects one entity type (gene mentions), so the tag set is
//! `{B, I, O}`: *beginning* of a mention, *inside* a mention, and
//! *outside* any mention.

/// Number of distinct tags in the BIO scheme.
pub const NUM_TAGS: usize = 3;

/// A BIO tag for gene-mention detection.
///
/// The discriminants are stable (`B = 0`, `I = 1`, `O = 2`) and are used
/// directly as indices into label-distribution vectors throughout the
/// workspace, e.g. the `(B, I, O)` triples in Figure 1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum BioTag {
    /// First token of a gene mention.
    B = 0,
    /// Subsequent token of a gene mention.
    I = 1,
    /// Token outside any gene mention.
    O = 2,
}

impl BioTag {
    /// All tags in index order.
    pub const ALL: [BioTag; NUM_TAGS] = [BioTag::B, BioTag::I, BioTag::O];

    /// The tag's index into a `[f64; NUM_TAGS]` label distribution.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`BioTag::index`].
    ///
    /// # Panics
    /// Panics if `idx >= NUM_TAGS`.
    #[inline]
    pub fn from_index(idx: usize) -> BioTag {
        match BioTag::try_from_index(idx) {
            Some(tag) => tag,
            None => panic!("invalid BIO tag index {idx}"),
        }
    }

    /// Fallible inverse of [`BioTag::index`], for callers handling
    /// untrusted indices (e.g. model files read from disk).
    #[inline]
    pub fn try_from_index(idx: usize) -> Option<BioTag> {
        match idx {
            0 => Some(BioTag::B),
            1 => Some(BioTag::I),
            2 => Some(BioTag::O),
            _ => None,
        }
    }

    /// Single-letter string form used in annotated corpora (`B`/`I`/`O`).
    pub fn as_str(self) -> &'static str {
        match self {
            BioTag::B => "B",
            BioTag::I => "I",
            BioTag::O => "O",
        }
    }

    /// Parse a single-letter tag; returns `None` for anything else.
    pub fn parse(s: &str) -> Option<BioTag> {
        match s {
            "B" | "B-Gene" | "B-GENE" => Some(BioTag::B),
            "I" | "I-Gene" | "I-GENE" => Some(BioTag::I),
            "O" => Some(BioTag::O),
            _ => None,
        }
    }

    /// Whether this tag marks a token as part of a mention.
    #[inline]
    pub fn is_entity(self) -> bool {
        !matches!(self, BioTag::O)
    }

    /// BIO well-formedness: may `self` follow `prev` at a non-initial
    /// position? The only ill-formed transition is `O -> I` (and `I` at
    /// sentence start, encoded by `prev = None`).
    #[inline]
    pub fn may_follow(self, prev: Option<BioTag>) -> bool {
        !matches!((prev, self), (None | Some(BioTag::O), BioTag::I))
    }
}

impl std::fmt::Display for BioTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Repair an arbitrary tag sequence into a well-formed BIO sequence.
///
/// Any `I` that does not follow a `B` or `I` is rewritten to `B`. This is
/// the standard post-processing applied when a decoder is run without
/// structural constraints.
pub fn repair_bio(tags: &mut [BioTag]) {
    let mut prev = None;
    for t in tags.iter_mut() {
        if *t == BioTag::I && !BioTag::I.may_follow(prev) {
            *t = BioTag::B;
        }
        prev = Some(*t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for t in BioTag::ALL {
            assert_eq!(BioTag::from_index(t.index()), t);
        }
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(BioTag::parse("B"), Some(BioTag::B));
        assert_eq!(BioTag::parse("I-Gene"), Some(BioTag::I));
        assert_eq!(BioTag::parse("O"), Some(BioTag::O));
        assert_eq!(BioTag::parse("X"), None);
        assert_eq!(BioTag::B.to_string(), "B");
    }

    #[test]
    fn well_formedness_rules() {
        assert!(!BioTag::I.may_follow(None));
        assert!(!BioTag::I.may_follow(Some(BioTag::O)));
        assert!(BioTag::I.may_follow(Some(BioTag::B)));
        assert!(BioTag::I.may_follow(Some(BioTag::I)));
        assert!(BioTag::B.may_follow(None));
        assert!(BioTag::O.may_follow(Some(BioTag::I)));
    }

    #[test]
    fn repair_fixes_dangling_inside() {
        use BioTag::*;
        let mut tags = vec![I, I, O, I, B, I];
        repair_bio(&mut tags);
        assert_eq!(tags, vec![B, I, O, B, B, I]);
    }

    #[test]
    fn is_entity() {
        assert!(BioTag::B.is_entity());
        assert!(BioTag::I.is_entity());
        assert!(!BioTag::O.is_entity());
    }
}
