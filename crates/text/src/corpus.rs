//! Corpora and train/test splits.

use crate::sentence::Sentence;

/// A collection of sentences (labelled, unlabelled, or mixed).
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// Sentences in corpus order.
    pub sentences: Vec<Sentence>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Wrap a sentence list.
    pub fn from_sentences(sentences: Vec<Sentence>) -> Corpus {
        Corpus { sentences }
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Total token count.
    pub fn num_tokens(&self) -> usize {
        self.sentences.iter().map(|s| s.len()).sum()
    }

    /// Total gold mention count (labelled sentences only).
    pub fn num_gold_mentions(&self) -> usize {
        self.sentences.iter().filter_map(|s| s.gold_mentions()).map(|m| m.len()).sum()
    }

    /// Whether every sentence carries gold tags.
    pub fn fully_labelled(&self) -> bool {
        self.sentences.iter().all(|s| s.tags.is_some())
    }

    /// A copy with all gold tags stripped.
    pub fn without_tags(&self) -> Corpus {
        Corpus { sentences: self.sentences.iter().map(|s| s.without_tags()).collect() }
    }

    /// Deterministically split into `(train, test)` by a train fraction,
    /// using a seeded Fisher–Yates shuffle of sentence indices so that
    /// repeated runs with the same seed produce the same split. Used by
    /// the Fig. 2 ratio experiments.
    pub fn split(&self, train_fraction: f64, seed: u64) -> Split {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train fraction {train_fraction} out of range"
        );
        let n = self.sentences.len();
        let mut order: Vec<usize> = (0..n).collect();
        // xorshift* PRNG: tiny, seedable, and dependency-free; quality is
        // irrelevant here, determinism is what matters.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let n_train = ((n as f64) * train_fraction).round() as usize;
        let mut train = Vec::with_capacity(n_train);
        let mut test = Vec::with_capacity(n - n_train);
        for (k, &idx) in order.iter().enumerate() {
            if k < n_train {
                train.push(self.sentences[idx].clone());
            } else {
                test.push(self.sentences[idx].clone());
            }
        }
        Split { train: Corpus::from_sentences(train), test: Corpus::from_sentences(test) }
    }
}

/// A train/test partition of a corpus.
#[derive(Clone, Debug)]
pub struct Split {
    /// Labelled training portion (`D_l`).
    pub train: Corpus,
    /// Held-out portion (`D_u` once tags are stripped).
    pub test: Corpus,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::BioTag::*;

    fn corpus(n: usize) -> Corpus {
        let sentences = (0..n)
            .map(|i| {
                Sentence::labelled(
                    format!("s{i}"),
                    vec!["tok".to_string(), format!("w{i}")],
                    vec![O, if i % 3 == 0 { B } else { O }],
                )
            })
            .collect();
        Corpus::from_sentences(sentences)
    }

    #[test]
    fn split_sizes() {
        let c = corpus(100);
        let sp = c.split(0.8, 7);
        assert_eq!(sp.train.len(), 80);
        assert_eq!(sp.test.len(), 20);
        assert_eq!(sp.train.len() + sp.test.len(), c.len());
    }

    #[test]
    fn split_is_deterministic() {
        let c = corpus(50);
        let a = c.split(0.5, 42);
        let b = c.split(0.5, 42);
        let ids = |x: &Corpus| x.sentences.iter().map(|s| s.id.clone()).collect::<Vec<_>>();
        assert_eq!(ids(&a.train), ids(&b.train));
        assert_eq!(ids(&a.test), ids(&b.test));
    }

    #[test]
    fn different_seeds_differ() {
        let c = corpus(50);
        let a = c.split(0.5, 1);
        let b = c.split(0.5, 2);
        let ids = |x: &Corpus| x.sentences.iter().map(|s| s.id.clone()).collect::<Vec<_>>();
        assert_ne!(ids(&a.train), ids(&b.train));
    }

    #[test]
    fn split_partitions_without_loss_or_duplication() {
        let c = corpus(37);
        let sp = c.split(0.6, 9);
        let mut all: Vec<String> = sp
            .train
            .sentences
            .iter()
            .chain(sp.test.sentences.iter())
            .map(|s| s.id.clone())
            .collect();
        all.sort();
        let mut expect: Vec<String> = (0..37).map(|i| format!("s{i}")).collect();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn counts() {
        let c = corpus(9);
        assert_eq!(c.num_tokens(), 18);
        assert_eq!(c.num_gold_mentions(), 3); // i = 0, 3, 6
        assert!(c.fully_labelled());
        assert!(!c.without_tags().fully_labelled());
    }
}
