//! Rule-based lemmatization.
//!
//! BANNER uses lemmas of surrounding words as features, and GraphNER's
//! *Lexical-features* graph representation is built from "lemmas of the
//! words in a window of length 5". A full Porter stemmer is unnecessary
//! for this role; what matters is that inflectional variants of the
//! filler vocabulary (`mutations`/`mutation`, `detected`/`detect`)
//! collapse to a common key while gene symbols are left alone.

/// Lemmatize a token: lowercase it and strip common English inflectional
/// suffixes. Tokens that contain digits or are short are returned
/// lowercased but otherwise untouched (gene symbols such as `SH2B3`
/// must not be mangled).
pub fn lemma(token: &str) -> String {
    let lower = token.to_lowercase();
    if lower.len() <= 3 || lower.chars().any(|c| c.is_ascii_digit()) {
        return lower;
    }
    strip_suffix(&lower)
}

fn strip_suffix(w: &str) -> String {
    // Ordered: longest and most specific first. Each rule requires a
    // minimum remaining stem of 3 characters.
    const RULES: [(&str, &str); 12] = [
        ("ations", "ate"),
        ("ation", "ate"),
        ("ically", "ic"),
        ("ingly", ""),
        ("ities", "ity"),
        ("iness", "y"),
        ("ies", "y"),
        ("ing", ""),
        ("ied", "y"),
        ("eds", ""),
        ("ed", ""),
        ("s", ""),
    ];
    for (suf, rep) in RULES {
        if let Some(stem) = w.strip_suffix(suf) {
            if stem.len() >= 3 {
                let mut out = String::with_capacity(stem.len() + rep.len());
                out.push_str(stem);
                out.push_str(rep);
                // "detect" + "" from "detected"; restore final 'e' when a
                // consonant cluster would otherwise end "...at"/"...iz".
                if rep.is_empty()
                    && (out.ends_with("at") || out.ends_with("iz") || out.ends_with("us"))
                {
                    out.push('e');
                }
                return out;
            }
        }
    }
    w.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals_collapse() {
        assert_eq!(lemma("mutations"), lemma("mutation"));
        assert_eq!(lemma("genes"), "gene");
        assert_eq!(lemma("studies"), "study");
    }

    #[test]
    fn verb_forms_collapse() {
        assert_eq!(lemma("detected"), "detect");
        assert_eq!(lemma("detecting"), "detect");
        assert_eq!(lemma("activated"), "activate");
        assert_eq!(lemma("activation"), "activate");
    }

    #[test]
    fn gene_symbols_untouched() {
        assert_eq!(lemma("SH2B3"), "sh2b3");
        assert_eq!(lemma("WT1"), "wt1");
        assert_eq!(lemma("LNK"), "lnk");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(lemma("was"), "was");
        assert_eq!(lemma("is"), "is");
        assert_eq!(lemma("-"), "-");
    }

    #[test]
    fn lowercases() {
        assert_eq!(lemma("Recently"), "recently");
        assert_eq!(lemma("Mutation"), "mutate");
    }

    #[test]
    fn idempotent_on_its_own_output() {
        for w in ["mutations", "detected", "studies", "expression", "tumors"] {
            let once = lemma(w);
            assert_eq!(lemma(&once), once, "lemma not idempotent on {w}");
        }
    }
}
