//! Float-comparison helpers — the sanctioned replacements for bare
//! `==`/`!=` on floats, which the workspace audit (`graphner-audit`)
//! rejects in library code.
//!
//! Two distinct intents exist in this codebase, and the helper names
//! keep them apart:
//!
//! * **Tolerance comparisons** ([`approx_eq`], [`is_zero`]) — "these
//!   quantities are numerically equal". Use for probabilities, norms,
//!   F-scores and anything that has been through floating-point
//!   arithmetic.
//! * **Exact-zero tests** ([`exactly_zero`], [`exactly_zero_f32`]) —
//!   "this slot was never written / this term contributes nothing".
//!   Use for skip-zero optimizations in gradient loops and untouched-
//!   slot sentinels, where an epsilon would silently drop small but
//!   real contributions. These are implemented on the bit pattern
//!   (`±0.0` only), so they carry no hidden tolerance.

/// Default absolute tolerance for [`approx_eq`] and [`is_zero`].
pub const EPSILON: f64 = 1e-12;

/// Whether `a` and `b` are equal within an absolute tolerance of
/// [`EPSILON`] (NaN compares unequal to everything).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// Whether `a` and `b` are equal within an absolute tolerance `tol`.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Whether `x` is numerically zero (|x| ≤ [`EPSILON`]).
#[inline]
pub fn is_zero(x: f64) -> bool {
    x.abs() <= EPSILON
}

/// Whether `x` is *exactly* `±0.0` — a bit-pattern test with no
/// tolerance. Shifting out the sign bit leaves zero only for the two
/// signed zeros, so this is `x == 0.0` without the bare float
/// comparison the audit forbids.
#[inline]
pub fn exactly_zero(x: f64) -> bool {
    x.to_bits() << 1 == 0
}

/// [`exactly_zero`] for `f32`.
#[inline]
pub fn exactly_zero_f32(x: f32) -> bool {
    x.to_bits() << 1 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_representation_noise() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(!approx_eq(0.1, 0.2));
        assert!(approx_eq_tol(1.0, 1.05, 0.1));
        assert!(!approx_eq_tol(1.0, 1.05, 0.01));
        assert!(!approx_eq(f64::NAN, f64::NAN));
    }

    #[test]
    fn is_zero_is_tolerant_exactly_zero_is_not() {
        assert!(is_zero(0.0));
        assert!(is_zero(1e-15));
        assert!(!is_zero(1e-9));
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(1e-300));
        assert!(!exactly_zero(f64::NAN));
        assert!(exactly_zero_f32(0.0));
        assert!(exactly_zero_f32(-0.0));
        assert!(!exactly_zero_f32(f32::MIN_POSITIVE));
    }
}
