//! The [`Tagger`] trait: the train-independent face of every sequence
//! tagger in the workspace.
//!
//! GraphNER juggles three tagger families — the BANNER-style CRF
//! (`graphner-banner`), the bi-LSTM-CRF baseline (`graphner-neural`),
//! and GraphNER's own graph-augmented decode (`graphner-core`). They
//! train very differently but are *consumed* identically: hand them a
//! sentence, get back BIO tags and per-token label distributions. This
//! trait captures exactly that consumption surface so evaluation
//! helpers and experiment binaries can be written once against
//! `impl Tagger` instead of duplicating per-model glue.

use crate::corpus::Corpus;
use crate::sentence::Sentence;
use crate::tag::{BioTag, NUM_TAGS};

/// Hard cap on the tokens a single sentence may carry through the
/// fallible tagging path. The trained models are all linear in sentence
/// length, but serving-path memory is not unbounded: a request carrying
/// a megabyte on one line would otherwise allocate lattices and
/// posterior rows to match. Biomedical sentences run a few dozen
/// tokens; 512 is far above anything a real corpus produces.
pub const MAX_SENTENCE_TOKENS: usize = 512;

/// A rejected fallible-tagging call: which sentence of the batch was
/// unusable and why. The infallible [`Tagger::tag_batch`] path keeps
/// its panic-free-by-invariant contract for trusted corpora; this type
/// is how the same models refuse *adversarial* input (an empty request
/// line, a pathologically long sentence, a numerically broken
/// posterior) at the API boundary instead of deep inside a decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TagError {
    /// Sentence `index` of the batch has zero tokens. Batch taggers
    /// treat empty sentences as empty outputs, but a serving request
    /// with an empty line is almost always a malformed payload, so the
    /// fallible path surfaces it instead of silently returning nothing.
    EmptySentence {
        /// Batch position of the offending sentence.
        index: usize,
    },
    /// Sentence `index` exceeds [`MAX_SENTENCE_TOKENS`].
    SentenceTooLong {
        /// Batch position of the offending sentence.
        index: usize,
        /// Its token count.
        tokens: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The model produced a non-finite posterior entry for token
    /// `token` of sentence `index` — numerically broken weights or
    /// input, detected before it can poison a decode.
    NonFinitePosterior {
        /// Batch position of the offending sentence.
        index: usize,
        /// Token position within the sentence.
        token: usize,
    },
}

impl std::fmt::Display for TagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TagError::EmptySentence { index } => {
                write!(f, "sentence {index} is empty")
            }
            TagError::SentenceTooLong { index, tokens, max } => {
                write!(f, "sentence {index} has {tokens} tokens (cap {max})")
            }
            TagError::NonFinitePosterior { index, token } => {
                write!(f, "non-finite posterior at sentence {index}, token {token}")
            }
        }
    }
}

impl std::error::Error for TagError {}

/// Shape-validate a batch for the fallible tagging path: every sentence
/// non-empty and within [`MAX_SENTENCE_TOKENS`]. Returns the error of
/// the lowest offending batch index, so the outcome is deterministic
/// regardless of how a tagger parallelizes the work that follows.
pub fn validate_sentences(sentences: &[Sentence]) -> Result<(), TagError> {
    for (index, sentence) in sentences.iter().enumerate() {
        if sentence.is_empty() {
            return Err(TagError::EmptySentence { index });
        }
        if sentence.len() > MAX_SENTENCE_TOKENS {
            return Err(TagError::SentenceTooLong {
                index,
                tokens: sentence.len(),
                max: MAX_SENTENCE_TOKENS,
            });
        }
    }
    Ok(())
}

/// Scan one sentence's posterior rows for a non-finite entry; `index`
/// names the sentence's batch position in the error.
pub fn check_posteriors_finite(index: usize, rows: &[[f64; NUM_TAGS]]) -> Result<(), TagError> {
    for (token, row) in rows.iter().enumerate() {
        if row.iter().any(|p| !p.is_finite()) {
            return Err(TagError::NonFinitePosterior { index, token });
        }
    }
    Ok(())
}

/// A trained sequence tagger over the BIO tag set.
///
/// Implementations must satisfy two invariants for non-empty sentences:
/// `predict` and `posteriors` return one entry per token, and each
/// posterior row is a probability distribution over
/// [`tag_count`](Tagger::tag_count) labels. Empty sentences map to
/// empty outputs.
pub trait Tagger {
    /// Most-likely BIO tag sequence for a sentence.
    fn predict(&self, sentence: &Sentence) -> Vec<BioTag>;

    /// Per-token label distributions (marginal beliefs) for a sentence.
    fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]>;

    /// Number of labels the tagger scores — the BIO scheme's
    /// [`NUM_TAGS`] for every tagger in this workspace.
    fn tag_count(&self) -> usize {
        NUM_TAGS
    }

    /// Predict a batch of sentences, in input order — the one entry
    /// point for serving and evaluation paths that tag many sentences
    /// at once. The provided implementation predicts sequentially;
    /// implementations whose `predict` is independent per sentence
    /// (every tagger in this workspace) may override it with a
    /// parallel or genuinely batched pass, as long as the returned
    /// tags are identical to sentence-by-sentence prediction.
    // hot: the serving batch entry point every tagger inherits
    fn tag_batch(&self, sentences: &[Sentence]) -> Vec<Vec<BioTag>> {
        // alloc: one exact-size result Vec per batch
        sentences.iter().map(|s| self.predict(s)).collect()
    }

    /// Fallible batch prediction — the request-path twin of
    /// [`tag_batch`](Tagger::tag_batch). Where `tag_batch` trusts its
    /// caller (benchmark corpora, evaluation splits) and upholds the
    /// trait invariants by construction, `try_tag_batch` treats the
    /// batch as untrusted input: it shape-validates every sentence
    /// ([`validate_sentences`]) and returns a typed [`TagError`]
    /// instead of panicking or silently degenerating.
    ///
    /// On a batch that passes validation the result is **identical**
    /// to `tag_batch` — implementations overriding this method (to add
    /// posterior-finiteness checks or parallelism) must preserve that,
    /// so serving through the fallible path stays byte-identical to
    /// offline tagging.
    fn try_tag_batch(&self, sentences: &[Sentence]) -> Result<Vec<Vec<BioTag>>, TagError> {
        validate_sentences(sentences)?;
        Ok(self.tag_batch(sentences))
    }

    /// Predict every sentence of a corpus, in corpus order.
    fn predict_corpus(&self, corpus: &Corpus) -> Vec<Vec<BioTag>> {
        self.tag_batch(&corpus.sentences)
    }
}

impl<T: Tagger + ?Sized> Tagger for &T {
    fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
        (**self).predict(sentence)
    }

    fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
        (**self).posteriors(sentence)
    }

    fn tag_count(&self) -> usize {
        (**self).tag_count()
    }

    fn tag_batch(&self, sentences: &[Sentence]) -> Vec<Vec<BioTag>> {
        (**self).tag_batch(sentences)
    }

    fn try_tag_batch(&self, sentences: &[Sentence]) -> Result<Vec<Vec<BioTag>>, TagError> {
        (**self).try_tag_batch(sentences)
    }

    fn predict_corpus(&self, corpus: &Corpus) -> Vec<Vec<BioTag>> {
        (**self).predict_corpus(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::BioTag::*;

    /// A toy tagger: everything is O except tokens that contain a digit.
    struct DigitTagger;

    impl Tagger for DigitTagger {
        fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
            sentence
                .tokens
                .iter()
                .map(|t| if t.chars().any(|c| c.is_ascii_digit()) { B } else { O })
                .collect()
        }

        fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
            self.predict(sentence)
                .into_iter()
                .map(|t| {
                    let mut d = [0.0; NUM_TAGS];
                    d[t.index()] = 1.0;
                    d
                })
                .collect()
        }
    }

    #[test]
    fn default_methods_cover_corpus_and_tag_count() {
        let tagger = DigitTagger;
        assert_eq!(tagger.tag_count(), NUM_TAGS);
        let corpus = Corpus::from_sentences(vec![
            Sentence::unlabelled("a", vec!["the".into(), "WT1".into()]),
            Sentence::unlabelled("b", vec!["no".into()]),
        ]);
        let preds = tagger.predict_corpus(&corpus);
        assert_eq!(preds, vec![vec![O, B], vec![O]]);
    }

    #[test]
    fn try_tag_batch_matches_tag_batch_on_valid_input() {
        let tagger = DigitTagger;
        let batch = vec![
            Sentence::unlabelled("a", vec!["the".into(), "WT1".into()]),
            Sentence::unlabelled("b", vec!["no".into()]),
        ];
        assert_eq!(tagger.try_tag_batch(&batch).unwrap(), tagger.tag_batch(&batch));
    }

    #[test]
    fn try_tag_batch_rejects_empty_and_oversized_sentences() {
        let tagger = DigitTagger;
        let batch = vec![
            Sentence::unlabelled("ok", vec!["fine".into()]),
            Sentence::unlabelled("empty", vec![]),
        ];
        assert_eq!(tagger.try_tag_batch(&batch), Err(TagError::EmptySentence { index: 1 }));

        let long = Sentence::unlabelled("long", vec!["t".to_string(); MAX_SENTENCE_TOKENS + 1]);
        assert_eq!(
            tagger.try_tag_batch(&[long]),
            Err(TagError::SentenceTooLong {
                index: 0,
                tokens: MAX_SENTENCE_TOKENS + 1,
                max: MAX_SENTENCE_TOKENS,
            })
        );
        // exactly at the cap is fine
        let at_cap = Sentence::unlabelled("cap", vec!["t".to_string(); MAX_SENTENCE_TOKENS]);
        assert!(tagger.try_tag_batch(&[at_cap]).is_ok());
    }

    #[test]
    fn validation_reports_the_lowest_offending_index() {
        let batch = vec![
            Sentence::unlabelled("ok", vec!["fine".into()]),
            Sentence::unlabelled("e1", vec![]),
            Sentence::unlabelled("e2", vec![]),
        ];
        assert_eq!(validate_sentences(&batch), Err(TagError::EmptySentence { index: 1 }));
    }

    #[test]
    fn posterior_finiteness_check_names_the_token() {
        let mut rows = vec![[0.5, 0.25, 0.25]; 3];
        assert!(check_posteriors_finite(7, &rows).is_ok());
        rows[2][1] = f64::NAN;
        assert_eq!(
            check_posteriors_finite(7, &rows),
            Err(TagError::NonFinitePosterior { index: 7, token: 2 })
        );
        rows[2][1] = f64::INFINITY;
        assert!(check_posteriors_finite(7, &rows).is_err());
    }

    #[test]
    fn tag_error_messages_name_the_sentence() {
        assert!(TagError::EmptySentence { index: 3 }.to_string().contains('3'));
        let long = TagError::SentenceTooLong { index: 0, tokens: 600, max: 512 };
        assert!(long.to_string().contains("600"));
        assert!(long.to_string().contains("512"));
        let nf = TagError::NonFinitePosterior { index: 1, token: 4 }.to_string();
        assert!(nf.contains("non-finite"));
    }

    #[test]
    fn trait_objects_and_references_work() {
        let tagger = DigitTagger;
        let by_ref: &dyn Tagger = &tagger;
        let s = Sentence::unlabelled("s", vec!["IDH2".into()]);
        assert_eq!(by_ref.predict(&s), vec![B]);
        assert_eq!((&&tagger).posteriors(&s)[0][B.index()], 1.0);
    }
}
