//! The [`Tagger`] trait: the train-independent face of every sequence
//! tagger in the workspace.
//!
//! GraphNER juggles three tagger families — the BANNER-style CRF
//! (`graphner-banner`), the bi-LSTM-CRF baseline (`graphner-neural`),
//! and GraphNER's own graph-augmented decode (`graphner-core`). They
//! train very differently but are *consumed* identically: hand them a
//! sentence, get back BIO tags and per-token label distributions. This
//! trait captures exactly that consumption surface so evaluation
//! helpers and experiment binaries can be written once against
//! `impl Tagger` instead of duplicating per-model glue.

use crate::corpus::Corpus;
use crate::sentence::Sentence;
use crate::tag::{BioTag, NUM_TAGS};

/// A trained sequence tagger over the BIO tag set.
///
/// Implementations must satisfy two invariants for non-empty sentences:
/// `predict` and `posteriors` return one entry per token, and each
/// posterior row is a probability distribution over
/// [`tag_count`](Tagger::tag_count) labels. Empty sentences map to
/// empty outputs.
pub trait Tagger {
    /// Most-likely BIO tag sequence for a sentence.
    fn predict(&self, sentence: &Sentence) -> Vec<BioTag>;

    /// Per-token label distributions (marginal beliefs) for a sentence.
    fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]>;

    /// Number of labels the tagger scores — the BIO scheme's
    /// [`NUM_TAGS`] for every tagger in this workspace.
    fn tag_count(&self) -> usize {
        NUM_TAGS
    }

    /// Predict a batch of sentences, in input order — the one entry
    /// point for serving and evaluation paths that tag many sentences
    /// at once. The provided implementation predicts sequentially;
    /// implementations whose `predict` is independent per sentence
    /// (every tagger in this workspace) may override it with a
    /// parallel or genuinely batched pass, as long as the returned
    /// tags are identical to sentence-by-sentence prediction.
    // hot: the serving batch entry point every tagger inherits
    fn tag_batch(&self, sentences: &[Sentence]) -> Vec<Vec<BioTag>> {
        // alloc: one exact-size result Vec per batch
        sentences.iter().map(|s| self.predict(s)).collect()
    }

    /// Predict every sentence of a corpus, in corpus order.
    fn predict_corpus(&self, corpus: &Corpus) -> Vec<Vec<BioTag>> {
        self.tag_batch(&corpus.sentences)
    }
}

impl<T: Tagger + ?Sized> Tagger for &T {
    fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
        (**self).predict(sentence)
    }

    fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
        (**self).posteriors(sentence)
    }

    fn tag_count(&self) -> usize {
        (**self).tag_count()
    }

    fn tag_batch(&self, sentences: &[Sentence]) -> Vec<Vec<BioTag>> {
        (**self).tag_batch(sentences)
    }

    fn predict_corpus(&self, corpus: &Corpus) -> Vec<Vec<BioTag>> {
        (**self).predict_corpus(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::BioTag::*;

    /// A toy tagger: everything is O except tokens that contain a digit.
    struct DigitTagger;

    impl Tagger for DigitTagger {
        fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
            sentence
                .tokens
                .iter()
                .map(|t| if t.chars().any(|c| c.is_ascii_digit()) { B } else { O })
                .collect()
        }

        fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
            self.predict(sentence)
                .into_iter()
                .map(|t| {
                    let mut d = [0.0; NUM_TAGS];
                    d[t.index()] = 1.0;
                    d
                })
                .collect()
        }
    }

    #[test]
    fn default_methods_cover_corpus_and_tag_count() {
        let tagger = DigitTagger;
        assert_eq!(tagger.tag_count(), NUM_TAGS);
        let corpus = Corpus::from_sentences(vec![
            Sentence::unlabelled("a", vec!["the".into(), "WT1".into()]),
            Sentence::unlabelled("b", vec!["no".into()]),
        ]);
        let preds = tagger.predict_corpus(&corpus);
        assert_eq!(preds, vec![vec![O, B], vec![O]]);
    }

    #[test]
    fn trait_objects_and_references_work() {
        let tagger = DigitTagger;
        let by_ref: &dyn Tagger = &tagger;
        let s = Sentence::unlabelled("s", vec!["IDH2".into()]);
        assert_eq!(by_ref.predict(&s), vec![B]);
        assert_eq!((&&tagger).posteriors(&s)[0][B.index()], 1.0);
    }
}
