//! The BC2GM annotation format.
//!
//! The BioCreative II gene mention corpus distributes annotations in a
//! pipe-separated format, one mention per line:
//!
//! ```text
//! P00015731A0362|14 33|lymphocyte adaptor protein
//! ```
//!
//! where the two offsets are the first and last character of the mention
//! counted over the sentence text *with space characters ignored* (both
//! inclusive). A separate `ALTGENE` file lists acceptable alternative
//! boundaries for some mentions; the evaluation script counts a
//! detection as a true positive if it exactly matches a primary mention
//! or any of its alternatives.

use crate::sentence::{Mention, Sentence};
use rustc_hash::FxHashMap;

/// One annotation line: a mention located by space-free character
/// offsets within a named sentence.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Bc2Annotation {
    /// Sentence identifier.
    pub sentence_id: String,
    /// Space-free offset of the first mention character (inclusive).
    pub first: usize,
    /// Space-free offset of the last mention character (inclusive).
    pub last: usize,
    /// Surface text of the mention (informational; offsets are
    /// authoritative).
    pub text: String,
}

impl Bc2Annotation {
    /// Build an annotation from a token-span mention in a sentence.
    pub fn from_mention(sentence: &Sentence, m: &Mention) -> Bc2Annotation {
        let (first, last) = sentence.mention_to_offsets(m);
        Bc2Annotation {
            sentence_id: sentence.id.clone(),
            first,
            last,
            text: sentence.mention_text(m),
        }
    }

    /// Serialize to the `id|first last|text` line format.
    pub fn to_line(&self) -> String {
        format!("{}|{} {}|{}", self.sentence_id, self.first, self.last, self.text)
    }

    /// Parse one `id|first last|text` line. Returns `None` on malformed
    /// input.
    pub fn parse_line(line: &str) -> Option<Bc2Annotation> {
        let mut parts = line.splitn(3, '|');
        let sentence_id = parts.next()?.to_string();
        let offsets = parts.next()?;
        let text = parts.next().unwrap_or("").to_string();
        let mut nums = offsets.split_whitespace();
        let first: usize = nums.next()?.parse().ok()?;
        let last: usize = nums.next()?.parse().ok()?;
        if last < first || sentence_id.is_empty() {
            return None;
        }
        Some(Bc2Annotation { sentence_id, first, last, text })
    }

    /// The `(first, last)` offset pair used as the match key by the
    /// evaluator.
    pub fn span(&self) -> (usize, usize) {
        (self.first, self.last)
    }
}

/// A full annotation set for a corpus: primary gold mentions plus
/// alternative acceptable boundaries, grouped per sentence.
#[derive(Clone, Debug, Default)]
pub struct AnnotationSet {
    /// Primary gold mentions per sentence id.
    pub primary: FxHashMap<String, Vec<Bc2Annotation>>,
    /// Alternative acceptable spans per sentence id. An alternative is
    /// associated with the primary mention(s) it overlaps.
    pub alternatives: FxHashMap<String, Vec<Bc2Annotation>>,
}

impl AnnotationSet {
    /// An empty annotation set.
    pub fn new() -> AnnotationSet {
        AnnotationSet::default()
    }

    /// Build the primary annotations from the gold tags of a labelled
    /// corpus.
    pub fn from_corpus(corpus: &crate::corpus::Corpus) -> AnnotationSet {
        let mut set = AnnotationSet::new();
        for sentence in &corpus.sentences {
            if let Some(mentions) = sentence.gold_mentions() {
                for m in &mentions {
                    set.add_primary(Bc2Annotation::from_mention(sentence, m));
                }
            }
        }
        set
    }

    /// Add a primary gold mention.
    pub fn add_primary(&mut self, ann: Bc2Annotation) {
        self.primary.entry(ann.sentence_id.clone()).or_default().push(ann);
    }

    /// Add an alternative acceptable span.
    pub fn add_alternative(&mut self, ann: Bc2Annotation) {
        self.alternatives.entry(ann.sentence_id.clone()).or_default().push(ann);
    }

    /// Total number of primary mentions (the denominator of recall).
    pub fn num_primary(&self) -> usize {
        self.primary.values().map(Vec::len).sum()
    }

    /// Parse a GENE file (primary mentions), one annotation per line.
    /// Malformed lines are skipped.
    pub fn parse_gene_file(&mut self, contents: &str) {
        for line in contents.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(ann) = Bc2Annotation::parse_line(line) {
                self.add_primary(ann);
            }
        }
    }

    /// Parse an ALTGENE file (alternative spans).
    pub fn parse_altgene_file(&mut self, contents: &str) {
        for line in contents.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(ann) = Bc2Annotation::parse_line(line) {
                self.add_alternative(ann);
            }
        }
    }

    /// Serialize the primary mentions to GENE-file format (sorted by
    /// sentence id, then offset, for reproducible output).
    pub fn gene_file(&self) -> String {
        let mut lines: Vec<&Bc2Annotation> = self.primary.values().flatten().collect();
        lines.sort_by(|a, b| {
            (&a.sentence_id, a.first, a.last).cmp(&(&b.sentence_id, b.first, b.last))
        });
        let mut out = String::new();
        for ann in lines {
            out.push_str(&ann.to_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::BioTag::*;

    #[test]
    fn line_round_trip() {
        let ann = Bc2Annotation {
            sentence_id: "P0001".to_string(),
            first: 14,
            last: 33,
            text: "lymphocyte adaptor protein".to_string(),
        };
        let line = ann.to_line();
        assert_eq!(line, "P0001|14 33|lymphocyte adaptor protein");
        assert_eq!(Bc2Annotation::parse_line(&line), Some(ann));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert_eq!(Bc2Annotation::parse_line(""), None);
        assert_eq!(Bc2Annotation::parse_line("id|x y|t"), None);
        assert_eq!(Bc2Annotation::parse_line("id|9 3|t"), None);
        assert_eq!(Bc2Annotation::parse_line("|1 2|t"), None);
    }

    #[test]
    fn text_may_contain_pipes() {
        let ann = Bc2Annotation::parse_line("id|0 3|a|b").unwrap();
        assert_eq!(ann.text, "a|b");
    }

    #[test]
    fn from_corpus_extracts_gold() {
        let s = Sentence::labelled(
            "s1",
            ["the", "WT1", "gene"].iter().map(|w| w.to_string()).collect(),
            vec![O, B, O],
        );
        let corpus = crate::corpus::Corpus::from_sentences(vec![s]);
        let set = AnnotationSet::from_corpus(&corpus);
        assert_eq!(set.num_primary(), 1);
        let ann = &set.primary["s1"][0];
        // "theWT1gene": WT1 at space-free offsets 3..=5
        assert_eq!(ann.span(), (3, 5));
        assert_eq!(ann.text, "WT1");
    }

    #[test]
    fn gene_file_round_trip() {
        let mut set = AnnotationSet::new();
        set.add_primary(Bc2Annotation::parse_line("s2|5 9|tumor").unwrap());
        set.add_primary(Bc2Annotation::parse_line("s1|0 2|LNK").unwrap());
        let file = set.gene_file();
        assert_eq!(file, "s1|0 2|LNK\ns2|5 9|tumor\n");
        let mut set2 = AnnotationSet::new();
        set2.parse_gene_file(&file);
        assert_eq!(set2.num_primary(), 2);
    }

    #[test]
    fn altgene_parsing() {
        let mut set = AnnotationSet::new();
        set.parse_altgene_file("s1|0 5|wilms\n\ns1|0 11|wilms tumor\n");
        assert_eq!(set.alternatives["s1"].len(), 2);
    }
}
