//! Sparse feature vectors.
//!
//! Vertex representations are sparse PMI vectors over a large feature
//! space. They are stored as id-sorted `(u32, f32)` pairs so that dot
//! products are a single linear merge with no hashing in the inner loop.

use graphner_text::{exactly_zero, exactly_zero_f32};

/// A sparse vector: strictly id-sorted `(feature id, value)` pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Build from unsorted `(id, value)` pairs; duplicate ids are summed
    /// and zero values dropped.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> SparseVec {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (id, v) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == id => last.1 += v,
                _ => entries.push((id, v)),
            }
        }
        entries.retain(|&(_, v)| !exactly_zero_f32(v));
        SparseVec { entries }
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// Scale all values in place.
    pub fn scale(&mut self, factor: f32) {
        for (_, v) in self.entries.iter_mut() {
            *v *= factor;
        }
    }

    /// Normalize to unit Euclidean norm (no-op on the zero vector).
    /// After normalization, [`SparseVec::dot`] *is* cosine similarity.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale((1.0 / n) as f32);
        }
    }

    /// Dot product by sorted merge.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.entries, &other.entries);
        let mut sum = 0.0f64;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += a[i].1 as f64 * b[j].1 as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Cosine similarity (0 when either vector is zero).
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let na = self.norm();
        let nb = other.norm();
        if exactly_zero(na) || exactly_zero(nb) {
            return 0.0;
        }
        self.dot(other) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let v = SparseVec::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (7, 0.0)]);
        assert_eq!(v.entries(), &[(2, 2.0), (5, 4.0)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_of_disjoint_is_zero() {
        let a = SparseVec::from_pairs(vec![(1, 1.0), (3, 2.0)]);
        let b = SparseVec::from_pairs(vec![(2, 5.0), (4, 5.0)]);
        assert_eq!(a.dot(&b), 0.0);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_identity_and_bounds() {
        let a = SparseVec::from_pairs(vec![(1, 3.0), (2, 4.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        let b = SparseVec::from_pairs(vec![(1, 4.0), (2, 3.0)]);
        let c = a.cosine(&b);
        assert!(c > 0.0 && c <= 1.0);
        assert!((c - 24.0 / 25.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        let z = SparseVec::default();
        let a = SparseVec::from_pairs(vec![(0, 1.0)]);
        assert_eq!(z.cosine(&a), 0.0);
        assert_eq!(z.norm(), 0.0);
        assert!(z.is_empty());
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut a = SparseVec::from_pairs(vec![(1, 3.0), (2, 4.0)]);
        a.normalize();
        assert!((a.norm() - 1.0).abs() < 1e-6);
        // dot of normalized vectors equals cosine
        let mut b = SparseVec::from_pairs(vec![(2, 1.0), (3, 1.0)]);
        let expected = a.cosine(&b);
        b.normalize();
        assert!((a.dot(&b) - expected).abs() < 1e-6);
    }
}
