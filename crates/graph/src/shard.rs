//! CSR partitioning for the sharded propagation engine.
//!
//! A [`Partition`] splits the vertex range of a [`KnnGraph`] into
//! contiguous shards and precomputes everything a block-synchronous
//! Jacobi sweep needs per shard: the per-vertex weight sums
//! (`Σ_k w_ik`, previously recomputed on every `propagate` call), the
//! per-shard edge and boundary-edge counts, and the shard dependency
//! lists (which other shards a shard reads across its boundary). The
//! shard layout is a pure function of the vertex count and the
//! requested [`ShardSize`] — never of the worker-pool width — so the
//! same graph partitions identically at any `GRAPHNER_THREADS`,
//! which is what lets the engine keep the byte-identical determinism
//! contract of DESIGN.md §10.

use crate::graph::KnnGraph;

/// Fewest vertices an automatically-sized shard may hold. Below this,
/// per-shard scheduling overhead dominates the sweep work.
pub const MIN_AUTO_SHARD_VERTICES: usize = 1024;

/// Most vertices an automatically-sized shard may hold: one shard's
/// beliefs (24 B/vertex) plus its CSR rows stay within a few MiB, so a
/// shard's working set fits in cache while the pool cycles through it.
pub const MAX_AUTO_SHARD_VERTICES: usize = 65536;

/// Shard-count ceiling automatic sizing aims for; matches the pool's
/// `chunk_ranges` fan-out so every worker can hold a whole shard.
const MAX_AUTO_SHARDS: usize = 64;

/// Shard-size selection for [`Partition::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardSize {
    /// Pick a size from the vertex count alone:
    /// `clamp(ceil(n / 64), 1024, 65536)`. Deliberately *not* a
    /// function of the thread count, so the partition — and with it
    /// every active-set scheduling decision — is identical at any
    /// `GRAPHNER_THREADS`.
    Auto,
    /// Exactly this many vertices per shard (the last shard may be
    /// smaller). Must be non-zero; the core config builder validates
    /// this at the API boundary, and [`ShardSize::resolve`] asserts it.
    Fixed(usize),
}

impl ShardSize {
    /// The concrete vertices-per-shard for a graph of `num_vertices`.
    pub fn resolve(self, num_vertices: usize) -> usize {
        match self {
            ShardSize::Auto => num_vertices
                .div_ceil(MAX_AUTO_SHARDS)
                .clamp(MIN_AUTO_SHARD_VERTICES, MAX_AUTO_SHARD_VERTICES),
            ShardSize::Fixed(size) => {
                assert!(size > 0, "shard size must be non-zero");
                size
            }
        }
    }
}

/// How the propagation engine schedules its sweeps; carried on
/// `GraphNerConfig` and defaulting to today's exact semantics
/// (auto-sized shards, no active-set skipping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepSchedule {
    /// Vertices per shard.
    pub shard_size: ShardSize,
    /// Skip shards whose residual fell below the deactivation
    /// threshold until a dependency shard moves again. `false` sweeps
    /// every shard every iteration and reproduces the unsharded
    /// output bit-for-bit — the default, and what the paper-protocol
    /// runs use.
    pub active_set: bool,
}

impl Default for SweepSchedule {
    fn default() -> SweepSchedule {
        SweepSchedule { shard_size: ShardSize::Auto, active_set: false }
    }
}

/// One contiguous vertex range of a [`Partition`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// First vertex (inclusive).
    pub start: u32,
    /// One past the last vertex.
    pub end: u32,
    /// Out-edges of the shard's vertices.
    pub edges: usize,
    /// Out-edges whose target lies in a *different* shard — the reads
    /// that couple this shard to its dependencies.
    pub boundary_edges: usize,
}

impl Shard {
    /// Number of vertices in the shard.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the shard holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Per-shard balance row for diagnostics (`graphstats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardBalance {
    /// Vertices in the shard.
    pub vertices: usize,
    /// Out-edges of the shard.
    pub edges: usize,
    /// Out-edges leaving the shard.
    pub boundary_edges: usize,
}

/// A shard view over one [`KnnGraph`]: contiguous vertex ranges plus
/// the precomputed per-vertex weight sums and boundary metadata the
/// sweep engine consumes. Immutable once built; the pipeline caches
/// one per (graph, resolved shard size).
#[derive(Clone, Debug)]
pub struct Partition {
    /// Resolved vertices-per-shard (every shard but the last has
    /// exactly this many).
    shard_vertices: usize,
    shards: Vec<Shard>,
    /// `Σ_k w_ik` per vertex — the propagation normalizer term,
    /// computed once here instead of once per `propagate` call.
    weight_sums: Vec<f64>,
    /// `deps[s]`: sorted ids of the shards (≠ `s`) whose vertices
    /// shard `s` reads during a sweep. Active-set scheduling
    /// reactivates `s` when any of these moved.
    deps: Vec<Vec<u32>>,
    /// Total cross-shard edges.
    boundary_edges: usize,
}

impl Partition {
    /// Partition `graph` into contiguous shards of `size`.
    pub fn new(graph: &KnnGraph, size: ShardSize) -> Partition {
        let n = graph.num_vertices();
        let shard_vertices = size.resolve(n);
        let num_shards = n.div_ceil(shard_vertices);
        let weight_sums: Vec<f64> = (0..n as u32).map(|v| graph.weight_sum(v)).collect();
        let mut shards = Vec::with_capacity(num_shards);
        let mut deps: Vec<Vec<u32>> = Vec::with_capacity(num_shards);
        let mut boundary_total = 0usize;
        // generation-stamped dedup of dependency shards: O(num_shards)
        // memory reused across shards, no hashing
        let mut stamp = vec![u32::MAX; num_shards];
        for s in 0..num_shards {
            let start = (s * shard_vertices) as u32;
            let end = n.min((s + 1) * shard_vertices) as u32;
            let mut boundary = 0usize;
            let mut shard_deps = Vec::new();
            for v in start..end {
                for (nb, _) in graph.neighbors(v) {
                    let t = nb as usize / shard_vertices;
                    if t != s {
                        boundary += 1;
                        if stamp[t] != s as u32 {
                            stamp[t] = s as u32;
                            shard_deps.push(t as u32);
                        }
                    }
                }
            }
            shard_deps.sort_unstable();
            deps.push(shard_deps);
            boundary_total += boundary;
            shards.push(Shard {
                start,
                end,
                edges: graph.out_edges_in_range(start, end),
                boundary_edges: boundary,
            });
        }
        Partition { shard_vertices, shards, weight_sums, deps, boundary_edges: boundary_total }
    }

    /// Resolved vertices-per-shard.
    pub fn shard_vertices(&self) -> usize {
        self.shard_vertices
    }

    /// Number of shards (zero only for an empty graph).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices covered (must equal the graph's).
    pub fn num_vertices(&self) -> usize {
        self.weight_sums.len()
    }

    /// The shards, in vertex order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Precomputed `Σ_k w_ik` per vertex.
    pub fn weight_sums(&self) -> &[f64] {
        &self.weight_sums
    }

    /// Shards that shard `s` reads across its boundary (sorted, no
    /// self-entry).
    pub fn deps(&self, s: usize) -> &[u32] {
        &self.deps[s]
    }

    /// Total cross-shard edges.
    pub fn boundary_edges(&self) -> usize {
        self.boundary_edges
    }

    /// Per-shard balance rows for diagnostics.
    pub fn balance(&self) -> Vec<ShardBalance> {
        self.shards
            .iter()
            .map(|s| ShardBalance {
                vertices: s.len(),
                edges: s.edges,
                boundary_edges: s.boundary_edges,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6 vertices: a 3-cycle (0,1,2), an edge pair (3,4), a loner (5).
    fn six() -> KnnGraph {
        KnnGraph::from_adjacency(
            vec![
                vec![(1, 0.5)],
                vec![(2, 0.4)],
                vec![(0, 0.3)],
                vec![(4, 0.9)],
                vec![(3, 0.8)],
                vec![],
            ],
            1,
        )
    }

    #[test]
    fn auto_size_depends_only_on_vertex_count() {
        assert_eq!(ShardSize::Auto.resolve(0), MIN_AUTO_SHARD_VERTICES);
        assert_eq!(ShardSize::Auto.resolve(100), MIN_AUTO_SHARD_VERTICES);
        assert_eq!(ShardSize::Auto.resolve(64 * MIN_AUTO_SHARD_VERTICES), MIN_AUTO_SHARD_VERTICES);
        // between the clamps: ceil(n / 64)
        assert_eq!(ShardSize::Auto.resolve(640_000), 10_000);
        // huge graphs cap the shard size, growing the shard count
        assert_eq!(ShardSize::Auto.resolve(100_000_000), MAX_AUTO_SHARD_VERTICES);
        assert_eq!(ShardSize::Fixed(7).resolve(1_000_000), 7);
    }

    #[test]
    fn partition_covers_all_vertices_contiguously() {
        let g = six();
        let p = Partition::new(&g, ShardSize::Fixed(4));
        assert_eq!(p.num_shards(), 2);
        assert_eq!(p.num_vertices(), 6);
        assert_eq!(p.shard_vertices(), 4);
        assert_eq!((p.shards()[0].start, p.shards()[0].end), (0, 4));
        assert_eq!((p.shards()[1].start, p.shards()[1].end), (4, 6));
        assert_eq!(p.shards()[1].len(), 2);
        assert!(!p.shards()[1].is_empty());
        let covered: usize = p.shards().iter().map(Shard::len).sum();
        assert_eq!(covered, g.num_vertices());
    }

    #[test]
    fn weight_sums_match_graph() {
        let g = six();
        let p = Partition::new(&g, ShardSize::Fixed(2));
        for v in 0..6u32 {
            assert!((p.weight_sums()[v as usize] - g.weight_sum(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn boundary_edges_and_deps_track_cross_shard_reads() {
        let g = six();
        // shards {0,1}, {2,3}, {4,5}
        let p = Partition::new(&g, ShardSize::Fixed(2));
        // shard 0: 0→1 internal, 1→2 crosses into shard 1
        assert_eq!(p.shards()[0].edges, 2);
        assert_eq!(p.shards()[0].boundary_edges, 1);
        assert_eq!(p.deps(0), &[1]);
        // shard 1: 2→0 crosses into shard 0, 3→4 crosses into shard 2
        assert_eq!(p.shards()[1].boundary_edges, 2);
        assert_eq!(p.deps(1), &[0, 2]);
        // shard 2: 4→3 crosses into shard 1; vertex 5 is isolated
        assert_eq!(p.shards()[2].boundary_edges, 1);
        assert_eq!(p.deps(2), &[1]);
        assert_eq!(p.boundary_edges(), 4);
        // one big shard: everything is internal
        let whole = Partition::new(&g, ShardSize::Fixed(100));
        assert_eq!(whole.num_shards(), 1);
        assert_eq!(whole.boundary_edges(), 0);
        assert_eq!(whole.deps(0), &[] as &[u32]);
    }

    #[test]
    fn balance_rows_mirror_shards() {
        let g = six();
        let p = Partition::new(&g, ShardSize::Fixed(2));
        let rows = p.balance();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ShardBalance { vertices: 2, edges: 2, boundary_edges: 1 });
        let edge_total: usize = rows.iter().map(|r| r.edges).sum();
        assert_eq!(edge_total, g.num_edges());
    }

    #[test]
    fn empty_graph_partitions_to_zero_shards() {
        let g = KnnGraph::from_adjacency(vec![], 1);
        let p = Partition::new(&g, ShardSize::Auto);
        assert_eq!(p.num_shards(), 0);
        assert_eq!(p.num_vertices(), 0);
        assert_eq!(p.boundary_edges(), 0);
        assert!(p.balance().is_empty());
    }

    #[test]
    fn default_schedule_reproduces_todays_semantics() {
        let s = SweepSchedule::default();
        assert_eq!(s.shard_size, ShardSize::Auto);
        assert!(!s.active_set);
    }
}
