//! The directed k-nearest-neighbour graph and its statistics.
//!
//! "The graph is usually kept sparse by keeping only k nearest neighbors
//! for each vertex, which means the final graph is a directed one."
//! Stored as CSR: each vertex's out-edges (its nearest neighbours) are a
//! contiguous run of `(neighbour, weight)` pairs.

/// Most directed edges a [`KnnGraph`] can hold: the CSR offsets are
/// `u32`, so the edge arrays must stay addressable by one.
pub const MAX_EDGES: usize = u32::MAX as usize;

/// A rejected [`KnnGraph::try_from_adjacency`]: the adjacency lists
/// describe a graph the `u32` CSR layout cannot represent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphBuildError {
    /// Total edge count exceeds [`MAX_EDGES`]; storing it would
    /// silently truncate the offsets.
    TooManyEdges {
        /// The offending total.
        edges: usize,
    },
    /// An adjacency list names a neighbour outside `0..vertices` —
    /// propagation would index past the belief arrays.
    NeighborOutOfRange {
        /// Vertex whose list holds the bad entry.
        vertex: usize,
        /// The out-of-range neighbour id.
        neighbor: u32,
        /// Number of vertices the lists describe.
        vertices: usize,
    },
}

impl std::fmt::Display for GraphBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphBuildError::TooManyEdges { edges } => write!(
                f,
                "adjacency lists hold {edges} edges, but u32 CSR offsets \
                 address at most {MAX_EDGES}"
            ),
            GraphBuildError::NeighborOutOfRange { vertex, neighbor, vertices } => write!(
                f,
                "vertex {vertex} lists neighbour {neighbor}, but the graph \
                 has only {vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for GraphBuildError {}

/// The edge-count precondition shared by both constructors, with the
/// limit injectable so tests can exercise the overflow path without
/// allocating [`MAX_EDGES`] real edges.
fn check_edge_count(total: usize, max_edges: usize) -> Result<(), GraphBuildError> {
    if total > max_edges {
        return Err(GraphBuildError::TooManyEdges { edges: total });
    }
    Ok(())
}

/// The neighbour-range precondition of the fallible constructor.
fn check_neighbor_range(adj: &[Vec<(u32, f32)>]) -> Result<(), GraphBuildError> {
    let n = adj.len();
    for (vertex, list) in adj.iter().enumerate() {
        for &(neighbor, _) in list {
            if neighbor as usize >= n {
                return Err(GraphBuildError::NeighborOutOfRange { vertex, neighbor, vertices: n });
            }
        }
    }
    Ok(())
}

/// Directed k-NN graph in CSR layout.
#[derive(Clone, Debug)]
pub struct KnnGraph {
    k: usize,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    weights: Vec<f32>,
}

impl KnnGraph {
    /// Build from per-vertex adjacency lists (already truncated to the
    /// k nearest). Panics if the total edge count overflows the `u32`
    /// CSR offsets ([`MAX_EDGES`]) — use
    /// [`KnnGraph::try_from_adjacency`] to handle that case as a value.
    pub fn from_adjacency(adj: Vec<Vec<(u32, f32)>>, k: usize) -> KnnGraph {
        let total: usize = adj.iter().map(Vec::len).sum();
        assert!(
            total <= MAX_EDGES,
            "graph has {total} edges, overflowing the u32 CSR offsets \
             (max {MAX_EDGES}); use try_from_adjacency to handle this"
        );
        Self::build(adj, k, total)
    }

    /// Fallible [`KnnGraph::from_adjacency`]: returns a typed
    /// [`GraphBuildError`] instead of panicking when the edge count
    /// exceeds what `u32` CSR offsets can address or a list names a
    /// neighbour outside the vertex range (the panicking constructor
    /// only catches that in debug builds).
    pub fn try_from_adjacency(
        adj: Vec<Vec<(u32, f32)>>,
        k: usize,
    ) -> Result<KnnGraph, GraphBuildError> {
        Self::try_from_adjacency_with_limit(adj, k, MAX_EDGES)
    }

    /// [`KnnGraph::try_from_adjacency`] with the edge budget as a
    /// parameter, so tests can drive the overflow path with small
    /// inputs instead of `u32::MAX` real edges.
    fn try_from_adjacency_with_limit(
        adj: Vec<Vec<(u32, f32)>>,
        k: usize,
        max_edges: usize,
    ) -> Result<KnnGraph, GraphBuildError> {
        let total: usize = adj.iter().map(Vec::len).sum();
        check_edge_count(total, max_edges)?;
        check_neighbor_range(&adj)?;
        Ok(Self::build(adj, k, total))
    }

    fn build(adj: Vec<Vec<(u32, f32)>>, k: usize, total: usize) -> KnnGraph {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0u32);
        for list in adj {
            for (nb, w) in list {
                debug_assert!((nb as usize) < n, "neighbour out of range");
                neighbors.push(nb);
                weights.push(w);
            }
            offsets.push(neighbors.len() as u32);
        }
        KnnGraph { k, offsets, neighbors, weights }
    }

    /// The `k` used at construction.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Out-neighbours of `v` with weights: `N(v)` in the propagation
    /// objective.
    // bound: v < num_vertices and offsets has num_vertices + 1 slots,
    // so `v + 1` is always a valid CSR offset index
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.neighbors[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Number of out-edges of the contiguous vertex range
    /// `[start, end)` — one offset subtraction, thanks to the CSR
    /// layout. Used by [`Partition`](crate::shard::Partition) to size
    /// shards by edge mass.
    pub fn out_edges_in_range(&self, start: u32, end: u32) -> usize {
        assert!(start <= end && (end as usize) < self.offsets.len(), "range out of bounds");
        (self.offsets[end as usize] - self.offsets[start as usize]) as usize
    }

    /// Sum of outgoing edge weights `Σ_k w_{v,k}` (the `μ Σ w` term in
    /// the propagation normalizer).
    pub fn weight_sum(&self, v: u32) -> f64 {
        self.neighbors(v).map(|(_, w)| w as f64).sum()
    }

    /// `|Influencees(v)|` for every vertex: the number of vertices that
    /// have `v` among their nearest neighbours (in-degree).
    pub fn influencees(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_vertices()];
        for &nb in &self.neighbors {
            counts[nb as usize] += 1;
        }
        counts
    }

    /// `Influence(v) = Σ_{k ∈ Influencees(v)} w_{k,v}` for every vertex
    /// (section III-D of the paper).
    pub fn influence(&self) -> Vec<f64> {
        let mut inf = vec![0.0f64; self.num_vertices()];
        for (&nb, &w) in self.neighbors.iter().zip(&self.weights) {
            inf[nb as usize] += w as f64;
        }
        inf
    }

    /// Number of weakly connected components (union-find over the
    /// undirected skeleton). The paper notes both corpus graphs are
    /// weakly connected, i.e. one component dominates.
    pub fn weakly_connected_components(&self) -> usize {
        let n = self.num_vertices();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for v in 0..n as u32 {
            for (nb, _) in self.neighbors(v) {
                let a = find(&mut parent, v);
                let b = find(&mut parent, nb);
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
        let mut roots = rustc_hash::FxHashSet::default();
        for v in 0..n as u32 {
            let r = find(&mut parent, v);
            roots.insert(r);
        }
        roots.len()
    }

    /// The undirected closure: every edge `u → v` gains the reverse
    /// edge `v → u` with the same weight, and duplicate directions of a
    /// mutual edge collapse to one entry per direction. Cosine
    /// similarity is symmetric, so the two directions of a mutual edge
    /// already carry equal weights and the closure is well defined.
    /// Out-degrees can exceed `k` afterwards (a hub vertex is "nearest"
    /// to many others); [`KnnGraph::k`] still reports the construction
    /// `k`. Adjacency lists come out sorted by neighbour id, so the
    /// result is deterministic regardless of this graph's edge order.
    pub fn symmetrized(&self) -> KnnGraph {
        let n = self.num_vertices();
        let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        for u in 0..n as u32 {
            for (v, w) in self.neighbors(u) {
                adj[u as usize].push((v, w));
                adj[v as usize].push((u, w));
            }
        }
        for list in adj.iter_mut() {
            list.sort_unstable_by_key(|&(nb, _)| nb);
            list.dedup_by_key(|&mut (nb, _)| nb);
        }
        KnnGraph::from_adjacency(adj, self.k)
    }

    /// Size of the largest weakly connected component.
    pub fn largest_component_size(&self) -> usize {
        let n = self.num_vertices();
        if n == 0 {
            return 0;
        }
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for v in 0..n as u32 {
            for (nb, _) in self.neighbors(v) {
                let a = find(&mut parent, v);
                let b = find(&mut parent, nb);
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
        let mut sizes = rustc_hash::FxHashMap::default();
        for v in 0..n as u32 {
            let r = find(&mut parent, v);
            *sizes.entry(r).or_insert(0usize) += 1;
        }
        sizes.values().copied().max().unwrap_or(0)
    }
}

/// A fixed-width histogram over non-negative values, for the Fig. 3
/// influence plots.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bin width.
    pub bin_width: f64,
    /// Count per bin; bin `i` covers `[i·w, (i+1)·w)`.
    pub counts: Vec<usize>,
}

/// Bucket `values` into `num_bins` equal-width bins spanning
/// `[0, max(values)]`.
pub fn histogram(values: &[f64], num_bins: usize) -> Histogram {
    assert!(num_bins > 0);
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    let bin_width = if max > 0.0 { max / num_bins as f64 } else { 1.0 };
    let mut counts = vec![0usize; num_bins];
    for &v in values {
        let mut b = (v / bin_width) as usize;
        if b >= num_bins {
            b = num_bins - 1;
        }
        counts[b] += 1;
    }
    Histogram { bin_width, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1, 1 -> 2, 2 -> 0, 3 -> 0 (a cycle plus a tail).
    fn cyclic() -> KnnGraph {
        KnnGraph::from_adjacency(
            vec![vec![(1, 0.5)], vec![(2, 0.4)], vec![(0, 0.3)], vec![(0, 0.9)]],
            1,
        )
    }

    #[test]
    fn csr_roundtrip() {
        let g = cyclic();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 0.5)]);
        assert_eq!(g.out_degree(3), 1);
        assert!((g.weight_sum(3) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn influence_and_influencees() {
        let g = cyclic();
        // vertex 0 is the neighbour of 2 and 3
        let inf_count = g.influencees();
        assert_eq!(inf_count, vec![2, 1, 1, 0]);
        let inf = g.influence();
        assert!((inf[0] - (0.3 + 0.9)).abs() < 1e-6);
        assert!((inf[3] - 0.0).abs() < 1e-9);
        // sum of influences equals sum of all edge weights
        let total: f64 = inf.iter().sum();
        assert!((total - (0.5 + 0.4 + 0.3 + 0.9)).abs() < 1e-6);
    }

    #[test]
    fn weak_connectivity() {
        let g = cyclic();
        assert_eq!(g.weakly_connected_components(), 1);
        assert_eq!(g.largest_component_size(), 4);
        let disconnected = KnnGraph::from_adjacency(
            vec![vec![(1, 1.0)], vec![(0, 1.0)], vec![(3, 1.0)], vec![(2, 1.0)], vec![]],
            1,
        );
        assert_eq!(disconnected.weakly_connected_components(), 3);
        assert_eq!(disconnected.largest_component_size(), 2);
    }

    #[test]
    fn histogram_buckets() {
        let h = histogram(&[0.0, 0.1, 0.5, 0.9, 1.0], 2);
        assert_eq!(h.counts, vec![2, 3]);
        let h = histogram(&[], 3);
        assert_eq!(h.counts, vec![0, 0, 0]);
    }

    #[test]
    fn symmetrized_adds_reverse_edges_once() {
        let g = cyclic().symmetrized();
        // 4 directed edges, none mutual → 8 after closure
        assert_eq!(g.num_edges(), 8);
        for v in 0..g.num_vertices() as u32 {
            for (nb, w) in g.neighbors(v) {
                let back = g.neighbors(nb).find(|&(b, _)| b == v);
                assert_eq!(back, Some((v, w)), "edge {v} → {nb} lacks its reverse");
            }
        }
        // already-symmetric graphs are a fixed point
        let h = g.symmetrized();
        assert_eq!(h.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(g.neighbors(v).collect::<Vec<_>>(), h.neighbors(v).collect::<Vec<_>>());
        }
        assert_eq!(g.k(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = KnnGraph::from_adjacency(vec![], 10);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.largest_component_size(), 0);
    }

    #[test]
    fn out_edges_in_range_matches_degree_sums() {
        let g = cyclic();
        assert_eq!(g.out_edges_in_range(0, 0), 0);
        assert_eq!(g.out_edges_in_range(0, 4), g.num_edges());
        for start in 0..4u32 {
            for end in start..4u32 {
                let expect: usize = (start..end).map(|v| g.out_degree(v)).sum();
                assert_eq!(g.out_edges_in_range(start, end), expect);
            }
        }
    }

    #[test]
    fn edge_count_guard_accepts_up_to_u32_max() {
        assert_eq!(check_edge_count(0, MAX_EDGES), Ok(()));
        assert_eq!(check_edge_count(MAX_EDGES, MAX_EDGES), Ok(()));
        assert_eq!(
            check_edge_count(MAX_EDGES + 1, MAX_EDGES),
            Err(GraphBuildError::TooManyEdges { edges: MAX_EDGES + 1 })
        );
    }

    #[test]
    fn try_from_adjacency_rejects_edge_overflow() {
        // 4 vertices, 4 edges, budget of 3 — the injected limit drives
        // the same rejection path `MAX_EDGES` would at u32::MAX edges.
        let adj = vec![vec![(1, 0.5)], vec![(2, 0.4)], vec![(0, 0.3)], vec![(0, 0.9)]];
        let err = KnnGraph::try_from_adjacency_with_limit(adj.clone(), 1, 3)
            .expect_err("4 edges over a 3-edge budget");
        assert_eq!(err, GraphBuildError::TooManyEdges { edges: 4 });
        // exactly at the budget is fine
        assert!(KnnGraph::try_from_adjacency_with_limit(adj, 1, 4).is_ok());
    }

    #[test]
    fn try_from_adjacency_rejects_out_of_range_neighbors() {
        // vertex 1 points at vertex 7 of a 3-vertex graph
        let adj = vec![vec![(1, 0.5)], vec![(7, 0.4)], vec![(0, 0.3)]];
        let err = KnnGraph::try_from_adjacency(adj, 1).expect_err("neighbour 7 of 3");
        assert_eq!(
            err,
            GraphBuildError::NeighborOutOfRange { vertex: 1, neighbor: 7, vertices: 3 }
        );
        let msg = err.to_string();
        assert!(msg.contains("vertex 1"), "{msg}");
        assert!(msg.contains("neighbour 7"), "{msg}");
        assert!(msg.contains("3 vertices"), "{msg}");
    }

    #[test]
    fn try_from_adjacency_overflow_check_runs_before_range_check() {
        // both preconditions violated: the cheap O(n) edge count wins
        let adj = vec![vec![(9, 0.5), (8, 0.4)], vec![(0, 0.3)]];
        let err = KnnGraph::try_from_adjacency_with_limit(adj, 2, 2)
            .expect_err("3 edges over a 2-edge budget");
        assert!(matches!(err, GraphBuildError::TooManyEdges { edges: 3 }));
    }

    #[test]
    fn try_from_adjacency_accepts_asymmetric_lists() {
        // directed kNN lists are legitimately asymmetric (0→1 without
        // 1→0); only symmetrized() closes them. Asymmetry must not be
        // confused with invalidity.
        let adj = vec![vec![(1, 0.5)], vec![], vec![(0, 0.2)]];
        let g = KnnGraph::try_from_adjacency(adj, 1).expect("asymmetric but valid");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(1), 0);
        let sym = g.symmetrized();
        assert_eq!(sym.out_degree(1), 1, "symmetrization adds the reverse edge");
    }

    #[test]
    fn try_from_adjacency_builds_identically() {
        let adj = vec![vec![(1, 0.5)], vec![(2, 0.4)], vec![(0, 0.3)], vec![(0, 0.9)]];
        let checked = KnnGraph::try_from_adjacency(adj, 1).expect("within edge budget");
        let plain = cyclic();
        assert_eq!(checked.num_vertices(), plain.num_vertices());
        assert_eq!(checked.num_edges(), plain.num_edges());
        for v in 0..4u32 {
            assert_eq!(
                checked.neighbors(v).collect::<Vec<_>>(),
                plain.neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn edge_overflow_error_names_the_count() {
        let err = GraphBuildError::TooManyEdges { edges: MAX_EDGES + 7 };
        let msg = err.to_string();
        assert!(msg.contains(&(MAX_EDGES + 7).to_string()), "{msg}");
        assert!(msg.contains(&MAX_EDGES.to_string()), "{msg}");
    }
}
