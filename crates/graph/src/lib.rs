//! The similarity graph substrate of GraphNER.
//!
//! "The central idea in GraphNER is to have a graph that tells us what
//! data points are similar, so that we can assign similar labels to
//! them." This crate implements that graph end to end:
//!
//! * [`sparse`] — sparse feature vectors with merge-based dot products;
//! * [`pmi`] — pointwise-mutual-information vertex representations over
//!   3-gram/feature co-occurrence counts;
//! * [`knn`] — exact cosine k-nearest-neighbour construction, both the
//!   paper's O(V²F) brute force and an inverted-index equivalent, rayon
//!   parallel;
//! * [`graph`] — the directed k-NN graph (CSR) with the §III-D
//!   statistics: influence, influencees, weak connectivity;
//! * [`shard`] — contiguous CSR partitions with precomputed weight
//!   sums and boundary metadata, the unit the sweep engine schedules;
//! * [`propagate`] — the iterative label-propagation update of
//!   equation (2), run shard-by-shard by the block-synchronous engine.

pub mod graph;
pub mod knn;
pub mod pmi;
pub mod propagate;
pub mod shard;
pub mod sparse;

pub use graph::{histogram, GraphBuildError, Histogram, KnnGraph, MAX_EDGES};
pub use knn::{knn_brute_force, knn_inverted_index};
pub use pmi::VertexFeatureCounts;
pub use propagate::{
    propagate, propagate_partitioned, propagate_reference, LabelDist, PropagationParams,
    PropagationReport, ACTIVE_SET_TOL, CONVERGENCE_TOL, UNIFORM,
};
pub use shard::{Partition, Shard, ShardBalance, ShardSize, SweepSchedule};
pub use sparse::SparseVec;
