//! Cosine k-nearest-neighbour graph construction.
//!
//! This is the paper's stated bottleneck — "computing the cosine
//! similarity between all pairs of vertices would have a time complexity
//! of O(V²F)" — and the reason GraphNER stays transductive. Two exact
//! builders are provided:
//!
//! * [`knn_brute_force`] — the literal O(V²·nnz) pairwise scan, kept as
//!   the reference implementation and the baseline in the `knn` bench;
//! * [`knn_inverted_index`] — the same result computed by scatter-gather
//!   over an inverted index (feature → postings), which skips all pairs
//!   with no shared feature. This is the default used by GraphNER.
//!
//! Both are data-parallel over query vertices with rayon. Input vectors
//! must be unit-normalized (as produced by
//! [`crate::pmi::VertexFeatureCounts::pmi_vectors`]) so dot products are
//! cosines. Only strictly positive similarities become edges, ties are
//! broken by vertex id, and self-edges are excluded — so both builders
//! return identical graphs.

use crate::graph::KnnGraph;
use crate::sparse::SparseVec;
use graphner_obs::obs_summary;
use graphner_text::exactly_zero_f32;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Select the `k` best `(id, score)` candidates, descending by score,
/// ties broken by ascending id.
// hot: per-vertex candidate selection, runs once per graph vertex
fn top_k(mut candidates: Vec<(u32, f32)>, k: usize) -> Vec<(u32, f32)> {
    let by_quality = |a: &(u32, f32), b: &(u32, f32)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    if candidates.len() > k {
        candidates.select_nth_unstable_by(k - 1, by_quality);
        candidates.truncate(k);
    }
    candidates.sort_unstable_by(by_quality);
    candidates
}

/// Record build metrics for one adjacency and log the build summary.
///
/// `candidate_pairs` counts the positive-similarity pairs each builder
/// scored; everything a `top_k` call then discarded is a pruned edge.
fn record_build_metrics(method: &str, adj: &[Vec<(u32, f32)>], candidate_pairs: u64) {
    let edges: u64 = adj.iter().map(|row| row.len() as u64).sum();
    graphner_obs::counter("knn.candidate_pairs").add(candidate_pairs);
    graphner_obs::counter("knn.pruned_edges").add(candidate_pairs - edges);
    let degree = graphner_obs::histogram("knn.out_degree");
    for row in adj {
        degree.record(row.len() as f64);
    }
    // trace attributes for whatever build span is open at the caller
    graphner_obs::attr("knn.vertices", adj.len());
    graphner_obs::attr("knn.edges", edges);
    graphner_obs::attr("knn.candidate_pairs", candidate_pairs);
    obs_summary!(
        "knn[{method}]: {} vertices, {edges} edges kept of {candidate_pairs} candidate pairs \
         ({} pruned)",
        adj.len(),
        candidate_pairs - edges
    );
}

/// Exact k-NN by pairwise cosine over all vertex pairs.
// hot: O(V^2) pairwise scoring, the graph-build bottleneck
pub fn knn_brute_force(vectors: &[SparseVec], k: usize) -> KnnGraph {
    assert!(k > 0);
    let n = vectors.len();
    let candidate_pairs = AtomicU64::new(0);
    // alloc: one adjacency row per vertex, the builder's output
    let adj: Vec<Vec<(u32, f32)>> = (0..n)
        .into_par_iter()
        .map(|i| {
            // alloc: per-vertex candidate buffer, consumed by top_k
            let mut cands = Vec::new();
            for j in 0..n {
                if i == j {
                    continue;
                }
                let sim = vectors[i].dot(&vectors[j]);
                if sim > 0.0 {
                    // alloc: amortized push into the candidate buffer
                    // cast: j < n <= u32::MAX vertices and cosine sims
                    // are in [0, 1] where f32 keeps ranking precision
                    cands.push((j as u32, sim as f32));
                }
            }
            candidate_pairs.fetch_add(cands.len() as u64, Ordering::Relaxed);
            top_k(cands, k)
        })
        .collect();
    record_build_metrics("brute_force", &adj, candidate_pairs.into_inner());
    KnnGraph::from_adjacency(adj, k)
}

/// Exact k-NN via an inverted index over features.
// hot: postings-driven scoring sweep, the default graph builder
pub fn knn_inverted_index(vectors: &[SparseVec], k: usize) -> KnnGraph {
    assert!(k > 0);
    let n = vectors.len();

    // Build postings: feature id -> [(vertex, value)].
    let num_features = vectors
        .iter()
        .flat_map(|v| v.entries().iter().map(|&(f, _)| f as usize + 1))
        .max()
        .unwrap_or(0);
    // alloc: one postings list per feature, built once per graph build
    let mut postings: Vec<Vec<(u32, f32)>> = vec![Vec::new(); num_features];
    for (i, vec) in vectors.iter().enumerate() {
        for &(f, val) in vec.entries() {
            // alloc: amortized push into the postings list
            // cast: i < n <= u32::MAX vertices by the vocab-size guard
            postings[f as usize].push((i as u32, val));
        }
    }

    let candidate_pairs = AtomicU64::new(0);
    // alloc: one adjacency row per vertex, the builder's output
    let adj: Vec<Vec<(u32, f32)>> = (0..n)
        .into_par_iter()
        .map_init(
            // alloc: per-worker scratch, reused across every vertex a
            // worker scores — not a per-vertex allocation
            || (vec![0.0f32; n], Vec::<u32>::new()),
            |(scores, touched), i| {
                for &(f, val) in vectors[i].entries() {
                    for &(j, w) in &postings[f as usize] {
                        // untouched-slot sentinel: must be an exact
                        // bit test, an epsilon would mistake small
                        // accumulated scores for untouched slots
                        if exactly_zero_f32(scores[j as usize]) {
                            // alloc: amortized push into reused scratch
                            touched.push(j);
                        }
                        scores[j as usize] += val * w;
                    }
                }
                // alloc: per-vertex candidate buffer, consumed by top_k
                let mut cands = Vec::with_capacity(touched.len());
                for &j in touched.iter() {
                    let s = scores[j as usize];
                    scores[j as usize] = 0.0;
                    if j as usize != i && s > 0.0 {
                        // alloc: within the with_capacity reservation
                        cands.push((j, s));
                    }
                }
                touched.clear();
                candidate_pairs.fetch_add(cands.len() as u64, Ordering::Relaxed);
                top_k(cands, k)
            },
        )
        .collect();
    record_build_metrics("inverted_index", &adj, candidate_pairs.into_inner());
    KnnGraph::from_adjacency(adj, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(pairs: Vec<(u32, f32)>) -> SparseVec {
        let mut v = SparseVec::from_pairs(pairs);
        v.normalize();
        v
    }

    fn random_vectors(n: usize, num_features: u32, nnz: usize, seed: u64) -> Vec<SparseVec> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let pairs: Vec<(u32, f32)> = (0..nnz)
                    .map(|_| {
                        let f = (next() % num_features as u64) as u32;
                        let v = ((next() % 1000) as f32 / 1000.0) + 0.001;
                        (f, v)
                    })
                    .collect();
                unit(pairs)
            })
            .collect()
    }

    fn edges(g: &KnnGraph) -> Vec<(u32, u32, f32)> {
        (0..g.num_vertices() as u32)
            .flat_map(|v| g.neighbors(v).map(move |(nb, w)| (v, nb, w)))
            .collect()
    }

    #[test]
    fn brute_force_simple_clusters() {
        // two tight clusters in feature space
        let vecs = vec![
            unit(vec![(0, 1.0), (1, 0.1)]),
            unit(vec![(0, 1.0), (1, 0.2)]),
            unit(vec![(5, 1.0), (6, 0.1)]),
            unit(vec![(5, 1.0), (6, 0.2)]),
        ];
        let g = knn_brute_force(&vecs, 1);
        let nb: Vec<u32> = (0..4).map(|v| g.neighbors(v).next().unwrap().0).collect();
        assert_eq!(nb, vec![1, 0, 3, 2]);
    }

    #[test]
    fn inverted_index_matches_brute_force() {
        for seed in 1..4u64 {
            let vecs = random_vectors(60, 40, 6, seed);
            let a = knn_brute_force(&vecs, 5);
            let b = knn_inverted_index(&vecs, 5);
            let (ea, eb) = (edges(&a), edges(&b));
            assert_eq!(ea.len(), eb.len(), "seed {seed}");
            for ((va, na, wa), (vb, nb, wb)) in ea.iter().zip(&eb) {
                assert_eq!((va, na), (vb, nb), "seed {seed}");
                assert!((wa - wb).abs() < 1e-5, "seed {seed}: {wa} vs {wb}");
            }
        }
    }

    #[test]
    fn out_degree_is_k_when_enough_neighbours() {
        let vecs = random_vectors(50, 10, 5, 9);
        let g = knn_inverted_index(&vecs, 10);
        for v in 0..50u32 {
            assert!(g.out_degree(v) <= 10);
            // dense feature overlap here: everyone has 10 positive sims
            assert_eq!(g.out_degree(v), 10);
        }
    }

    #[test]
    fn disjoint_vectors_get_no_edges() {
        let vecs = vec![unit(vec![(0, 1.0)]), unit(vec![(1, 1.0)]), unit(vec![(2, 1.0)])];
        for g in [knn_brute_force(&vecs, 3), knn_inverted_index(&vecs, 3)] {
            assert_eq!(g.num_edges(), 0);
        }
    }

    #[test]
    fn no_self_edges() {
        let vecs = random_vectors(20, 8, 4, 3);
        let g = knn_inverted_index(&vecs, 5);
        for v in 0..20u32 {
            assert!(g.neighbors(v).all(|(nb, _)| nb != v));
        }
    }

    #[test]
    fn neighbours_sorted_by_similarity() {
        let vecs = random_vectors(30, 12, 5, 17);
        let g = knn_inverted_index(&vecs, 6);
        for v in 0..30u32 {
            let ws: Vec<f32> = g.neighbors(v).map(|(_, w)| w).collect();
            for pair in ws.windows(2) {
                assert!(pair[0] >= pair[1]);
            }
        }
    }

    #[test]
    fn empty_vector_set() {
        let g = knn_inverted_index(&[], 5);
        assert_eq!(g.num_vertices(), 0);
    }
}
