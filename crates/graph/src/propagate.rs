//! Graph propagation — equation (2) of the paper.
//!
//! The propagation objective (equation 1) trades off three terms: stay
//! close to the reference distribution on labelled vertices, agree with
//! graph neighbours, and stay close to uniform absent evidence. Setting
//! its derivative to zero yields the fixed-point update
//!
//! ```text
//! X(i) ← [ δ(i∈Vₗ)·X_ref(i) + μ·Σ_k w_ik·X(k) + ν/Y ]
//!        / [ δ(i∈Vₗ) + ν + μ·Σ_k w_ik ]
//! ```
//!
//! iterated `#iterations` times. The update is Jacobi-style: every
//! vertex reads the previous iterate and writes a fresh buffer, which
//! makes each sweep embarrassingly parallel (rayon over vertices) and
//! the result independent of vertex order.

use crate::graph::KnnGraph;
use graphner_obs::{obs_debug, obs_summary};
use graphner_text::NUM_TAGS;
use rayon::prelude::*;

/// A label distribution over the BIO tags.
pub type LabelDist = [f64; NUM_TAGS];

/// The uniform distribution `U`.
pub const UNIFORM: LabelDist = [1.0 / NUM_TAGS as f64; NUM_TAGS];

/// Hyper-parameters of the propagation (Table IV of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropagationParams {
    /// Weight `μ` of the neighbour-agreement term.
    pub mu: f64,
    /// Weight `ν` of the uniform prior term.
    pub nu: f64,
    /// Number of update sweeps (`#iterations`).
    pub iterations: usize,
    /// Self-anchor weight for *unlabelled* vertices, expressed as a
    /// fraction of their neighbour mass `μ·Σ_k w_ik`. Equation (2) gives
    /// unlabelled vertices no anchor of their own, so a few sweeps
    /// diffuse away the information their initial distributions carried
    /// (the averaged CRF posteriors of Algorithm 1, line 6). A non-zero
    /// anchor adds `κ‖X(u) − X⁰(u)‖²` to the objective for unlabelled
    /// `u` with `κ = self_anchor·μ·Σw` — the injection term familiar
    /// from label-propagation variants such as modified adsorption.
    /// `0.0` reproduces equation (2) exactly.
    pub self_anchor: f64,
}

impl Default for PropagationParams {
    fn default() -> PropagationParams {
        // The cross-validated values the paper settles on for BC2GM;
        // pure equation (2) (no self-anchor).
        PropagationParams { mu: 1e-6, nu: 1e-6, iterations: 3, self_anchor: 0.0 }
    }
}

/// One Jacobi sweep of equation (2): reads `x`, writes `out`.
///
/// `x_ref[i]` carries the reference distribution for labelled vertices
/// (`Some` exactly when `i ∈ Vₗ`). `weight_sums[i]` must be
/// `Σ_k w_ik` over the out-neighbours of `i`.
fn sweep(
    graph: &KnnGraph,
    x: &[LabelDist],
    x0: &[LabelDist],
    x_ref: &[Option<LabelDist>],
    weight_sums: &[f64],
    params: &PropagationParams,
    out: &mut [LabelDist],
) {
    let nu_term = params.nu / NUM_TAGS as f64;
    out.par_iter_mut().enumerate().for_each(|(i, dst)| {
        let mut gamma = [nu_term; NUM_TAGS];
        let mut k_i = params.nu + params.mu * weight_sums[i];
        if let Some(r) = &x_ref[i] {
            k_i += 1.0;
            for (g, ry) in gamma.iter_mut().zip(r) {
                *g += ry;
            }
        } else if params.self_anchor > 0.0 {
            let kappa = params.self_anchor * params.mu * weight_sums[i];
            k_i += kappa;
            for (g, iy) in gamma.iter_mut().zip(&x0[i]) {
                *g += kappa * iy;
            }
        }
        for (nb, w) in graph.neighbors(i as u32) {
            let xw = &x[nb as usize];
            let w = params.mu * w as f64;
            for (g, xy) in gamma.iter_mut().zip(xw) {
                *g += w * xy;
            }
        }
        for (d, g) in dst.iter_mut().zip(gamma) {
            *d = g / k_i;
        }
    });
}

/// Residual below which a sweep is considered converged: the largest
/// per-entry change is noise relative to the label probabilities the
/// decoder consumes.
pub const CONVERGENCE_TOL: f64 = 1e-6;

/// Debug-build check that every row of a belief table lies on the
/// probability simplex. Equation (2) renormalizes analytically — the
/// numerator terms sum to exactly the denominator when the inputs are
/// distributions — so each sweep must preserve the simplex to rounding
/// noise; drifting beyond `1e-9` means the update itself is wrong, not
/// the arithmetic. This crate sits below `graphner-core`, so it cannot
/// use `graphner_core::check`; the guard is local but follows the same
/// contract: a no-op in release builds.
#[inline]
fn debug_assert_simplex(ctx: &str, x: &[LabelDist]) {
    if !cfg!(debug_assertions) {
        return;
    }
    for (i, row) in x.iter().enumerate() {
        let mut sum = 0.0;
        for &p in row {
            debug_assert!(p.is_finite(), "{ctx}: row {i} has non-finite entry {p}");
            debug_assert!(p >= -1e-12, "{ctx}: row {i} has negative entry {p}");
            sum += p;
        }
        debug_assert!((sum - 1.0).abs() <= 1e-9, "{ctx}: row {i} sums to {sum}");
    }
}

/// Convergence diagnostics of one [`propagate`] call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropagationReport {
    /// Sweeps actually executed (always `params.iterations`; the count
    /// is fixed by the paper's protocol, never cut short).
    pub iterations: usize,
    /// Maximum per-entry change of the final sweep.
    pub final_residual: f64,
    /// Whether `final_residual` is at or below [`CONVERGENCE_TOL`].
    /// With the paper's 3 sweeps this is typically `false` — the
    /// protocol runs a fixed budget, not to convergence.
    pub converged: bool,
}

/// Propagate label distributions over the graph (Algorithm 1, line 7).
///
/// `x` holds the initial distributions (averaged CRF posteriors for
/// vertices seen at test time); it is updated in place. Returns a
/// [`PropagationReport`] with the per-call convergence diagnostics.
pub fn propagate(
    graph: &KnnGraph,
    x: &mut Vec<LabelDist>,
    x_ref: &[Option<LabelDist>],
    params: &PropagationParams,
) -> PropagationReport {
    let n = graph.num_vertices();
    assert_eq!(x.len(), n, "distribution count must match vertex count");
    assert_eq!(x_ref.len(), n, "reference count must match vertex count");
    if n == 0 || params.iterations == 0 {
        // an empty graph is trivially at its fixed point; a zero-sweep
        // budget on a non-empty graph proves nothing
        return PropagationReport { iterations: 0, final_residual: 0.0, converged: n == 0 };
    }
    debug_assert_simplex("propagate: initial beliefs", x);
    let weight_sums: Vec<f64> = (0..n as u32).map(|v| graph.weight_sum(v)).collect();
    let x0: Vec<LabelDist> = x.clone();
    let mut buf = vec![[0.0; NUM_TAGS]; n];
    let mut residual = 0.0;
    for iter in 0..params.iterations {
        sweep(graph, x, &x0, x_ref, &weight_sums, params, &mut buf);
        debug_assert_simplex("propagate: sweep output", &buf);
        residual = x
            .par_iter()
            .zip(buf.par_iter())
            .map(|(a, b)| a.iter().zip(b).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max))
            .reduce(|| 0.0, f64::max);
        std::mem::swap(x, &mut buf);
        obs_debug!("propagate: sweep {}/{} residual {residual:.3e}", iter + 1, params.iterations);
    }
    let report = PropagationReport {
        iterations: params.iterations,
        final_residual: residual,
        converged: residual <= CONVERGENCE_TOL,
    };
    graphner_obs::counter("propagate.sweeps").add(report.iterations as u64);
    graphner_obs::histogram("propagate.final_residual").record(report.final_residual);
    // trace attributes for whatever stage span is open at the caller
    graphner_obs::attr("propagate.vertices", n as u64);
    graphner_obs::attr("propagate.sweeps", report.iterations as u64);
    graphner_obs::attr("propagate.residual", report.final_residual);
    obs_summary!(
        "propagate: {} vertices, {} sweeps, final residual {:.3e}, converged={}",
        n,
        report.iterations,
        report.final_residual,
        report.converged
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnnGraph;

    fn is_distribution(d: &LabelDist) -> bool {
        d.iter().all(|&p| p >= -1e-12) && (d.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }

    /// A 4-cycle where each vertex points to the next.
    fn ring(w: f32) -> KnnGraph {
        KnnGraph::from_adjacency((0..4).map(|i| vec![(((i + 1) % 4) as u32, w)]).collect(), 1)
    }

    #[test]
    fn update_preserves_simplex() {
        let g = ring(0.7);
        let mut x = vec![
            [0.5, 0.3, 0.2],
            [0.1, 0.1, 0.8],
            [0.0, 0.0, 1.0],
            [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ];
        let x_ref = vec![Some([0.9, 0.05, 0.05]), None, None, None];
        propagate(
            &g,
            &mut x,
            &x_ref,
            &PropagationParams { mu: 0.5, nu: 0.1, iterations: 5, self_anchor: 0.0 },
        );
        for d in &x {
            assert!(is_distribution(d), "{d:?}");
        }
    }

    #[test]
    fn isolated_labelled_vertex_blends_ref_and_uniform() {
        // no edges: X = (X_ref + ν/Y) / (1 + ν)
        let g = KnnGraph::from_adjacency(vec![vec![]], 1);
        let r = [0.8, 0.1, 0.1];
        let nu = 0.3;
        let mut x = vec![[1.0 / 3.0; 3]];
        propagate(
            &g,
            &mut x,
            &[Some(r)],
            &PropagationParams { mu: 1.0, nu, iterations: 1, self_anchor: 0.0 },
        );
        for y in 0..3 {
            let expect = (r[y] + nu / 3.0) / (1.0 + nu);
            assert!((x[0][y] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_unlabelled_vertex_goes_uniform() {
        let g = KnnGraph::from_adjacency(vec![vec![]], 1);
        let mut x = vec![[0.9, 0.05, 0.05]];
        propagate(
            &g,
            &mut x,
            &[None],
            &PropagationParams { mu: 1.0, nu: 0.2, iterations: 1, self_anchor: 0.0 },
        );
        for p in x[0] {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_flow_to_neighbours() {
        // vertex 1 (unlabelled, initially uniform) points at vertex 0
        // whose reference is strongly B; propagation must pull vertex 1
        // towards B. This is the "tumor - 1" mechanism of Figure 1.
        let g = KnnGraph::from_adjacency(vec![vec![], vec![(0, 1.0)]], 1);
        let x_ref = vec![Some([1.0, 0.0, 0.0]), None];
        let mut x = vec![[1.0, 0.0, 0.0], [1.0 / 3.0; 3]];
        propagate(
            &g,
            &mut x,
            &x_ref,
            &PropagationParams { mu: 2.0, nu: 0.01, iterations: 10, self_anchor: 0.0 },
        );
        assert!(x[1][0] > 0.9, "B mass after propagation: {}", x[1][0]);
        assert!(is_distribution(&x[1]));
    }

    #[test]
    fn fixed_point_satisfies_update_equation() {
        let g = ring(0.6);
        let x_ref = vec![Some([0.7, 0.2, 0.1]), None, Some([0.1, 0.8, 0.1]), None];
        let params = PropagationParams { mu: 0.8, nu: 0.05, iterations: 500, self_anchor: 0.0 };
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        let report = propagate(&g, &mut x, &x_ref, &params);
        assert!(report.final_residual < 1e-12, "not converged: residual {}", report.final_residual);
        assert!(report.converged);
        assert_eq!(report.iterations, 500);
        // verify eq. 2 holds at the fixed point
        for i in 0..4usize {
            let w_sum = g.weight_sum(i as u32);
            let labelled = x_ref[i].is_some();
            let k_i = if labelled { 1.0 } else { 0.0 } + params.nu + params.mu * w_sum;
            for y in 0..3 {
                let mut gamma = params.nu / 3.0;
                if let Some(r) = &x_ref[i] {
                    gamma += r[y];
                }
                for (nb, w) in g.neighbors(i as u32) {
                    gamma += params.mu * w as f64 * x[nb as usize][y];
                }
                assert!((x[i][y] - gamma / k_i).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = ring(0.5);
        let orig = vec![[0.2, 0.3, 0.5]; 4];
        let mut x = orig.clone();
        propagate(
            &g,
            &mut x,
            &[None, None, None, None],
            &PropagationParams { mu: 1.0, nu: 1.0, iterations: 0, self_anchor: 0.0 },
        );
        assert_eq!(x, orig);
    }

    #[test]
    fn tiny_mu_nu_barely_move_labelled_vertices() {
        // with the paper's μ = ν = 1e-6, labelled vertices stay glued to
        // their reference distributions
        let g = ring(1.0);
        let r = [0.6, 0.3, 0.1];
        let x_ref = vec![Some(r); 4];
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        propagate(&g, &mut x, &x_ref, &PropagationParams::default());
        for d in &x {
            for y in 0..3 {
                assert!((d[y] - r[y]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn report_reflects_budget_and_convergence_state() {
        let g = ring(0.9);
        let x_ref = vec![Some([0.9, 0.05, 0.05]), None, None, None];
        // the paper's fixed 3-sweep budget does not reach the tolerance
        // on this ring with strong coupling…
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        let short = propagate(
            &g,
            &mut x,
            &x_ref,
            &PropagationParams { mu: 0.5, nu: 0.1, iterations: 3, self_anchor: 0.0 },
        );
        assert_eq!(short.iterations, 3);
        assert!(!short.converged, "unexpectedly converged: {short:?}");
        // …while a generous budget does
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        let long = propagate(
            &g,
            &mut x,
            &x_ref,
            &PropagationParams { mu: 0.5, nu: 0.1, iterations: 200, self_anchor: 0.0 },
        );
        assert!(long.converged, "did not converge: {long:?}");
        assert!(long.final_residual <= CONVERGENCE_TOL);
        // empty graph: trivially converged, zero sweeps of work
        let empty = KnnGraph::from_adjacency(vec![], 1);
        let report = propagate(&empty, &mut vec![], &[], &PropagationParams::default());
        assert!(report.converged);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn residual_decreases_across_iterations() {
        let g = ring(0.9);
        let x_ref = vec![Some([0.9, 0.05, 0.05]), None, None, None];
        let mut residuals = Vec::new();
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        for _ in 0..6 {
            let report = propagate(
                &g,
                &mut x,
                &x_ref,
                &PropagationParams { mu: 0.5, nu: 0.1, iterations: 1, self_anchor: 0.0 },
            );
            residuals.push(report.final_residual);
        }
        for w in residuals.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "residuals not monotone: {residuals:?}");
        }
    }
}
