//! Graph propagation — equation (2) of the paper.
//!
//! The propagation objective (equation 1) trades off three terms: stay
//! close to the reference distribution on labelled vertices, agree with
//! graph neighbours, and stay close to uniform absent evidence. Setting
//! its derivative to zero yields the fixed-point update
//!
//! ```text
//! X(i) ← [ δ(i∈Vₗ)·X_ref(i) + μ·Σ_k w_ik·X(k) + ν/Y ]
//!        / [ δ(i∈Vₗ) + ν + μ·Σ_k w_ik ]
//! ```
//!
//! iterated `#iterations` times. The update is Jacobi-style: every
//! vertex reads the previous iterate and writes a fresh buffer, which
//! makes each sweep embarrassingly parallel and the result independent
//! of vertex order.
//!
//! Sweeps run through the sharded engine
//! ([`propagate_partitioned`]): the vertex range is cut into the
//! contiguous shards of a [`Partition`], each shard updates its block
//! *and* folds its own max residual in the same pass (no separate
//! residual sweep), and the per-shard residuals merge in fixed shard
//! order. Because every vertex still reads the previous iterate and
//! `f64::max` is exact, the result is byte-identical to the unsharded
//! update at any shard count and any `GRAPHNER_THREADS` — the
//! unsharded implementation survives as [`propagate_reference`], the
//! oracle the test suite compares against. Active-set scheduling
//! (skip shards that stopped moving) is opt-in via
//! [`SweepSchedule`](crate::shard::SweepSchedule) and changes results
//! only within [`ACTIVE_SET_TOL`]-sized slack of the fixed point.

use crate::graph::KnnGraph;
use crate::shard::{Partition, ShardSize};
use graphner_obs::{obs_debug, obs_summary};
use graphner_text::NUM_TAGS;
use rayon::prelude::*;

/// A label distribution over the BIO tags.
pub type LabelDist = [f64; NUM_TAGS];

/// The uniform distribution `U`.
pub const UNIFORM: LabelDist = [1.0 / NUM_TAGS as f64; NUM_TAGS];

/// Hyper-parameters of the propagation (Table IV of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropagationParams {
    /// Weight `μ` of the neighbour-agreement term.
    pub mu: f64,
    /// Weight `ν` of the uniform prior term.
    pub nu: f64,
    /// Number of update sweeps (`#iterations`).
    pub iterations: usize,
    /// Self-anchor weight for *unlabelled* vertices, expressed as a
    /// fraction of their neighbour mass `μ·Σ_k w_ik`. Equation (2) gives
    /// unlabelled vertices no anchor of their own, so a few sweeps
    /// diffuse away the information their initial distributions carried
    /// (the averaged CRF posteriors of Algorithm 1, line 6). A non-zero
    /// anchor adds `κ‖X(u) − X⁰(u)‖²` to the objective for unlabelled
    /// `u` with `κ = self_anchor·μ·Σw` — the injection term familiar
    /// from label-propagation variants such as modified adsorption.
    /// `0.0` reproduces equation (2) exactly.
    pub self_anchor: f64,
}

impl Default for PropagationParams {
    fn default() -> PropagationParams {
        // The cross-validated values the paper settles on for BC2GM;
        // pure equation (2) (no self-anchor).
        PropagationParams { mu: 1e-6, nu: 1e-6, iterations: 3, self_anchor: 0.0 }
    }
}

/// The equation (2) update for one vertex: reads the previous iterate
/// `x` (and the initial beliefs `x0` for the self-anchor term),
/// returns the fresh distribution. Shared by the sharded engine and
/// the unsharded reference so both compute identical bits.
#[inline]
#[allow(clippy::too_many_arguments)]
// hot: per-vertex propagation kernel, runs O(V * sweeps) times
fn jacobi_update(
    graph: &KnnGraph,
    i: usize,
    x: &[LabelDist],
    x0: &[LabelDist],
    x_ref: &[Option<LabelDist>],
    weight_sums: &[f64],
    params: &PropagationParams,
    nu_term: f64,
) -> LabelDist {
    let mut gamma = [nu_term; NUM_TAGS];
    let mut k_i = params.nu + params.mu * weight_sums[i];
    if let Some(r) = &x_ref[i] {
        k_i += 1.0;
        for (g, ry) in gamma.iter_mut().zip(r) {
            *g += ry;
        }
    } else if params.self_anchor > 0.0 {
        let kappa = params.self_anchor * params.mu * weight_sums[i];
        k_i += kappa;
        for (g, iy) in gamma.iter_mut().zip(&x0[i]) {
            *g += kappa * iy;
        }
    }
    // cast: vertex ids fit u32 — the graph builder caps V at u32::MAX
    for (nb, w) in graph.neighbors(i as u32) {
        let xw = &x[nb as usize];
        let w = params.mu * w as f64;
        for (g, xy) in gamma.iter_mut().zip(xw) {
            *g += w * xy;
        }
    }
    let mut dst = [0.0; NUM_TAGS];
    for (d, g) in dst.iter_mut().zip(gamma) {
        *d = g / k_i;
    }
    dst
}

/// One block of a Jacobi sweep: update the vertices `[start, end)`
/// into `out` and fold the block's max per-entry change in the same
/// pass. The fused residual is what lets the engine drop the separate
/// full-array residual sweep — `f64::max` is exact and
/// order-independent, so merging per-shard maxima in shard order gives
/// the same bits as one global reduction.
#[allow(clippy::too_many_arguments)]
// hot: per-shard sweep loop, the propagation engine's inner body
fn sweep_shard(
    graph: &KnnGraph,
    start: u32,
    end: u32,
    x: &[LabelDist],
    x0: &[LabelDist],
    x_ref: &[Option<LabelDist>],
    weight_sums: &[f64],
    params: &PropagationParams,
    out: &mut [LabelDist],
) -> f64 {
    let nu_term = params.nu / NUM_TAGS as f64;
    let mut residual = 0.0f64;
    for (dst, i) in out.iter_mut().zip(start as usize..end as usize) {
        let d = jacobi_update(graph, i, x, x0, x_ref, weight_sums, params, nu_term);
        for (new, old) in d.iter().zip(&x[i]) {
            residual = residual.max((new - old).abs());
        }
        *dst = d;
    }
    residual
}

/// Residual below which a sweep is considered converged: the largest
/// per-entry change is noise relative to the label probabilities the
/// decoder consumes.
pub const CONVERGENCE_TOL: f64 = 1e-6;

/// Deactivation threshold of the active-set schedule: a shard whose
/// sweep residual falls at or below this is skipped until one of its
/// dependency shards moves again. Two orders of magnitude below
/// [`CONVERGENCE_TOL`], so even with the worst-case geometric
/// accumulation of skipped updates (`threshold / (1 − ρ)` for a
/// contraction factor ρ ≤ 0.99) the drift from the true fixed point
/// stays within [`CONVERGENCE_TOL`].
pub const ACTIVE_SET_TOL: f64 = CONVERGENCE_TOL / 100.0;

/// Debug-build check that every row of a belief table lies on the
/// probability simplex. Equation (2) renormalizes analytically — the
/// numerator terms sum to exactly the denominator when the inputs are
/// distributions — so each sweep must preserve the simplex to rounding
/// noise; drifting beyond `1e-9` means the update itself is wrong, not
/// the arithmetic. This crate sits below `graphner-core`, so it cannot
/// use `graphner_core::check`; the guard is local but follows the same
/// contract: a no-op in release builds.
#[inline]
fn debug_assert_simplex(ctx: &str, x: &[LabelDist]) {
    if !cfg!(debug_assertions) {
        return;
    }
    for (i, row) in x.iter().enumerate() {
        let mut sum = 0.0;
        for &p in row {
            debug_assert!(p.is_finite(), "{ctx}: row {i} has non-finite entry {p}");
            debug_assert!(p >= -1e-12, "{ctx}: row {i} has negative entry {p}");
            sum += p;
        }
        debug_assert!((sum - 1.0).abs() <= 1e-9, "{ctx}: row {i} sums to {sum}");
    }
}

/// Convergence diagnostics of one [`propagate`] /
/// [`propagate_partitioned`] call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropagationReport {
    /// Sweeps actually executed (always `params.iterations`; the count
    /// is fixed by the paper's protocol, never cut short).
    pub iterations: usize,
    /// Maximum per-entry change of the final sweep. Under active-set
    /// scheduling, skipped shards contribute their last computed
    /// residual (an upper bound on their current motion).
    pub final_residual: f64,
    /// Whether `final_residual` is at or below [`CONVERGENCE_TOL`].
    /// With the paper's 3 sweeps this is typically `false` — the
    /// protocol runs a fixed budget, not to convergence.
    pub converged: bool,
    /// Shards in the partition the engine swept over (0 for an empty
    /// graph).
    pub shards: usize,
    /// Shard sweeps skipped by active-set scheduling, summed over all
    /// iterations; always 0 with `active_set` off.
    pub shards_skipped: usize,
    /// Cross-shard edges in the partition.
    pub boundary_edges: usize,
}

/// Propagate label distributions over the graph (Algorithm 1, line 7).
///
/// `x` holds the initial distributions (averaged CRF posteriors for
/// vertices seen at test time); it is updated in place. Returns a
/// [`PropagationReport`] with the per-call convergence diagnostics.
///
/// Convenience wrapper over [`propagate_partitioned`]: builds an
/// auto-sized [`Partition`] and runs with active-set scheduling off,
/// i.e. the paper-protocol semantics. Callers that propagate over the
/// same graph repeatedly (ablation sweeps) should build the partition
/// once and call the engine directly.
pub fn propagate(
    graph: &KnnGraph,
    x: &mut Vec<LabelDist>,
    x_ref: &[Option<LabelDist>],
    params: &PropagationParams,
) -> PropagationReport {
    let partition = Partition::new(graph, ShardSize::Auto);
    propagate_partitioned(graph, &partition, x, x_ref, params, false)
}

/// The sharded propagation engine: block-synchronous Jacobi sweeps,
/// shard by shard through the worker pool.
///
/// Every sweep splits the write buffer into the partition's contiguous
/// shard blocks and fans them out; each shard computes its update and
/// its own max residual in one pass over its CSR rows, and the
/// per-shard residuals merge in fixed shard order. All shards read the
/// same immutable previous iterate, so the schedule the pool picks
/// cannot affect any bit of the output (DESIGN.md §12).
///
/// With `active_set` set, a shard whose residual fell at or below
/// [`ACTIVE_SET_TOL`] is skipped — its block is copied forward — until
/// one of its dependency shards (those it reads across a boundary)
/// moves again. Skipping is decided purely from per-shard residuals of
/// previous sweeps, which are themselves deterministic, so active-set
/// runs are also byte-identical at any thread count; they differ from
/// non-active-set runs by at most the [`ACTIVE_SET_TOL`]-bounded drift
/// documented on the constant. `active_set = false` reproduces the
/// unsharded [`propagate_reference`] output exactly.
pub fn propagate_partitioned(
    graph: &KnnGraph,
    partition: &Partition,
    x: &mut Vec<LabelDist>,
    x_ref: &[Option<LabelDist>],
    params: &PropagationParams,
    active_set: bool,
) -> PropagationReport {
    let n = graph.num_vertices();
    assert_eq!(x.len(), n, "distribution count must match vertex count");
    assert_eq!(x_ref.len(), n, "reference count must match vertex count");
    assert_eq!(partition.num_vertices(), n, "partition must be built from this graph");
    let num_shards = partition.num_shards();
    if n == 0 || params.iterations == 0 {
        // an empty graph is trivially at its fixed point; a zero-sweep
        // budget on a non-empty graph proves nothing
        return PropagationReport {
            iterations: 0,
            final_residual: 0.0,
            converged: n == 0,
            shards: num_shards,
            shards_skipped: 0,
            boundary_edges: partition.boundary_edges(),
        };
    }
    debug_assert_simplex("propagate: initial beliefs", x);
    let weight_sums = partition.weight_sums();
    let x0: Vec<LabelDist> = x.clone();
    let mut buf = vec![[0.0; NUM_TAGS]; n];
    // per-shard schedule state: residual of the last *computed* sweep
    // (∞ before the first, so every shard starts active) and whether
    // the shard moved beyond the deactivation threshold last sweep
    let mut last_residual = vec![f64::INFINITY; num_shards];
    let mut moved = vec![true; num_shards];
    let mut compute = vec![true; num_shards];
    let mut skipped_total = 0usize;
    let mut residual = 0.0;
    for iter in 0..params.iterations {
        if active_set && iter > 0 {
            for s in 0..num_shards {
                compute[s] = last_residual[s] > ACTIVE_SET_TOL
                    || partition.deps(s).iter().any(|&d| moved[d as usize]);
            }
        }
        // split the write buffer into the shard blocks; each job owns
        // exactly one block while every job reads the shared previous
        // iterate
        let mut blocks: Vec<(usize, &mut [LabelDist])> = Vec::with_capacity(num_shards);
        let mut rest: &mut [LabelDist] = &mut buf;
        for (s, shard) in partition.shards().iter().enumerate() {
            let (block, tail) = rest.split_at_mut(shard.len());
            blocks.push((s, block));
            rest = tail;
        }
        let x_read: &[LabelDist] = x;
        let shard_residuals: Vec<f64> = {
            let compute = &compute;
            let last_residual = &last_residual;
            blocks
                .into_par_iter()
                .map(|(s, block)| {
                    let shard = partition.shards()[s];
                    if compute[s] {
                        sweep_shard(
                            graph,
                            shard.start,
                            shard.end,
                            x_read,
                            &x0,
                            x_ref,
                            weight_sums,
                            params,
                            block,
                        )
                    } else {
                        // frozen shard: carry the block forward; its
                        // stale residual is an upper bound on the
                        // motion it would have had
                        block.copy_from_slice(&x_read[shard.start as usize..shard.end as usize]);
                        last_residual[s]
                    }
                })
                .collect()
        };
        // merge in fixed shard order (f64::max is exact, so this
        // equals a global reduction bit-for-bit)
        residual = shard_residuals.iter().copied().fold(0.0f64, f64::max);
        for s in 0..num_shards {
            if compute[s] {
                last_residual[s] = shard_residuals[s];
                moved[s] = shard_residuals[s] > ACTIVE_SET_TOL;
            } else {
                skipped_total += 1;
                moved[s] = false;
            }
        }
        std::mem::swap(x, &mut buf);
        debug_assert_simplex("propagate: sweep output", x);
        obs_debug!(
            "propagate: sweep {}/{} residual {residual:.3e} ({} of {num_shards} shards active)",
            iter + 1,
            params.iterations,
            compute.iter().filter(|&&c| c).count()
        );
    }
    let report = PropagationReport {
        iterations: params.iterations,
        final_residual: residual,
        converged: residual <= CONVERGENCE_TOL,
        shards: num_shards,
        shards_skipped: skipped_total,
        boundary_edges: partition.boundary_edges(),
    };
    graphner_obs::counter("propagate.sweeps").add(report.iterations as u64);
    graphner_obs::counter("propagate.shards_skipped").add(report.shards_skipped as u64);
    graphner_obs::histogram("propagate.final_residual").record(report.final_residual);
    // trace attributes for whatever stage span is open at the caller
    graphner_obs::attr("propagate.vertices", n as u64);
    graphner_obs::attr("propagate.sweeps", report.iterations as u64);
    graphner_obs::attr("propagate.residual", report.final_residual);
    graphner_obs::attr("propagate.shards", report.shards as u64);
    graphner_obs::attr("propagate.shards_skipped", report.shards_skipped as u64);
    graphner_obs::attr("propagate.boundary_edges", report.boundary_edges as u64);
    obs_summary!(
        "propagate: {} vertices in {} shards ({} boundary edges), {} sweeps \
         ({} shard-sweeps skipped), final residual {:.3e}, converged={}",
        n,
        report.shards,
        report.boundary_edges,
        report.iterations,
        report.shards_skipped,
        report.final_residual,
        report.converged
    );
    report
}

/// The pre-shard-engine implementation, kept as the parity oracle: one
/// monolithic parallel sweep over all vertices followed by a separate
/// parallel residual reduction. [`propagate_partitioned`] with
/// `active_set = false` must match its output byte-for-byte at any
/// shard size — tests/properties.rs property-checks exactly that.
/// Emits no metrics; it exists for tests and A/B benchmarks only.
pub fn propagate_reference(
    graph: &KnnGraph,
    x: &mut Vec<LabelDist>,
    x_ref: &[Option<LabelDist>],
    params: &PropagationParams,
) -> PropagationReport {
    let n = graph.num_vertices();
    assert_eq!(x.len(), n, "distribution count must match vertex count");
    assert_eq!(x_ref.len(), n, "reference count must match vertex count");
    if n == 0 || params.iterations == 0 {
        return PropagationReport {
            iterations: 0,
            final_residual: 0.0,
            converged: n == 0,
            shards: 0,
            shards_skipped: 0,
            boundary_edges: 0,
        };
    }
    debug_assert_simplex("propagate_reference: initial beliefs", x);
    let weight_sums: Vec<f64> = (0..n as u32).map(|v| graph.weight_sum(v)).collect();
    let x0: Vec<LabelDist> = x.clone();
    let mut buf = vec![[0.0; NUM_TAGS]; n];
    let nu_term = params.nu / NUM_TAGS as f64;
    let mut residual = 0.0;
    for _ in 0..params.iterations {
        {
            let x_read: &[LabelDist] = x;
            buf.par_iter_mut().enumerate().for_each(|(i, dst)| {
                *dst = jacobi_update(graph, i, x_read, &x0, x_ref, &weight_sums, params, nu_term);
            });
        }
        residual = x
            .par_iter()
            .zip(buf.par_iter())
            .map(|(a, b)| a.iter().zip(b).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max))
            // det: f64::max is exact and associative-commutative over
            // non-NaN inputs, so the merge order cannot change the bits.
            .reduce(|| 0.0, f64::max);
        std::mem::swap(x, &mut buf);
    }
    PropagationReport {
        iterations: params.iterations,
        final_residual: residual,
        converged: residual <= CONVERGENCE_TOL,
        shards: 0,
        shards_skipped: 0,
        boundary_edges: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnnGraph;

    fn is_distribution(d: &LabelDist) -> bool {
        d.iter().all(|&p| p >= -1e-12) && (d.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }

    /// A 4-cycle where each vertex points to the next.
    fn ring(w: f32) -> KnnGraph {
        KnnGraph::from_adjacency((0..4).map(|i| vec![(((i + 1) % 4) as u32, w)]).collect(), 1)
    }

    #[test]
    fn update_preserves_simplex() {
        let g = ring(0.7);
        let mut x = vec![
            [0.5, 0.3, 0.2],
            [0.1, 0.1, 0.8],
            [0.0, 0.0, 1.0],
            [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ];
        let x_ref = vec![Some([0.9, 0.05, 0.05]), None, None, None];
        propagate(
            &g,
            &mut x,
            &x_ref,
            &PropagationParams { mu: 0.5, nu: 0.1, iterations: 5, self_anchor: 0.0 },
        );
        for d in &x {
            assert!(is_distribution(d), "{d:?}");
        }
    }

    #[test]
    fn isolated_labelled_vertex_blends_ref_and_uniform() {
        // no edges: X = (X_ref + ν/Y) / (1 + ν)
        let g = KnnGraph::from_adjacency(vec![vec![]], 1);
        let r = [0.8, 0.1, 0.1];
        let nu = 0.3;
        let mut x = vec![[1.0 / 3.0; 3]];
        propagate(
            &g,
            &mut x,
            &[Some(r)],
            &PropagationParams { mu: 1.0, nu, iterations: 1, self_anchor: 0.0 },
        );
        for y in 0..3 {
            let expect = (r[y] + nu / 3.0) / (1.0 + nu);
            assert!((x[0][y] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_unlabelled_vertex_goes_uniform() {
        let g = KnnGraph::from_adjacency(vec![vec![]], 1);
        let mut x = vec![[0.9, 0.05, 0.05]];
        propagate(
            &g,
            &mut x,
            &[None],
            &PropagationParams { mu: 1.0, nu: 0.2, iterations: 1, self_anchor: 0.0 },
        );
        for p in x[0] {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_flow_to_neighbours() {
        // vertex 1 (unlabelled, initially uniform) points at vertex 0
        // whose reference is strongly B; propagation must pull vertex 1
        // towards B. This is the "tumor - 1" mechanism of Figure 1.
        let g = KnnGraph::from_adjacency(vec![vec![], vec![(0, 1.0)]], 1);
        let x_ref = vec![Some([1.0, 0.0, 0.0]), None];
        let mut x = vec![[1.0, 0.0, 0.0], [1.0 / 3.0; 3]];
        propagate(
            &g,
            &mut x,
            &x_ref,
            &PropagationParams { mu: 2.0, nu: 0.01, iterations: 10, self_anchor: 0.0 },
        );
        assert!(x[1][0] > 0.9, "B mass after propagation: {}", x[1][0]);
        assert!(is_distribution(&x[1]));
    }

    #[test]
    fn fixed_point_satisfies_update_equation() {
        let g = ring(0.6);
        let x_ref = vec![Some([0.7, 0.2, 0.1]), None, Some([0.1, 0.8, 0.1]), None];
        let params = PropagationParams { mu: 0.8, nu: 0.05, iterations: 500, self_anchor: 0.0 };
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        let report = propagate(&g, &mut x, &x_ref, &params);
        assert!(report.final_residual < 1e-12, "not converged: residual {}", report.final_residual);
        assert!(report.converged);
        assert_eq!(report.iterations, 500);
        // verify eq. 2 holds at the fixed point
        for i in 0..4usize {
            let w_sum = g.weight_sum(i as u32);
            let labelled = x_ref[i].is_some();
            let k_i = if labelled { 1.0 } else { 0.0 } + params.nu + params.mu * w_sum;
            for y in 0..3 {
                let mut gamma = params.nu / 3.0;
                if let Some(r) = &x_ref[i] {
                    gamma += r[y];
                }
                for (nb, w) in g.neighbors(i as u32) {
                    gamma += params.mu * w as f64 * x[nb as usize][y];
                }
                assert!((x[i][y] - gamma / k_i).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = ring(0.5);
        let orig = vec![[0.2, 0.3, 0.5]; 4];
        let mut x = orig.clone();
        propagate(
            &g,
            &mut x,
            &[None, None, None, None],
            &PropagationParams { mu: 1.0, nu: 1.0, iterations: 0, self_anchor: 0.0 },
        );
        assert_eq!(x, orig);
    }

    #[test]
    fn tiny_mu_nu_barely_move_labelled_vertices() {
        // with the paper's μ = ν = 1e-6, labelled vertices stay glued to
        // their reference distributions
        let g = ring(1.0);
        let r = [0.6, 0.3, 0.1];
        let x_ref = vec![Some(r); 4];
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        propagate(&g, &mut x, &x_ref, &PropagationParams::default());
        for d in &x {
            for y in 0..3 {
                assert!((d[y] - r[y]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn report_reflects_budget_and_convergence_state() {
        let g = ring(0.9);
        let x_ref = vec![Some([0.9, 0.05, 0.05]), None, None, None];
        // the paper's fixed 3-sweep budget does not reach the tolerance
        // on this ring with strong coupling…
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        let short = propagate(
            &g,
            &mut x,
            &x_ref,
            &PropagationParams { mu: 0.5, nu: 0.1, iterations: 3, self_anchor: 0.0 },
        );
        assert_eq!(short.iterations, 3);
        assert!(!short.converged, "unexpectedly converged: {short:?}");
        // …while a generous budget does
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        let long = propagate(
            &g,
            &mut x,
            &x_ref,
            &PropagationParams { mu: 0.5, nu: 0.1, iterations: 200, self_anchor: 0.0 },
        );
        assert!(long.converged, "did not converge: {long:?}");
        assert!(long.final_residual <= CONVERGENCE_TOL);
        // empty graph: trivially converged, zero sweeps of work
        let empty = KnnGraph::from_adjacency(vec![], 1);
        let report = propagate(&empty, &mut vec![], &[], &PropagationParams::default());
        assert!(report.converged);
        assert_eq!(report.iterations, 0);
        assert_eq!(report.shards, 0);
        assert_eq!(report.boundary_edges, 0);
    }

    #[test]
    fn residual_decreases_across_iterations() {
        let g = ring(0.9);
        let x_ref = vec![Some([0.9, 0.05, 0.05]), None, None, None];
        let mut residuals = Vec::new();
        let mut x = vec![[1.0 / 3.0; 3]; 4];
        for _ in 0..6 {
            let report = propagate(
                &g,
                &mut x,
                &x_ref,
                &PropagationParams { mu: 0.5, nu: 0.1, iterations: 1, self_anchor: 0.0 },
            );
            residuals.push(report.final_residual);
        }
        for w in residuals.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "residuals not monotone: {residuals:?}");
        }
    }

    // ---- sharded engine ------------------------------------------------

    /// A denser fixture: 12 vertices, two edges each, mixed labelling.
    fn twelve() -> (KnnGraph, Vec<LabelDist>, Vec<Option<LabelDist>>) {
        let n = 12usize;
        let adj: Vec<Vec<(u32, f32)>> = (0..n)
            .map(|i| {
                vec![
                    (((i + 1) % n) as u32, 0.4 + 0.04 * i as f32),
                    (((i + 5) % n) as u32, 0.2 + 0.02 * i as f32),
                ]
            })
            .collect();
        let g = KnnGraph::from_adjacency(adj, 2);
        let x: Vec<LabelDist> = (0..n)
            .map(|i| {
                let a = 0.2 + 0.05 * (i % 7) as f64;
                let b = 0.3 + 0.03 * (i % 5) as f64;
                let z = a + b + 0.25;
                [a / z, b / z, 0.25 / z]
            })
            .collect();
        let x_ref: Vec<Option<LabelDist>> =
            (0..n).map(|i| (i % 3 == 0).then_some([0.7, 0.2, 0.1])).collect();
        (g, x, x_ref)
    }

    #[test]
    fn sharded_engine_matches_reference_bitwise_at_every_shard_size() {
        let (g, x0, x_ref) = twelve();
        for params in [
            PropagationParams { mu: 0.6, nu: 0.05, iterations: 4, self_anchor: 0.0 },
            PropagationParams { mu: 0.6, nu: 0.05, iterations: 4, self_anchor: 0.5 },
        ] {
            let mut expect = x0.clone();
            let expect_report = propagate_reference(&g, &mut expect, &x_ref, &params);
            for shard_size in [1usize, 2, 3, 5, 7, 12, 100] {
                let partition = Partition::new(&g, ShardSize::Fixed(shard_size));
                let mut x = x0.clone();
                let report = propagate_partitioned(&g, &partition, &mut x, &x_ref, &params, false);
                for (row, expect_row) in x.iter().zip(&expect) {
                    for (p, q) in row.iter().zip(expect_row) {
                        assert_eq!(
                            p.to_bits(),
                            q.to_bits(),
                            "shard_size={shard_size} diverged from reference"
                        );
                    }
                }
                assert_eq!(report.final_residual.to_bits(), expect_report.final_residual.to_bits());
                assert_eq!(report.converged, expect_report.converged);
                assert_eq!(report.shards, g.num_vertices().div_ceil(shard_size));
                assert_eq!(report.shards_skipped, 0);
            }
        }
    }

    #[test]
    fn propagate_wrapper_is_the_engine_with_auto_partition() {
        let (g, x0, x_ref) = twelve();
        let params = PropagationParams { mu: 0.3, nu: 0.1, iterations: 3, self_anchor: 0.0 };
        let mut a = x0.clone();
        let report_a = propagate(&g, &mut a, &x_ref, &params);
        let partition = Partition::new(&g, ShardSize::Auto);
        let mut b = x0.clone();
        let report_b = propagate_partitioned(&g, &partition, &mut b, &x_ref, &params, false);
        assert_eq!(a, b);
        assert_eq!(report_a, report_b);
    }

    #[test]
    fn active_set_skips_converged_shards_and_stays_near_fixed_point() {
        // two disconnected halves: vertices 0–3 are isolated (fixed
        // point after one sweep → their shards deactivate and, having
        // no dependencies, never reactivate), vertices 4–7 form a
        // strongly coupled ring that keeps moving for many sweeps
        let adj: Vec<Vec<(u32, f32)>> = (0..8)
            .map(|i| if i < 4 { vec![] } else { vec![((i - 4 + 1) % 4 + 4, 0.95)] })
            .collect();
        let g = KnnGraph::from_adjacency(adj, 1);
        let x_ref: Vec<Option<LabelDist>> =
            (0..8).map(|i| (i == 0 || i == 4).then_some([0.85, 0.1, 0.05])).collect();
        let x0: Vec<LabelDist> = vec![[1.0 / 3.0; 3]; 8];
        let params = PropagationParams { mu: 0.5, nu: 0.1, iterations: 60, self_anchor: 0.0 };
        let partition = Partition::new(&g, ShardSize::Fixed(2));
        let mut active = x0.clone();
        let report = propagate_partitioned(&g, &partition, &mut active, &x_ref, &params, true);
        assert!(report.shards_skipped > 0, "no shard was ever skipped: {report:?}");
        let mut expect = x0.clone();
        propagate_reference(&g, &mut expect, &x_ref, &params);
        let mut max_diff = 0.0f64;
        for (row, expect_row) in active.iter().zip(&expect) {
            for (p, q) in row.iter().zip(expect_row) {
                max_diff = max_diff.max((p - q).abs());
            }
        }
        assert!(
            max_diff <= CONVERGENCE_TOL,
            "active-set drift {max_diff:.3e} exceeds CONVERGENCE_TOL"
        );
    }

    #[test]
    fn active_set_off_never_skips() {
        let (g, x0, x_ref) = twelve();
        let params = PropagationParams { mu: 0.4, nu: 0.05, iterations: 50, self_anchor: 0.0 };
        let partition = Partition::new(&g, ShardSize::Fixed(3));
        let mut x = x0.clone();
        let report = propagate_partitioned(&g, &partition, &mut x, &x_ref, &params, false);
        assert_eq!(report.shards_skipped, 0);
        assert_eq!(report.shards, 4);
        assert_eq!(report.boundary_edges, partition.boundary_edges());
    }
}
