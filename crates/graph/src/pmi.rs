//! Pointwise-mutual-information vertex representations.
//!
//! "A vertex is represented as a vector of pointwise mutual information
//! between the 3-gram associated with it and possible feature instances
//! such as surrounding words." Counts of `(vertex, feature instance)`
//! co-occurrences are accumulated while scanning the corpus, then turned
//! into positive-PMI vectors (negative PMI clipped to zero, the standard
//! sparsity-preserving choice) and unit-normalized so the k-NN stage can
//! use plain dot products as cosine similarity.

use crate::sparse::SparseVec;
use rustc_hash::FxHashMap;

/// Accumulator of vertex–feature co-occurrence counts.
#[derive(Clone, Debug, Default)]
pub struct VertexFeatureCounts {
    counts: FxHashMap<(u32, u32), f64>,
    vertex_total: FxHashMap<u32, f64>,
    feature_total: FxHashMap<u32, f64>,
    grand_total: f64,
}

impl VertexFeatureCounts {
    /// An empty accumulator.
    pub fn new() -> VertexFeatureCounts {
        VertexFeatureCounts::default()
    }

    /// Record one co-occurrence of `feature` with `vertex`, with count
    /// weight `w` (normally 1.0 per occurrence).
    pub fn add(&mut self, vertex: u32, feature: u32, w: f64) {
        debug_assert!(w > 0.0);
        *self.counts.entry((vertex, feature)).or_insert(0.0) += w;
        *self.vertex_total.entry(vertex).or_insert(0.0) += w;
        *self.feature_total.entry(feature).or_insert(0.0) += w;
        self.grand_total += w;
    }

    /// Total accumulated weight.
    pub fn total(&self) -> f64 {
        self.grand_total
    }

    /// Number of distinct `(vertex, feature)` pairs seen.
    pub fn num_pairs(&self) -> usize {
        self.counts.len()
    }

    /// Raw PMI of one pair:
    /// `ln( c(v,f)·N / (c(v)·c(f)) )`, or `None` if the pair was never
    /// seen.
    pub fn pmi(&self, vertex: u32, feature: u32) -> Option<f64> {
        let c_vf = *self.counts.get(&(vertex, feature))?;
        let c_v = self.vertex_total[&vertex];
        let c_f = self.feature_total[&feature];
        Some((c_vf * self.grand_total / (c_v * c_f)).ln())
    }

    /// Build one positive-PMI vector per vertex, unit-normalized.
    ///
    /// `num_vertices` sizes the output; vertices with no counts (or only
    /// negative-PMI features) get empty vectors.
    pub fn pmi_vectors(&self, num_vertices: usize) -> Vec<SparseVec> {
        let mut pairs: Vec<Vec<(u32, f32)>> = vec![Vec::new(); num_vertices];
        for (&(v, f), &c_vf) in &self.counts {
            let c_v = self.vertex_total[&v];
            let c_f = self.feature_total[&f];
            let pmi = (c_vf * self.grand_total / (c_v * c_f)).ln();
            if pmi > 0.0 {
                pairs[v as usize].push((f, pmi as f32));
            }
        }
        pairs
            .into_iter()
            .map(|p| {
                let mut v = SparseVec::from_pairs(p);
                v.normalize();
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmi_of_independent_pair_is_zero() {
        // two vertices, two features, perfectly uniform joint: PMI = 0
        let mut c = VertexFeatureCounts::new();
        for v in 0..2 {
            for f in 0..2 {
                c.add(v, f, 1.0);
            }
        }
        for v in 0..2 {
            for f in 0..2 {
                assert!(c.pmi(v, f).unwrap().abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pmi_positive_for_associated_pair() {
        let mut c = VertexFeatureCounts::new();
        c.add(0, 0, 10.0); // vertex 0 strongly associated with feature 0
        c.add(0, 1, 1.0);
        c.add(1, 1, 10.0);
        c.add(1, 0, 1.0);
        assert!(c.pmi(0, 0).unwrap() > 0.0);
        assert!(c.pmi(0, 1).unwrap() < 0.0);
        assert_eq!(c.pmi(0, 2), None);
    }

    #[test]
    fn vectors_are_unit_norm_and_clipped() {
        let mut c = VertexFeatureCounts::new();
        c.add(0, 0, 10.0);
        c.add(0, 1, 1.0);
        c.add(1, 1, 10.0);
        c.add(1, 0, 1.0);
        let vecs = c.pmi_vectors(3);
        assert_eq!(vecs.len(), 3);
        // negative-PMI entries clipped: each vertex keeps only its
        // associated feature
        assert_eq!(vecs[0].nnz(), 1);
        assert_eq!(vecs[0].entries()[0].0, 0);
        assert!((vecs[0].norm() - 1.0).abs() < 1e-6);
        // vertex 2 never seen -> empty vector
        assert!(vecs[2].is_empty());
    }

    #[test]
    fn similar_vertices_have_high_cosine() {
        let mut c = VertexFeatureCounts::new();
        // vertices 0 and 1 share features 10, 11; vertex 2 uses 20, 21
        for f in [10, 11] {
            c.add(0, f, 5.0);
            c.add(1, f, 5.0);
        }
        for f in [20, 21] {
            c.add(2, f, 5.0);
        }
        // a shared background feature so totals interact
        for v in 0..3 {
            c.add(v, 99, 1.0);
        }
        let vecs = c.pmi_vectors(3);
        let sim01 = vecs[0].dot(&vecs[1]);
        let sim02 = vecs[0].dot(&vecs[2]);
        assert!(sim01 > 0.9, "sim01 = {sim01}");
        assert!(sim01 > sim02);
    }

    #[test]
    fn totals_track_additions() {
        let mut c = VertexFeatureCounts::new();
        c.add(0, 0, 2.0);
        c.add(0, 1, 3.0);
        assert_eq!(c.total(), 5.0);
        assert_eq!(c.num_pairs(), 2);
    }
}
