//! Criterion bench: cosine k-NN graph construction — the paper's
//! stated bottleneck (O(V²F) brute force) against the inverted-index
//! equivalent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphner_graph::{knn_brute_force, knn_inverted_index, SparseVec};

fn random_vectors(n: usize, num_features: u32, nnz: usize, seed: u64) -> Vec<SparseVec> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let pairs: Vec<(u32, f32)> = (0..nnz)
                .map(|_| {
                    (
                        (next() % num_features as u64) as u32,
                        ((next() % 1000) as f32 / 1000.0) + 0.001,
                    )
                })
                .collect();
            let mut v = SparseVec::from_pairs(pairs);
            v.normalize();
            v
        })
        .collect()
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let vectors = random_vectors(n, (n * 4) as u32, 30, 3);
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| knn_brute_force(&vectors, 10))
        });
        group.bench_with_input(BenchmarkId::new("inverted_index", n), &n, |b, _| {
            b.iter(|| knn_inverted_index(&vectors, 10))
        });
    }
    let vectors = random_vectors(8_000, 32_000, 30, 5);
    group.bench_with_input(BenchmarkId::new("inverted_index", 8_000), &8_000, |b, _| {
        b.iter(|| knn_inverted_index(&vectors, 10))
    });
    group.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);
