//! Criterion bench: PMI vertex-vector construction and the full graph
//! build from a synthetic corpus — the feature-extraction half of the
//! paper's O(Nf + V²FK) graph-construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphner_graph::{knn_inverted_index, VertexFeatureCounts};

fn synthetic_counts(
    num_vertices: u32,
    feats_per_vertex: usize,
    num_features: u32,
    seed: u64,
) -> VertexFeatureCounts {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut counts = VertexFeatureCounts::new();
    for v in 0..num_vertices {
        for _ in 0..feats_per_vertex {
            counts.add(v, (next() % num_features as u64) as u32, 1.0 + (next() % 3) as f64);
        }
    }
    counts
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for &n in &[2_000u32, 10_000] {
        let counts = synthetic_counts(n, 40, n * 4, 3);
        group.bench_with_input(BenchmarkId::new("pmi_vectors", n), &n, |b, &n| {
            b.iter(|| counts.pmi_vectors(n as usize))
        });
        let vectors = counts.pmi_vectors(n as usize);
        group.bench_with_input(BenchmarkId::new("knn_from_pmi", n), &n, |b, _| {
            b.iter(|| knn_inverted_index(&vectors, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_build);
criterion_main!(benches);
