//! Criterion bench: chain-CRF primitives — objective+gradient
//! evaluation (the unit of L-BFGS training), posterior extraction, and
//! Viterbi decoding, at order 1 and order 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphner_crf::{ChainCrf, Order, SentenceFeatures};
use graphner_text::BioTag;

fn synthetic_data(
    n_sentences: usize,
    len: usize,
    num_obs: usize,
    feats_per_tok: usize,
    seed: u64,
) -> Vec<SentenceFeatures> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n_sentences)
        .map(|_| {
            let obs = (0..len)
                .map(|_| (0..feats_per_tok).map(|_| (next() % num_obs as u64) as u32).collect())
                .collect();
            let gold = (0..len).map(|_| BioTag::from_index((next() % 3) as usize)).collect();
            SentenceFeatures { obs, gold: Some(gold) }
        })
        .collect()
}

fn bench_crf(c: &mut Criterion) {
    let num_obs = 5_000;
    let data = synthetic_data(500, 20, num_obs, 30, 11);
    let mut group = c.benchmark_group("crf");
    group.sample_size(10);
    for order in [Order::One, Order::Two] {
        let mut crf = ChainCrf::new(order, num_obs);
        let params: Vec<f64> =
            (0..crf.num_params()).map(|i| ((i % 17) as f64 - 8.0) * 0.01).collect();
        crf.set_params(params);
        let label = format!("{order:?}");
        let mut grad = vec![0.0; crf.num_params()];
        group.bench_with_input(BenchmarkId::new("objective_gradient", &label), &label, |b, _| {
            b.iter(|| crf.objective(&data, 1.0, &mut grad))
        });
        group.bench_with_input(BenchmarkId::new("posteriors", &label), &label, |b, _| {
            b.iter(|| data.iter().take(50).map(|s| crf.posteriors(s).len()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("viterbi", &label), &label, |b, _| {
            b.iter(|| data.iter().take(50).map(|s| crf.viterbi(s).len()).sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crf);
criterion_main!(benches);
