//! Criterion bench: graph propagation (equation 2) as a function of
//! vertex count, degree, and iteration count — the O(V·K·#iterations)
//! cost the paper's complexity analysis predicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphner_graph::{propagate, KnnGraph, LabelDist, PropagationParams};

fn random_graph(n: usize, k: usize, seed: u64) -> KnnGraph {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let adj = (0..n)
        .map(|i| {
            (0..k)
                .map(|_| {
                    let mut nb = (next() % n as u64) as u32;
                    if nb as usize == i {
                        nb = (nb + 1) % n as u32;
                    }
                    (nb, (next() % 1000) as f32 / 1000.0)
                })
                .collect()
        })
        .collect();
    KnnGraph::from_adjacency(adj, k)
}

fn setup(n: usize, k: usize) -> (KnnGraph, Vec<LabelDist>, Vec<Option<LabelDist>>) {
    let g = random_graph(n, k, 7);
    let x = vec![[1.0 / 3.0; 3]; n];
    let x_ref: Vec<Option<LabelDist>> =
        (0..n).map(|i| if i % 3 == 0 { Some([0.8, 0.1, 0.1]) } else { None }).collect();
    (g, x, x_ref)
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    for &n in &[1_000usize, 10_000, 50_000] {
        let (g, x0, x_ref) = setup(n, 10);
        group.bench_with_input(BenchmarkId::new("V", n), &n, |b, _| {
            b.iter(|| {
                let mut x = x0.clone();
                propagate(
                    &g,
                    &mut x,
                    &x_ref,
                    &PropagationParams { mu: 1e-6, nu: 1e-6, iterations: 3, self_anchor: 0.5 },
                );
                x
            })
        });
    }
    let (g, x0, x_ref) = setup(10_000, 10);
    for &iters in &[1usize, 3, 10] {
        group.bench_with_input(BenchmarkId::new("iterations", iters), &iters, |b, &it| {
            b.iter(|| {
                let mut x = x0.clone();
                propagate(
                    &g,
                    &mut x,
                    &x_ref,
                    &PropagationParams { mu: 1e-6, nu: 1e-6, iterations: it, self_anchor: 0.5 },
                );
                x
            })
        });
    }
    for &k in &[5usize, 10, 20] {
        let (g, x0, x_ref) = setup(10_000, k);
        group.bench_with_input(BenchmarkId::new("K", k), &k, |b, _| {
            b.iter(|| {
                let mut x = x0.clone();
                propagate(
                    &g,
                    &mut x,
                    &x_ref,
                    &PropagationParams { mu: 1e-6, nu: 1e-6, iterations: 3, self_anchor: 0.5 },
                );
                x
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
