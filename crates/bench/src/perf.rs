//! The perf-trajectory report behind `BENCH_pipeline.json`.
//!
//! The `perfsuite` binary times a fixed matrix of pipeline stages and
//! serializes a [`BenchReport`] — schema-versioned so a reader can
//! refuse files it does not understand — to the repo root. CI re-runs
//! the suite and [`compare`]s the fresh numbers against the committed
//! baseline: any stage more than [`DEFAULT_TOLERANCE`] slower (plus a
//! small absolute slack absorbing scheduler noise on near-instant
//! stages) fails the job. See DESIGN.md §11 for the methodology.
//!
//! The crate parses its own report files with the hand-rolled reader in
//! this module (the workspace builds offline, without serde); the
//! writer emits a strict subset of JSON so any external tool can read
//! the trajectory too.

use std::fmt::Write as _;

/// Version stamp of the report layout. Bump on any field change;
/// [`BenchReport::parse`] rejects other versions so a stale baseline
/// fails loudly instead of comparing garbage.
pub const SCHEMA_VERSION: u64 = 1;

/// Wall-clock slowdown fraction that counts as a regression.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// Absolute slack added to every threshold: stages that finish in tens
/// of milliseconds jitter far more than 15% from scheduling noise alone
/// (observed ±30% on a loaded single-core runner), so the fractional
/// gate only engages once the absolute drift is also non-trivial —
/// in practice, for stages of roughly 150ms and up. Sub-slack stages
/// are still gated against multiplicative blowups.
pub const ABSOLUTE_SLACK_SECONDS: f64 = 0.025;

/// One timed stage of the matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct StageResult {
    /// Stage name (`area.verb`, e.g. `perf.pmi_build`).
    pub name: String,
    /// Median wall-clock seconds over the suite's iterations.
    pub median_seconds: f64,
    /// Largest heap high-water advance of any iteration, from the
    /// counting allocator (0 when built without `obs-alloc`).
    pub peak_alloc_bytes: u64,
    /// Largest `VmHWM` advance of any iteration (0 off Linux).
    pub peak_rss_bytes: u64,
    /// Worker threads available to the stage.
    pub pool_threads: u64,
    /// Pool jobs submitted during the last iteration.
    pub pool_jobs: u64,
    /// Pool chunks executed during the last iteration.
    pub pool_chunks: u64,
    /// Chunks that ran on workers (vs the submitting thread).
    pub pool_chunks_on_workers: u64,
}

/// The whole trajectory file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Corpus scale the suite ran at.
    pub scale: f64,
    /// Iterations per stage (medians are over this many runs).
    pub iters: u64,
    /// The stage matrix, in execution order.
    pub stages: Vec<StageResult>,
}

/// One stage that got slower than the gate allows.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Stage name.
    pub stage: String,
    /// Baseline median seconds.
    pub baseline_seconds: f64,
    /// Fresh median seconds (`f64::INFINITY` when the stage vanished
    /// from the fresh report).
    pub fresh_seconds: f64,
}

impl Regression {
    /// Fresh-over-baseline slowdown factor.
    pub fn ratio(&self) -> f64 {
        self.fresh_seconds / self.baseline_seconds
    }
}

/// Compare `fresh` against `baseline`: every baseline stage must still
/// exist and run within `baseline * (1 + tolerance) + slack`. Stages
/// new in `fresh` pass silently (they have no baseline yet — committing
/// the fresh report adopts them).
pub fn compare(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base_stage in &baseline.stages {
        let threshold = base_stage.median_seconds * (1.0 + tolerance) + ABSOLUTE_SLACK_SECONDS;
        match fresh.stages.iter().find(|s| s.name == base_stage.name) {
            Some(fresh_stage) if fresh_stage.median_seconds <= threshold => {}
            Some(fresh_stage) => regressions.push(Regression {
                stage: base_stage.name.clone(),
                baseline_seconds: base_stage.median_seconds,
                fresh_seconds: fresh_stage.median_seconds,
            }),
            None => regressions.push(Regression {
                stage: base_stage.name.clone(),
                baseline_seconds: base_stage.median_seconds,
                fresh_seconds: f64::INFINITY,
            }),
        }
    }
    regressions
}

impl BenchReport {
    /// Serialize as pretty-printed JSON (the committed baseline is
    /// diff-reviewed, so one stage per line matters).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let _ = writeln!(out, "  \"iters\": {},", self.iters);
        let _ = writeln!(out, "  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            let comma = if i + 1 < self.stages.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"median_seconds\": {}, \
                 \"peak_alloc_bytes\": {}, \"peak_rss_bytes\": {}, \
                 \"pool_threads\": {}, \"pool_jobs\": {}, \"pool_chunks\": {}, \
                 \"pool_chunks_on_workers\": {}}}{comma}",
                s.name,
                s.median_seconds,
                s.peak_alloc_bytes,
                s.peak_rss_bytes,
                s.pool_threads,
                s.pool_jobs,
                s.pool_chunks,
                s.pool_chunks_on_workers,
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parse a report written by [`BenchReport::to_json`] (or any JSON
    /// with the same fields). Rejects other schema versions.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let value = json::parse(text)?;
        let schema_version = value.get_u64("schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {schema_version} unsupported (this build reads {SCHEMA_VERSION}); \
                 regenerate the baseline with perfsuite"
            ));
        }
        let stages = value
            .get("stages")?
            .as_array()?
            .iter()
            .map(|s| {
                Ok(StageResult {
                    name: s.get("name")?.as_str()?.to_string(),
                    median_seconds: s.get_f64("median_seconds")?,
                    peak_alloc_bytes: s.get_u64("peak_alloc_bytes")?,
                    peak_rss_bytes: s.get_u64("peak_rss_bytes")?,
                    pool_threads: s.get_u64("pool_threads")?,
                    pool_jobs: s.get_u64("pool_jobs")?,
                    pool_chunks: s.get_u64("pool_chunks")?,
                    pool_chunks_on_workers: s.get_u64("pool_chunks_on_workers")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            schema_version,
            scale: value.get_f64("scale")?,
            iters: value.get_u64("iters")?,
            stages,
        })
    }
}

/// Net heap growth (bytes) a hot span may show at runtime before a
/// zero-static-alloc-site claim stops being believable. Small enough to
/// catch a per-item allocation loop, large enough to absorb allocator
/// bookkeeping and the span record itself.
pub const HIDDEN_ALLOC_THRESHOLD_BYTES: i64 = 4096;

/// One `span` line of the audit `--hot-report`: the statically visible
/// allocation-site count for a span whose extent enters the hot set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotSpanStatic {
    /// Span name literal (matches [`graphner_obs::SpanRecord::name`]).
    pub name: String,
    /// Workspace-relative path of the minting site.
    pub path: String,
    /// 1-based line of the minting site.
    pub line: usize,
    /// Allocation call sites visible from the minting function over
    /// resolved call edges.
    pub static_alloc_sites: u64,
}

/// Parse the `span` section of an audit `--hot-report` file. The line
/// grammar is owned by `graphner-audit::hot` (kept stable for this
/// consumer): `span <name> <path>:<line> static_alloc_sites=<k>`.
/// Comment (`#`), `root` and `fn` lines are skipped; a malformed `span`
/// line is an error, since silently dropping one would un-gate its span.
pub fn parse_hot_report(text: &str) -> Result<Vec<HotSpanStatic>, String> {
    let mut spans = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        let Some(rest) = line.strip_prefix("span ") else {
            continue;
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let err = || format!("hot-report:{line_no}: malformed span line `{line}`");
        let [name, site, count] = fields.as_slice() else {
            return Err(err());
        };
        let (path, site_line) = site.rsplit_once(':').ok_or_else(err)?;
        let static_alloc_sites =
            count.strip_prefix("static_alloc_sites=").and_then(|v| v.parse().ok());
        spans.push(HotSpanStatic {
            name: name.to_string(),
            path: path.to_string(),
            line: site_line.parse().map_err(|_| err())?,
            static_alloc_sites: static_alloc_sites.ok_or_else(err)?,
        });
    }
    Ok(spans)
}

/// A span the static analysis cleared that allocated anyway.
#[derive(Clone, Debug)]
pub struct HiddenAllocation {
    /// Span name.
    pub span: String,
    /// Minting site from the hot report, for the error message.
    pub site: String,
    /// Worst `mem.net_bytes` observed across the span's executions.
    pub net_bytes: i64,
}

/// Cross-reference the audit's static per-span allocation counts
/// against measured span records: a hot span claiming **zero** static
/// allocation sites whose worst observed `mem.net_bytes` still exceeds
/// `threshold_bytes` is a hidden allocation — something the lexical
/// rules cannot see (vendored code, a closure the resolver dropped) is
/// allocating on the hot path. Spans without the attribute (built
/// without `obs-alloc`) and spans that never ran are skipped.
pub fn reconcile_hot_spans(
    statics: &[HotSpanStatic],
    measured: &[graphner_obs::SpanRecord],
    threshold_bytes: i64,
) -> Vec<HiddenAllocation> {
    let mut hidden = Vec::new();
    for s in statics {
        if s.static_alloc_sites > 0 {
            continue;
        }
        let worst = measured
            .iter()
            .filter(|r| r.name == s.name)
            .filter_map(|r| match r.attr("mem.net_bytes") {
                Some(&graphner_obs::AttrValue::I64(v)) => Some(v),
                _ => None,
            })
            .max();
        if let Some(net_bytes) = worst {
            if net_bytes > threshold_bytes {
                hidden.push(HiddenAllocation {
                    span: s.name.clone(),
                    site: format!("{}:{}", s.path, s.line),
                    net_bytes,
                });
            }
        }
    }
    hidden
}

/// Peak resident set (`VmHWM`) of this process in bytes, from
/// `/proc/self/status`. 0 when the file or field is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Reset the kernel's `VmHWM` watermark to the current RSS (write `5`
/// to `/proc/self/clear_refs`), so the next [`peak_rss_bytes`] read
/// reflects only growth since this call. Silently a no-op where the
/// interface is absent or read-only.
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// The minimal JSON reader behind [`BenchReport::parse`]: objects,
/// arrays, strings (no escapes beyond `\"`/`\\` needed by our writer),
/// numbers, `true`/`false`/`null`.
mod json {
    use std::collections::BTreeMap;

    #[derive(Clone, Debug)]
    pub enum Value {
        Null,
        // the report schema has no bool fields yet; the reader accepts
        // full JSON anyway so future fields parse without surgery
        #[allow(dead_code)]
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Result<&Value, String> {
            match self {
                Value::Object(map) => {
                    map.get(key).ok_or_else(|| format!("missing field \"{key}\""))
                }
                _ => Err(format!("expected object around \"{key}\"")),
            }
        }

        pub fn as_array(&self) -> Result<&[Value], String> {
            match self {
                Value::Array(items) => Ok(items),
                _ => Err("expected array".to_string()),
            }
        }

        pub fn as_str(&self) -> Result<&str, String> {
            match self {
                Value::String(s) => Ok(s),
                _ => Err("expected string".to_string()),
            }
        }

        pub fn as_f64(&self) -> Result<f64, String> {
            match self {
                Value::Number(n) => Ok(*n),
                _ => Err("expected number".to_string()),
            }
        }

        pub fn get_f64(&self, key: &str) -> Result<f64, String> {
            self.get(key)?.as_f64().map_err(|e| format!("{key}: {e}"))
        }

        pub fn get_u64(&self, key: &str) -> Result<u64, String> {
            let n = self.get_f64(key)?;
            if n < 0.0 || !graphner_text::exactly_zero(n.fract()) {
                return Err(format!("{key}: expected a non-negative integer, got {n}"));
            }
            Ok(n as u64)
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => parse_string(bytes, pos).map(Value::String),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            map.insert(key, parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                _ => out.push(b as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                *pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, seconds: f64) -> StageResult {
        StageResult {
            name: name.to_string(),
            median_seconds: seconds,
            peak_alloc_bytes: 1 << 20,
            peak_rss_bytes: 1 << 22,
            pool_threads: 4,
            pool_jobs: 3,
            pool_chunks: 12,
            pool_chunks_on_workers: 9,
        }
    }

    fn report(stages: Vec<StageResult>) -> BenchReport {
        BenchReport { schema_version: SCHEMA_VERSION, scale: 0.02, iters: 3, stages }
    }

    #[test]
    fn json_round_trips_exactly() {
        let original = report(vec![stage("perf.pmi_build", 1.25), stage("perf.knn_build", 0.5)]);
        let parsed = BenchReport::parse(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_rejects_other_schema_versions() {
        let mut wrong = report(vec![stage("perf.propagate", 1.0)]);
        wrong.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::parse(&wrong.to_json()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn parse_reports_malformed_input() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{\"schema_version\": 1}").is_err());
        assert!(BenchReport::parse("{\"schema_version\": 1, \"scale\": 0.02} trailing").is_err());
    }

    #[test]
    fn synthetic_fifteen_percent_slowdown_trips_the_gate() {
        // use second-scale medians so the 5ms absolute slack is
        // negligible and the 15% fraction is what decides
        let baseline = report(vec![stage("perf.pmi_build", 2.0), stage("perf.propagate", 1.0)]);
        let mut slower = baseline.clone();
        slower.stages[1].median_seconds = 1.20; // +20%
        let regressions = compare(&baseline, &slower, DEFAULT_TOLERANCE);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].stage, "perf.propagate");
        assert!(regressions[0].ratio() > 1.15);
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let baseline = report(vec![stage("perf.pmi_build", 2.0)]);
        let mut slightly = baseline.clone();
        slightly.stages[0].median_seconds = 2.2; // +10%
        assert!(compare(&baseline, &slightly, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn absolute_slack_protects_near_instant_stages() {
        // 5ms -> 20ms is 4x but under the absolute slack: scheduling
        // noise, not a regression the gate should wake anyone up for…
        let baseline = report(vec![stage("perf.viterbi_decode", 0.005)]);
        let mut jittery = baseline.clone();
        jittery.stages[0].median_seconds = 0.020;
        assert!(compare(&baseline, &jittery, DEFAULT_TOLERANCE).is_empty());
        // …while a genuine blowup on the same stage still trips it
        let mut blown = baseline.clone();
        blown.stages[0].median_seconds = 0.050;
        assert_eq!(compare(&baseline, &blown, DEFAULT_TOLERANCE).len(), 1);
    }

    #[test]
    fn missing_stage_is_a_regression() {
        let baseline = report(vec![stage("perf.pmi_build", 1.0), stage("perf.knn_build", 1.0)]);
        let fresh = report(vec![stage("perf.pmi_build", 1.0)]);
        let regressions = compare(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].stage, "perf.knn_build");
        assert!(regressions[0].fresh_seconds.is_infinite());
    }

    #[test]
    fn new_stages_in_fresh_pass_without_a_baseline() {
        let baseline = report(vec![stage("perf.pmi_build", 1.0)]);
        let fresh = report(vec![stage("perf.pmi_build", 1.0), stage("perf.tag_batch_t4", 0.5)]);
        assert!(compare(&baseline, &fresh, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn peak_rss_reads_something_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes() > 0);
        }
    }

    #[test]
    fn hot_report_span_lines_parse_and_other_lines_skip() {
        let text = "\
# hot-path inventory: 1 roots, 2 functions, 3 alloc sites, 2 spans
root crates/graph/src/propagate.rs:100 jacobi_update alloc_sites=0 — per-vertex kernel
fn crates/graph/src/knn.rs:50 top_k alloc_sites=3 via jacobi_update -> top_k
span perf.propagate crates/bench/src/bin/perfsuite.rs:306 static_alloc_sites=0
span serve.tag_batch crates/core/src/pipeline.rs:530 static_alloc_sites=7
";
        let spans = parse_hot_report(text).unwrap();
        assert_eq!(
            spans,
            vec![
                HotSpanStatic {
                    name: "perf.propagate".to_string(),
                    path: "crates/bench/src/bin/perfsuite.rs".to_string(),
                    line: 306,
                    static_alloc_sites: 0,
                },
                HotSpanStatic {
                    name: "serve.tag_batch".to_string(),
                    path: "crates/core/src/pipeline.rs".to_string(),
                    line: 530,
                    static_alloc_sites: 7,
                },
            ]
        );
    }

    #[test]
    fn hot_report_rejects_malformed_span_lines() {
        for bad in [
            "span only_two_fields a.rs:1",
            "span name a.rs:notaline static_alloc_sites=0",
            "span name noline static_alloc_sites=0",
            "span name a.rs:1 static_alloc_sites=x",
            "span name a.rs:1 wrongkey=3",
        ] {
            let err = parse_hot_report(bad).unwrap_err();
            assert!(err.contains("hot-report:1"), "{bad} -> {err}");
        }
    }

    fn measured_span(name: &'static str, net_bytes: Option<i64>) -> graphner_obs::SpanRecord {
        let mut r = graphner_obs::SpanRecord::synthetic(name, 0.1);
        if let Some(v) = net_bytes {
            r.attrs.push(("mem.net_bytes", graphner_obs::AttrValue::I64(v)));
        }
        r
    }

    fn static_span(name: &str, sites: u64) -> HotSpanStatic {
        HotSpanStatic {
            name: name.to_string(),
            path: "crates/x/src/y.rs".to_string(),
            line: 10,
            static_alloc_sites: sites,
        }
    }

    #[test]
    fn reconcile_flags_zero_static_spans_that_allocate() {
        let statics = [static_span("perf.propagate", 0)];
        let measured = [
            measured_span("perf.propagate", Some(100)),
            measured_span("perf.propagate", Some(HIDDEN_ALLOC_THRESHOLD_BYTES + 1)),
        ];
        let hidden = reconcile_hot_spans(&statics, &measured, HIDDEN_ALLOC_THRESHOLD_BYTES);
        assert_eq!(hidden.len(), 1);
        assert_eq!(hidden[0].span, "perf.propagate");
        assert_eq!(hidden[0].site, "crates/x/src/y.rs:10");
        assert_eq!(hidden[0].net_bytes, HIDDEN_ALLOC_THRESHOLD_BYTES + 1);
    }

    #[test]
    fn reconcile_clears_spans_with_static_sites_or_small_growth() {
        let statics = [
            static_span("perf.knn_build", 12), // sites declared: runtime allocation expected
            static_span("perf.propagate", 0),  // under threshold: allocator noise
            static_span("crf.train", 0),       // never ran in this process
        ];
        let measured = [
            measured_span("perf.knn_build", Some(1 << 30)),
            measured_span("perf.propagate", Some(HIDDEN_ALLOC_THRESHOLD_BYTES)),
        ];
        assert!(reconcile_hot_spans(&statics, &measured, HIDDEN_ALLOC_THRESHOLD_BYTES).is_empty());
    }

    #[test]
    fn reconcile_skips_spans_without_alloc_accounting() {
        // no obs-alloc feature -> no mem.net_bytes attr -> nothing to gate
        let statics = [static_span("perf.propagate", 0)];
        let measured = [measured_span("perf.propagate", None)];
        assert!(reconcile_hot_spans(&statics, &measured, HIDDEN_ALLOC_THRESHOLD_BYTES).is_empty());
    }
}
