//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every binary in `src/bin/` drives the same pipeline: generate a
//! synthetic corpus (BC2GM or AML profile), train the baselines (BANNER,
//! BANNER-ChemDNER, optionally LSTM-CRF), run GraphNER on top of each
//! CRF baseline, score everything with the BC2 evaluator, and print the
//! table rows. Corpora default to a scaled-down size so a run finishes
//! in minutes; pass `--full` for paper-sized corpora or `--scale <f>`
//! for anything in between.

pub mod harness;
pub mod perf;
pub mod synth;

pub use harness::*;
