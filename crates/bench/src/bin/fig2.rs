//! Figure 2 — time cost to train and test BANNER vs GraphNER across
//! train:test split ratios of the BC2GM corpus.
//!
//! For each ratio the corpus is re-partitioned, both systems run end to
//! end, and wall seconds are averaged over several instances (the paper
//! uses 10; default here is 3, `--full` raises corpus size). The
//! reproduced shape: GraphNER's added cost (graph construction +
//! propagation + combination) stays a modest fraction of the CRF's own
//! train+test time, growing with the corpus.

use graphner_bench::RunOptions;
use graphner_core::{GraphNer, GraphNerConfig};
use graphner_corpusgen::{generate, CorpusProfile};
use graphner_text::Corpus;

fn main() {
    let opts = RunOptions::from_args();
    let instances = if opts.scale >= 0.5 { 10 } else { 3 };
    let profile = CorpusProfile::bc2gm().scaled(opts.scale);
    let corpus = generate(&profile);
    // pool all sentences, then re-split at each ratio
    let mut pool = corpus.train.clone();
    pool.sentences.extend(corpus.test.sentences.iter().cloned());

    println!(
        "\n=== Figure 2: train+test wall time, BANNER vs GraphNER (BC2GM profile, scale {}, {} instances/ratio) ===",
        opts.scale, instances
    );
    println!(
        "{:>10} {:>14} {:>16} {:>18} {:>14}",
        "train:test", "BANNER (s)", "GraphNER (s)", "added by graph (s)", "overhead (%)"
    );

    for (label, fraction) in
        [("1:2", 1.0 / 3.0), ("1:1", 0.5), ("2:1", 2.0 / 3.0), ("3:1", 0.75), ("4:1", 0.8)]
    {
        let mut banner_s = 0.0;
        let mut graphner_s = 0.0;
        let mut added_s = 0.0;
        for inst in 0..instances {
            let split = pool.split(fraction, 1000 + inst as u64);
            let test_unlabelled: Corpus = split.test.without_tags();
            let (gner, train_out) = GraphNer::train(
                &split.train,
                &opts.ner_config(),
                None,
                GraphNerConfig::table_iv("BC2GM", false),
            );
            let out = gner.test(&test_unlabelled);
            // BANNER's own cost: CRF train + the posterior/Viterbi pass
            let banner = train_out.crf_seconds + out.timings.posterior_seconds;
            // GraphNER: everything
            let graphner = train_out.crf_seconds + train_out.ref_seconds + out.timings.total();
            banner_s += banner;
            graphner_s += graphner;
            added_s += graphner - banner;
        }
        let k = instances as f64;
        println!(
            "{:>10} {:>14.2} {:>16.2} {:>18.2} {:>14.1}",
            label,
            banner_s / k,
            graphner_s / k,
            added_s / k,
            100.0 * added_s / banner_s
        );
    }
    graphner_bench::finish(&opts);
}
