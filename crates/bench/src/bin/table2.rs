//! Table II — results on the (synthetic) AML corpus.
//!
//! Same systems as Table I on the AML profile: standardized HGNC-like
//! nomenclature, near-zero annotation noise, much lower gene density.
//! The reproduced shape: absolute scores substantially higher than on
//! BC2GM, GraphNER's improvements carried by precision.

use graphner_bench::{
    mean_over_seeds, print_header, print_mean_row, reseeded, run_corpus_comparison,
    run_neural_baseline, RunOptions,
};
use graphner_corpusgen::{generate, CorpusProfile};

fn main() {
    let opts = RunOptions::from_args();
    let mut runs = Vec::new();
    for seed_run in 0..opts.seeds {
        let profile = reseeded(CorpusProfile::aml(), seed_run).scaled(opts.scale);
        graphner_obs::obs_summary!(
            "[seed {}/{}] AML profile, {} train / {} test sentences",
            seed_run + 1,
            opts.seeds,
            profile.train_sentences,
            profile.test_sentences
        );
        let corpus = generate(&profile);
        let mut systems = Vec::new();
        if opts.with_neural {
            systems.push(run_neural_baseline(&corpus, &opts));
        }
        let run = run_corpus_comparison(&corpus, &opts);
        systems.extend(run.systems);
        runs.push(systems);
    }
    let means = mean_over_seeds(&runs);

    print_header(&format!(
        "Table II: results on the AML corpus (synthetic profile, mean of {} seeds, scale {})",
        opts.seeds, opts.scale
    ));
    for row in &means {
        print_mean_row(row);
    }

    let find = |name: &str| means.iter().find(|m| m.name == name).unwrap();
    for (base, graph) in
        [("BANNER", "GraphNER (CRF=BANNER)"), ("BANNER-ChemDNER", "GraphNER (CRF=BANNER-ChemDNER)")]
    {
        let b = find(base);
        let g = find(graph);
        println!(
            "\nGraphNER vs {base}: ΔF = {:+.2}, ΔP = {:+.2}, ΔR = {:+.2}",
            (g.f_score - b.f_score) * 100.0,
            (g.precision - b.precision) * 100.0,
            (g.recall - b.recall) * 100.0
        );
    }
    graphner_bench::finish(&opts);
}
