//! Table IV — hyper-parameter selection by cross-validation.
//!
//! The paper chooses `(α, μ, ν, #iterations)` per corpus and base model
//! "by cross-validation over different train:test splits". This binary
//! reproduces that procedure on the synthetic profiles: the training
//! corpus is split 80/20, GraphNER runs transductively on the held-out
//! fold for every candidate configuration, and the best-F configuration
//! is reported.

use graphner_banner::DistributionalResources;
use graphner_bench::{eval_predictions, RunOptions};
use graphner_core::{GraphNer, GraphNerConfig, TestSession};
use graphner_corpusgen::{generate, CorpusProfile};
use graphner_graph::PropagationParams;
use graphner_text::AnnotationSet;

fn main() {
    let opts = RunOptions::from_args();
    println!(
        "\n=== Table IV: hyper-parameters chosen by cross-validation (scale {}) ===",
        opts.scale
    );
    println!(
        "{:<8} {:<18} {:>6} {:>8} {:>8} {:>6} {:>10}",
        "Corpus", "CRF Model", "alpha", "mu", "nu", "iters", "CV F(%)"
    );

    for profile in [CorpusProfile::bc2gm(), CorpusProfile::aml()] {
        let corpus = generate(&profile.scaled(opts.scale));
        // CV split of the training corpus
        let split = corpus.train.split(0.8, 4242);
        let fold_gold = AnnotationSet::from_corpus(&split.test);
        let fold_unlabelled = split.test.without_tags();
        let mut unlabelled = split.train.without_tags();
        unlabelled.sentences.extend(fold_unlabelled.sentences.iter().cloned());

        for chemdner in [false, true] {
            let dist = if chemdner {
                Some(DistributionalResources::train(&unlabelled, &opts.distributional_config()))
            } else {
                None
            };
            let base_name = if chemdner { "BANNER-ChemDNER" } else { "BANNER" };
            let (gner, _) =
                GraphNer::train(&split.train, &opts.ner_config(), dist, GraphNerConfig::default());

            // all 24 candidate configurations share one session: the
            // CRF posteriors and the graph are computed once per fold
            let mut session = TestSession::new(&gner, &fold_unlabelled);
            let mut best: Option<(f64, (f64, f64, f64, usize))> = None;
            for alpha in [0.02, 0.1, 0.3] {
                for mu in [1e-6, 1e-4] {
                    for nu in [1e-6, 1e-4] {
                        for iterations in [2usize, 3] {
                            let cfg = GraphNerConfig {
                                alpha,
                                propagation: PropagationParams {
                                    mu,
                                    nu,
                                    iterations,
                                    self_anchor: 0.5,
                                },
                                ..GraphNerConfig::default()
                            };
                            let out = session.run(&cfg);
                            let (eval, _) =
                                eval_predictions(&split.test, &fold_gold, &out.predictions);
                            let f = eval.f_score();
                            if best.is_none_or(|(bf, _)| f > bf) {
                                best = Some((f, (alpha, mu, nu, iterations)));
                            }
                        }
                    }
                }
            }
            let (f, (alpha, mu, nu, iters)) = best.unwrap();
            println!(
                "{:<8} {:<18} {:>6} {:>8.0e} {:>8.0e} {:>6} {:>10.2}",
                corpus.profile.name,
                base_name,
                alpha,
                mu,
                nu,
                iters,
                f * 100.0
            );
        }
    }
    graphner_bench::finish(&opts);
}
