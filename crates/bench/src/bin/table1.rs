//! Table I — results on the (synthetic) BC2GM corpus.
//!
//! Rows: LSTM-CRF (optional, `--with-neural`), BANNER,
//! BANNER-ChemDNER, and GraphNER over each CRF baseline, averaged over
//! `--seeds` generator seeds. The reproduced shape: GraphNER improves
//! both baselines, with the gain carried by precision; the ChemDNER
//! variant beats plain BANNER.

use graphner_bench::{
    mean_over_seeds, print_header, print_mean_row, reseeded, run_corpus_comparison,
    run_neural_baseline, RunOptions,
};
use graphner_corpusgen::{generate, CorpusProfile};

fn main() {
    let opts = RunOptions::from_args();
    let mut runs = Vec::new();
    for seed_run in 0..opts.seeds {
        let profile = reseeded(CorpusProfile::bc2gm(), seed_run).scaled(opts.scale);
        graphner_obs::obs_summary!(
            "[seed {}/{}] BC2GM profile, {} train / {} test sentences",
            seed_run + 1,
            opts.seeds,
            profile.train_sentences,
            profile.test_sentences
        );
        let corpus = generate(&profile);
        let mut systems = Vec::new();
        if opts.with_neural {
            systems.push(run_neural_baseline(&corpus, &opts));
        }
        let run = run_corpus_comparison(&corpus, &opts);
        systems.extend(run.systems);
        runs.push(systems);
    }
    let means = mean_over_seeds(&runs);

    print_header(&format!(
        "Table I: results on the BC2GM corpus (synthetic profile, mean of {} seeds, scale {})",
        opts.seeds, opts.scale
    ));
    for row in &means {
        print_mean_row(row);
    }

    let find = |name: &str| means.iter().find(|m| m.name == name).unwrap();
    let banner = find("BANNER");
    let g_banner = find("GraphNER (CRF=BANNER)");
    let chem = find("BANNER-ChemDNER");
    let g_chem = find("GraphNER (CRF=BANNER-ChemDNER)");
    println!();
    println!(
        "GraphNER vs BANNER:          ΔF = {:+.2}, ΔP = {:+.2}",
        (g_banner.f_score - banner.f_score) * 100.0,
        (g_banner.precision - banner.precision) * 100.0
    );
    println!(
        "GraphNER vs BANNER-ChemDNER: ΔF = {:+.2}, ΔP = {:+.2}",
        (g_chem.f_score - chem.f_score) * 100.0,
        (g_chem.precision - chem.precision) * 100.0
    );
    graphner_bench::finish(&opts);
}
