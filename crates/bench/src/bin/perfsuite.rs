//! perfsuite — the perf-trajectory benchmark behind `BENCH_pipeline.json`.
//!
//! Times a fixed matrix of pipeline stages on the BC2GM profile:
//!
//! * `perf.pmi_build` — PMI vertex-vector construction,
//! * `perf.knn_build` — cosine k-NN graph connection,
//! * `perf.propagate` — sharded Jacobi propagation sweeps (partition
//!   prebuilt, as the pipeline caches it),
//! * `perf.viterbi_decode` — belief interpolation + Viterbi decode,
//! * `perf.tag_batch_t1` / `perf.tag_batch_t4` — serving-path batch
//!   throughput at 1 and 4 worker threads (measured in re-exec'd
//!   subprocesses, because the pool reads `GRAPHNER_THREADS` once),
//! * `perf.propagate_sharded_t1` / `perf.propagate_sharded_t4` — the
//!   sharded sweep engine on a 150k-vertex synthetic graph
//!   ([`graphner_bench::synth`]) at 1 and 4 worker threads, also via
//!   subprocess re-exec.
//!
//! Each stage reports median-of-N wall-clock seconds, peak heap (with
//! the `obs-alloc` feature), peak RSS advance (`VmHWM`), and the pool
//! counters it moved. `--out` writes the schema-versioned report
//! (default `BENCH_pipeline.json`); `--check <baseline>` exits 1 when
//! any stage regresses more than 15% against the baseline. See
//! DESIGN.md §11.
//!
//! `--hot-report <path>` reconciles the audit's static hot-path
//! inventory against runtime allocator data: any span the report claims
//! has zero static allocation sites but whose measured `mem.net_bytes`
//! exceeds [`perf::HIDDEN_ALLOC_THRESHOLD_BYTES`] fails the run — a
//! hidden (vendored/closure) allocation the lexical rules cannot see.
//! See DESIGN.md §14.

use graphner_bench::perf::{self, BenchReport, StageResult, DEFAULT_TOLERANCE, SCHEMA_VERSION};
use graphner_bench::synth::synthetic_propagation;
use graphner_bench::RunOptions;
use graphner_core::pipeline::{AverageStage, DecodeStage, GraphStage, PosteriorStage};
use graphner_core::{GraphNer, GraphNerConfig, TestSession};
use graphner_corpusgen::{generate, CorpusProfile};
use graphner_graph::{propagate_partitioned, Partition, ShardSize};
use graphner_obs::{span, Stopwatch};
use graphner_text::{Corpus, TrigramInterner};

/// Vertex count of the synthetic graph behind the
/// `perf.propagate_sharded_t*` stages — big enough that shard handoff
/// and boundary traffic dominate, small enough to build in seconds.
const SYNTH_VERTICES: usize = 150_000;
/// Out-degree of the synthetic graph.
const SYNTH_K: usize = 8;
/// Jacobi sweeps per measured iteration on the synthetic graph.
const SYNTH_SWEEPS: usize = 10;
/// Seed for the synthetic workload; fixed so every subprocess times
/// the identical graph.
const SYNTH_SEED: u64 = 0x5EED_5EED;

struct Args {
    scale: f64,
    iters: usize,
    out: String,
    check: Option<String>,
    trace_out: Option<String>,
    hot_report: Option<String>,
    tag_batch_worker: bool,
    propagate_worker: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scale: 0.02,
        iters: 3,
        out: "BENCH_pipeline.json".to_string(),
        check: None,
        trace_out: None,
        hot_report: None,
        tag_batch_worker: false,
        propagate_worker: false,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                parsed.scale = args[i].parse().expect("--scale needs a number");
            }
            "--iters" => {
                i += 1;
                parsed.iters = args[i].parse().expect("--iters needs a count");
            }
            "--out" => {
                i += 1;
                parsed.out = args.get(i).expect("--out needs a path").clone();
            }
            "--check" => {
                i += 1;
                parsed.check = Some(args.get(i).expect("--check needs a path").clone());
            }
            "--trace-out" => {
                i += 1;
                parsed.trace_out = Some(args.get(i).expect("--trace-out needs a path").clone());
            }
            "--hot-report" => {
                i += 1;
                parsed.hot_report = Some(args.get(i).expect("--hot-report needs a path").clone());
            }
            "--tag-batch-worker" => parsed.tag_batch_worker = true,
            "--propagate-worker" => parsed.propagate_worker = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    parsed
}

/// One stage's raw measurements before naming.
struct Measured {
    median_seconds: f64,
    peak_alloc_bytes: u64,
    peak_rss_bytes: u64,
    pool: rayon::PoolStats,
}

/// Run `f` `iters` times: median wall-clock, max peak-heap and
/// peak-RSS advance over any iteration, pool-counter delta of the last.
fn measure(iters: usize, mut f: impl FnMut()) -> Measured {
    assert!(iters > 0);
    let mut secs = Vec::with_capacity(iters);
    let mut peak_alloc_bytes = 0u64;
    let mut peak_rss_bytes = 0u64;
    let mut pool = {
        let now = rayon::pool_stats();
        now.delta(&now) // zeroed counters, correct thread count
    };
    for _ in 0..iters {
        let live = graphner_obs::alloc::current_bytes();
        graphner_obs::alloc::reset_peak();
        perf::reset_peak_rss();
        let rss_floor = perf::peak_rss_bytes();
        let before = rayon::pool_stats();
        let sw = Stopwatch::start();
        f();
        secs.push(sw.elapsed_seconds());
        pool = rayon::pool_stats().delta(&before);
        peak_alloc_bytes =
            peak_alloc_bytes.max(graphner_obs::alloc::peak_bytes().saturating_sub(live));
        peak_rss_bytes = peak_rss_bytes.max(perf::peak_rss_bytes().saturating_sub(rss_floor));
    }
    secs.sort_by(f64::total_cmp);
    Measured { median_seconds: secs[secs.len() / 2], peak_alloc_bytes, peak_rss_bytes, pool }
}

fn stage_result(name: &str, m: &Measured) -> StageResult {
    StageResult {
        name: name.to_string(),
        median_seconds: m.median_seconds,
        peak_alloc_bytes: m.peak_alloc_bytes,
        peak_rss_bytes: m.peak_rss_bytes,
        pool_threads: m.pool.threads as u64,
        pool_jobs: m.pool.jobs_submitted,
        pool_chunks: m.pool.chunks_executed,
        pool_chunks_on_workers: m.pool.chunks_on_workers,
    }
}

/// Train the model the whole matrix runs against.
fn setup(scale: f64) -> (GraphNer, Corpus) {
    let profile = CorpusProfile::bc2gm().scaled(scale);
    let corpus = generate(&profile);
    let opts = RunOptions { scale, ..RunOptions::default() };
    let (gner, _) =
        GraphNer::train(&corpus.train, &opts.ner_config(), None, GraphNerConfig::default());
    (gner, corpus.test.without_tags())
}

/// Print the machine-readable result line a worker subprocess hands
/// back to the parent.
fn print_worker_line(m: &Measured) {
    println!(
        "perfsuite-worker median_seconds={} peak_alloc_bytes={} peak_rss_bytes={} \
         pool_threads={} pool_jobs={} pool_chunks={} pool_chunks_on_workers={}",
        m.median_seconds,
        m.peak_alloc_bytes,
        m.peak_rss_bytes,
        m.pool.threads,
        m.pool.jobs_submitted,
        m.pool.chunks_executed,
        m.pool.chunks_on_workers,
    );
}

/// Subprocess mode: time the serving batch path under this process's
/// `GRAPHNER_THREADS`, print one machine-readable line, exit.
fn run_tag_batch_worker(scale: f64, iters: usize) {
    let (gner, test) = setup(scale);
    let mut session = TestSession::new(&gner, &test);
    let tagger = session.tagger(gner.config());
    use graphner_text::Tagger as _;
    let m = measure(iters, || {
        std::hint::black_box(tagger.tag_batch(&test.sentences));
    });
    print_worker_line(&m);
}

/// Subprocess mode: time the sharded propagation engine on the fixed
/// synthetic workload under this process's `GRAPHNER_THREADS`.
fn run_propagate_worker(iters: usize) {
    let w = synthetic_propagation(SYNTH_VERTICES, SYNTH_K, SYNTH_SEED);
    let partition = Partition::new(&w.graph, ShardSize::Auto);
    let params = graphner_graph::PropagationParams {
        iterations: SYNTH_SWEEPS,
        ..graphner_graph::PropagationParams::default()
    };
    let mut x = w.x0.clone();
    let m = measure(iters, || {
        let _s = span("perf.propagate_sharded");
        x.copy_from_slice(&w.x0);
        std::hint::black_box(propagate_partitioned(
            &w.graph, &partition, &mut x, &w.x_ref, &params, false,
        ));
    });
    print_worker_line(&m);
}

/// Re-exec this binary as a worker (`flag` selects the mode) pinned to
/// `threads`, returning its measurements as the stage `name`.
fn worker_subprocess(
    flag: &str,
    name: String,
    scale: f64,
    iters: usize,
    threads: usize,
) -> StageResult {
    let exe = std::env::current_exe().expect("current_exe");
    let output = std::process::Command::new(exe)
        .args([flag, "--scale", &scale.to_string(), "--iters", &iters.to_string()])
        .env(rayon::THREADS_ENV, threads.to_string())
        .output()
        .expect("spawn worker");
    assert!(
        output.status.success(),
        "worker {flag} (threads={threads}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line =
        stdout.lines().find(|l| l.starts_with("perfsuite-worker ")).expect("worker result line");
    let field = |key: &str| -> f64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("worker line missing {key}: {line}"))
    };
    StageResult {
        name,
        median_seconds: field("median_seconds"),
        peak_alloc_bytes: field("peak_alloc_bytes") as u64,
        peak_rss_bytes: field("peak_rss_bytes") as u64,
        pool_threads: field("pool_threads") as u64,
        pool_jobs: field("pool_jobs") as u64,
        pool_chunks: field("pool_chunks") as u64,
        pool_chunks_on_workers: field("pool_chunks_on_workers") as u64,
    }
}

fn main() {
    let args = parse_args();
    if args.tag_batch_worker {
        run_tag_batch_worker(args.scale, args.iters);
        return;
    }
    if args.propagate_worker {
        run_propagate_worker(args.iters);
        return;
    }

    eprintln!(
        "perfsuite: scale {}, {} iters/stage, alloc accounting {}",
        args.scale,
        args.iters,
        if graphner_obs::alloc::enabled() { "on" } else { "off (build with --features obs-alloc)" }
    );
    let (gner, test) = setup(args.scale);
    let cfg = gner.config().clone();
    let posteriors = PosteriorStage::run(&gner, &test);

    let mut stages: Vec<StageResult> = Vec::new();

    // pmi_build: fresh interner per iteration, since interning is part
    // of the measured work; the last build feeds the later stages
    let mut interner = TrigramInterner::new();
    let mut vectors = Vec::new();
    let m = measure(args.iters, || {
        let _s = span("perf.pmi_build");
        let mut it = TrigramInterner::new();
        vectors = GraphStage::vectors(&gner, &mut it, &test, cfg.feature_set);
        interner = it;
    });
    stages.push(stage_result("perf.pmi_build", &m));

    let mut graph = GraphStage::connect(&vectors, cfg.k);
    let m = measure(args.iters, || {
        let _s = span("perf.knn_build");
        graph = GraphStage::connect(&vectors, cfg.k);
    });
    stages.push(stage_result("perf.knn_build", &m));

    // propagation inputs: averaged beliefs, with the model's labelled
    // vertex count anchoring the reference slice
    let x0 = AverageStage::run(&gner, &test, &posteriors, &interner);
    let labelled = gner.num_labelled_vertices().min(x0.len());
    let x_ref: Vec<Option<graphner_graph::LabelDist>> =
        (0..x0.len()).map(|i| (i < labelled).then(|| x0[i])).collect();
    // the pipeline caches its partition across runs, so prebuild it
    // here too and time only the sweeps
    let partition = Partition::new(&graph, cfg.schedule.shard_size);
    let mut x = x0.clone();
    let m = measure(args.iters, || {
        let _s = span("perf.propagate");
        x = x0.clone();
        propagate_partitioned(
            &graph,
            &partition,
            &mut x,
            &x_ref,
            &cfg.propagation,
            cfg.schedule.active_set,
        );
    });
    stages.push(stage_result("perf.propagate", &m));

    let transitions = gner.transitions();
    let m = measure(args.iters, || {
        let _s = span("perf.viterbi_decode");
        std::hint::black_box(DecodeStage::run(
            &test,
            posteriors.test(),
            &interner,
            &x,
            cfg.alpha,
            &transitions,
        ));
    });
    stages.push(stage_result("perf.viterbi_decode", &m));

    for threads in [1usize, 4] {
        stages.push(worker_subprocess(
            "--tag-batch-worker",
            format!("perf.tag_batch_t{threads}"),
            args.scale,
            args.iters,
            threads,
        ));
    }
    for threads in [1usize, 4] {
        stages.push(worker_subprocess(
            "--propagate-worker",
            format!("perf.propagate_sharded_t{threads}"),
            args.scale,
            args.iters,
            threads,
        ));
    }

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        scale: args.scale,
        iters: args.iters as u64,
        stages,
    };

    println!(
        "{:<24} {:>12} {:>14} {:>14} {:>8} {:>8}",
        "stage", "median (s)", "peak alloc", "peak rss", "chunks", "stolen"
    );
    for s in &report.stages {
        println!(
            "{:<24} {:>12.4} {:>14} {:>14} {:>8} {:>8}",
            s.name,
            s.median_seconds,
            s.peak_alloc_bytes,
            s.peak_rss_bytes,
            s.pool_chunks,
            s.pool_chunks_on_workers
        );
    }

    std::fs::write(&args.out, report.to_json()).expect("write report");
    eprintln!("perfsuite: report written to {}", args.out);

    // one drain serves both consumers: the trace export and the
    // static↔runtime allocation reconciliation
    let spans = if args.trace_out.is_some() || args.hot_report.is_some() {
        graphner_obs::span::drain()
    } else {
        Vec::new()
    };

    if let Some(path) = &args.trace_out {
        let json = graphner_obs::chrome_trace_json(&spans, graphner_obs::TraceClock::from_env());
        std::fs::write(path, json).expect("write --trace-out file");
        eprintln!("perfsuite: trace ({} spans) written to {path}", spans.len());
    }

    if let Some(path) = &args.hot_report {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perfsuite: cannot read hot report {path}: {e}");
            std::process::exit(2);
        });
        let statics = perf::parse_hot_report(&text).unwrap_or_else(|e| {
            eprintln!("perfsuite: hot report {path} unreadable: {e}");
            std::process::exit(2);
        });
        let hidden =
            perf::reconcile_hot_spans(&statics, &spans, perf::HIDDEN_ALLOC_THRESHOLD_BYTES);
        if hidden.is_empty() {
            eprintln!(
                "perfsuite: hot-span reconciliation OK ({} static span(s) against {} measured, \
                 threshold {} bytes)",
                statics.len(),
                spans.len(),
                perf::HIDDEN_ALLOC_THRESHOLD_BYTES
            );
        } else {
            eprintln!("perfsuite: {} hidden allocation(s):", hidden.len());
            for h in &hidden {
                eprintln!(
                    "  span {} ({}): 0 static alloc sites but {} net bytes measured — \
                     hidden allocation (vendored/closure) — annotate or hoist",
                    h.span, h.site, h.net_bytes
                );
            }
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.check {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perfsuite: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline = BenchReport::parse(&text).unwrap_or_else(|e| {
            eprintln!("perfsuite: baseline {path} unreadable: {e}");
            std::process::exit(2);
        });
        let regressions = perf::compare(&baseline, &report, DEFAULT_TOLERANCE);
        if regressions.is_empty() {
            eprintln!(
                "perfsuite: no regression against {path} ({} stages within {:.0}%)",
                baseline.stages.len(),
                DEFAULT_TOLERANCE * 100.0
            );
        } else {
            eprintln!("perfsuite: {} regression(s) against {path}:", regressions.len());
            for r in &regressions {
                eprintln!(
                    "  {}: {:.4}s -> {:.4}s ({:.0}% over baseline)",
                    r.stage,
                    r.baseline_seconds,
                    r.fresh_seconds,
                    (r.ratio() - 1.0) * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}
