//! Figure 5 — UpSet analysis of false positives, GraphNER vs
//! BANNER-ChemDNER on the BC2GM corpus.
//!
//! The paper's shape: substantial quantitative and proportional
//! decreases in *spurious* false positives under GraphNER (chi-square
//! p = 0.029 on the real corpus), i.e. GraphNER's corrections on the
//! noisier corpus are concentrated in the junk category.

use graphner_bench::{run_fp_analysis, RunOptions};
use graphner_corpusgen::{generate, CorpusProfile};

fn main() {
    let opts = RunOptions::from_args();
    let corpus = generate(&CorpusProfile::bc2gm().scaled(opts.scale));
    run_fp_analysis(&corpus, &opts, "Figure 5", "BC2GM");
    graphner_bench::finish(&opts);
}
