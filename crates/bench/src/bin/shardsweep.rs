//! shardsweep — shard-size × active-set ablation for the propagation
//! engine.
//!
//! Runs the sharded Jacobi engine over one deterministic synthetic
//! workload ([`graphner_bench::synth`]) at a ladder of shard sizes,
//! with the active-set scheduler off and on, and prints one table row
//! per configuration: partition shape (shards, boundary edges),
//! median wall-clock over `--iters` runs, sweeps executed, shard
//! sweeps skipped, and the final residual. With the scheduler off
//! every row is checked byte-identical to the first, so the table
//! doubles as a determinism smoke test at whatever `GRAPHNER_THREADS`
//! the process runs under.
//!
//! ```text
//! shardsweep [--vertices N] [--k K] [--sweeps S] [--iters I]
//! ```

use graphner_bench::synth::{synthetic_propagation, SynthPropagation};
use graphner_graph::{
    propagate_partitioned, LabelDist, Partition, PropagationParams, PropagationReport, ShardSize,
};
use graphner_obs::Stopwatch;

struct Args {
    vertices: usize,
    k: usize,
    sweeps: usize,
    iters: usize,
}

fn parse_args() -> Args {
    let mut parsed = Args { vertices: 150_000, k: 8, sweeps: 10, iters: 3 };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--vertices" => {
                i += 1;
                parsed.vertices = args[i].parse().expect("--vertices needs a count");
            }
            "--k" => {
                i += 1;
                parsed.k = args[i].parse().expect("--k needs a count");
            }
            "--sweeps" => {
                i += 1;
                parsed.sweeps = args[i].parse().expect("--sweeps needs a count");
            }
            "--iters" => {
                i += 1;
                parsed.iters = args[i].parse().expect("--iters needs a count");
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    parsed
}

/// Median wall-clock of `iters` runs, plus the report and final
/// beliefs of the last run.
fn time_config(
    w: &SynthPropagation,
    partition: &Partition,
    params: &PropagationParams,
    active_set: bool,
    iters: usize,
) -> (f64, PropagationReport, Vec<LabelDist>) {
    let mut secs = Vec::with_capacity(iters);
    let mut x = w.x0.clone();
    let mut report = None;
    for _ in 0..iters {
        x.copy_from_slice(&w.x0);
        let sw = Stopwatch::start();
        report =
            Some(propagate_partitioned(&w.graph, partition, &mut x, &w.x_ref, params, active_set));
        secs.push(sw.elapsed_seconds());
    }
    secs.sort_by(f64::total_cmp);
    (secs[secs.len() / 2], report.expect("at least one iteration"), x)
}

fn main() {
    let args = parse_args();
    assert!(args.iters > 0, "--iters must be >= 1");
    eprintln!(
        "shardsweep: {} vertices, k={}, {} sweeps, median of {} runs, {} threads",
        args.vertices,
        args.k,
        args.sweeps,
        args.iters,
        rayon::pool_stats().threads,
    );
    let w = synthetic_propagation(args.vertices, args.k, 0x5EED_5EED);
    let params = PropagationParams { iterations: args.sweeps, ..PropagationParams::default() };

    let sizes = [
        ShardSize::Auto,
        ShardSize::Fixed(1024),
        ShardSize::Fixed(4096),
        ShardSize::Fixed(16384),
        ShardSize::Fixed(65536),
    ];

    println!(
        "{:<16} {:>7} {:>12} {:>10} {:>12} {:>10} {:>13}",
        "shard size", "shards", "boundary", "active", "median (s)", "skipped", "residual"
    );
    let mut baseline: Option<Vec<LabelDist>> = None;
    for size in sizes {
        let partition = Partition::new(&w.graph, size);
        for active_set in [false, true] {
            let (median, report, x) = time_config(&w, &partition, &params, active_set, args.iters);
            let label = match size {
                ShardSize::Auto => format!("auto ({})", partition.shard_vertices()),
                ShardSize::Fixed(s) => s.to_string(),
            };
            println!(
                "{:<16} {:>7} {:>12} {:>10} {:>12.4} {:>10} {:>13.3e}",
                label,
                partition.num_shards(),
                partition.boundary_edges(),
                if active_set { "on" } else { "off" },
                median,
                report.shards_skipped,
                report.final_residual,
            );
            if !active_set {
                // every scheduler-off run must be byte-identical,
                // whatever the shard size or thread count
                match &baseline {
                    None => baseline = Some(x),
                    Some(b) => assert!(
                        b.iter()
                            .zip(&x)
                            .all(|(a, c)| a.iter().zip(c).all(|(p, q)| p.to_bits() == q.to_bits())),
                        "shard size {label} diverged from the baseline beliefs"
                    ),
                }
            }
        }
    }
    eprintln!("shardsweep: all scheduler-off configurations byte-identical");
}
