//! Figure 3 — histograms of Influence(v) and |Influencees(v)| over the
//! all-features BC2GM graph.
//!
//! The reproduced shape: heavily right-skewed — most vertices have low
//! influence, a small number act as hubs.

use graphner_bench::{run_corpus_comparison, RunOptions};
use graphner_corpusgen::{generate, CorpusProfile};

fn bar(count: usize, max: usize, width: usize) -> String {
    let n = (count * width).checked_div(max).unwrap_or(0);
    "#".repeat(n)
}

fn main() {
    let opts = RunOptions::from_args();
    let corpus = generate(&CorpusProfile::bc2gm().scaled(opts.scale));
    let run = run_corpus_comparison(&corpus, &opts);
    // use the plain-BANNER GraphNER output's graph statistics
    let stats = &run.graphner_outputs[0].stats;

    println!(
        "\n=== Figure 3: influence histograms, all-features BC2GM graph (scale {}) ===",
        opts.scale
    );
    println!("vertices: {}   edges: {}", stats.num_vertices, stats.num_edges);

    let bins = 20;
    let h = stats.influence_histogram(bins);
    println!("\nInfluence(v):");
    let max = h.counts.iter().copied().max().unwrap_or(0);
    for (i, &c) in h.counts.iter().enumerate() {
        println!(
            "  [{:>7.2}, {:>7.2})  {:>8}  {}",
            i as f64 * h.bin_width,
            (i + 1) as f64 * h.bin_width,
            c,
            bar(c, max, 50)
        );
    }

    let h2 = stats.influencees_histogram(bins);
    println!("\n|Influencees(v)|:");
    let max2 = h2.counts.iter().copied().max().unwrap_or(0);
    for (i, &c) in h2.counts.iter().enumerate() {
        println!(
            "  [{:>7.1}, {:>7.1})  {:>8}  {}",
            i as f64 * h2.bin_width,
            (i + 1) as f64 * h2.bin_width,
            c,
            bar(c, max2, 50)
        );
    }

    // the paper's qualitative claim: most vertices have low influence
    let low = h.counts[..bins / 4].iter().sum::<usize>();
    println!(
        "\nvertices in the lowest quarter of the influence range: {:.1}%",
        100.0 * low as f64 / stats.num_vertices as f64
    );
    graphner_bench::finish(&opts);
}
