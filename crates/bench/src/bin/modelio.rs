//! Save/load round trips for trained GraphNER models.
//!
//! ```text
//! modelio train     --path model.gner [--scale 0.02]   train + save
//! modelio predict   --path model.gner [--scale 0.02]   load + test + score
//! modelio roundtrip [--path model.gner] [--scale 0.02] save→load→compare
//! ```
//!
//! Corpora are regenerated from the seeded BC2GM profile, so `train`
//! and a later `predict` see the same train/test split and `roundtrip`
//! can require byte-identical predictions from the loaded model. The
//! process exits non-zero if the round trip diverges — CI runs this as
//! the persistence smoke test.

use graphner_banner::NerConfig;
use graphner_bench::eval_predictions;
use graphner_core::{load_model, save_model, GraphNer, GraphNerConfig};
use graphner_corpusgen::{generate, CorpusProfile, GeneratedCorpus};
use graphner_crf::{Order, TrainConfig};

struct Args {
    command: String,
    path: String,
    scale: f64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let command = argv.get(1).cloned().unwrap_or_default();
    if !matches!(command.as_str(), "train" | "predict" | "roundtrip") {
        eprintln!("usage: modelio <train|predict|roundtrip> [--path <file>] [--scale <f>]");
        std::process::exit(2);
    }
    let mut args = Args { command, path: "graphner-model.gner".to_string(), scale: 0.02 };
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--path" => {
                i += 1;
                args.path = argv.get(i).expect("--path needs a file").clone();
            }
            "--scale" => {
                i += 1;
                args.scale = argv[i].parse().expect("--scale needs a number");
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn corpus_at(scale: f64) -> GeneratedCorpus {
    generate(&CorpusProfile::bc2gm().scaled(scale))
}

fn quick_cfg() -> NerConfig {
    NerConfig {
        order: Order::One,
        train: TrainConfig { max_iterations: 100, ..Default::default() },
        min_feature_count: 1,
    }
}

fn train(scale: f64) -> (GraphNer, GeneratedCorpus) {
    let corpus = corpus_at(scale);
    let (gner, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    (gner, corpus)
}

fn score(gner: &GraphNer, corpus: &GeneratedCorpus) -> Vec<Vec<graphner_text::BioTag>> {
    let out = gner.test(&corpus.test.without_tags());
    let (eval, _) = eval_predictions(&corpus.test, &corpus.test_gold, &out.predictions);
    println!(
        "graphner F = {:.2}% (P {:.2}%, R {:.2}%) on {} test sentences",
        eval.f_score() * 100.0,
        eval.precision() * 100.0,
        eval.recall() * 100.0,
        corpus.test.len()
    );
    out.predictions
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "train" => {
            let (gner, corpus) = train(args.scale);
            score(&gner, &corpus);
            save_model(&gner, &args.path).expect("save model");
            let bytes = std::fs::metadata(&args.path).map(|m| m.len()).unwrap_or(0);
            println!("saved model to {} ({bytes} bytes)", args.path);
        }
        "predict" => {
            let gner = match load_model(&args.path) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("failed to load {}: {e}", args.path);
                    std::process::exit(1);
                }
            };
            println!(
                "loaded model from {} ({} labelled vertices)",
                args.path,
                gner.num_labelled_vertices()
            );
            let corpus = corpus_at(args.scale);
            score(&gner, &corpus);
        }
        "roundtrip" => {
            let (gner, corpus) = train(args.scale);
            let before = score(&gner, &corpus);
            save_model(&gner, &args.path).expect("save model");
            let loaded = load_model(&args.path).expect("load model");
            let after = score(&loaded, &corpus);
            let _ = std::fs::remove_file(&args.path);
            if before == after {
                println!("round trip OK: predictions identical");
            } else {
                eprintln!("round trip FAILED: loaded model predictions diverge");
                std::process::exit(1);
            }
        }
        _ => unreachable!(),
    }
}
