//! Table III — effect of the vertex representation used in graph
//! construction, on the BC2GM profile.
//!
//! For each base CRF (BANNER, BANNER-ChemDNER), GraphNER is re-run with
//! All-features, Lexical-features, and MI-thresholded representations,
//! plus the K = 5 variant of the All-features graph. The reproduced
//! shape: All ≥ Lexical ≥ MI-thresholded, all above the baseline, and
//! K = 5 marginally below K = 10.

use graphner_banner::DistributionalResources;
use graphner_bench::{eval_predictions, RunOptions};
use graphner_core::{GraphFeatureSet, GraphNer, GraphNerConfig, TestSession};
use graphner_corpusgen::{generate, CorpusProfile};

fn main() {
    let opts = RunOptions::from_args();
    let profile = CorpusProfile::bc2gm().scaled(opts.scale);
    graphner_obs::obs_summary!(
        "BC2GM profile, {} train / {} test sentences",
        profile.train_sentences,
        profile.test_sentences
    );
    let corpus = generate(&profile);
    let test_unlabelled = corpus.test.without_tags();
    let mut unlabelled = corpus.train.without_tags();
    unlabelled.sentences.extend(test_unlabelled.sentences.iter().cloned());

    println!(
        "\n=== Table III: effect of vertex representations (BC2GM profile, scale {}) ===",
        opts.scale
    );
    println!("{:<18} {:<22} {:>4} {:>10}", "CRF Model", "Vector-Representation", "K", "F-Score(%)");

    for chemdner in [false, true] {
        let dist = if chemdner {
            Some(DistributionalResources::train(&unlabelled, &opts.distributional_config()))
        } else {
            None
        };
        let base_name = if chemdner { "BANNER-ChemDNER" } else { "BANNER" };
        let (gner, _) = GraphNer::train(
            &corpus.train,
            &opts.ner_config(),
            dist,
            GraphNerConfig::table_iv(&corpus.profile.name, chemdner),
        );

        // one session per base model: every ablation row below reuses
        // the cached corpus posteriors, and the K = 5 row reuses the
        // All-features PMI vectors
        let mut session = TestSession::new(&gner, &test_unlabelled);

        // baseline row
        {
            let out = session.run(gner.config());
            let (base_eval, _) =
                eval_predictions(&corpus.test, &corpus.test_gold, &out.base_predictions);
            println!(
                "{:<18} {:<22} {:>4} {:>10.2}",
                base_name,
                "- (baseline)",
                "-",
                base_eval.f_score() * 100.0
            );
        }

        let variants: Vec<(GraphFeatureSet, usize)> = vec![
            (GraphFeatureSet::All, 10),
            (GraphFeatureSet::Lexical, 10),
            (GraphFeatureSet::MiThreshold(0.005), 10),
            (GraphFeatureSet::MiThreshold(0.01), 10),
            (GraphFeatureSet::All, 5),
        ];
        for (feature_set, k) in variants {
            let cfg = GraphNerConfig {
                feature_set,
                k,
                ..GraphNerConfig::table_iv(&corpus.profile.name, chemdner)
            };
            let out = session.run(&cfg);
            let (eval, _) = eval_predictions(&corpus.test, &corpus.test_gold, &out.predictions);
            println!(
                "{:<18} {:<22} {:>4} {:>10.2}",
                base_name,
                feature_set.name(),
                k,
                eval.f_score() * 100.0
            );
        }
    }
    graphner_bench::finish(&opts);
}
