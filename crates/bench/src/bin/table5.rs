//! Table V — significance testing of the results with sigf.
//!
//! Runs the eight null hypotheses of the paper through the
//! approximate-randomization test (10 000 shuffles): F-score on both
//! corpora for both base models, plus recall and precision on AML. The
//! reproduced shape: F-score differences significant on BC2GM;
//! precision differences significant on AML while recall differences
//! are not.

use graphner_bench::{run_corpus_comparison, RunOptions};
use graphner_corpusgen::{generate, CorpusProfile};
use graphner_eval::{sigf, Metric};

fn main() {
    let opts = RunOptions::from_args();
    println!(
        "\n=== Table V: null hypotheses tested with sigf (10 000 repetitions, scale {}) ===",
        opts.scale
    );
    println!("{:<86} {:>10}", "null hypothesis", "p-value");

    for profile in [CorpusProfile::bc2gm(), CorpusProfile::aml()] {
        let corpus = generate(&profile.scaled(opts.scale));
        let run = run_corpus_comparison(&corpus, &opts);
        let sys = |name: &str| run.systems.iter().find(|s| s.name == name).unwrap();

        let pairs = [
            ("BANNER", "GraphNER (CRF=BANNER)"),
            ("BANNER-ChemDNER", "GraphNER (CRF=BANNER-ChemDNER)"),
        ];
        for (base, graph) in pairs {
            let metrics: &[Metric] = if corpus.profile.name == "AML" {
                &[Metric::FScore, Metric::Recall, Metric::Precision]
            } else {
                &[Metric::FScore]
            };
            for &metric in metrics {
                let r = sigf(&sys(base).eval, &sys(graph).eval, metric, 10_000, 0x516F);
                println!(
                    "{:<86} {:>10}  (observed |Δ| = {:.4})",
                    format!(
                        "{base} and GraphNER with {base} has the same {} on {} corpus",
                        metric.name(),
                        corpus.profile.name
                    ),
                    format_p(r.p_value),
                    r.observed_diff
                );
            }
        }
    }
    graphner_bench::finish(&opts);
}

fn format_p(p: f64) -> String {
    if p < 1e-4 {
        "< 1e-4".to_string()
    } else {
        format!("{p:.4}")
    }
}
