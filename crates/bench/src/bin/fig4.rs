//! Figure 4 — UpSet analysis of false positives, GraphNER vs
//! BANNER-ChemDNER on the AML corpus, with the §III-E chi-square test.
//!
//! The paper's shape: no significant difference in the gene-related
//! proportion on AML (p = 0.56); GraphNER's precision gain there is a
//! quantitative reduction in total annotations rather than a change in
//! error quality.

use graphner_bench::{run_fp_analysis, RunOptions};
use graphner_corpusgen::{generate, CorpusProfile};

fn main() {
    let opts = RunOptions::from_args();
    let corpus = generate(&CorpusProfile::aml().scaled(opts.scale));
    run_fp_analysis(&corpus, &opts, "Figure 4", "AML");
    graphner_bench::finish(&opts);
}
