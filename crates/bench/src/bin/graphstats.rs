//! §III-D — statistics of the all-features graphs for both corpora:
//! vertex counts, labelled / positively-labelled percentages, degrees,
//! and weak connectivity, plus the shard balance of the propagation
//! partition the pipeline ran with.
//!
//! The paper's shape: comparable vertex counts, high labelled
//! percentage (transductive setting), low positive percentage — much
//! lower for AML than BC2GM — out-degree exactly K, weakly connected.

use graphner_bench::{run_corpus_comparison, RunOptions};
use graphner_core::GraphStats;
use graphner_corpusgen::{generate, CorpusProfile};

/// Print the per-shard vertex/edge/boundary-edge balance of the
/// partition one corpus's propagation swept over.
fn print_shard_balance(name: &str, stats: &GraphStats) {
    println!(
        "\n--- {name}: propagation partition ({} shards of <= {} vertices, {} boundary edges) ---",
        stats.shard_balance.len(),
        stats.shard_vertices,
        stats.boundary_edges,
    );
    println!("{:<8} {:>10} {:>10} {:>10} {:>10}", "shard", "vertices", "edges", "boundary", "%cut");
    for (i, b) in stats.shard_balance.iter().enumerate() {
        let pct_cut = if b.edges == 0 { 0.0 } else { b.boundary_edges as f64 / b.edges as f64 };
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>9.1}%",
            i,
            b.vertices,
            b.edges,
            b.boundary_edges,
            pct_cut * 100.0
        );
    }
}

fn main() {
    let opts = RunOptions::from_args();
    println!("\n=== Graph statistics (section III-D, scale {}) ===", opts.scale);
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "Corpus", "vertices", "edges", "%labelled", "%positive", "components", "largest comp."
    );
    let mut all_stats: Vec<(String, GraphStats)> = Vec::new();
    for profile in [CorpusProfile::bc2gm(), CorpusProfile::aml()] {
        let corpus = generate(&profile.scaled(opts.scale));
        let run = run_corpus_comparison(&corpus, &opts);
        let stats = &run.graphner_outputs[0].stats;
        println!(
            "{:<8} {:>10} {:>10} {:>12.1} {:>12.2} {:>12} {:>14}",
            corpus.profile.name,
            stats.num_vertices,
            stats.num_edges,
            stats.pct_labelled * 100.0,
            stats.pct_positive * 100.0,
            stats.components,
            stats.largest_component
        );
        all_stats.push((corpus.profile.name.to_string(), stats.clone()));
    }
    for (name, stats) in &all_stats {
        print_shard_balance(name, stats);
    }
    graphner_bench::finish(&opts);
}
