//! §III-D — statistics of the all-features graphs for both corpora:
//! vertex counts, labelled / positively-labelled percentages, degrees,
//! and weak connectivity.
//!
//! The paper's shape: comparable vertex counts, high labelled
//! percentage (transductive setting), low positive percentage — much
//! lower for AML than BC2GM — out-degree exactly K, weakly connected.

use graphner_bench::{run_corpus_comparison, RunOptions};
use graphner_corpusgen::{generate, CorpusProfile};

fn main() {
    let opts = RunOptions::from_args();
    println!("\n=== Graph statistics (section III-D, scale {}) ===", opts.scale);
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "Corpus", "vertices", "edges", "%labelled", "%positive", "components", "largest comp."
    );
    for profile in [CorpusProfile::bc2gm(), CorpusProfile::aml()] {
        let corpus = generate(&profile.scaled(opts.scale));
        let run = run_corpus_comparison(&corpus, &opts);
        let stats = &run.graphner_outputs[0].stats;
        println!(
            "{:<8} {:>10} {:>10} {:>12.1} {:>12.2} {:>12} {:>14}",
            corpus.profile.name,
            stats.num_vertices,
            stats.num_edges,
            stats.pct_labelled * 100.0,
            stats.pct_positive * 100.0,
            stats.components,
            stats.largest_component
        );
    }
    graphner_bench::finish(&opts);
}
