//! The experiment pipeline shared by all table/figure binaries.

use graphner_banner::{DistributionalConfig, DistributionalResources, NerConfig};
use graphner_core::{annotations_from_predictions, GraphNer, GraphNerConfig, TestOutput};
use graphner_corpusgen::GeneratedCorpus;
use graphner_crf::{Order, TrainConfig};
use graphner_embed::{BrownConfig, KMeansConfig, SgnsConfig};
use graphner_eval::{evaluate, Evaluation};
use graphner_obs::obs_summary;
use graphner_text::{AnnotationSet, BioTag, Corpus};

/// Command-line options common to every experiment binary.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Corpus scale factor relative to the paper's sizes.
    pub scale: f64,
    /// Include the (slow) LSTM-CRF neural baseline.
    pub with_neural: bool,
    /// CRF order (the paper's headline tables use order 2).
    pub order: Order,
    /// Number of generator seeds to average over.
    pub seeds: usize,
    /// Write the global metric registry as JSONL to this path on
    /// [`finish`].
    pub metrics_out: Option<String>,
    /// Write the run's span tree as Chrome-trace JSON (openable in
    /// Perfetto) to this path on [`finish`].
    pub trace_out: Option<String>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            scale: 0.08,
            with_neural: false,
            order: Order::One,
            seeds: 3,
            metrics_out: None,
            trace_out: None,
        }
    }
}

impl RunOptions {
    /// Parse `--full`, `--scale <f>`, `--with-neural`, `--order2`,
    /// `--seeds <n>`, `--metrics-out <path>`, `--trace-out <path>`
    /// from `std::env::args`.
    pub fn from_args() -> RunOptions {
        let mut opts = RunOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.scale = 1.0,
                "--scale" => {
                    i += 1;
                    opts.scale = args[i].parse().expect("--scale needs a number");
                }
                "--with-neural" => opts.with_neural = true,
                "--order2" => opts.order = Order::Two,
                "--seeds" => {
                    i += 1;
                    opts.seeds = args[i].parse().expect("--seeds needs a number");
                }
                "--metrics-out" => {
                    i += 1;
                    opts.metrics_out =
                        Some(args.get(i).expect("--metrics-out needs a path").clone());
                }
                "--trace-out" => {
                    i += 1;
                    opts.trace_out = Some(args.get(i).expect("--trace-out needs a path").clone());
                }
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        opts
    }

    /// Base-CRF configuration at this run's quality level.
    pub fn ner_config(&self) -> NerConfig {
        NerConfig {
            order: self.order,
            train: TrainConfig {
                l2: 1.0,
                max_iterations: if self.scale >= 0.5 { 200 } else { 120 },
                ..Default::default()
            },
            min_feature_count: if self.scale >= 0.5 { 2 } else { 1 },
        }
    }

    /// Distributional-feature configuration for BANNER-ChemDNER.
    pub fn distributional_config(&self) -> DistributionalConfig {
        DistributionalConfig {
            brown: BrownConfig { num_clusters: 40, min_count: 2 },
            sgns: SgnsConfig { dim: 32, epochs: 3, min_count: 2, ..Default::default() },
            kmeans: KMeansConfig { k: 24, ..Default::default() },
        }
    }
}

/// Snapshot the worker pool's counters into the global metric registry:
/// `rayon.pool.threads` (gauge), `rayon.pool.jobs`, `rayon.pool.chunks`,
/// `rayon.pool.chunks_on_workers`, and one `rayon.pool.idle_wait.*`
/// counter per histogram bucket.
pub fn publish_pool_metrics() {
    let stats = rayon::pool_stats();
    graphner_obs::gauge("rayon.pool.threads").set(stats.threads as f64);
    graphner_obs::counter("rayon.pool.jobs").add(stats.jobs_submitted);
    graphner_obs::counter("rayon.pool.chunks").add(stats.chunks_executed);
    graphner_obs::counter("rayon.pool.chunks_on_workers").add(stats.chunks_on_workers);
    for (i, &count) in stats.idle_waits.iter().enumerate() {
        let name = match rayon::IDLE_BUCKET_EDGES_US.get(i) {
            Some(edge) => format!("rayon.pool.idle_wait.le_{edge}us"),
            None => "rayon.pool.idle_wait.inf".to_string(),
        };
        graphner_obs::counter(&name).add(count);
    }
}

/// End-of-run observability flush, called last by every experiment
/// binary: publishes the worker-pool counters, writes the accumulated
/// global metrics as JSONL when `--metrics-out <path>` was given, and
/// exports the run's span tree as Chrome-trace JSON when
/// `--trace-out <path>` was given (clock selected by
/// `GRAPHNER_TRACE_CLOCK`; open the file in Perfetto).
pub fn finish(opts: &RunOptions) {
    if let Some(path) = &opts.metrics_out {
        publish_pool_metrics();
        let jsonl = graphner_obs::Registry::global().export_jsonl();
        std::fs::write(path, jsonl).expect("write --metrics-out file");
        obs_summary!("metrics written to {path}");
    }
    if let Some(path) = &opts.trace_out {
        let spans = graphner_obs::span::drain();
        let clock = graphner_obs::TraceClock::from_env();
        let json = graphner_obs::chrome_trace_json(&spans, clock);
        std::fs::write(path, json).expect("write --trace-out file");
        obs_summary!("trace ({} spans) written to {path}", spans.len());
    }
}

/// One evaluated system.
#[derive(Clone, Debug)]
pub struct SystemResult {
    /// Row label as it appears in the paper's tables.
    pub name: String,
    /// BC2-style evaluation against the corpus gold.
    pub eval: Evaluation,
    /// The system's detections (for sigf pairing and UpSet analysis).
    pub detections: AnnotationSet,
}

/// Everything a corpus-level experiment produces.
pub struct CorpusRun {
    /// The generated corpus.
    pub corpus: GeneratedCorpus,
    /// Evaluated systems, in table order.
    pub systems: Vec<SystemResult>,
    /// The GraphNER test outputs keyed parallel to `graphner_names`.
    pub graphner_outputs: Vec<TestOutput>,
    /// Names of the GraphNER variants in `graphner_outputs`.
    pub graphner_names: Vec<String>,
}

/// Evaluate predicted tags for `test` against its gold annotation set.
pub fn eval_predictions(
    test: &Corpus,
    gold: &AnnotationSet,
    predictions: &[Vec<BioTag>],
) -> (Evaluation, AnnotationSet) {
    let detections = annotations_from_predictions(test, predictions);
    (evaluate(&detections, gold), detections)
}

/// Train BANNER and BANNER-ChemDNER (plus GraphNER over each) on a
/// generated corpus and evaluate all four systems on its test set.
pub fn run_corpus_comparison(corpus: &GeneratedCorpus, opts: &RunOptions) -> CorpusRun {
    let test_unlabelled = corpus.test.without_tags();
    let gold = &corpus.test_gold;
    let mut systems = Vec::new();
    let mut graphner_outputs = Vec::new();
    let mut graphner_names = Vec::new();

    // unlabelled pool for distributional features: the corpus text plus
    // twice as much freshly generated unlabelled text ("abundant
    // unlabelled data", as BANNER-ChemDNER uses)
    let mut unlabelled = corpus.train.without_tags();
    unlabelled.sentences.extend(test_unlabelled.sentences.iter().cloned());
    let extra = graphner_corpusgen::generate_unlabelled(
        &corpus.profile,
        corpus.train.len() * 2,
        corpus.profile.seed ^ 0x0F0F,
    );
    unlabelled.sentences.extend(extra.sentences);

    for chemdner in [false, true] {
        let dist = if chemdner {
            Some(DistributionalResources::train(&unlabelled, &opts.distributional_config()))
        } else {
            None
        };
        let base_name = if chemdner { "BANNER-ChemDNER".to_string() } else { "BANNER".to_string() };
        let gcfg = GraphNerConfig::table_iv(&corpus.profile.name, chemdner);
        let (gner, _train_out) = GraphNer::train(&corpus.train, &opts.ner_config(), dist, gcfg);
        let out = gner.test(&test_unlabelled);

        let (base_eval, base_det) = eval_predictions(&corpus.test, gold, &out.base_predictions);
        systems.push(SystemResult {
            name: base_name.clone(),
            eval: base_eval,
            detections: base_det,
        });

        let (g_eval, g_det) = eval_predictions(&corpus.test, gold, &out.predictions);
        let g_name = format!("GraphNER (CRF={base_name})");
        systems.push(SystemResult { name: g_name.clone(), eval: g_eval, detections: g_det });
        graphner_names.push(g_name);
        graphner_outputs.push(out);
    }

    CorpusRun { corpus: clone_generated(corpus), systems, graphner_outputs, graphner_names }
}

fn clone_generated(c: &GeneratedCorpus) -> GeneratedCorpus {
    c.clone()
}

/// Train and evaluate the LSTM-CRF neural baseline (slow).
pub fn run_neural_baseline(corpus: &GeneratedCorpus, opts: &RunOptions) -> SystemResult {
    use graphner_neural::{LstmCrfConfig, TrainedLstmCrf};
    // the paper splits train 80/20 into train/dev for the neural systems
    let split = corpus.train.split(0.8, 12_000);
    let cfg = LstmCrfConfig {
        epochs: if opts.scale >= 0.5 { 12 } else { 8 },
        hidden: 48,
        word_dim: 32,
        char_dim: 12,
        char_hidden: 12,
        ..Default::default()
    };
    let model = TrainedLstmCrf::train(&split.train, &split.test, &cfg);
    // TrainedLstmCrf is a Tagger, so the predict/convert/evaluate glue
    // collapses into the shared one-call path
    let (eval, detections) =
        graphner_eval::evaluate_tagger(&model, &corpus.test, &corpus.test_gold);
    SystemResult { name: "LSTM-CRF".to_string(), eval, detections }
}

/// Mean metrics of one system across seeds.
#[derive(Clone, Debug)]
pub struct MeanResult {
    /// Row label.
    pub name: String,
    /// Mean precision over seeds.
    pub precision: f64,
    /// Mean recall over seeds.
    pub recall: f64,
    /// Mean F-score over seeds.
    pub f_score: f64,
}

/// Average per-system results across several seeded corpus runs.
/// All runs must contain the same systems in the same order.
pub fn mean_over_seeds(runs: &[Vec<SystemResult>]) -> Vec<MeanResult> {
    assert!(!runs.is_empty());
    let n_sys = runs[0].len();
    let mut out = Vec::with_capacity(n_sys);
    for s in 0..n_sys {
        let name = runs[0][s].name.clone();
        let k = runs.len() as f64;
        let precision = runs.iter().map(|r| r[s].eval.precision()).sum::<f64>() / k;
        let recall = runs.iter().map(|r| r[s].eval.recall()).sum::<f64>() / k;
        let f_score = runs.iter().map(|r| r[s].eval.f_score()).sum::<f64>() / k;
        out.push(MeanResult { name, precision, recall, f_score });
    }
    out
}

/// A corpus profile with its seed varied per run.
pub fn reseeded(
    mut profile: graphner_corpusgen::CorpusProfile,
    run: usize,
) -> graphner_corpusgen::CorpusProfile {
    profile.seed = profile.seed.wrapping_add(run as u64 * 0x9E37);
    profile
}

/// Print a table header matching the paper's format.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
    println!("{:<34} {:>12} {:>10} {:>10}", "Method", "Precision(%)", "Recall(%)", "F-Score(%)");
}

/// Print one result row.
pub fn print_row(r: &SystemResult) {
    println!(
        "{:<34} {:>12.2} {:>10.2} {:>10.2}",
        r.name,
        r.eval.precision() * 100.0,
        r.eval.recall() * 100.0,
        r.eval.f_score() * 100.0
    );
}

/// Print one seed-averaged row.
pub fn print_mean_row(r: &MeanResult) {
    println!(
        "{:<34} {:>12.2} {:>10.2} {:>10.2}",
        r.name,
        r.precision * 100.0,
        r.recall * 100.0,
        r.f_score * 100.0
    );
}

/// False-positive UpSet analysis shared by the Figure 4 / Figure 5
/// binaries: categorize each system's FPs with the generator oracle,
/// print the exclusive intersections, and run the §III-E chi-square
/// proportion test. Both base models are analyzed — the paper's figures
/// use BANNER-ChemDNER, but in the synthetic corpora that variant's
/// distributional features memorize the spurious vocabulary from the
/// unlabelled pool, so the plain-BANNER panel is where the spurious-FP
/// category is visible.
pub fn run_fp_analysis(
    corpus: &GeneratedCorpus,
    opts: &RunOptions,
    figure: &str,
    corpus_name: &str,
) {
    use graphner_eval::{
        false_positives, prop_test, render_upset, upset, Category, CategoryCounts,
    };
    use rustc_hash::FxHashSet;

    let run = run_corpus_comparison(corpus, opts);
    println!(
        "\n=== {figure}: false-positive UpSet analysis ({corpus_name} profile, scale {}) ===",
        opts.scale
    );
    let oracle = |text: &str| corpus.lexicon.is_gene_related(text);
    let mk_set = |fps: &[graphner_eval::ErrorCall], cat: Category| -> FxHashSet<String> {
        fps.iter()
            .filter(|c| c.category == cat)
            .map(|c| format!("{}:{}-{}", c.sentence_id, c.span.0, c.span.1))
            .collect()
    };

    for base_name in ["BANNER", "BANNER-ChemDNER"] {
        let graph_name = format!("GraphNER (CRF={base_name})");
        let base = run.systems.iter().find(|s| s.name == base_name).unwrap();
        let graph = run.systems.iter().find(|s| s.name == graph_name).unwrap();
        let base_fps = false_positives(&base.detections, &corpus.test_gold, oracle);
        let graph_fps = false_positives(&graph.detections, &corpus.test_gold, oracle);

        let bc = CategoryCounts::tally(&base_fps);
        let gc = CategoryCounts::tally(&graph_fps);
        println!(
            "\n--- GraphNER vs {base_name} ---\n{base_name} FPs: {} (gene-related {}, spurious {})",
            bc.total(),
            bc.gene_related,
            bc.spurious
        );
        println!(
            "GraphNER FPs: {} (gene-related {}, spurious {})",
            gc.total(),
            gc.gene_related,
            gc.spurious
        );

        let sets = vec![
            (format!("{base_name}/gene-related"), mk_set(&base_fps, Category::GeneRelated)),
            (format!("{base_name}/spurious"), mk_set(&base_fps, Category::Spurious)),
            ("GraphNER/gene-related".to_string(), mk_set(&graph_fps, Category::GeneRelated)),
            ("GraphNER/spurious".to_string(), mk_set(&graph_fps, Category::Spurious)),
        ];
        println!("Exclusive intersection regions (UpSet bars):");
        print!("{}", render_upset(&upset(&sets)));

        if bc.total() > 0 && gc.total() > 0 {
            let t = prop_test(bc.gene_related, bc.total(), gc.gene_related, gc.total());
            println!(
                "chi-square test of gene-related FP proportion: X\u{00b2} = {:.3}, p = {:.3} (p1 = {:.2}, p2 = {:.2})",
                t.statistic, t.p_value, t.p1, t.p2
            );
        } else {
            println!("too few false positives for the proportion test at this scale");
        }
    }
}
