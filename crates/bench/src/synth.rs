//! Deterministic synthetic propagation workloads.
//!
//! The propagation-at-scale benchmarks (`perfsuite`'s sharded
//! propagate stages, the `shardsweep` bin) need graphs far larger than
//! the scaled-down synthetic corpora produce, and they need the exact
//! same graph in every process so subprocess measurements at different
//! `GRAPHNER_THREADS` are comparable. This module builds one from a
//! seeded LCG: a k-regular-out-degree directed graph with uniform
//! random targets, random simplex beliefs, and every fourth vertex
//! carrying a reference distribution.

use graphner_graph::{KnnGraph, LabelDist};

/// One ready-to-propagate synthetic workload.
pub struct SynthPropagation {
    /// The graph (out-degree `k` for every vertex).
    pub graph: KnnGraph,
    /// Initial beliefs, one simplex row per vertex.
    pub x0: Vec<LabelDist>,
    /// Reference distributions on every fourth vertex.
    pub x_ref: Vec<Option<LabelDist>>,
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants); the high 32 bits
/// feed every draw.
struct Lcg(u64);

impl Lcg {
    fn next_u32(&mut self) -> u32 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 32) as u32
    }

    /// Uniform draw in `[0, bound)`.
    fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound
    }

    /// Uniform draw in `(0, 1]`.
    fn unit_f64(&mut self) -> f64 {
        (self.below(1_000_000) + 1) as f64 / 1_000_000.0
    }
}

/// Build a synthetic propagation workload of `n` vertices with
/// out-degree `k`, fully determined by `seed`.
pub fn synthetic_propagation(n: usize, k: usize, seed: u64) -> SynthPropagation {
    assert!(n >= 2, "need at least two vertices to draw distinct neighbours");
    let mut rng = Lcg(seed);
    let adj: Vec<Vec<(u32, f32)>> = (0..n as u32)
        .map(|i| {
            (0..k)
                .map(|_| {
                    let mut nb = rng.below(n as u32);
                    if nb == i {
                        nb = (nb + 1) % n as u32;
                    }
                    (nb, rng.unit_f64() as f32)
                })
                .collect()
        })
        .collect();
    let graph = KnnGraph::from_adjacency(adj, k);
    let x0: Vec<LabelDist> = (0..n)
        .map(|_| {
            let a = rng.unit_f64();
            let b = rng.unit_f64();
            let c = rng.unit_f64();
            let z = a + b + c;
            [a / z, b / z, c / z]
        })
        .collect();
    let x_ref: Vec<Option<LabelDist>> = (0..n)
        .map(|i| {
            (i % 4 == 0).then(|| {
                let a = 0.5 + rng.unit_f64() / 2.0;
                let rest = (1.0 - a) / 2.0;
                [a, rest, rest]
            })
        })
        .collect();
    SynthPropagation { graph, x0, x_ref }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let a = synthetic_propagation(500, 4, 7);
        let b = synthetic_propagation(500, 4, 7);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for v in 0..500u32 {
            assert_eq!(
                a.graph.neighbors(v).collect::<Vec<_>>(),
                b.graph.neighbors(v).collect::<Vec<_>>()
            );
        }
        assert_eq!(a.x0, b.x0);
        assert_eq!(a.x_ref, b.x_ref);
    }

    #[test]
    fn workload_is_well_formed() {
        let w = synthetic_propagation(1000, 8, 42);
        assert_eq!(w.graph.num_vertices(), 1000);
        assert_eq!(w.graph.num_edges(), 8000);
        for row in &w.x0 {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        let labelled = w.x_ref.iter().filter(|r| r.is_some()).count();
        assert_eq!(labelled, 250);
        for r in w.x_ref.iter().flatten() {
            let s: f64 = r.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(r[0] >= 0.5);
        }
    }
}
