//! CRF state spaces for first- and second-order chains.
//!
//! The paper reports results with CRFs of order 1 and order 2 ("tᵢ
//! depends on x and the previous d labels"). A second-order chain over
//! the BIO tag set is realized as a first-order chain whose states are
//! *tag pairs* `(tᵢ₋₁, tᵢ)`, with transitions constrained so consecutive
//! pairs agree on the shared tag. Everything downstream (inference,
//! training) is written against this generic state space.

use graphner_text::{BioTag, NUM_TAGS};

/// Markov order of the chain CRF.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// `tᵢ` depends on `tᵢ₋₁`.
    One,
    /// `tᵢ` depends on `tᵢ₋₁` and `tᵢ₋₂`.
    Two,
}

/// A concrete state space: the mapping between chain states and BIO tags.
#[derive(Clone, Debug)]
pub struct StateSpace {
    order: Order,
    /// `allowed_prev[s]` lists the states that may precede `s`.
    allowed_prev: Vec<Vec<u32>>,
    /// `allowed_next[s]` lists the states that may follow `s`.
    allowed_next: Vec<Vec<u32>>,
}

impl StateSpace {
    /// Build the state space for a given order.
    pub fn new(order: Order) -> StateSpace {
        let n = match order {
            Order::One => NUM_TAGS,
            Order::Two => NUM_TAGS * NUM_TAGS,
        };
        let mut allowed_prev = vec![Vec::new(); n];
        let mut allowed_next = vec![Vec::new(); n];
        for prev in 0..n {
            for cur in 0..n {
                let ok = match order {
                    Order::One => true,
                    // pair (a,b) -> (b',c) requires b == b'
                    Order::Two => prev % NUM_TAGS == cur / NUM_TAGS,
                };
                if ok {
                    allowed_prev[cur].push(prev as u32);
                    allowed_next[prev].push(cur as u32);
                }
            }
        }
        StateSpace { order, allowed_prev, allowed_next }
    }

    /// The chain order.
    pub fn order(&self) -> Order {
        self.order
    }

    /// Number of chain states (3 for order 1, 9 for order 2).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.allowed_prev.len()
    }

    /// The BIO tag a chain state assigns to the current position.
    #[inline]
    pub fn tag_of(&self, state: usize) -> usize {
        match self.order {
            Order::One => state,
            Order::Two => state % NUM_TAGS,
        }
    }

    /// States that may precede `state`.
    #[inline]
    pub fn prev_states(&self, state: usize) -> &[u32] {
        &self.allowed_prev[state]
    }

    /// States that may follow `state`.
    #[inline]
    pub fn next_states(&self, state: usize) -> &[u32] {
        &self.allowed_next[state]
    }

    /// Whether `state` is valid at the first position of a sentence.
    /// Order-2 states encode the previous tag, which is defined to be `O`
    /// at sentence start.
    #[inline]
    pub fn initial_allowed(&self, state: usize) -> bool {
        match self.order {
            Order::One => true,
            Order::Two => state / NUM_TAGS == BioTag::O.index(),
        }
    }

    /// The chain state of the gold path at position `i`.
    pub fn gold_state(&self, tags: &[BioTag], i: usize) -> usize {
        match self.order {
            Order::One => tags[i].index(),
            Order::Two => {
                let prev = if i == 0 { BioTag::O } else { tags[i - 1] };
                prev.index() * NUM_TAGS + tags[i].index()
            }
        }
    }

    /// Decode a chain-state path back into BIO tags.
    pub fn states_to_tags(&self, states: &[usize]) -> Vec<BioTag> {
        // alloc: one exact-size result Vec per decoded sentence
        states.iter().map(|&s| BioTag::from_index(self.tag_of(s))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BioTag::*;

    #[test]
    fn order1_all_transitions_allowed() {
        let sp = StateSpace::new(Order::One);
        assert_eq!(sp.num_states(), 3);
        for s in 0..3 {
            assert_eq!(sp.prev_states(s).len(), 3);
            assert_eq!(sp.next_states(s).len(), 3);
            assert!(sp.initial_allowed(s));
            assert_eq!(sp.tag_of(s), s);
        }
    }

    #[test]
    fn order2_pair_consistency() {
        let sp = StateSpace::new(Order::Two);
        assert_eq!(sp.num_states(), 9);
        for cur in 0..9 {
            for &prev in sp.prev_states(cur) {
                assert_eq!(prev as usize % NUM_TAGS, cur / NUM_TAGS);
            }
            assert_eq!(sp.prev_states(cur).len(), 3);
            assert_eq!(sp.next_states(cur).len(), 3);
        }
    }

    #[test]
    fn order2_initial_states_have_o_context() {
        let sp = StateSpace::new(Order::Two);
        let initial: Vec<usize> = (0..9).filter(|&s| sp.initial_allowed(s)).collect();
        // (O, B), (O, I), (O, O)
        let o = O.index();
        assert_eq!(initial, vec![o * 3, o * 3 + 1, o * 3 + 2]);
    }

    #[test]
    fn gold_states_round_trip() {
        let tags = vec![O, B, I, O];
        for order in [Order::One, Order::Two] {
            let sp = StateSpace::new(order);
            let states: Vec<usize> = (0..tags.len()).map(|i| sp.gold_state(&tags, i)).collect();
            assert_eq!(sp.states_to_tags(&states), tags);
            // consecutive gold states must be allowed transitions
            for w in states.windows(2) {
                assert!(sp.prev_states(w[1]).contains(&(w[0] as u32)));
            }
            assert!(sp.initial_allowed(states[0]));
        }
    }

    #[test]
    fn order2_gold_state_encodes_pair() {
        let sp = StateSpace::new(Order::Two);
        let tags = vec![B, I];
        assert_eq!(sp.gold_state(&tags, 0), O.index() * 3 + B.index());
        assert_eq!(sp.gold_state(&tags, 1), B.index() * 3 + I.index());
    }
}

#[cfg(test)]
mod order_comparison_tests {
    use crate::model::{ChainCrf, SentenceFeatures};
    use crate::statespace::Order;
    use crate::train::TrainConfig;
    use graphner_text::BioTag::{self, *};

    /// A pattern only a second-order model can express: the tag of the
    /// third token depends on the tag *two* positions back, while every
    /// token shares one uninformative observation feature.
    fn second_order_data() -> Vec<SentenceFeatures> {
        let mk = |first: u32, tags: Vec<BioTag>| SentenceFeatures {
            // position 0 carries a distinguishing feature; positions 1-2
            // are identical across sentences
            obs: vec![vec![first], vec![9], vec![9]],
            gold: Some(tags),
        };
        let mut data = Vec::new();
        for _ in 0..4 {
            // "B O ?" -> ? = B   vs "O O ?" -> ? = O
            data.push(mk(0, vec![B, O, B]));
            data.push(mk(1, vec![O, O, O]));
        }
        data
    }

    #[test]
    fn order2_expresses_skip_dependency_order1_cannot() {
        let data = second_order_data();
        let fit = |order: Order| -> usize {
            let mut crf = ChainCrf::new(order, 10);
            crf.train(&data, &TrainConfig { l2: 0.01, max_iterations: 200, ..Default::default() });
            data.iter().filter(|s| &crf.viterbi(s) == s.gold.as_ref().unwrap()).count()
        };
        let order2_correct = fit(Order::Two);
        assert_eq!(order2_correct, data.len(), "order 2 must fit the skip pattern");
        // order 1 cannot separate the two third-token outcomes: the
        // second token is O in both patterns and observations at
        // position 2 are identical
        let order1_correct = fit(Order::One);
        assert!(order1_correct < data.len(), "order 1 unexpectedly fit a second-order pattern");
    }
}
