//! The chain CRF model: parameters and potentials.
//!
//! The model is log-linear:
//! `score(t|x) = Σᵢ Σⱼ λⱼ fⱼ(x, i, tᵢ, tᵢ₋₁)`.
//! Features factor into *observation* features (extracted from the
//! sentence around position `i`, supplied by the client as interned ids)
//! crossed with the current chain state, plus dense *transition* weights
//! over state pairs and *initial-state* weights. All parameters live in
//! one flat vector so the L-BFGS optimizer can treat training as generic
//! unconstrained minimization.

use crate::statespace::{Order, StateSpace};
use graphner_text::BioTag;

/// Observation features of one sentence: for each token position, the
/// ids of the features that fire there (binary features), plus optional
/// gold tags when the sentence is labelled training data.
#[derive(Clone, Debug)]
pub struct SentenceFeatures {
    /// `obs[i]` = ids of observation features firing at position `i`.
    pub obs: Vec<Vec<u32>>,
    /// Gold tags (training data only).
    pub gold: Option<Vec<BioTag>>,
}

impl SentenceFeatures {
    /// Sentence length in tokens.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// Whether the sentence has no tokens.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }
}

/// A linear-chain conditional random field over the BIO tag set.
#[derive(Clone, Debug)]
pub struct ChainCrf {
    space: StateSpace,
    num_obs: usize,
    /// Layout: `[num_obs × S]` state weights, then `[S × S]` transition
    /// weights, then `[S]` initial-state weights.
    params: Vec<f64>,
}

impl ChainCrf {
    /// Create a zero-initialized CRF for `num_obs` observation features.
    pub fn new(order: Order, num_obs: usize) -> ChainCrf {
        let space = StateSpace::new(order);
        let s = space.num_states();
        let n_params = num_obs * s + s * s + s;
        ChainCrf { space, num_obs, params: vec![0.0; n_params] }
    }

    /// Reassemble a trained CRF from its persisted parts: the chain
    /// order, the observation-feature count, and the flat parameter
    /// vector in the layout documented on [`ChainCrf`].
    ///
    /// # Panics
    /// Panics if `params` has the wrong length for `(order, num_obs)`.
    pub fn from_parts(order: Order, num_obs: usize, params: Vec<f64>) -> ChainCrf {
        let mut crf = ChainCrf::new(order, num_obs);
        crf.set_params(params);
        crf
    }

    /// The chain state space.
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// Number of observation features the model was sized for.
    pub fn num_obs_features(&self) -> usize {
        self.num_obs
    }

    /// Number of chain states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.space.num_states()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Read-only view of the parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Mutable view of the parameter vector (trainer internals).
    pub(crate) fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    /// Replace the parameter vector (used by the trainer).
    ///
    /// # Panics
    /// Panics if the length differs from [`ChainCrf::num_params`].
    pub fn set_params(&mut self, params: Vec<f64>) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params = params;
    }

    #[inline]
    pub(crate) fn trans_offset(&self) -> usize {
        self.num_obs * self.num_states()
    }

    #[inline]
    pub(crate) fn init_offset(&self) -> usize {
        self.trans_offset() + self.num_states() * self.num_states()
    }

    /// Transition weight for `prev -> cur` (chain states).
    #[inline]
    // bound: prev/cur < num_states() and params holds a full
    // num_states^2 transition block past trans_offset by construction
    pub fn trans_w(&self, prev: usize, cur: usize) -> f64 {
        self.params[self.trans_offset() + prev * self.num_states() + cur]
    }

    /// Initial-state weight.
    #[inline]
    // bound: state < num_states() and params ends with a full
    // num_states init block starting at init_offset by construction
    pub fn init_w(&self, state: usize) -> f64 {
        self.params[self.init_offset() + state]
    }

    /// Unnormalized log node score of `state` at position `i`:
    /// the sum of weights of the observation features firing there,
    /// plus the initial-state weight at position 0.
    // bound: f < num_obs (debug-asserted) and state < num_states(), so
    // `f * s + state` stays inside the num_obs*num_states weight block
    pub fn node_log_score(&self, sent: &SentenceFeatures, i: usize, state: usize) -> f64 {
        let s = self.num_states();
        let mut score = 0.0;
        for &f in &sent.obs[i] {
            debug_assert!((f as usize) < self.num_obs, "feature id out of range");
            score += self.params[f as usize * s + state];
        }
        if i == 0 {
            score += self.init_w(state);
        }
        score
    }

    /// Log score of a full gold path (numerator of the conditional
    /// likelihood).
    pub fn path_log_score(&self, sent: &SentenceFeatures, tags: &[BioTag]) -> f64 {
        debug_assert_eq!(sent.len(), tags.len());
        let mut score = 0.0;
        let mut prev_state = None;
        for i in 0..sent.len() {
            let st = self.space.gold_state(tags, i);
            score += self.node_log_score(sent, i, st);
            if let Some(p) = prev_state {
                score += self.trans_w(p, st);
            }
            prev_state = Some(st);
        }
        score
    }

    /// Tag-level transition probability matrix `T[y][y']` derived from
    /// the learned transition weights, used by GraphNER's final Viterbi
    /// decode over interpolated node beliefs (Algorithm 1, line 9).
    ///
    /// For an order-2 model, states are tag pairs; the tag-level score of
    /// `y -> y'` aggregates over the unknown earlier context with
    /// log-sum-exp before row normalization.
    pub fn tag_transition_matrix(&self) -> [[f64; 3]; 3] {
        let s = self.num_states();
        let mut logits = [[f64::NEG_INFINITY; 3]; 3];
        for prev in 0..s {
            let py = self.space.tag_of(prev);
            for &cur in self.space.next_states(prev) {
                let cy = self.space.tag_of(cur as usize);
                let w = self.trans_w(prev, cur as usize);
                let cell = &mut logits[py][cy];
                // log-sum-exp accumulate
                if *cell == f64::NEG_INFINITY {
                    *cell = w;
                } else {
                    let m = cell.max(w);
                    *cell = m + ((*cell - m).exp() + (w - m).exp()).ln();
                }
            }
        }
        let mut out = [[0.0; 3]; 3];
        for y in 0..3 {
            let m = logits[y].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let z: f64 = logits[y].iter().map(|l| (l - m).exp()).sum();
            for yp in 0..3 {
                out[y][yp] = (logits[y][yp] - m).exp() / z;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_text::BioTag::*;

    fn tiny_sent() -> SentenceFeatures {
        SentenceFeatures { obs: vec![vec![0], vec![1], vec![0, 1]], gold: Some(vec![O, B, I]) }
    }

    #[test]
    fn zero_model_scores_zero() {
        let crf = ChainCrf::new(Order::One, 2);
        let s = tiny_sent();
        assert_eq!(crf.path_log_score(&s, &[O, B, I]), 0.0);
        assert_eq!(crf.node_log_score(&s, 1, 0), 0.0);
    }

    #[test]
    fn param_layout() {
        let crf = ChainCrf::new(Order::One, 2);
        // 2 obs × 3 states + 3×3 transitions + 3 init = 18
        assert_eq!(crf.num_params(), 18);
        let crf2 = ChainCrf::new(Order::Two, 2);
        // 2×9 + 81 + 9 = 108
        assert_eq!(crf2.num_params(), 108);
    }

    #[test]
    fn path_score_sums_components() {
        let mut crf = ChainCrf::new(Order::One, 2);
        let mut p = vec![0.0; crf.num_params()];
        // state weight: feature 0 with state O (=2): index 0*3+2
        p[2] = 1.5;
        // transition O(2) -> B(0): offset 6 + 2*3 + 0 = 12
        p[12] = 0.7;
        // init weight for O: offset 6+9+2 = 17
        p[17] = 0.3;
        crf.set_params(p);
        let s = tiny_sent();
        // positions: 0 has feat 0 tag O -> 1.5 + init 0.3; transition O->B 0.7
        let score = crf.path_log_score(&s, &[O, B, I]);
        assert!((score - (1.5 + 0.3 + 0.7)).abs() < 1e-12, "score = {score}");
    }

    #[test]
    fn tag_transitions_are_stochastic() {
        for order in [Order::One, Order::Two] {
            let mut crf = ChainCrf::new(order, 1);
            let mut p = vec![0.0; crf.num_params()];
            for (i, v) in p.iter_mut().enumerate() {
                *v = (i as f64 * 0.37).sin();
            }
            crf.set_params(p);
            let t = crf.tag_transition_matrix();
            for row in t {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
                assert!(row.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn uniform_weights_give_uniform_transitions() {
        let crf = ChainCrf::new(Order::One, 1);
        let t = crf.tag_transition_matrix();
        for row in t {
            for x in row {
                assert!((x - 1.0 / 3.0).abs() < 1e-12);
            }
        }
    }
}
