//! Limited-memory BFGS minimizer.
//!
//! CRF training maximizes the L2-penalized conditional log-likelihood;
//! this module provides the standard tool for that job: L-BFGS with the
//! two-loop recursion (Nocedal & Wright, Algorithm 7.4) and a
//! backtracking line search enforcing the Armijo sufficient-decrease
//! condition plus a curvature guard on the stored correction pairs.
//!
//! Each outer iteration reports objective, gradient norm, and accepted
//! step size through `graphner-obs` (`GRAPHNER_LOG=debug` for the
//! per-iteration trace; `lbfgs.*` gauges/histograms for the metrics).

use graphner_obs::obs_debug;

/// Configuration for [`minimize`].
#[derive(Clone, Debug)]
pub struct LbfgsConfig {
    /// Number of stored correction pairs (history size).
    pub memory: usize,
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence: stop when `‖g‖ / max(1, ‖x‖) < grad_tol`.
    pub grad_tol: f64,
    /// Convergence: stop when the relative objective decrease over one
    /// iteration falls below this.
    pub f_tol: f64,
    /// Armijo sufficient-decrease constant.
    pub armijo_c1: f64,
    /// Maximum number of step-halving trials per line search.
    pub max_linesearch: usize,
}

impl Default for LbfgsConfig {
    fn default() -> LbfgsConfig {
        LbfgsConfig {
            memory: 7,
            max_iterations: 200,
            grad_tol: 1e-5,
            f_tol: 1e-9,
            armijo_c1: 1e-4,
            max_linesearch: 30,
        }
    }
}

/// Why [`minimize`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Gradient norm fell below `grad_tol`.
    GradientConverged,
    /// Relative objective decrease fell below `f_tol`.
    ObjectiveConverged,
    /// Hit `max_iterations`.
    MaxIterations,
    /// Line search failed to find a decreasing step.
    LineSearchFailed,
}

/// Result of a minimization run.
#[derive(Clone, Debug)]
pub struct LbfgsResult {
    /// The minimizing point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Termination cause.
    pub reason: StopReason,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Minimize `f` starting from `x0`.
///
/// `f(x, grad)` must write the gradient at `x` into `grad` (same length
/// as `x`) and return the objective value.
pub fn minimize<F>(mut f: F, x0: Vec<f64>, cfg: &LbfgsConfig) -> LbfgsResult
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x0.len();
    let mut x = x0;
    let mut g = vec![0.0; n];
    let mut fx = f(&x, &mut g);

    // Correction-pair ring buffers.
    let m = cfg.memory.max(1);
    let mut s_list: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut y_list: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rho: Vec<f64> = Vec::with_capacity(m);

    let mut direction = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut g_new = vec![0.0; n];

    for iter in 0..cfg.max_iterations {
        let gnorm = norm(&g);
        if gnorm / norm(&x).max(1.0) < cfg.grad_tol {
            return LbfgsResult { x, fx, iterations: iter, reason: StopReason::GradientConverged };
        }

        // Two-loop recursion: direction = -H g.
        direction.copy_from_slice(&g);
        let k = s_list.len();
        let mut alpha = vec![0.0; k];
        for i in (0..k).rev() {
            alpha[i] = rho[i] * dot(&s_list[i], &direction);
            for (d, yi) in direction.iter_mut().zip(&y_list[i]) {
                *d -= alpha[i] * yi;
            }
        }
        // Initial Hessian scaling gamma = s'y / y'y of the latest pair.
        if let (Some(s_last), Some(y_last)) = (s_list.last(), y_list.last()) {
            let gamma = dot(s_last, y_last) / dot(y_last, y_last);
            for d in direction.iter_mut() {
                *d *= gamma;
            }
        }
        for i in 0..k {
            let beta = rho[i] * dot(&y_list[i], &direction);
            for (d, si) in direction.iter_mut().zip(&s_list[i]) {
                *d += (alpha[i] - beta) * si;
            }
        }
        for d in direction.iter_mut() {
            *d = -*d;
        }

        // Descent check; fall back to steepest descent if the recursion
        // produced a non-descent direction (can happen with stale pairs).
        let mut dg = dot(&direction, &g);
        if dg >= 0.0 {
            for (d, gi) in direction.iter_mut().zip(&g) {
                *d = -gi;
            }
            dg = -dot(&g, &g);
        }

        // Backtracking Armijo line search. First iteration starts with a
        // conservative step scaled by the gradient norm.
        let mut step = if s_list.is_empty() { (1.0 / gnorm.max(1.0)).min(1.0) } else { 1.0 };
        let mut success = false;
        let mut fx_new = fx;
        for _ in 0..cfg.max_linesearch {
            for ((xn, xi), di) in x_new.iter_mut().zip(&x).zip(&direction) {
                *xn = xi + step * di;
            }
            fx_new = f(&x_new, &mut g_new);
            if fx_new.is_finite() && fx_new <= fx + cfg.armijo_c1 * step * dg {
                success = true;
                break;
            }
            step *= 0.5;
        }
        if !success {
            return LbfgsResult { x, fx, iterations: iter, reason: StopReason::LineSearchFailed };
        }

        // Store the correction pair if it has positive curvature.
        let mut s_vec = vec![0.0; n];
        let mut y_vec = vec![0.0; n];
        for i in 0..n {
            s_vec[i] = x_new[i] - x[i];
            y_vec[i] = g_new[i] - g[i];
        }
        let sy = dot(&s_vec, &y_vec);
        if sy > 1e-10 {
            if s_list.len() == m {
                s_list.remove(0);
                y_list.remove(0);
                rho.remove(0);
            }
            rho.push(1.0 / sy);
            s_list.push(s_vec);
            y_list.push(y_vec);
        }

        let f_decrease = (fx - fx_new).abs() / fx.abs().max(1.0);
        x.copy_from_slice(&x_new);
        g.copy_from_slice(&g_new);
        fx = fx_new;
        obs_debug!(
            "lbfgs: iter {:4} objective {fx:.6e} |grad| {gnorm:.3e} step {step:.3e}",
            iter + 1
        );
        graphner_obs::counter("lbfgs.iterations").incr();
        graphner_obs::gauge("lbfgs.objective").set(fx);
        graphner_obs::gauge("lbfgs.grad_norm").set(gnorm);
        graphner_obs::histogram("lbfgs.step_size").record(step);
        if f_decrease < cfg.f_tol {
            return LbfgsResult {
                x,
                fx,
                iterations: iter + 1,
                reason: StopReason::ObjectiveConverged,
            };
        }
    }
    LbfgsResult { x, fx, iterations: cfg.max_iterations, reason: StopReason::MaxIterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = Σ (x_i - i)², minimum at x_i = i.
        let f = |x: &[f64], g: &mut [f64]| {
            let mut v = 0.0;
            for (i, (xi, gi)) in x.iter().zip(g.iter_mut()).enumerate() {
                let d = xi - i as f64;
                v += d * d;
                *gi = 2.0 * d;
            }
            v
        };
        let res = minimize(f, vec![5.0; 10], &LbfgsConfig::default());
        for (i, xi) in res.x.iter().enumerate() {
            assert!((xi - i as f64).abs() < 1e-4, "x[{i}] = {xi}");
        }
        assert!(res.fx < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let f = |x: &[f64], g: &mut [f64]| {
            let (a, b) = (x[0], x[1]);
            g[0] = -2.0 * (1.0 - a) - 400.0 * a * (b - a * a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let res = minimize(
            f,
            vec![-1.2, 1.0],
            &LbfgsConfig { max_iterations: 500, f_tol: 1e-14, ..Default::default() },
        );
        assert!((res.x[0] - 1.0).abs() < 1e-3, "x = {:?}", res.x);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "x = {:?}", res.x);
    }

    #[test]
    fn converges_on_flat_function() {
        let f = |_x: &[f64], g: &mut [f64]| {
            g.fill(0.0);
            3.5
        };
        let res = minimize(f, vec![1.0, 2.0], &LbfgsConfig::default());
        assert_eq!(res.reason, StopReason::GradientConverged);
        assert_eq!(res.fx, 3.5);
    }

    #[test]
    fn respects_max_iterations() {
        // Slowly decreasing function with tiny steps: |x| with a shallow
        // sloped gradient never converged in 2 iterations.
        let f = |x: &[f64], g: &mut [f64]| {
            let mut v = 0.0;
            for (xi, gi) in x.iter().zip(g.iter_mut()) {
                v += xi.cosh();
                *gi = xi.sinh();
            }
            v
        };
        let cfg =
            LbfgsConfig { max_iterations: 2, f_tol: 0.0, grad_tol: 0.0, ..Default::default() };
        let res = minimize(f, vec![3.0; 4], &cfg);
        assert_eq!(res.iterations, 2);
        assert_eq!(res.reason, StopReason::MaxIterations);
    }

    #[test]
    fn high_dimensional_ill_conditioned() {
        // f(x) = Σ c_i x_i² with condition number 1e4.
        let n = 200;
        let c: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 / (n - 1) as f64) * 1e4).collect();
        let cc = c.clone();
        let f = move |x: &[f64], g: &mut [f64]| {
            let mut v = 0.0;
            for i in 0..x.len() {
                v += cc[i] * x[i] * x[i];
                g[i] = 2.0 * cc[i] * x[i];
            }
            v
        };
        let cfg = LbfgsConfig { max_iterations: 2000, f_tol: 1e-16, ..Default::default() };
        let res = minimize(f, vec![1.0; n], &cfg);
        assert!(res.fx < 1e-6, "fx = {}", res.fx);
    }
}
