//! CRF training: L2-penalized conditional log-likelihood maximization.
//!
//! The objective handed to L-BFGS is the *negative* penalized CLL
//! `Σ (log Z(x) − score(gold|x)) + (ℓ2/2)·‖λ‖²`; its gradient is
//! `expected − observed` feature counts plus `ℓ2·λ`. Per-sentence terms
//! are independent, so the evaluation is a rayon map-reduce over chunks
//! of sentences, each chunk accumulating into a private gradient buffer.

use crate::lbfgs::{self, LbfgsConfig, StopReason};
use crate::model::{ChainCrf, SentenceFeatures};
use graphner_obs::{attr, obs_summary, span};
use graphner_text::exactly_zero;
use rayon::prelude::*;

/// Training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// L2 regularization strength (`ℓ2 = 1/σ²` in the Gaussian-prior
    /// view).
    pub l2: f64,
    /// Maximum L-BFGS iterations.
    pub max_iterations: usize,
    /// L-BFGS history size.
    pub memory: usize,
    /// Gradient convergence tolerance.
    pub grad_tol: f64,
    /// Relative objective-decrease tolerance.
    pub f_tol: f64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig { l2: 1.0, max_iterations: 150, memory: 7, grad_tol: 1e-4, f_tol: 1e-7 }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Final value of the penalized negative CLL.
    pub objective: f64,
    /// L-BFGS iterations performed.
    pub iterations: usize,
    /// Why the optimizer stopped.
    pub reason: StopReason,
}

impl ChainCrf {
    /// Negative penalized CLL and its gradient over `data`, at the
    /// model's current parameters. The gradient is *written* into
    /// `grad` (overwriting its contents).
    pub fn objective(&self, data: &[SentenceFeatures], l2: f64, grad: &mut [f64]) -> f64 {
        let n = self.num_params();
        assert_eq!(grad.len(), n);
        let exp_trans = self.exp_transitions();
        // The chunk size must be a pure function of the data length —
        // never of the worker count. The reduction below regroups its
        // float sums at chunk boundaries, so thread-count-dependent
        // boundaries would make the trained bits depend on the machine;
        // length-only boundaries keep training byte-identical at any
        // GRAPHNER_THREADS setting.
        let chunk = data.len().div_ceil(64).max(1);

        let (nll, g) = data
            .par_chunks(chunk)
            .map(|sentences| {
                let mut g = vec![0.0; n];
                let mut nll = 0.0;
                for sent in sentences {
                    if sent.is_empty() {
                        continue;
                    }
                    nll += self.accumulate_sentence(sent, &exp_trans, &mut g);
                }
                (nll, g)
            })
            // det: chunk boundaries are a pure function of data length
            // (see above) and the pool merges slots in index order, so
            // this float regrouping is fixed for a given corpus.
            .reduce(
                || (0.0, vec![0.0; n]),
                |(nll_a, mut ga), (nll_b, gb)| {
                    for (a, b) in ga.iter_mut().zip(&gb) {
                        *a += b;
                    }
                    (nll_a + nll_b, ga)
                },
            );

        grad.copy_from_slice(&g);
        let mut obj = nll;
        let params = self.params();
        for i in 0..n {
            obj += 0.5 * l2 * params[i] * params[i];
            grad[i] += l2 * params[i];
        }
        obj
    }

    /// One sentence's contribution: returns `log Z − score(gold)` and
    /// adds `expected − observed` counts into `grad`.
    fn accumulate_sentence(
        &self,
        sent: &SentenceFeatures,
        exp_trans: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        let gold = sent.gold.as_ref().expect("training requires labelled sentences");
        let l = sent.len();
        let s = self.num_states();
        let lat = self.lattice(sent, exp_trans);
        let trans_off = self.trans_offset();
        let init_off = self.init_offset();

        // Expected counts.
        for i in 0..l {
            for st in 0..s {
                let gamma = lat.gamma(i, st);
                // skip-zero optimization: must be exact, an epsilon
                // would silently drop small but real gradient terms
                if exactly_zero(gamma) {
                    continue;
                }
                for &f in &sent.obs[i] {
                    grad[f as usize * s + st] += gamma;
                }
                if i == 0 {
                    grad[init_off + st] += gamma;
                }
            }
        }
        for i in 1..l {
            for p in 0..s {
                let ap = lat.alpha[(i - 1) * s + p];
                if exactly_zero(ap) {
                    continue;
                }
                for &c in self.space().next_states(p) {
                    let c = c as usize;
                    let xi = ap * exp_trans[p * s + c] * lat.node[i * s + c] * lat.beta[i * s + c]
                        / lat.scale[i];
                    grad[trans_off + p * s + c] += xi;
                }
            }
        }

        // Observed (gold) counts.
        let mut prev_state = None;
        for i in 0..l {
            let st = self.space().gold_state(gold, i);
            for &f in &sent.obs[i] {
                grad[f as usize * s + st] -= 1.0;
            }
            if i == 0 {
                grad[init_off + st] -= 1.0;
            }
            if let Some(p) = prev_state {
                grad[trans_off + p * s + st] -= 1.0;
            }
            prev_state = Some(st);
        }

        lat.log_z - self.path_log_score(sent, gold)
    }

    /// Train the model on labelled sentences, replacing its parameters
    /// with the optimum found.
    pub fn train(&mut self, data: &[SentenceFeatures], cfg: &TrainConfig) -> TrainReport {
        assert!(
            data.iter().all(|s| s.gold.is_some()),
            "all training sentences must carry gold tags"
        );
        let _s = span("crf.train");
        attr("train.sentences", data.len());
        attr("train.params", self.num_params());
        let mut scratch = self.clone();
        let x0 = self.params().to_vec();
        let lcfg = LbfgsConfig {
            memory: cfg.memory,
            max_iterations: cfg.max_iterations,
            grad_tol: cfg.grad_tol,
            f_tol: cfg.f_tol,
            ..Default::default()
        };
        let result = lbfgs::minimize(
            |x, grad| {
                scratch.params_mut().copy_from_slice(x);
                scratch.objective(data, cfg.l2, grad)
            },
            x0,
            &lcfg,
        );
        self.set_params(result.x);
        attr("train.iterations", result.iterations);
        attr("train.objective", result.fx);
        obs_summary!(
            "crf train: {} sentences, {} iterations, objective {:.6e}, stopped: {:?}",
            data.len(),
            result.iterations,
            result.fx,
            result.reason
        );
        TrainReport { objective: result.fx, iterations: result.iterations, reason: result.reason }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statespace::Order;
    use graphner_text::BioTag::{self, *};

    fn toy_data() -> (Vec<SentenceFeatures>, usize) {
        // vocabulary ids: 0=the 1=GENE1 2=gene 3=was 4=GENE2 5=protein
        // pattern: words 1 and 4 are B; 5 is I after a gene; others O
        let mk = |ids: &[u32], tags: &[BioTag]| SentenceFeatures {
            obs: ids.iter().map(|&i| vec![i]).collect(),
            gold: Some(tags.to_vec()),
        };
        let data = vec![
            mk(&[0, 1, 2], &[O, B, O]),
            mk(&[0, 4, 5, 3], &[O, B, I, O]),
            mk(&[1, 5, 3, 0], &[B, I, O, O]),
            mk(&[3, 0, 4, 2], &[O, O, B, O]),
            mk(&[0, 2, 3], &[O, O, O]),
        ];
        (data, 6)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        for order in [Order::One, Order::Two] {
            let (data, num_obs) = toy_data();
            let mut crf = ChainCrf::new(order, num_obs);
            // evaluate at a non-trivial point
            let n = crf.num_params();
            let p: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 * 0.05 - 0.25).collect();
            crf.set_params(p.clone());
            let mut grad = vec![0.0; n];
            let f0 = crf.objective(&data, 0.5, &mut grad);
            assert!(f0.is_finite());
            let eps = 1e-6;
            let mut scratch = crf.clone();
            // spot-check a spread of coordinates
            for &i in &[0, 1, 2, n / 3, n / 2, n - 2, n - 1] {
                let mut pp = p.clone();
                pp[i] += eps;
                scratch.set_params(pp.clone());
                let mut dummy = vec![0.0; n];
                let fp = scratch.objective(&data, 0.5, &mut dummy);
                pp[i] -= 2.0 * eps;
                scratch.set_params(pp);
                let fm = scratch.objective(&data, 0.5, &mut dummy);
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (fd - grad[i]).abs() < 1e-4,
                    "order {order:?} coord {i}: fd {fd} vs analytic {}",
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn training_fits_toy_pattern() {
        for order in [Order::One, Order::Two] {
            let (data, num_obs) = toy_data();
            let mut crf = ChainCrf::new(order, num_obs);
            let report = crf
                .train(&data, &TrainConfig { l2: 0.01, max_iterations: 200, ..Default::default() });
            assert!(report.objective.is_finite());
            // the model must reproduce the training tags
            for sent in &data {
                let pred = crf.viterbi(sent);
                assert_eq!(&pred, sent.gold.as_ref().unwrap(), "order {order:?}");
            }
            // and generalize the lexical pattern to a new arrangement
            let test =
                SentenceFeatures { obs: vec![vec![3], vec![1], vec![5], vec![0]], gold: None };
            assert_eq!(crf.viterbi(&test), vec![O, B, I, O], "order {order:?}");
        }
    }

    #[test]
    fn training_decreases_objective() {
        let (data, num_obs) = toy_data();
        let mut crf = ChainCrf::new(Order::One, num_obs);
        let mut grad = vec![0.0; crf.num_params()];
        let before = crf.objective(&data, 1.0, &mut grad);
        crf.train(&data, &TrainConfig { max_iterations: 30, ..Default::default() });
        let after = crf.objective(&data, 1.0, &mut grad);
        assert!(after < before, "objective {after} not below initial {before}");
    }

    #[test]
    fn stronger_regularization_shrinks_weights() {
        let (data, num_obs) = toy_data();
        let norm = |l2: f64| {
            let mut crf = ChainCrf::new(Order::One, num_obs);
            crf.train(&data, &TrainConfig { l2, max_iterations: 100, ..Default::default() });
            crf.params().iter().map(|w| w * w).sum::<f64>().sqrt()
        };
        assert!(norm(10.0) < norm(0.01));
    }

    #[test]
    fn posteriors_track_training_labels() {
        let (data, num_obs) = toy_data();
        let mut crf = ChainCrf::new(Order::One, num_obs);
        crf.train(&data, &TrainConfig { l2: 0.01, max_iterations: 200, ..Default::default() });
        let sent = &data[1]; // O B I O
        let post = crf.posteriors(sent);
        assert!(post[0][O.index()] > 0.5);
        assert!(post[1][B.index()] > 0.5);
        assert!(post[2][I.index()] > 0.5);
    }

    #[test]
    #[should_panic(expected = "gold tags")]
    fn training_rejects_unlabelled_data() {
        let data = vec![SentenceFeatures { obs: vec![vec![0]], gold: None }];
        let mut crf = ChainCrf::new(Order::One, 1);
        crf.train(&data, &TrainConfig::default());
    }

    #[test]
    fn empty_sentences_are_skipped() {
        let (mut data, num_obs) = toy_data();
        data.push(SentenceFeatures { obs: vec![], gold: Some(vec![]) });
        let mut crf = ChainCrf::new(Order::One, num_obs);
        let report = crf.train(&data, &TrainConfig { max_iterations: 20, ..Default::default() });
        assert!(report.objective.is_finite());
    }
}
