//! Linear-chain conditional random fields for GraphNER.
//!
//! This crate is the from-scratch substitute for the MALLET CRF inside
//! BANNER. It provides:
//!
//! * a log-linear chain CRF over the BIO tag set, at Markov order 1 or 2
//!   (order 2 realized as a chain over tag pairs);
//! * exact inference — scaled forward–backward, token posterior
//!   marginals, and Viterbi decoding — the quantities Algorithm 1 of the
//!   paper consumes (`CRF_Posteriors_And_Transitions`, `Viterbi`);
//! * training by L2-penalized conditional-log-likelihood maximization
//!   with a from-scratch L-BFGS optimizer, gradient evaluation
//!   parallelized over sentences with rayon;
//! * [`viterbi_tags`], the tag-level decoder GraphNER runs over
//!   interpolated node beliefs (Algorithm 1, line 9).
//!
//! Observation features are supplied by the client (see
//! `graphner-banner`) as interned ids per token position; the CRF owns
//! the crossing of those features with states and the transition
//! structure.

// Index loops over parallel arrays are the clearest form for the
// numeric kernels in this crate; clippy's iterator rewrites would
// obscure the index relationships between the buffers.
#![allow(clippy::needless_range_loop)]

pub mod inference;
pub mod lbfgs;
pub mod model;
pub mod statespace;
pub mod train;

pub use inference::{viterbi_tags, Lattice};
pub use lbfgs::{LbfgsConfig, LbfgsResult, StopReason};
pub use model::{ChainCrf, SentenceFeatures};
pub use statespace::{Order, StateSpace};
pub use train::{TrainConfig, TrainReport};
