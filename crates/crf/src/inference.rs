//! Exact inference on the chain: scaled forward–backward, marginal
//! posteriors, and Viterbi decoding.
//!
//! Forward–backward uses per-position scaling (the Rabiner convention)
//! rather than log-space arithmetic: node potentials are shifted by
//! their per-position maximum before exponentiation, which keeps every
//! intermediate quantity in range while avoiding `ln`/`exp` in the inner
//! loops.

use crate::model::{ChainCrf, SentenceFeatures};
use graphner_text::{BioTag, NUM_TAGS};

/// The forward–backward lattice of one sentence.
///
/// All vectors are row-major `[position × state]`. `alpha` and `beta`
/// are the *scaled* messages: `gamma(i, s) = alpha[i,s] · beta[i,s]` is a
/// proper distribution over states at each position.
#[derive(Clone, Debug)]
pub struct Lattice {
    /// Number of chain states.
    pub num_states: usize,
    /// Shifted node potentials `exp(nodeScore − shift_i)`.
    pub node: Vec<f64>,
    /// Scaled forward messages.
    pub alpha: Vec<f64>,
    /// Scaled backward messages.
    pub beta: Vec<f64>,
    /// Per-position scaling constants `c_i`.
    pub scale: Vec<f64>,
    /// Log partition function `log Z(x)`.
    pub log_z: f64,
}

impl Lattice {
    /// Posterior marginal `p(state s at position i | x)`.
    #[inline]
    pub fn gamma(&self, i: usize, s: usize) -> f64 {
        self.alpha[i * self.num_states + s] * self.beta[i * self.num_states + s]
    }
}

impl ChainCrf {
    /// Exponentiated transition matrix `exp(trans_w)`, row-major with
    /// disallowed transitions zeroed.
    pub(crate) fn exp_transitions(&self) -> Vec<f64> {
        let s = self.num_states();
        let mut out = vec![0.0; s * s];
        for prev in 0..s {
            for &cur in self.space().next_states(prev) {
                out[prev * s + cur as usize] = self.trans_w(prev, cur as usize).exp();
            }
        }
        out
    }

    /// Run scaled forward–backward over a sentence.
    ///
    /// `exp_trans` must come from `ChainCrf::exp_transitions`; it is
    /// passed in so the trainer can share one copy across sentences.
    // hot: forward-backward over every training sentence, every epoch
    // bound: i < l and st/p/n < s with l*s the length of every lattice
    // row buffer, so every `i * s + st` index is in range and far below
    // usize::MAX; s <= 16 is debug-asserted below
    pub fn lattice(&self, sent: &SentenceFeatures, exp_trans: &[f64]) -> Lattice {
        let l = sent.len();
        let s = self.num_states();
        assert!(l > 0, "cannot run inference on an empty sentence");

        // Shifted node potentials.
        // alloc: one l*s buffer per sentence, returned in the Lattice
        let mut node = vec![0.0; l * s];
        let mut shift_sum = 0.0;
        for i in 0..l {
            let mut max = f64::NEG_INFINITY;
            let mut logs = [0.0f64; 16];
            debug_assert!(s <= 16);
            for st in 0..s {
                let v = if i == 0 && !self.space().initial_allowed(st) {
                    f64::NEG_INFINITY
                } else {
                    self.node_log_score(sent, i, st)
                };
                logs[st] = v;
                max = max.max(v);
            }
            shift_sum += max;
            for st in 0..s {
                node[i * s + st] = (logs[st] - max).exp();
            }
        }

        // Forward with scaling.
        // alloc: alpha/scale live in the returned Lattice; sizing them
        // here keeps the forward pass allocation-free per position
        let mut alpha = vec![0.0; l * s];
        // alloc: per-position scaling constants, returned in the Lattice
        let mut scale = vec![0.0; l];
        let mut c0 = 0.0;
        for st in 0..s {
            alpha[st] = node[st];
            c0 += node[st];
        }
        scale[0] = c0;
        for a in alpha[..s].iter_mut() {
            *a /= c0;
        }
        for i in 1..l {
            let (prev_row, cur_rows) = alpha.split_at_mut(i * s);
            let prev_row = &prev_row[(i - 1) * s..];
            let cur_row = &mut cur_rows[..s];
            let mut ci = 0.0;
            for st in 0..s {
                let mut sum = 0.0;
                for &p in self.space().prev_states(st) {
                    sum += prev_row[p as usize] * exp_trans[p as usize * s + st];
                }
                let v = sum * node[i * s + st];
                cur_row[st] = v;
                ci += v;
            }
            scale[i] = ci;
            for v in cur_row.iter_mut() {
                *v /= ci;
            }
        }

        // Backward with the same scaling constants.
        // alloc: one l*s buffer per sentence, returned in the Lattice
        let mut beta = vec![0.0; l * s];
        for st in 0..s {
            beta[(l - 1) * s + st] = 1.0;
        }
        for i in (0..l - 1).rev() {
            for st in 0..s {
                let mut sum = 0.0;
                for &nx in self.space().next_states(st) {
                    let n = nx as usize;
                    sum += exp_trans[st * s + n] * node[(i + 1) * s + n] * beta[(i + 1) * s + n];
                }
                beta[i * s + st] = sum / scale[i + 1];
            }
        }

        let log_z = shift_sum + scale.iter().map(|c| c.ln()).sum::<f64>();
        Lattice { num_states: s, node, alpha, beta, scale, log_z }
    }

    /// Token-level posterior marginals `p(tag | x)` per position — the
    /// quantities GraphNER averages over 3-gram occurrences (Algorithm 1,
    /// lines 5–6).
    pub fn posteriors(&self, sent: &SentenceFeatures) -> Vec<[f64; NUM_TAGS]> {
        let exp_trans = self.exp_transitions();
        let lat = self.lattice(sent, &exp_trans);
        self.posteriors_from_lattice(sent.len(), &lat)
    }

    /// Tag marginals from a precomputed lattice.
    pub fn posteriors_from_lattice(&self, len: usize, lat: &Lattice) -> Vec<[f64; NUM_TAGS]> {
        let s = self.num_states();
        let mut out = vec![[0.0; NUM_TAGS]; len];
        for i in 0..len {
            for st in 0..s {
                out[i][self.space().tag_of(st)] += lat.gamma(i, st);
            }
            // Guard against accumulated round-off.
            let sum: f64 = out[i].iter().sum();
            if sum > 0.0 {
                for v in out[i].iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Conditional log-likelihood `log p(gold | x)` of a labelled
    /// sentence.
    pub fn conditional_log_likelihood(&self, sent: &SentenceFeatures) -> f64 {
        let gold = sent.gold.as_ref().expect("labelled sentence required");
        let exp_trans = self.exp_transitions();
        let lat = self.lattice(sent, &exp_trans);
        self.path_log_score(sent, gold) - lat.log_z
    }

    /// Viterbi decoding: the most probable tag sequence under the model.
    // hot: per-sentence max-product decode on the serving path
    // bound: i < l and st/p/cur < s with l*s the length of delta/back,
    // so every `i * s + st` index is in range and far below usize::MAX
    pub fn viterbi(&self, sent: &SentenceFeatures) -> Vec<BioTag> {
        let l = sent.len();
        let s = self.num_states();
        if l == 0 {
            // alloc: empty Vec never touches the allocator
            return Vec::new();
        }
        // alloc: two l*s DP tables per sentence, freed on return
        let mut delta = vec![f64::NEG_INFINITY; l * s];
        // alloc: backpointer table, same l*s sizing as delta
        let mut back = vec![0u32; l * s];
        for st in 0..s {
            if self.space().initial_allowed(st) {
                delta[st] = self.node_log_score(sent, 0, st);
            }
        }
        for i in 1..l {
            for st in 0..s {
                let node = self.node_log_score(sent, i, st);
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0u32;
                for &p in self.space().prev_states(st) {
                    let v = delta[(i - 1) * s + p as usize] + self.trans_w(p as usize, st);
                    if v > best {
                        best = v;
                        arg = p;
                    }
                }
                delta[i * s + st] = best + node;
                back[i * s + st] = arg;
            }
        }
        let mut cur = (0..s)
            .max_by(|&a, &b| delta[(l - 1) * s + a].total_cmp(&delta[(l - 1) * s + b]))
            .unwrap_or(0);
        // alloc: one state-id slot per token for the backtrace
        let mut states = vec![0usize; l];
        states[l - 1] = cur;
        for i in (1..l).rev() {
            cur = back[i * s + cur] as usize;
            states[i - 1] = cur;
        }
        self.space().states_to_tags(&states)
    }
}

/// Viterbi decoding over *tag-level* node probabilities and a tag-level
/// transition probability matrix — GraphNER's final decode (Algorithm 1,
/// line 9), run after interpolating CRF posteriors with propagated graph
/// beliefs.
///
/// Probabilities of exactly zero are floored to a tiny constant so the
/// decode never sees `-inf` everywhere.
// hot: GraphNER's final decode, runs per sentence at serve time
pub fn viterbi_tags(
    node_probs: &[[f64; NUM_TAGS]],
    trans: &[[f64; NUM_TAGS]; NUM_TAGS],
) -> Vec<BioTag> {
    let l = node_probs.len();
    if l == 0 {
        return Vec::new();
    }
    const FLOOR: f64 = 1e-300;
    let log_trans: Vec<[f64; NUM_TAGS]> = trans
        .iter()
        .map(|row| {
            let mut r = [0.0; NUM_TAGS];
            for (o, &p) in r.iter_mut().zip(row) {
                *o = p.max(FLOOR).ln();
            }
            r
        })
        .collect();
    let mut delta = vec![[0.0f64; NUM_TAGS]; l];
    let mut back = vec![[0u8; NUM_TAGS]; l];
    for y in 0..NUM_TAGS {
        delta[0][y] = node_probs[0][y].max(FLOOR).ln();
    }
    for i in 1..l {
        for y in 0..NUM_TAGS {
            let node = node_probs[i][y].max(FLOOR).ln();
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0u8;
            for p in 0..NUM_TAGS {
                let v = delta[i - 1][p] + log_trans[p][y];
                if v > best {
                    best = v;
                    arg = p as u8;
                }
            }
            delta[i][y] = best + node;
            back[i][y] = arg;
        }
    }
    let mut cur =
        (0..NUM_TAGS).max_by(|&a, &b| delta[l - 1][a].total_cmp(&delta[l - 1][b])).unwrap_or(0);
    let mut tags = vec![BioTag::O; l];
    tags[l - 1] = BioTag::from_index(cur);
    for i in (1..l).rev() {
        cur = back[i][cur] as usize;
        tags[i - 1] = BioTag::from_index(cur);
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statespace::Order;
    use graphner_text::BioTag::*;

    /// Brute-force enumeration of all tag paths for cross-checking.
    fn brute_force(crf: &ChainCrf, sent: &SentenceFeatures) -> (f64, Vec<Vec<f64>>, Vec<BioTag>) {
        let l = sent.len();
        let mut z = 0.0;
        let mut marg = vec![vec![0.0; NUM_TAGS]; l];
        let mut best_score = f64::NEG_INFINITY;
        let mut best_path = Vec::new();
        let total = NUM_TAGS.pow(l as u32);
        for code in 0..total {
            let mut c = code;
            let tags: Vec<BioTag> = (0..l)
                .map(|_| {
                    let t = BioTag::from_index(c % NUM_TAGS);
                    c /= NUM_TAGS;
                    t
                })
                .collect();
            let score = crf.path_log_score(sent, &tags);
            let w = score.exp();
            z += w;
            for (i, t) in tags.iter().enumerate() {
                marg[i][t.index()] += w;
            }
            if score > best_score {
                best_score = score;
                best_path = tags;
            }
        }
        for row in marg.iter_mut() {
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        (z.ln(), marg, best_path)
    }

    fn random_crf(order: Order, num_obs: usize, seed: u64) -> ChainCrf {
        let mut crf = ChainCrf::new(order, num_obs);
        let mut state = seed.max(1);
        let params: Vec<f64> = (0..crf.num_params())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state % 2000) as f64 / 1000.0) - 1.0
            })
            .collect();
        crf.set_params(params);
        crf
    }

    fn random_sent(len: usize, num_obs: usize, seed: u64) -> SentenceFeatures {
        let mut state = seed.max(1);
        let obs = (0..len)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state % num_obs as u64) as u32
                    })
                    .collect()
            })
            .collect();
        SentenceFeatures { obs, gold: None }
    }

    #[test]
    fn log_z_matches_brute_force_order1() {
        let crf = random_crf(Order::One, 5, 42);
        for len in 1..=5 {
            let sent = random_sent(len, 5, len as u64 * 7 + 1);
            let exp_trans = crf.exp_transitions();
            let lat = crf.lattice(&sent, &exp_trans);
            let (bz, _, _) = brute_force(&crf, &sent);
            assert!((lat.log_z - bz).abs() < 1e-9, "len={len}: {} vs {}", lat.log_z, bz);
        }
    }

    #[test]
    fn marginals_match_brute_force_order1() {
        let crf = random_crf(Order::One, 5, 1);
        let sent = random_sent(4, 5, 99);
        let post = crf.posteriors(&sent);
        let (_, bm, _) = brute_force(&crf, &sent);
        for i in 0..4 {
            for y in 0..NUM_TAGS {
                assert!(
                    (post[i][y] - bm[i][y]).abs() < 1e-9,
                    "i={i} y={y}: {} vs {}",
                    post[i][y],
                    bm[i][y]
                );
            }
        }
    }

    #[test]
    fn log_z_and_marginals_match_brute_force_order2() {
        let crf = random_crf(Order::Two, 4, 7);
        let sent = random_sent(4, 4, 3);
        let exp_trans = crf.exp_transitions();
        let lat = crf.lattice(&sent, &exp_trans);
        let (bz, bm, _) = brute_force(&crf, &sent);
        assert!((lat.log_z - bz).abs() < 1e-9, "{} vs {}", lat.log_z, bz);
        let post = crf.posteriors(&sent);
        for i in 0..4 {
            for y in 0..NUM_TAGS {
                assert!((post[i][y] - bm[i][y]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn viterbi_matches_brute_force() {
        for order in [Order::One, Order::Two] {
            for seed in 1..6u64 {
                let crf = random_crf(order, 6, seed * 13);
                let sent = random_sent(5, 6, seed);
                let vit = crf.viterbi(&sent);
                let (_, _, best) = brute_force(&crf, &sent);
                let vs = crf.path_log_score(&sent, &vit);
                let bs = crf.path_log_score(&sent, &best);
                // paths may differ only on score ties
                assert!((vs - bs).abs() < 1e-9, "order {order:?} seed {seed}: {vs} vs {bs}");
            }
        }
    }

    #[test]
    fn posteriors_sum_to_one() {
        let crf = random_crf(Order::Two, 8, 5);
        let sent = random_sent(9, 8, 11);
        for row in crf.posteriors(&sent) {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_token_sentence() {
        let crf = random_crf(Order::One, 3, 2);
        let sent = random_sent(1, 3, 4);
        let post = crf.posteriors(&sent);
        assert_eq!(post.len(), 1);
        let s: f64 = post[0].iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(crf.viterbi(&sent).len(), 1);
    }

    #[test]
    fn extreme_weights_do_not_overflow() {
        let mut crf = ChainCrf::new(Order::One, 2);
        let mut p = vec![0.0; crf.num_params()];
        p[0] = 800.0; // would overflow exp() without shifting
        p[1] = -800.0;
        crf.set_params(p);
        let sent = SentenceFeatures { obs: vec![vec![0], vec![0], vec![1]], gold: None };
        let post = crf.posteriors(&sent);
        assert!(post.iter().flatten().all(|v| v.is_finite()));
        assert!(post[0][0] > 0.999); // state B strongly preferred
    }

    #[test]
    fn conditional_ll_is_negative_log_prob() {
        let crf = random_crf(Order::One, 4, 9);
        let mut sent = random_sent(3, 4, 21);
        sent.gold = Some(vec![O, B, I]);
        let cll = crf.conditional_log_likelihood(&sent);
        assert!(cll < 0.0);
        assert!(cll > -50.0);
    }

    #[test]
    fn viterbi_tags_follows_node_probs_with_uniform_transitions() {
        let uniform = [[1.0 / 3.0; 3]; 3];
        let nodes = vec![[0.8, 0.1, 0.1], [0.1, 0.7, 0.2], [0.2, 0.2, 0.6]];
        assert_eq!(viterbi_tags(&nodes, &uniform), vec![B, I, O]);
    }

    #[test]
    fn viterbi_tags_respects_transitions() {
        // Node beliefs weakly prefer I at position 1 after O, but the
        // transition matrix forbids O -> I, forcing O.
        let mut trans = [[1.0 / 3.0; 3]; 3];
        trans[O.index()][I.index()] = 0.0;
        trans[O.index()][O.index()] = 0.5;
        trans[O.index()][B.index()] = 0.5;
        let nodes = vec![[0.0, 0.1, 0.9], [0.1, 0.5, 0.4]];
        let tags = viterbi_tags(&nodes, &trans);
        assert_eq!(tags[0], O);
        assert_ne!(tags[1], I);
    }

    #[test]
    fn viterbi_tags_paper_figure1_example() {
        // After interpolation the "-" in "wilms tumor - 1" has belief
        // (B,I,O) = (0, 0.77, 0.23); surrounded by I-favouring tokens it
        // must decode to I.
        let trans = [[0.2, 0.6, 0.2], [0.1, 0.5, 0.4], [0.5, 0.05, 0.45]];
        let nodes = vec![
            [0.9, 0.05, 0.05],  // wilms: B
            [0.05, 0.9, 0.05],  // tumor: I
            [0.0, 0.77, 0.23],  // -
            [0.05, 0.85, 0.10], // 1
        ];
        assert_eq!(viterbi_tags(&nodes, &trans), vec![B, I, I, I]);
    }

    #[test]
    fn viterbi_tags_empty_input() {
        let trans = [[1.0 / 3.0; 3]; 3];
        assert!(viterbi_tags(&[], &trans).is_empty());
    }
}
