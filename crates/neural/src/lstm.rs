//! LSTM cells and bidirectional layers with manual backpropagation.
//!
//! The LSTM-CRF baseline (Lample et al. 2016) needs a recurrent encoder;
//! there is no autograd here, so forward passes record a trace and
//! backward passes consume it, accumulating parameter gradients in the
//! layer. Everything is `f64`: these models are small (the paper's own
//! baselines use hidden sizes ≈ 100) and exact gradients make the
//! finite-difference tests meaningful.

use graphner_text::exactly_zero;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A single LSTM cell with input, forget, output, and candidate gates.
///
/// Weight layout: `w` is `[4·d_h × d_in]` row-major, `u` is
/// `[4·d_h × d_h]`, `b` is `[4·d_h]`, gate order `i, f, o, g`.
#[derive(Clone, Debug)]
pub struct LstmCell {
    /// Input dimensionality.
    pub d_in: usize,
    /// Hidden dimensionality.
    pub d_h: usize,
    /// Input weights.
    pub w: Vec<f64>,
    /// Recurrent weights.
    pub u: Vec<f64>,
    /// Bias (forget gate initialized to 1, the standard trick).
    pub b: Vec<f64>,
    /// Gradient of `w`.
    pub gw: Vec<f64>,
    /// Gradient of `u`.
    pub gu: Vec<f64>,
    /// Gradient of `b`.
    pub gb: Vec<f64>,
}

/// Forward trace of one sequence through a cell.
#[derive(Clone, Debug, Default)]
pub struct LstmTrace {
    /// Inputs per step.
    xs: Vec<Vec<f64>>,
    /// Gate activations `i, f, o, g` per step (length `4·d_h`).
    gates: Vec<Vec<f64>>,
    /// Cell states per step.
    cs: Vec<Vec<f64>>,
    /// Hidden states per step.
    pub hs: Vec<Vec<f64>>,
}

impl LstmCell {
    /// Create a cell with Xavier-uniform weights.
    pub fn new(d_in: usize, d_h: usize, rng: &mut ChaCha8Rng) -> LstmCell {
        let scale_w = (6.0 / (d_in + d_h) as f64).sqrt();
        let scale_u = (6.0 / (2 * d_h) as f64).sqrt();
        let init = |n: usize, s: f64, rng: &mut ChaCha8Rng| -> Vec<f64> {
            (0..n).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * s).collect()
        };
        let mut b = vec![0.0; 4 * d_h];
        for v in b[d_h..2 * d_h].iter_mut() {
            *v = 1.0; // forget-gate bias
        }
        LstmCell {
            d_in,
            d_h,
            w: init(4 * d_h * d_in, scale_w, rng),
            u: init(4 * d_h * d_h, scale_u, rng),
            b,
            gw: vec![0.0; 4 * d_h * d_in],
            gu: vec![0.0; 4 * d_h * d_h],
            gb: vec![0.0; 4 * d_h],
        }
    }

    /// Run the cell over a sequence, recording the trace.
    pub fn forward(&self, xs: &[Vec<f64>]) -> LstmTrace {
        let d_h = self.d_h;
        let mut trace = LstmTrace {
            xs: xs.to_vec(),
            gates: Vec::with_capacity(xs.len()),
            cs: Vec::with_capacity(xs.len()),
            hs: Vec::with_capacity(xs.len()),
        };
        let mut h_prev = vec![0.0; d_h];
        let mut c_prev = vec![0.0; d_h];
        for x in xs {
            debug_assert_eq!(x.len(), self.d_in);
            // z = W x + U h_prev + b
            let mut z = self.b.clone();
            for (row, zr) in z.iter_mut().enumerate() {
                let wrow = &self.w[row * self.d_in..(row + 1) * self.d_in];
                let urow = &self.u[row * d_h..(row + 1) * d_h];
                let mut acc = 0.0;
                for (wv, xv) in wrow.iter().zip(x) {
                    acc += wv * xv;
                }
                for (uv, hv) in urow.iter().zip(&h_prev) {
                    acc += uv * hv;
                }
                *zr += acc;
            }
            let mut gates = vec![0.0; 4 * d_h];
            for k in 0..d_h {
                gates[k] = sigmoid(z[k]); // i
                gates[d_h + k] = sigmoid(z[d_h + k]); // f
                gates[2 * d_h + k] = sigmoid(z[2 * d_h + k]); // o
                gates[3 * d_h + k] = z[3 * d_h + k].tanh(); // g
            }
            let mut c = vec![0.0; d_h];
            let mut h = vec![0.0; d_h];
            for k in 0..d_h {
                c[k] = gates[d_h + k] * c_prev[k] + gates[k] * gates[3 * d_h + k];
                h[k] = gates[2 * d_h + k] * c[k].tanh();
            }
            trace.gates.push(gates);
            trace.cs.push(c.clone());
            trace.hs.push(h.clone());
            h_prev = h;
            c_prev = c;
        }
        trace
    }

    /// Backpropagate: `dhs[t]` is ∂loss/∂h_t from above. Accumulates
    /// parameter gradients and returns ∂loss/∂x_t per step.
    pub fn backward(&mut self, trace: &LstmTrace, dhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let t_len = trace.hs.len();
        assert_eq!(dhs.len(), t_len);
        let d_h = self.d_h;
        let mut dxs = vec![vec![0.0; self.d_in]; t_len];
        let mut dh_next = vec![0.0; d_h];
        let mut dc_next = vec![0.0; d_h];
        for t in (0..t_len).rev() {
            let gates = &trace.gates[t];
            let c = &trace.cs[t];
            let c_prev: &[f64] = if t == 0 { &[] } else { &trace.cs[t - 1] };
            let h_prev: &[f64] = if t == 0 { &[] } else { &trace.hs[t - 1] };
            let mut dz = vec![0.0; 4 * d_h];
            let mut dc_prev = vec![0.0; d_h];
            for k in 0..d_h {
                let (i, f, o, g) =
                    (gates[k], gates[d_h + k], gates[2 * d_h + k], gates[3 * d_h + k]);
                let tanh_c = c[k].tanh();
                let dh = dhs[t][k] + dh_next[k];
                let do_ = dh * tanh_c;
                let dc = dh * o * (1.0 - tanh_c * tanh_c) + dc_next[k];
                let cp = if t == 0 { 0.0 } else { c_prev[k] };
                let di = dc * g;
                let df = dc * cp;
                let dg = dc * i;
                dc_prev[k] = dc * f;
                dz[k] = di * i * (1.0 - i);
                dz[d_h + k] = df * f * (1.0 - f);
                dz[2 * d_h + k] = do_ * o * (1.0 - o);
                dz[3 * d_h + k] = dg * (1.0 - g * g);
            }
            // parameter gradients and input/hidden backprop
            let x = &trace.xs[t];
            let mut dh_prev = vec![0.0; d_h];
            for (row, &dzr) in dz.iter().enumerate() {
                // skip-zero optimization: exact test, an epsilon would
                // drop small but real gradient contributions
                if exactly_zero(dzr) {
                    continue;
                }
                let wrow = row * self.d_in;
                for (j, &xv) in x.iter().enumerate() {
                    self.gw[wrow + j] += dzr * xv;
                }
                for (j, &wv) in self.w[wrow..wrow + self.d_in].iter().enumerate() {
                    dxs[t][j] += dzr * wv;
                }
                self.gb[row] += dzr;
                if t > 0 {
                    let urow = row * d_h;
                    for j in 0..d_h {
                        self.gu[urow + j] += dzr * h_prev[j];
                        dh_prev[j] += dzr * self.u[urow + j];
                    }
                }
            }
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        dxs
    }

    /// Zero accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.fill(0.0);
        self.gu.fill(0.0);
        self.gb.fill(0.0);
    }

    /// Squared L2 norm of the gradients (for global clipping).
    pub fn grad_norm_sq(&self) -> f64 {
        self.gw.iter().chain(&self.gu).chain(&self.gb).map(|g| g * g).sum()
    }

    /// SGD step: `w ← w − lr·scale·g`.
    pub fn sgd_step(&mut self, lr: f64, scale: f64) {
        for (w, g) in self.w.iter_mut().zip(&self.gw) {
            *w -= lr * scale * g;
        }
        for (u, g) in self.u.iter_mut().zip(&self.gu) {
            *u -= lr * scale * g;
        }
        for (b, g) in self.b.iter_mut().zip(&self.gb) {
            *b -= lr * scale * g;
        }
    }
}

/// A bidirectional LSTM layer: forward and backward cells, hidden states
/// concatenated per step.
#[derive(Clone, Debug)]
pub struct BiLstm {
    /// Left-to-right cell.
    pub fwd: LstmCell,
    /// Right-to-left cell.
    pub bwd: LstmCell,
}

/// Trace of a bidirectional pass.
#[derive(Clone, Debug)]
pub struct BiTrace {
    /// Forward-cell trace.
    pub fwd: LstmTrace,
    /// Backward-cell trace (over the reversed sequence).
    pub bwd: LstmTrace,
}

impl BiLstm {
    /// Create with independent Xavier initializations.
    pub fn new(d_in: usize, d_h: usize, rng: &mut ChaCha8Rng) -> BiLstm {
        BiLstm { fwd: LstmCell::new(d_in, d_h, rng), bwd: LstmCell::new(d_in, d_h, rng) }
    }

    /// Hidden size of the concatenated output.
    pub fn d_out(&self) -> usize {
        2 * self.fwd.d_h
    }

    /// Run both directions; `output(t) = [h_fwd(t); h_bwd(t)]`.
    pub fn forward(&self, xs: &[Vec<f64>]) -> (BiTrace, Vec<Vec<f64>>) {
        let fwd = self.fwd.forward(xs);
        let rev: Vec<Vec<f64>> = xs.iter().rev().cloned().collect();
        let bwd = self.bwd.forward(&rev);
        let t_len = xs.len();
        let mut out = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let mut h = fwd.hs[t].clone();
            h.extend_from_slice(&bwd.hs[t_len - 1 - t]);
            out.push(h);
        }
        (BiTrace { fwd, bwd }, out)
    }

    /// Backward from per-step output gradients; returns input gradients.
    pub fn backward(&mut self, trace: &BiTrace, douts: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let t_len = douts.len();
        let d_h = self.fwd.d_h;
        let dh_fwd: Vec<Vec<f64>> = douts.iter().map(|d| d[..d_h].to_vec()).collect();
        let dh_bwd: Vec<Vec<f64>> = (0..t_len).rev().map(|t| douts[t][d_h..].to_vec()).collect();
        let dx_fwd = self.fwd.backward(&trace.fwd, &dh_fwd);
        let dx_bwd_rev = self.bwd.backward(&trace.bwd, &dh_bwd);
        let mut dxs = dx_fwd;
        for t in 0..t_len {
            for (a, b) in dxs[t].iter_mut().zip(&dx_bwd_rev[t_len - 1 - t]) {
                *a += b;
            }
        }
        dxs
    }

    /// Zero both cells' gradients.
    pub fn zero_grad(&mut self) {
        self.fwd.zero_grad();
        self.bwd.zero_grad();
    }

    /// Sum of both cells' squared gradient norms.
    pub fn grad_norm_sq(&self) -> f64 {
        self.fwd.grad_norm_sq() + self.bwd.grad_norm_sq()
    }

    /// SGD step on both cells.
    pub fn sgd_step(&mut self, lr: f64, scale: f64) {
        self.fwd.sgd_step(lr, scale);
        self.bwd.sgd_step(lr, scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cell(d_in: usize, d_h: usize, seed: u64) -> LstmCell {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        LstmCell::new(d_in, d_h, &mut rng)
    }

    fn seq(t: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..t).map(|_| (0..d).map(|_| rng.gen::<f64>() - 0.5).collect()).collect()
    }

    /// Scalar loss = sum of all hidden states, whose gradient is 1
    /// everywhere — a convenient target for finite differences.
    fn loss_of(cell: &LstmCell, xs: &[Vec<f64>]) -> f64 {
        cell.forward(xs).hs.iter().flatten().sum()
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let c = cell(3, 4, 1);
        let xs = seq(5, 3, 2);
        let tr = c.forward(&xs);
        assert_eq!(tr.hs.len(), 5);
        assert_eq!(tr.hs[0].len(), 4);
        let tr2 = c.forward(&xs);
        assert_eq!(tr.hs, tr2.hs);
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let mut c = cell(3, 4, 7);
        let xs = seq(4, 3, 8);
        let tr = c.forward(&xs);
        let dhs = vec![vec![1.0; 4]; 4];
        c.zero_grad();
        c.backward(&tr, &dhs);
        let eps = 1e-6;
        // spot-check weights in each parameter block
        for idx in [0usize, 5, 11] {
            let orig = c.w[idx];
            c.w[idx] = orig + eps;
            let fp = loss_of(&c, &xs);
            c.w[idx] = orig - eps;
            let fm = loss_of(&c, &xs);
            c.w[idx] = orig;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - c.gw[idx]).abs() < 1e-6, "w[{idx}]: {fd} vs {}", c.gw[idx]);
        }
        for idx in [0usize, 7, 15] {
            let orig = c.u[idx];
            c.u[idx] = orig + eps;
            let fp = loss_of(&c, &xs);
            c.u[idx] = orig - eps;
            let fm = loss_of(&c, &xs);
            c.u[idx] = orig;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - c.gu[idx]).abs() < 1e-6, "u[{idx}]: {fd} vs {}", c.gu[idx]);
        }
        for idx in [0usize, 6, 13] {
            let orig = c.b[idx];
            c.b[idx] = orig + eps;
            let fp = loss_of(&c, &xs);
            c.b[idx] = orig - eps;
            let fm = loss_of(&c, &xs);
            c.b[idx] = orig;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - c.gb[idx]).abs() < 1e-6, "b[{idx}]: {fd} vs {}", c.gb[idx]);
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut c = cell(3, 2, 9);
        let xs = seq(3, 3, 10);
        let tr = c.forward(&xs);
        let dhs = vec![vec![1.0; 2]; 3];
        c.zero_grad();
        let dxs = c.backward(&tr, &dhs);
        let eps = 1e-6;
        for t in 0..3 {
            for j in 0..3 {
                let mut xp = xs.clone();
                xp[t][j] += eps;
                let fp = loss_of(&c, &xp);
                xp[t][j] -= 2.0 * eps;
                let fm = loss_of(&c, &xp);
                let fd = (fp - fm) / (2.0 * eps);
                assert!((fd - dxs[t][j]).abs() < 1e-6, "x[{t}][{j}]: {fd} vs {}", dxs[t][j]);
            }
        }
    }

    #[test]
    fn bilstm_output_concatenates_directions() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let bi = BiLstm::new(3, 5, &mut rng);
        let xs = seq(4, 3, 5);
        let (_, out) = bi.forward(&xs);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].len(), 10);
        assert_eq!(bi.d_out(), 10);
    }

    #[test]
    fn bilstm_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut bi = BiLstm::new(2, 3, &mut rng);
        let xs = seq(3, 2, 12);
        let loss =
            |bi: &BiLstm, xs: &[Vec<f64>]| -> f64 { bi.forward(xs).1.iter().flatten().sum() };
        let (tr, out) = bi.forward(&xs);
        let douts = vec![vec![1.0; 6]; out.len()];
        bi.zero_grad();
        let dxs = bi.backward(&tr, &douts);
        let eps = 1e-6;
        // input gradient check (covers both directions' chains)
        for t in 0..3 {
            for j in 0..2 {
                let mut xp = xs.clone();
                xp[t][j] += eps;
                let fp = loss(&bi, &xp);
                xp[t][j] -= 2.0 * eps;
                let fm = loss(&bi, &xp);
                let fd = (fp - fm) / (2.0 * eps);
                assert!((fd - dxs[t][j]).abs() < 1e-6);
            }
        }
        // one parameter in the backward cell
        let orig = bi.bwd.w[3];
        bi.bwd.w[3] = orig + eps;
        let fp = loss(&bi, &xs);
        bi.bwd.w[3] = orig - eps;
        let fm = loss(&bi, &xs);
        bi.bwd.w[3] = orig;
        let fd = (fp - fm) / (2.0 * eps);
        assert!((fd - bi.bwd.gw[3]).abs() < 1e-6);
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut c = cell(2, 2, 20);
        let xs = seq(2, 2, 21);
        let before = loss_of(&c, &xs);
        for _ in 0..20 {
            let tr = c.forward(&xs);
            let dhs = vec![vec![1.0; 2]; 2];
            c.zero_grad();
            c.backward(&tr, &dhs);
            c.sgd_step(0.1, 1.0);
        }
        let after = loss_of(&c, &xs);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn empty_sequence() {
        let c = cell(3, 2, 1);
        let tr = c.forward(&[]);
        assert!(tr.hs.is_empty());
    }
}
