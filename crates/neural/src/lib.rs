//! From-scratch bi-LSTM-CRF sequence tagger — the neural baseline the
//! paper benchmarks against (LSTM-CRF of Lample et al. 2016, and a
//! stand-in for the character-based tagger of Rei et al. 2016 via the
//! character bi-LSTM features).
//!
//! No autograd, no BLAS: [`lstm`] implements the recurrent cells with
//! manual backpropagation (finite-difference-checked), [`crf_layer`] the
//! CRF output layer, and [`model`] ties them together with SGD training,
//! gradient clipping, and dev-set early stopping.

// Index loops over parallel arrays are the clearest form for the
// numeric kernels in this crate; clippy's iterator rewrites would
// obscure the index relationships between the buffers.
#![allow(clippy::needless_range_loop)]

pub mod crf_layer;
pub mod lstm;
pub mod model;

pub use crf_layer::CrfLayer;
pub use lstm::{BiLstm, LstmCell};
pub use model::{LstmCrfConfig, TrainHistory, TrainedLstmCrf};
