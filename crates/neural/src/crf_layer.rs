//! CRF output layer over the BIO tags.
//!
//! The LSTM-CRF's final layer: given per-token emission scores it
//! defines `p(t|x) ∝ exp(Σ start + emissions + transitions)`, with the
//! negative log-likelihood loss, its gradients (with respect to both the
//! layer's transition parameters and the emissions, so the LSTM below
//! can be trained), and Viterbi decoding.

use graphner_text::NUM_TAGS;

const Y: usize = NUM_TAGS;

fn logsumexp(v: &[f64; Y]) -> f64 {
    let m = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return m;
    }
    m + v.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// The CRF layer parameters and their gradient accumulators.
#[derive(Clone, Debug)]
pub struct CrfLayer {
    /// Transition scores `trans[prev][cur]`.
    pub trans: [[f64; Y]; Y],
    /// Initial-tag scores.
    pub start: [f64; Y],
    /// Gradient of `trans`.
    pub gtrans: [[f64; Y]; Y],
    /// Gradient of `start`.
    pub gstart: [f64; Y],
}

impl Default for CrfLayer {
    fn default() -> CrfLayer {
        CrfLayer { trans: [[0.0; Y]; Y], start: [0.0; Y], gtrans: [[0.0; Y]; Y], gstart: [0.0; Y] }
    }
}

impl CrfLayer {
    /// Negative log-likelihood of `gold` under the emissions, gradient
    /// accumulation into the layer, and the emission gradients
    /// (`marginals − one-hot`).
    pub fn loss_and_grad(
        &mut self,
        emissions: &[[f64; Y]],
        gold: &[usize],
    ) -> (f64, Vec<[f64; Y]>) {
        let l = emissions.len();
        assert_eq!(gold.len(), l);
        assert!(l > 0);

        // log-space forward and backward
        let mut alpha = vec![[0.0f64; Y]; l];
        for y in 0..Y {
            alpha[0][y] = self.start[y] + emissions[0][y];
        }
        for t in 1..l {
            for y in 0..Y {
                let mut acc = [0.0; Y];
                for p in 0..Y {
                    acc[p] = alpha[t - 1][p] + self.trans[p][y];
                }
                alpha[t][y] = logsumexp(&acc) + emissions[t][y];
            }
        }
        let log_z = logsumexp(&alpha[l - 1]);

        let mut beta = vec![[0.0f64; Y]; l];
        for t in (0..l - 1).rev() {
            for y in 0..Y {
                let mut acc = [0.0; Y];
                for n in 0..Y {
                    acc[n] = self.trans[y][n] + emissions[t + 1][n] + beta[t + 1][n];
                }
                beta[t][y] = logsumexp(&acc);
            }
        }

        // gold score
        let mut gold_score = self.start[gold[0]] + emissions[0][gold[0]];
        for t in 1..l {
            gold_score += self.trans[gold[t - 1]][gold[t]] + emissions[t][gold[t]];
        }
        let loss = log_z - gold_score;

        // emission gradients: unary marginals − one-hot(gold)
        let mut demissions = vec![[0.0f64; Y]; l];
        for t in 0..l {
            for y in 0..Y {
                demissions[t][y] = (alpha[t][y] + beta[t][y] - log_z).exp();
            }
            demissions[t][gold[t]] -= 1.0;
        }

        // start gradient
        for y in 0..Y {
            self.gstart[y] += (alpha[0][y] + beta[0][y] - log_z).exp();
        }
        self.gstart[gold[0]] -= 1.0;

        // transition gradients: pairwise marginals − observed
        for t in 1..l {
            for p in 0..Y {
                for y in 0..Y {
                    let lp =
                        alpha[t - 1][p] + self.trans[p][y] + emissions[t][y] + beta[t][y] - log_z;
                    self.gtrans[p][y] += lp.exp();
                }
            }
            self.gtrans[gold[t - 1]][gold[t]] -= 1.0;
        }

        (loss, demissions)
    }

    /// Per-token unary marginals `p(t_i = y | x)` via forward–backward,
    /// the same recurrences as [`loss_and_grad`](CrfLayer::loss_and_grad)
    /// without gold tags or gradient accumulation.
    pub fn marginals(&self, emissions: &[[f64; Y]]) -> Vec<[f64; Y]> {
        let l = emissions.len();
        if l == 0 {
            return Vec::new();
        }
        let mut alpha = vec![[0.0f64; Y]; l];
        for y in 0..Y {
            alpha[0][y] = self.start[y] + emissions[0][y];
        }
        for t in 1..l {
            for y in 0..Y {
                let mut acc = [0.0; Y];
                for p in 0..Y {
                    acc[p] = alpha[t - 1][p] + self.trans[p][y];
                }
                alpha[t][y] = logsumexp(&acc) + emissions[t][y];
            }
        }
        let log_z = logsumexp(&alpha[l - 1]);

        let mut beta = vec![[0.0f64; Y]; l];
        for t in (0..l - 1).rev() {
            for y in 0..Y {
                let mut acc = [0.0; Y];
                for n in 0..Y {
                    acc[n] = self.trans[y][n] + emissions[t + 1][n] + beta[t + 1][n];
                }
                beta[t][y] = logsumexp(&acc);
            }
        }

        let mut marginals = vec![[0.0f64; Y]; l];
        for t in 0..l {
            for y in 0..Y {
                marginals[t][y] = (alpha[t][y] + beta[t][y] - log_z).exp();
            }
        }
        marginals
    }

    /// Viterbi decode over emissions.
    pub fn viterbi(&self, emissions: &[[f64; Y]]) -> Vec<usize> {
        let l = emissions.len();
        if l == 0 {
            return Vec::new();
        }
        let mut delta = vec![[0.0f64; Y]; l];
        let mut back = vec![[0usize; Y]; l];
        for y in 0..Y {
            delta[0][y] = self.start[y] + emissions[0][y];
        }
        for t in 1..l {
            for y in 0..Y {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0;
                for p in 0..Y {
                    let v = delta[t - 1][p] + self.trans[p][y];
                    if v > best {
                        best = v;
                        arg = p;
                    }
                }
                delta[t][y] = best + emissions[t][y];
                back[t][y] = arg;
            }
        }
        let mut cur =
            (0..Y).max_by(|&a, &b| delta[l - 1][a].total_cmp(&delta[l - 1][b])).unwrap_or(0);
        let mut path = vec![0usize; l];
        path[l - 1] = cur;
        for t in (1..l).rev() {
            cur = back[t][cur];
            path[t - 1] = cur;
        }
        path
    }

    /// Zero the gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.gtrans = [[0.0; Y]; Y];
        self.gstart = [0.0; Y];
    }

    /// Squared L2 norm of the gradients.
    pub fn grad_norm_sq(&self) -> f64 {
        self.gtrans.iter().flatten().chain(self.gstart.iter()).map(|g| g * g).sum()
    }

    /// SGD step.
    pub fn sgd_step(&mut self, lr: f64, scale: f64) {
        for p in 0..Y {
            for y in 0..Y {
                self.trans[p][y] -= lr * scale * self.gtrans[p][y];
            }
            self.start[p] -= lr * scale * self.gstart[p];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emissions(l: usize, seed: u64) -> Vec<[f64; Y]> {
        let mut state = seed.max(1);
        (0..l)
            .map(|_| {
                let mut e = [0.0; Y];
                for v in e.iter_mut() {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    *v = ((state % 400) as f64 / 100.0) - 2.0;
                }
                e
            })
            .collect()
    }

    /// Brute-force NLL by enumerating all paths.
    fn brute_nll(layer: &CrfLayer, em: &[[f64; Y]], gold: &[usize]) -> f64 {
        let l = em.len();
        let score = |path: &[usize]| -> f64 {
            let mut s = layer.start[path[0]] + em[0][path[0]];
            for t in 1..l {
                s += layer.trans[path[t - 1]][path[t]] + em[t][path[t]];
            }
            s
        };
        let mut z = 0.0f64;
        let mut best = (f64::NEG_INFINITY, vec![]);
        for code in 0..Y.pow(l as u32) {
            let mut c = code;
            let path: Vec<usize> = (0..l)
                .map(|_| {
                    let y = c % Y;
                    c /= Y;
                    y
                })
                .collect();
            let s = score(&path);
            z += s.exp();
            if s > best.0 {
                best = (s, path);
            }
        }
        z.ln() - score(gold)
    }

    fn toy_layer(seed: u64) -> CrfLayer {
        let mut layer = CrfLayer::default();
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 200) as f64 / 100.0) - 1.0
        };
        for p in 0..Y {
            for y in 0..Y {
                layer.trans[p][y] = next();
            }
            layer.start[p] = next();
        }
        layer
    }

    #[test]
    fn loss_matches_brute_force() {
        let mut layer = toy_layer(3);
        let em = emissions(4, 5);
        let gold = vec![2, 0, 1, 2];
        let (loss, _) = layer.loss_and_grad(&em, &gold);
        let expect = brute_nll(&layer, &em, &gold);
        assert!((loss - expect).abs() < 1e-9, "{loss} vs {expect}");
        assert!(loss > 0.0);
    }

    #[test]
    fn emission_gradients_match_finite_differences() {
        let mut layer = toy_layer(7);
        let mut em = emissions(3, 9);
        let gold = vec![0, 1, 2];
        let (_, dem) = layer.loss_and_grad(&em, &gold);
        let eps = 1e-6;
        for t in 0..3 {
            for y in 0..Y {
                let orig = em[t][y];
                em[t][y] = orig + eps;
                let (fp, _) = layer.clone().loss_and_grad(&em, &gold);
                em[t][y] = orig - eps;
                let (fm, _) = layer.clone().loss_and_grad(&em, &gold);
                em[t][y] = orig;
                let fd = (fp - fm) / (2.0 * eps);
                assert!((fd - dem[t][y]).abs() < 1e-6, "t={t} y={y}");
            }
        }
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let layer = toy_layer(11);
        let em = emissions(4, 13);
        let gold = vec![1, 2, 0, 2];
        let mut work = layer.clone();
        work.zero_grad();
        let _ = work.loss_and_grad(&em, &gold);
        let eps = 1e-6;
        for p in 0..Y {
            for y in 0..Y {
                let mut lp = layer.clone();
                lp.trans[p][y] += eps;
                let (fp, _) = lp.loss_and_grad(&em, &gold);
                let mut lm = layer.clone();
                lm.trans[p][y] -= eps;
                let (fm, _) = lm.loss_and_grad(&em, &gold);
                let fd = (fp - fm) / (2.0 * eps);
                assert!((fd - work.gtrans[p][y]).abs() < 1e-6, "trans[{p}][{y}]");
            }
            let mut lp = layer.clone();
            lp.start[p] += eps;
            let (fp, _) = lp.loss_and_grad(&em, &gold);
            let mut lm = layer.clone();
            lm.start[p] -= eps;
            let (fm, _) = lm.loss_and_grad(&em, &gold);
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - work.gstart[p]).abs() < 1e-6, "start[{p}]");
        }
    }

    #[test]
    fn viterbi_matches_brute_force() {
        for seed in 1..5u64 {
            let layer = toy_layer(seed * 3);
            let em = emissions(5, seed);
            let path = layer.viterbi(&em);
            // brute-force argmax
            let l = em.len();
            let score = |path: &[usize]| -> f64 {
                let mut s = layer.start[path[0]] + em[0][path[0]];
                for t in 1..l {
                    s += layer.trans[path[t - 1]][path[t]] + em[t][path[t]];
                }
                s
            };
            let mut best = f64::NEG_INFINITY;
            for code in 0..Y.pow(l as u32) {
                let mut c = code;
                let p: Vec<usize> = (0..l)
                    .map(|_| {
                        let y = c % Y;
                        c /= Y;
                        y
                    })
                    .collect();
                best = best.max(score(&p));
            }
            assert!((score(&path) - best).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn training_on_layer_alone_fits_pattern() {
        // fixed emissions, learnable transitions: gold alternates 0,1
        let mut layer = CrfLayer::default();
        let em = vec![[0.0; Y]; 6];
        let gold = vec![0, 1, 0, 1, 0, 1];
        for _ in 0..200 {
            layer.zero_grad();
            let _ = layer.loss_and_grad(&em, &gold);
            layer.sgd_step(0.5, 1.0);
        }
        assert_eq!(layer.viterbi(&em), gold);
    }

    #[test]
    fn marginals_are_distributions_and_match_gradient_path() {
        let layer = toy_layer(17);
        let em = emissions(5, 19);
        let marg = layer.marginals(&em);
        assert_eq!(marg.len(), 5);
        for row in &marg {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
        // loss_and_grad's emission gradient is marginals − one-hot(gold)
        let gold = vec![0, 1, 2, 0, 1];
        let (_, dem) = layer.clone().loss_and_grad(&em, &gold);
        for t in 0..5 {
            for y in 0..Y {
                let expect = dem[t][y] + if gold[t] == y { 1.0 } else { 0.0 };
                assert!((marg[t][y] - expect).abs() < 1e-12, "t={t} y={y}");
            }
        }
        assert!(layer.marginals(&[]).is_empty());
    }

    #[test]
    fn single_token_sequence() {
        let mut layer = toy_layer(2);
        let em = emissions(1, 4);
        let (loss, dem) = layer.loss_and_grad(&em, &[1]);
        assert!(loss.is_finite());
        assert_eq!(dem.len(), 1);
        let s: f64 = dem[0].iter().sum();
        assert!(s.abs() < 1e-9); // marginals sum to 1, minus one-hot sums to 0
    }
}
