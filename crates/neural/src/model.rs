//! The bi-LSTM-CRF sequence tagger (Lample et al. 2016).
//!
//! Word embeddings (optionally concatenated with character bi-LSTM
//! final states, which carry the orthographic signal gene symbols live
//! on) feed a bidirectional LSTM; a linear projection produces per-tag
//! emissions; a CRF output layer scores tag sequences. Trained by
//! plain SGD with global-norm gradient clipping, singleton-to-UNK
//! replacement, learning-rate decay, and early stopping on a dev split
//! (the paper carves a dev set out of the training data for exactly
//! this model).

use crate::crf_layer::CrfLayer;
use crate::lstm::BiLstm;
use graphner_text::sentence::tags_to_mentions;
use graphner_text::{
    check_posteriors_finite, exactly_zero, is_zero, validate_sentences, BioTag, Corpus, Sentence,
    TagError, Tagger, Vocab, NUM_TAGS,
};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

/// Hyper-parameters of the tagger.
#[derive(Clone, Debug)]
pub struct LstmCrfConfig {
    /// Word-embedding dimensionality.
    pub word_dim: usize,
    /// Character-embedding dimensionality.
    pub char_dim: usize,
    /// Character bi-LSTM hidden size (per direction).
    pub char_hidden: usize,
    /// Word-level bi-LSTM hidden size (per direction).
    pub hidden: usize,
    /// Whether to use the character bi-LSTM.
    pub use_chars: bool,
    /// Initial SGD learning rate.
    pub learning_rate: f64,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f64,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Global gradient-norm clip.
    pub clip: f64,
    /// Probability of replacing a singleton word with UNK during
    /// training.
    pub unk_prob: f64,
    /// Early stopping: epochs without dev improvement tolerated.
    pub patience: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LstmCrfConfig {
    fn default() -> LstmCrfConfig {
        LstmCrfConfig {
            word_dim: 50,
            char_dim: 16,
            char_hidden: 16,
            hidden: 64,
            use_chars: true,
            learning_rate: 0.05,
            lr_decay: 0.95,
            epochs: 15,
            clip: 5.0,
            unk_prob: 0.3,
            patience: 3,
            seed: 42,
        }
    }
}

/// Per-epoch training history.
#[derive(Clone, Debug, Default)]
pub struct TrainHistory {
    /// Dev mention-F per epoch.
    pub dev_f: Vec<f64>,
    /// Epoch whose parameters were kept.
    pub best_epoch: usize,
}

/// A trained bi-LSTM-CRF tagger.
#[derive(Clone, Debug)]
pub struct LstmCrfTagger {
    cfg: LstmCrfConfig,
    words: Vocab,
    chars: Vocab,
    word_counts: FxHashMap<u32, u32>,
    word_emb: Vec<f64>,
    char_emb: Vec<f64>,
    char_bi: Option<BiLstm>,
    bilstm: BiLstm,
    wout: Vec<f64>,
    bout: [f64; NUM_TAGS],
}

/// Scratch produced by one forward pass, consumed by backward.
struct Forward {
    word_ids: Vec<u32>,
    char_ids: Vec<Vec<u32>>,
    char_passes: Vec<(crate::lstm::BiTrace, Vec<Vec<f64>>)>,
    trace: crate::lstm::BiTrace,
    ctx: Vec<Vec<f64>>,
    emissions: Vec<[f64; NUM_TAGS]>,
}

const UNK: u32 = 0;

impl LstmCrfTagger {
    fn input_dim(cfg: &LstmCrfConfig) -> usize {
        cfg.word_dim + if cfg.use_chars { 2 * cfg.char_hidden } else { 0 }
    }

    fn new(cfg: LstmCrfConfig, train: &Corpus, rng: &mut ChaCha8Rng) -> LstmCrfTagger {
        let mut words = Vocab::new();
        let mut chars = Vocab::new();
        words.intern("<unk>");
        chars.intern("<unk>");
        let mut word_counts: FxHashMap<u32, u32> = FxHashMap::default();
        for sentence in &train.sentences {
            for tok in &sentence.tokens {
                let id = words.intern(&tok.to_lowercase());
                *word_counts.entry(id).or_insert(0) += 1;
                for c in tok.chars() {
                    chars.intern(&c.to_string());
                }
            }
        }
        let init = |n: usize, s: f64, rng: &mut ChaCha8Rng| -> Vec<f64> {
            (0..n).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * s).collect()
        };
        let d_in = Self::input_dim(&cfg);
        let d_out = 2 * cfg.hidden;
        LstmCrfTagger {
            words: words.clone(),
            chars: chars.clone(),
            word_counts,
            word_emb: init(words.len() * cfg.word_dim, 0.1, rng),
            char_emb: init(chars.len() * cfg.char_dim, 0.1, rng),
            char_bi: if cfg.use_chars {
                Some(BiLstm::new(cfg.char_dim, cfg.char_hidden, rng))
            } else {
                None
            },
            bilstm: BiLstm::new(d_in, cfg.hidden, rng),
            wout: init(NUM_TAGS * d_out, (6.0 / (d_out + NUM_TAGS) as f64).sqrt(), rng),
            bout: [0.0; NUM_TAGS],
            cfg,
        }
    }

    fn word_id(&self, token: &str) -> u32 {
        self.words.get(&token.to_lowercase()).unwrap_or(UNK)
    }

    fn forward(&self, tokens: &[String], word_ids: Vec<u32>) -> Forward {
        let cfg = &self.cfg;
        let mut char_ids = Vec::with_capacity(tokens.len());
        let mut char_passes = Vec::new();
        let mut inputs = Vec::with_capacity(tokens.len());
        for (t, tok) in tokens.iter().enumerate() {
            let mut x = self.word_emb
                [word_ids[t] as usize * cfg.word_dim..(word_ids[t] as usize + 1) * cfg.word_dim]
                .to_vec();
            if let Some(cb) = &self.char_bi {
                let ids: Vec<u32> =
                    tok.chars().map(|c| self.chars.get(&c.to_string()).unwrap_or(UNK)).collect();
                let xs: Vec<Vec<f64>> = ids
                    .iter()
                    .map(|&c| {
                        self.char_emb[c as usize * cfg.char_dim..(c as usize + 1) * cfg.char_dim]
                            .to_vec()
                    })
                    .collect();
                let (trace, outs) = cb.forward(&xs);
                let last = outs.len() - 1;
                // final forward state ++ final backward state
                x.extend_from_slice(&outs[last][..cfg.char_hidden]);
                x.extend_from_slice(&outs[0][cfg.char_hidden..]);
                char_passes.push((trace, outs));
                char_ids.push(ids);
            } else {
                char_ids.push(Vec::new());
            }
            inputs.push(x);
        }
        let (trace, ctx) = self.bilstm.forward(&inputs);
        let d_out = 2 * cfg.hidden;
        let emissions: Vec<[f64; NUM_TAGS]> = ctx
            .iter()
            .map(|h| {
                let mut e = self.bout;
                for y in 0..NUM_TAGS {
                    let row = &self.wout[y * d_out..(y + 1) * d_out];
                    e[y] += row.iter().zip(h).map(|(w, x)| w * x).sum::<f64>();
                }
                e
            })
            .collect();
        Forward { word_ids, char_ids, char_passes, trace, ctx, emissions }
    }

    /// Predict BIO tags for a sentence.
    pub fn predict_with(&self, crf: &CrfLayer, sentence: &Sentence) -> Vec<BioTag> {
        if sentence.is_empty() {
            return Vec::new();
        }
        let ids: Vec<u32> = sentence.tokens.iter().map(|t| self.word_id(t)).collect();
        let f = self.forward(&sentence.tokens, ids);
        crf.viterbi(&f.emissions).into_iter().map(BioTag::from_index).collect()
    }
}

/// A fully trained tagger bundled with its CRF layer.
#[derive(Clone, Debug)]
pub struct TrainedLstmCrf {
    tagger: LstmCrfTagger,
    crf: CrfLayer,
    /// Training history (dev F per epoch, chosen epoch).
    pub history: TrainHistory,
}

impl TrainedLstmCrf {
    /// Train on `train`, early-stopping on mention-F over `dev`.
    pub fn train(train: &Corpus, dev: &Corpus, cfg: &LstmCrfConfig) -> TrainedLstmCrf {
        assert!(train.fully_labelled() && dev.fully_labelled());
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut tagger = LstmCrfTagger::new(cfg.clone(), train, &mut rng);
        let mut crf = CrfLayer::default();

        let mut best: Option<(f64, LstmCrfTagger, CrfLayer, usize)> = None;
        let mut history = TrainHistory::default();
        let mut lr = cfg.learning_rate;
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut bad_epochs = 0usize;

        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &si in &order {
                let sentence = &train.sentences[si];
                if sentence.is_empty() {
                    continue;
                }
                let gold: Vec<usize> =
                    sentence.tags.as_ref().unwrap().iter().map(|t| t.index()).collect();
                // singleton -> UNK replacement
                let word_ids: Vec<u32> = sentence
                    .tokens
                    .iter()
                    .map(|t| {
                        let id = tagger.word_id(t);
                        if id != UNK
                            && tagger.word_counts.get(&id) == Some(&1)
                            && rng.gen::<f64>() < cfg.unk_prob
                        {
                            UNK
                        } else {
                            id
                        }
                    })
                    .collect();
                step(&mut tagger, &mut crf, sentence, word_ids, &gold, lr);
            }
            // dev evaluation
            let f = mention_f(&tagger, &crf, dev);
            history.dev_f.push(f);
            graphner_obs::obs_debug!(
                "lstm-crf: epoch {}/{} dev mention-F {f:.4} (lr {lr:.4e})",
                epoch + 1,
                cfg.epochs
            );
            graphner_obs::gauge("lstm_crf.dev_f").set(f);
            match &best {
                Some((bf, ..)) if f <= *bf => {
                    bad_epochs += 1;
                    if bad_epochs > cfg.patience {
                        break;
                    }
                }
                _ => {
                    best = Some((f, tagger.clone(), crf.clone(), epoch));
                    bad_epochs = 0;
                }
            }
            lr *= cfg.lr_decay;
        }

        let (_, best_tagger, best_crf, best_epoch) = best.unwrap_or((0.0, tagger, crf, 0));
        history.best_epoch = best_epoch;
        graphner_obs::obs_summary!(
            "lstm-crf: trained {} epochs, best dev mention-F {:.4} at epoch {}",
            history.dev_f.len(),
            history.dev_f.iter().cloned().fold(0.0f64, f64::max),
            best_epoch + 1
        );
        TrainedLstmCrf { tagger: best_tagger, crf: best_crf, history }
    }

    /// Predict BIO tags.
    pub fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
        self.tagger.predict_with(&self.crf, sentence)
    }

    /// Per-token tag posteriors from the CRF layer's forward–backward
    /// marginals over the bi-LSTM emissions.
    pub fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
        if sentence.is_empty() {
            return Vec::new();
        }
        let ids: Vec<u32> = sentence.tokens.iter().map(|t| self.tagger.word_id(t)).collect();
        let f = self.tagger.forward(&sentence.tokens, ids);
        self.crf.marginals(&f.emissions)
    }
}

impl Tagger for TrainedLstmCrf {
    fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
        TrainedLstmCrf::predict(self, sentence)
    }

    fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
        TrainedLstmCrf::posteriors(self, sentence)
    }

    /// Inference is per-sentence independent (the forward pass borrows
    /// the frozen weights immutably), so the batch path parallelizes;
    /// order-preserving collection keeps it identical to a sequential
    /// pass.
    fn tag_batch(&self, sentences: &[Sentence]) -> Vec<Vec<BioTag>> {
        use rayon::prelude::*;
        sentences.par_iter().map(|s| TrainedLstmCrf::predict(self, s)).collect()
    }

    /// Fallible batch path with the same fan-out as `tag_batch`, plus a
    /// per-sentence finiteness check on the CRF-layer marginals. The
    /// order-preserving collect means the sequential error scan below
    /// always reports the lowest offending batch index, so the outcome
    /// is deterministic at any thread count.
    fn try_tag_batch(&self, sentences: &[Sentence]) -> Result<Vec<Vec<BioTag>>, TagError> {
        validate_sentences(sentences)?;
        use rayon::prelude::*;
        let per: Vec<Result<Vec<BioTag>, TagError>> = sentences
            .par_iter()
            .enumerate()
            .map(|(index, s)| {
                check_posteriors_finite(index, &TrainedLstmCrf::posteriors(self, s))?;
                Ok(TrainedLstmCrf::predict(self, s))
            })
            .collect();
        let mut out = Vec::with_capacity(per.len());
        for r in per {
            out.push(r?);
        }
        Ok(out)
    }
}

/// One SGD step on a sentence.
fn step(
    tagger: &mut LstmCrfTagger,
    crf: &mut CrfLayer,
    sentence: &Sentence,
    word_ids: Vec<u32>,
    gold: &[usize],
    lr: f64,
) {
    let cfg = tagger.cfg.clone();
    let f = tagger.forward(&sentence.tokens, word_ids);
    crf.zero_grad();
    tagger.bilstm.zero_grad();
    if let Some(cb) = &mut tagger.char_bi {
        cb.zero_grad();
    }
    let (_loss, dem) = crf.loss_and_grad(&f.emissions, gold);

    // linear layer backward
    let d_out = 2 * cfg.hidden;
    let mut gwout = vec![0.0; tagger.wout.len()];
    let mut gbout = [0.0; NUM_TAGS];
    let mut dctx = vec![vec![0.0; d_out]; f.ctx.len()];
    for t in 0..f.ctx.len() {
        for y in 0..NUM_TAGS {
            let d = dem[t][y];
            if exactly_zero(d) {
                continue;
            }
            gbout[y] += d;
            let row = y * d_out;
            for j in 0..d_out {
                gwout[row + j] += d * f.ctx[t][j];
                dctx[t][j] += d * tagger.wout[row + j];
            }
        }
    }

    // word bi-LSTM backward
    let dxs = tagger.bilstm.backward(&f.trace, &dctx);

    // split input gradients into embedding and char parts
    let mut gword: FxHashMap<u32, Vec<f64>> = FxHashMap::default();
    let mut gchar: FxHashMap<u32, Vec<f64>> = FxHashMap::default();
    for (t, dx) in dxs.iter().enumerate() {
        let wid = f.word_ids[t];
        let gw = gword.entry(wid).or_insert_with(|| vec![0.0; cfg.word_dim]);
        for (g, d) in gw.iter_mut().zip(&dx[..cfg.word_dim]) {
            *g += d;
        }
        if let Some(cb) = &mut tagger.char_bi {
            let (trace, outs) = &f.char_passes[t];
            let n_chars = outs.len();
            let mut douts = vec![vec![0.0; 2 * cfg.char_hidden]; n_chars];
            let drepr = &dx[cfg.word_dim..];
            // repr = [outs[last][..ch]; outs[0][ch..]]
            douts[n_chars - 1][..cfg.char_hidden].copy_from_slice(&drepr[..cfg.char_hidden]);
            for j in 0..cfg.char_hidden {
                douts[0][cfg.char_hidden + j] += drepr[cfg.char_hidden + j];
            }
            let dchar_xs = cb.backward(trace, &douts);
            for (ci, dcx) in f.char_ids[t].iter().zip(dchar_xs) {
                let gc = gchar.entry(*ci).or_insert_with(|| vec![0.0; cfg.char_dim]);
                for (g, d) in gc.iter_mut().zip(&dcx) {
                    *g += d;
                }
            }
        }
    }

    // global norm clipping
    let mut norm_sq = tagger.bilstm.grad_norm_sq() + crf.grad_norm_sq();
    if let Some(cb) = &tagger.char_bi {
        norm_sq += cb.grad_norm_sq();
    }
    norm_sq += gwout.iter().map(|g| g * g).sum::<f64>();
    norm_sq += gbout.iter().map(|g| g * g).sum::<f64>();
    norm_sq += gword.values().flatten().map(|g| g * g).sum::<f64>();
    norm_sq += gchar.values().flatten().map(|g| g * g).sum::<f64>();
    let norm = norm_sq.sqrt();
    let scale = if norm > cfg.clip { cfg.clip / norm } else { 1.0 };

    // apply updates
    tagger.bilstm.sgd_step(lr, scale);
    crf.sgd_step(lr, scale);
    if let Some(cb) = &mut tagger.char_bi {
        cb.sgd_step(lr, scale);
    }
    for (w, g) in tagger.wout.iter_mut().zip(&gwout) {
        *w -= lr * scale * g;
    }
    for (b, g) in tagger.bout.iter_mut().zip(&gbout) {
        *b -= lr * scale * g;
    }
    for (wid, g) in gword {
        let base = wid as usize * cfg.word_dim;
        for (j, gv) in g.iter().enumerate() {
            tagger.word_emb[base + j] -= lr * scale * gv;
        }
    }
    for (cid, g) in gchar {
        let base = cid as usize * cfg.char_dim;
        for (j, gv) in g.iter().enumerate() {
            tagger.char_emb[base + j] -= lr * scale * gv;
        }
    }
}

/// Mention-level F over a labelled corpus.
fn mention_f(tagger: &LstmCrfTagger, crf: &CrfLayer, corpus: &Corpus) -> f64 {
    let (mut tp, mut n_pred, mut n_gold) = (0usize, 0usize, 0usize);
    for sentence in &corpus.sentences {
        let pred = tagger.predict_with(crf, sentence);
        let pm = tags_to_mentions(&pred);
        let gm = sentence.gold_mentions().unwrap();
        n_pred += pm.len();
        n_gold += gm.len();
        let gset: std::collections::HashSet<_> = gm.into_iter().collect();
        tp += pm.iter().filter(|m| gset.contains(m)).count();
    }
    if n_pred + n_gold == 0 {
        return 1.0;
    }
    let p = if n_pred == 0 { 0.0 } else { tp as f64 / n_pred as f64 };
    let r = if n_gold == 0 { 0.0 } else { tp as f64 / n_gold as f64 };
    if is_zero(p + r) {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_text::tokenize;
    use graphner_text::BioTag::*;

    fn toy_corpora() -> (Corpus, Corpus) {
        let mk = |id: String, text: &str, tags: Vec<BioTag>| {
            Sentence::labelled(id, tokenize(text), tags)
        };
        let mut train = Vec::new();
        let genes = ["WT1", "KRAS", "TP53", "FLT3"];
        for (i, g) in genes.iter().cycle().take(24).enumerate() {
            let text = format!("the {g} gene was expressed");
            train.push(mk(format!("s{i}"), &text, vec![O, B, O, O, O]));
            train.push(mk(format!("n{i}"), "the patient was treated well", vec![O, O, O, O, O]));
        }
        let dev = Corpus::from_sentences(vec![
            mk("d0".into(), "the NRAS gene was expressed", vec![O, B, O, O, O]),
            mk("d1".into(), "the patient was treated well", vec![O, O, O, O, O]),
        ]);
        (Corpus::from_sentences(train), dev)
    }

    fn quick_cfg() -> LstmCrfConfig {
        LstmCrfConfig {
            word_dim: 12,
            char_dim: 6,
            char_hidden: 6,
            hidden: 12,
            epochs: 12,
            learning_rate: 0.1,
            patience: 5,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn learns_simple_pattern_and_generalizes_by_shape() {
        let (train, dev) = toy_corpora();
        let model = TrainedLstmCrf::train(&train, &dev, &quick_cfg());
        // seen pattern
        let s = Sentence::unlabelled("t", tokenize("the WT1 gene was expressed"));
        assert_eq!(model.predict(&s), vec![O, B, O, O, O]);
        // unseen gene symbol: char-LSTM shape signal must carry it
        let s2 = Sentence::unlabelled("t2", tokenize("the IDH2 gene was expressed"));
        assert_eq!(model.predict(&s2), vec![O, B, O, O, O]);
        // non-gene sentence stays clean
        let s3 = Sentence::unlabelled("t3", tokenize("the patient was treated well"));
        assert!(model.predict(&s3).iter().all(|&t| t == O));
    }

    #[test]
    fn history_records_epochs() {
        let (train, dev) = toy_corpora();
        let model = TrainedLstmCrf::train(&train, &dev, &quick_cfg());
        assert!(!model.history.dev_f.is_empty());
        assert!(model.history.best_epoch < model.history.dev_f.len());
        let best = model.history.dev_f[model.history.best_epoch];
        assert!(model.history.dev_f.iter().all(|&f| f <= best + 1e-12));
    }

    #[test]
    fn deterministic_under_seed() {
        let (train, dev) = toy_corpora();
        let a = TrainedLstmCrf::train(&train, &dev, &quick_cfg());
        let b = TrainedLstmCrf::train(&train, &dev, &quick_cfg());
        let s = Sentence::unlabelled("t", tokenize("the KRAS gene was expressed"));
        assert_eq!(a.predict(&s), b.predict(&s));
        assert_eq!(a.history.dev_f, b.history.dev_f);
    }

    #[test]
    fn word_only_variant_trains() {
        let (train, dev) = toy_corpora();
        let cfg = LstmCrfConfig { use_chars: false, epochs: 8, ..quick_cfg() };
        let model = TrainedLstmCrf::train(&train, &dev, &cfg);
        let s = Sentence::unlabelled("t", tokenize("the WT1 gene was expressed"));
        assert_eq!(model.predict(&s), vec![O, B, O, O, O]);
    }

    #[test]
    fn posteriors_are_distributions_consistent_with_viterbi() {
        let (train, dev) = toy_corpora();
        let model = TrainedLstmCrf::train(&train, &dev, &quick_cfg());
        let s = Sentence::unlabelled("t", tokenize("the WT1 gene was expressed"));
        let post = model.posteriors(&s);
        assert_eq!(post.len(), 5);
        for row in &post {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert!(post[1][B.index()] > 0.5, "post = {:?}", post[1]);
        assert!(model.posteriors(&Sentence::unlabelled("e", vec![])).is_empty());
    }

    #[test]
    fn empty_sentence_prediction() {
        let (train, dev) = toy_corpora();
        let cfg = LstmCrfConfig { epochs: 1, ..quick_cfg() };
        let model = TrainedLstmCrf::train(&train, &dev, &cfg);
        assert!(model.predict(&Sentence::unlabelled("e", vec![])).is_empty());
    }
}
