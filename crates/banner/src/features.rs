//! BANNER-style observation feature extraction.
//!
//! BANNER's CRF owes its strength to a rich orthographic/lexical feature
//! set; BANNER-ChemDNER adds distributional features (Brown cluster path
//! prefixes and embedding-cluster ids) learned from unlabelled text.
//! Features are generated as strings (template `=` value), counted over
//! the training corpus, and frozen into a dense [`FeatureIndex`] with a
//! frequency cutoff; at prediction time unseen features are silently
//! dropped, as in any CRF tagger.

use graphner_embed::{
    brown_cluster, kmeans, train_sgns, BrownClustering, BrownConfig, KMeansConfig, SgnsConfig,
    WordClusters,
};
use graphner_text::shape::orthography;
use graphner_text::{brief_shape, lemma, word_shape, Corpus, Sentence, Vocab};
use rustc_hash::FxHashMap;

/// Distributional resources for the BANNER-ChemDNER variant, trained on
/// unlabelled text.
#[derive(Clone, Debug)]
pub struct DistributionalResources {
    vocab: Vocab,
    brown: BrownClustering,
    clusters: WordClusters,
}

/// Configuration for [`DistributionalResources::train`].
#[derive(Clone, Debug, Default)]
pub struct DistributionalConfig {
    /// Brown clustering settings.
    pub brown: BrownConfig,
    /// Embedding training settings.
    pub sgns: SgnsConfig,
    /// Embedding clustering settings.
    pub kmeans: KMeansConfig,
}

impl DistributionalResources {
    /// Learn Brown clusters and embedding clusters from (unlabelled)
    /// text. Tokens are lowercased before counting, as BANNER-ChemDNER
    /// does for its word-representation lookups.
    pub fn train(unlabelled: &Corpus, cfg: &DistributionalConfig) -> DistributionalResources {
        let mut vocab = Vocab::new();
        let id_sentences: Vec<Vec<u32>> = unlabelled
            .sentences
            .iter()
            .map(|s| s.tokens.iter().map(|t| vocab.intern(&t.to_lowercase())).collect())
            .collect();
        let brown = brown_cluster(&id_sentences, &cfg.brown);
        let emb = train_sgns(&id_sentences, &cfg.sgns);
        let clusters = kmeans(&emb, &cfg.kmeans);
        DistributionalResources { vocab, brown, clusters }
    }

    /// Brown path prefix of a token.
    pub fn brown_prefix(&self, token: &str, len: usize) -> Option<&str> {
        let id = self.vocab.get(&token.to_lowercase())?;
        self.brown.prefix(id, len)
    }

    /// Embedding cluster id of a token.
    pub fn embedding_cluster(&self, token: &str) -> Option<u32> {
        let id = self.vocab.get(&token.to_lowercase())?;
        self.clusters.get(id)
    }
}

/// Which feature groups to fire. `All` is BANNER's full set; `Lexical`
/// restricts to lemmas in a ±2 window — the two vertex-representation
/// choices of Table III that are defined without reference to a trained
/// model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureSet {
    /// The full BANNER feature set.
    All,
    /// Only lemmas of the words in a window of length 5.
    Lexical,
}

/// Generate the feature strings firing at position `i` of `sentence`.
///
/// `dist` enables the ChemDNER distributional features. Strings are
/// pushed into `out` (cleared first) so callers can reuse the buffer.
pub fn extract_features(
    sentence: &Sentence,
    i: usize,
    set: FeatureSet,
    dist: Option<&DistributionalResources>,
    out: &mut Vec<String>,
) {
    out.clear();
    let tokens = &sentence.tokens;
    let get = |j: isize| -> Option<&str> {
        if j < 0 || j as usize >= tokens.len() {
            None
        } else {
            Some(tokens[j as usize].as_str())
        }
    };
    let w = tokens[i].as_str();
    let i = i as isize;

    if set == FeatureSet::Lexical {
        for off in -2..=2i64 {
            if let Some(t) = get(i + off as isize) {
                out.push(format!("L{off}={}", lemma(t)));
            }
        }
        return;
    }

    out.push("BIAS".to_string());
    let lower = w.to_lowercase();
    out.push(format!("W={lower}"));
    out.push(format!("LEMMA={}", lemma(w)));
    out.push(format!("SHAPE={}", word_shape(w)));
    out.push(format!("BRIEF={}", brief_shape(w)));

    // context windows ±2
    for off in [-2isize, -1, 1, 2] {
        match get(i + off) {
            Some(t) => out.push(format!("W{off:+}={}", t.to_lowercase())),
            None => out.push(format!("W{off:+}=<pad>")),
        }
    }
    for off in [-1isize, 1] {
        if let Some(t) = get(i + off) {
            out.push(format!("LEMMA{off:+}={}", lemma(t)));
            out.push(format!("SHAPE{off:+}={}", word_shape(t)));
            out.push(format!("BRIEF{off:+}={}", brief_shape(t)));
        }
    }

    // conjunctions
    if let Some(p) = get(i - 1) {
        out.push(format!("BG-1={}|{}", p.to_lowercase(), lower));
    }
    if let Some(n) = get(i + 1) {
        out.push(format!("BG+1={}|{}", lower, n.to_lowercase()));
    }

    // affixes
    let chars: Vec<char> = w.chars().collect();
    for len in 1..=4usize {
        if chars.len() >= len {
            let prefix: String = chars[..len].iter().collect();
            let suffix: String = chars[chars.len() - len..].iter().collect();
            out.push(format!("PRE{len}={}", prefix.to_lowercase()));
            out.push(format!("SUF{len}={}", suffix.to_lowercase()));
        }
    }

    // character n-grams (2 and 3) of the lowercased token
    let lchars: Vec<char> = lower.chars().collect();
    for n in [2usize, 3] {
        if lchars.len() >= n {
            for win in lchars.windows(n) {
                out.push(format!("CG{n}={}", win.iter().collect::<String>()));
            }
        }
    }

    // orthographic predicates
    let o = orthography(w);
    for (flag, name) in [
        (o.all_caps, "ALLCAPS"),
        (o.init_cap, "INITCAP"),
        (o.mixed_case, "MIXED"),
        (o.all_digits, "ALLDIG"),
        (o.has_digit, "HASDIG"),
        (o.alphanumeric, "ALNUM"),
        (o.has_dash, "DASH"),
        (o.is_punct, "PUNCT"),
        (o.roman_numeral, "ROMAN"),
        (o.greek, "GREEK"),
        (o.single_char, "SINGLE"),
    ] {
        if flag {
            out.push(format!("ORTH={name}"));
        }
    }
    out.push(format!("LEN={}", chars.len().min(8)));

    // distributional features (BANNER-ChemDNER)
    if let Some(d) = dist {
        for off in [-1isize, 0, 1] {
            if let Some(t) = get(i + off) {
                for plen in [4usize, 6, 10, 20] {
                    if let Some(p) = d.brown_prefix(t, plen) {
                        out.push(format!("BR{off:+}.{plen}={p}"));
                    }
                }
                if let Some(c) = d.embedding_cluster(t) {
                    out.push(format!("EC{off:+}={c}"));
                }
            }
        }
    }
}

/// A frozen feature-string → dense-id index built from training counts.
#[derive(Clone, Debug, Default)]
pub struct FeatureIndex {
    map: FxHashMap<String, u32>,
}

impl FeatureIndex {
    /// Build from a counting pass: keep features occurring at least
    /// `min_count` times.
    pub fn build(counts: &FxHashMap<String, u32>, min_count: u32) -> FeatureIndex {
        let mut kept: Vec<&String> =
            counts.iter().filter(|&(_, &c)| c >= min_count).map(|(f, _)| f).collect();
        kept.sort_unstable(); // deterministic ids
        let map = kept.into_iter().enumerate().map(|(i, f)| (f.clone(), i as u32)).collect();
        FeatureIndex { map }
    }

    /// Number of indexed features.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Dense id of a feature string, if kept.
    pub fn get(&self, feature: &str) -> Option<u32> {
        self.map.get(feature).copied()
    }

    /// Map a batch of feature strings to ids, dropping unknowns.
    pub fn ids(&self, features: &[String]) -> Vec<u32> {
        let mut ids: Vec<u32> = features.iter().filter_map(|f| self.get(f)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// All feature strings, ordered so that position `i` holds the
    /// feature with id `i` — the persistence export.
    pub fn strings_in_id_order(&self) -> Vec<String> {
        let mut out = vec![String::new(); self.map.len()];
        for (f, &id) in &self.map {
            out[id as usize] = f.clone();
        }
        out
    }

    /// Rebuild an index from strings in id order, as produced by
    /// [`strings_in_id_order`](FeatureIndex::strings_in_id_order).
    pub fn from_strings(strings: Vec<String>) -> FeatureIndex {
        let map = strings.into_iter().enumerate().map(|(i, f)| (f, i as u32)).collect();
        FeatureIndex { map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_text::tokenize;

    fn sent(text: &str) -> Sentence {
        Sentence::unlabelled("s", tokenize(text))
    }

    #[test]
    fn core_features_fire() {
        let s = sent("the WT1 gene");
        let mut out = Vec::new();
        extract_features(&s, 1, FeatureSet::All, None, &mut out);
        assert!(out.contains(&"W=wt1".to_string()));
        assert!(out.contains(&"ORTH=HASDIG".to_string()));
        assert!(out.contains(&"ORTH=ALNUM".to_string()));
        assert!(out.contains(&"W-1=the".to_string()));
        assert!(out.contains(&"W+1=gene".to_string()));
        assert!(out.contains(&"PRE2=wt".to_string()));
        assert!(out.contains(&"SUF1=1".to_string()));
        assert!(out.contains(&"BIAS".to_string()));
        assert!(out.contains(&"SHAPE=AA0".to_string()));
    }

    #[test]
    fn boundary_positions_use_padding() {
        let s = sent("gene");
        let mut out = Vec::new();
        extract_features(&s, 0, FeatureSet::All, None, &mut out);
        assert!(out.contains(&"W-1=<pad>".to_string()));
        assert!(out.contains(&"W+2=<pad>".to_string()));
    }

    #[test]
    fn lexical_set_is_window_of_lemmas() {
        let s = sent("mutations were detected in genes");
        let mut out = Vec::new();
        extract_features(&s, 2, FeatureSet::Lexical, None, &mut out);
        assert_eq!(out.len(), 5);
        assert!(out.contains(&"L0=detect".to_string()));
        assert!(out.contains(&"L-2=mutate".to_string()));
        assert!(out.contains(&"L2=gene".to_string()));
    }

    #[test]
    fn lexical_set_truncated_at_boundaries() {
        let s = sent("two words");
        let mut out = Vec::new();
        extract_features(&s, 0, FeatureSet::Lexical, None, &mut out);
        assert_eq!(out.len(), 2); // positions 0 and +1 only
    }

    #[test]
    fn feature_index_cutoff_and_determinism() {
        let mut counts = FxHashMap::default();
        counts.insert("A".to_string(), 5u32);
        counts.insert("B".to_string(), 1);
        counts.insert("C".to_string(), 3);
        let idx = FeatureIndex::build(&counts, 2);
        assert_eq!(idx.len(), 2);
        assert!(idx.get("A").is_some());
        assert!(idx.get("B").is_none());
        // ids are assigned in sorted order
        assert_eq!(idx.get("A"), Some(0));
        assert_eq!(idx.get("C"), Some(1));
    }

    #[test]
    fn ids_drop_unknown_and_dedup() {
        let mut counts = FxHashMap::default();
        counts.insert("X".to_string(), 2u32);
        let idx = FeatureIndex::build(&counts, 1);
        let ids = idx.ids(&["X".to_string(), "Y".to_string(), "X".to_string()]);
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn distributional_features_fire_when_trained() {
        let corpus = Corpus::from_sentences(
            (0..30)
                .map(|k| {
                    Sentence::unlabelled(
                        format!("u{k}"),
                        tokenize(if k % 2 == 0 {
                            "the gene was expressed"
                        } else {
                            "the protein was detected"
                        }),
                    )
                })
                .collect(),
        );
        let cfg = DistributionalConfig {
            brown: BrownConfig { num_clusters: 4, min_count: 1 },
            sgns: SgnsConfig { dim: 8, epochs: 2, min_count: 1, ..Default::default() },
            kmeans: KMeansConfig { k: 4, ..Default::default() },
        };
        let dist = DistributionalResources::train(&corpus, &cfg);
        assert!(dist.brown_prefix("gene", 4).is_some());
        assert!(dist.embedding_cluster("gene").is_some());
        assert!(dist.brown_prefix("unseen-token", 4).is_none());
        let s = sent("the gene was expressed");
        let mut out = Vec::new();
        extract_features(&s, 1, FeatureSet::All, Some(&dist), &mut out);
        assert!(out.iter().any(|f| f.starts_with("BR+0.4=")), "{out:?}");
        assert!(out.iter().any(|f| f.starts_with("EC+0=")), "{out:?}");
    }

    #[test]
    fn case_insensitive_lexical_lookup() {
        let corpus = Corpus::from_sentences(vec![Sentence::unlabelled(
            "u",
            tokenize("Gene gene GENE gene gene"),
        )]);
        let dist = DistributionalResources::train(
            &corpus,
            &DistributionalConfig {
                brown: BrownConfig { num_clusters: 2, min_count: 1 },
                sgns: SgnsConfig { dim: 4, epochs: 1, min_count: 1, ..Default::default() },
                kmeans: KMeansConfig { k: 2, ..Default::default() },
            },
        );
        assert_eq!(dist.brown_prefix("GENE", 4), dist.brown_prefix("gene", 4));
    }
}
