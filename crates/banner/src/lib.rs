//! BANNER and BANNER-ChemDNER: the CRF base taggers GraphNER extends.
//!
//! The paper plugs two CRF-based gene-mention systems into Algorithm 1:
//! BANNER (supervised, rich orthographic/lexical features) and
//! BANNER-ChemDNER (the same plus Brown-cluster and embedding-cluster
//! features from unlabelled data). Both are reproduced here on top of
//! `graphner-crf` and `graphner-embed`; the [`NerModel`] API exposes
//! exactly what GraphNER needs — posteriors, transition probabilities,
//! and Viterbi predictions — plus the raw feature strings used to build
//! the *All-features* similarity graph.

pub mod features;
pub mod model;

pub use features::{
    extract_features, DistributionalConfig, DistributionalResources, FeatureIndex, FeatureSet,
};
pub use model::{BaseSystem, NerConfig, NerModel};
