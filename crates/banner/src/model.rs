//! The BANNER / BANNER-ChemDNER tagger.
//!
//! [`NerModel`] binds the feature extractor, the frozen feature index,
//! and a trained chain CRF into the interface GraphNER consumes: train
//! on a labelled corpus, then expose per-token tag posteriors, the
//! tag-level transition matrix, and Viterbi predictions.

use crate::features::{extract_features, DistributionalResources, FeatureIndex, FeatureSet};
use graphner_crf::{ChainCrf, Order, SentenceFeatures, TrainConfig, TrainReport};
use graphner_text::{
    check_posteriors_finite, validate_sentences, BioTag, Corpus, Sentence, TagError, Tagger,
    NUM_TAGS,
};
use rustc_hash::FxHashMap;

/// Which published system the model reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseSystem {
    /// BANNER (Leaman & Gonzalez 2008): supervised CRF, orthographic and
    /// lexical features.
    Banner,
    /// BANNER-ChemDNER (Munkhdalai et al. 2015): BANNER plus Brown
    /// cluster and word-embedding-cluster features from unlabelled data.
    BannerChemDner,
}

impl BaseSystem {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BaseSystem::Banner => "BANNER",
            BaseSystem::BannerChemDner => "BANNER-ChemDNER",
        }
    }
}

/// Tagger configuration.
#[derive(Clone, Debug)]
pub struct NerConfig {
    /// Markov order of the CRF (the paper reports order 2 for its main
    /// tables and notes order 1 behaves consistently).
    pub order: Order,
    /// CRF training settings.
    pub train: TrainConfig,
    /// Features must occur at least this often in training to be kept.
    pub min_feature_count: u32,
}

impl Default for NerConfig {
    fn default() -> NerConfig {
        NerConfig { order: Order::Two, train: TrainConfig::default(), min_feature_count: 1 }
    }
}

/// A trained CRF named-entity tagger.
#[derive(Clone, Debug)]
pub struct NerModel {
    system: BaseSystem,
    index: FeatureIndex,
    crf: ChainCrf,
    dist: Option<DistributionalResources>,
}

impl NerModel {
    /// Train a tagger on a labelled corpus.
    ///
    /// `dist` supplies the ChemDNER distributional resources; pass
    /// `Some` to build the BANNER-ChemDNER variant, `None` for plain
    /// BANNER.
    pub fn train(
        corpus: &Corpus,
        cfg: &NerConfig,
        dist: Option<DistributionalResources>,
    ) -> (NerModel, TrainReport) {
        assert!(corpus.fully_labelled(), "training corpus must be fully labelled");
        let system = if dist.is_some() { BaseSystem::BannerChemDner } else { BaseSystem::Banner };

        // Pass 1: count feature occurrences.
        let mut counts: FxHashMap<String, u32> = FxHashMap::default();
        let mut buf = Vec::new();
        for sentence in &corpus.sentences {
            for i in 0..sentence.len() {
                extract_features(sentence, i, FeatureSet::All, dist.as_ref(), &mut buf);
                for f in &buf {
                    *counts.entry(f.clone()).or_insert(0) += 1;
                }
            }
        }
        let index = FeatureIndex::build(&counts, cfg.min_feature_count);

        // Pass 2: extract id features.
        let mut model = NerModel { system, index, crf: ChainCrf::new(cfg.order, 0), dist };
        let data: Vec<SentenceFeatures> = corpus
            .sentences
            .iter()
            .map(|s| {
                let mut sf = model.featurize(s);
                sf.gold = s.tags.clone();
                sf
            })
            .collect();
        model.crf = ChainCrf::new(cfg.order, model.index.len());
        let report = model.crf.train(&data, &cfg.train);
        (model, report)
    }

    /// Reassemble a plain-BANNER model from persisted parts: the frozen
    /// feature index and the trained CRF. Distributional resources are
    /// not persistable (they are cheap to retrain and large to store),
    /// so the result is always the [`BaseSystem::Banner`] variant.
    ///
    /// # Panics
    /// Panics if the CRF was sized for a different feature count than
    /// `index` holds.
    pub fn from_parts(index: FeatureIndex, crf: ChainCrf) -> NerModel {
        assert_eq!(
            crf.num_obs_features(),
            index.len(),
            "CRF observation-feature count does not match the feature index"
        );
        NerModel { system: BaseSystem::Banner, index, crf, dist: None }
    }

    /// Which base system this model instantiates.
    pub fn system(&self) -> BaseSystem {
        self.system
    }

    /// The frozen feature index.
    pub fn feature_index(&self) -> &FeatureIndex {
        &self.index
    }

    /// The distributional resources, if this is a ChemDNER model.
    pub fn distributional(&self) -> Option<&DistributionalResources> {
        self.dist.as_ref()
    }

    /// The underlying CRF.
    pub fn crf(&self) -> &ChainCrf {
        &self.crf
    }

    /// Feature strings firing at `(sentence, i)` — the raw material of
    /// the *All-features* graph vertex representation.
    pub fn feature_strings(&self, sentence: &Sentence, i: usize, out: &mut Vec<String>) {
        extract_features(sentence, i, FeatureSet::All, self.dist.as_ref(), out);
    }

    /// Map a sentence to interned observation features.
    pub fn featurize(&self, sentence: &Sentence) -> SentenceFeatures {
        let mut buf = Vec::new();
        let obs = (0..sentence.len())
            .map(|i| {
                extract_features(sentence, i, FeatureSet::All, self.dist.as_ref(), &mut buf);
                self.index.ids(&buf)
            })
            .collect();
        SentenceFeatures { obs, gold: None }
    }

    /// Viterbi prediction.
    pub fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
        if sentence.is_empty() {
            return Vec::new();
        }
        self.crf.viterbi(&self.featurize(sentence))
    }

    /// Per-token tag posteriors `P_s` (Algorithm 1, line 5).
    pub fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
        if sentence.is_empty() {
            return Vec::new();
        }
        self.crf.posteriors(&self.featurize(sentence))
    }

    /// Tag-level transition probabilities `T_s` (Algorithm 1, line 5).
    pub fn transition_matrix(&self) -> [[f64; NUM_TAGS]; NUM_TAGS] {
        self.crf.tag_transition_matrix()
    }
}

impl Tagger for NerModel {
    fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
        NerModel::predict(self, sentence)
    }

    fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
        NerModel::posteriors(self, sentence)
    }

    /// Fallible batch path: shape-validate, then verify each sentence's
    /// forward–backward marginals are finite before trusting its
    /// Viterbi decode. On a clean batch the tags are identical to
    /// [`Tagger::tag_batch`].
    fn try_tag_batch(&self, sentences: &[Sentence]) -> Result<Vec<Vec<BioTag>>, TagError> {
        validate_sentences(sentences)?;
        sentences
            .iter()
            .enumerate()
            .map(|(index, s)| {
                check_posteriors_finite(index, &NerModel::posteriors(self, s))?;
                Ok(NerModel::predict(self, s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_text::sentence::tags_to_mentions;
    use graphner_text::tokenize;
    use graphner_text::BioTag::*;

    /// A small but learnable training corpus: capitalized alphanumeric
    /// symbols after "the"/"of" are genes.
    fn toy_corpus() -> Corpus {
        let mk =
            |id: &str, text: &str, tags: Vec<BioTag>| Sentence::labelled(id, tokenize(text), tags);
        Corpus::from_sentences(vec![
            mk("s0", "the WT1 gene was expressed", vec![O, B, O, O, O]),
            mk("s1", "mutation of SH2B3 was detected", vec![O, O, B, O, O]),
            mk("s2", "the KRAS gene was mutated", vec![O, B, O, O, O]),
            mk("s3", "expression of TP53 was low", vec![O, O, B, O, O]),
            mk("s4", "the patient was treated", vec![O, O, O, O]),
            mk("s5", "no mutation was found", vec![O, O, O, O]),
            mk("s6", "the FLT3 gene was sequenced", vec![O, B, O, O, O]),
            mk("s7", "analysis of NRAS was done", vec![O, O, B, O, O]),
        ])
    }

    fn quick_cfg() -> NerConfig {
        NerConfig {
            order: Order::One,
            train: TrainConfig { max_iterations: 80, l2: 0.1, ..Default::default() },
            min_feature_count: 1,
        }
    }

    #[test]
    fn trains_and_predicts_on_seen_data() {
        let corpus = toy_corpus();
        let (model, report) = NerModel::train(&corpus, &quick_cfg(), None);
        assert!(report.objective.is_finite());
        assert_eq!(model.system(), BaseSystem::Banner);
        for s in &corpus.sentences {
            assert_eq!(&model.predict(s), s.tags.as_ref().unwrap(), "{}", s.id);
        }
    }

    #[test]
    fn generalizes_to_unseen_gene_symbol() {
        let (model, _) = NerModel::train(&toy_corpus(), &quick_cfg(), None);
        // IDH2 unseen, but shape AA0A0/has-digit/after-"of" pattern seen
        let s = Sentence::unlabelled("t", tokenize("mutation of IDH2 was detected"));
        let pred = model.predict(&s);
        let mentions = tags_to_mentions(&pred);
        assert_eq!(mentions.len(), 1, "pred = {pred:?}");
        assert_eq!(mentions[0].start, 2);
    }

    #[test]
    fn posteriors_are_distributions_and_match_viterbi_tendency() {
        let (model, _) = NerModel::train(&toy_corpus(), &quick_cfg(), None);
        let s = Sentence::unlabelled("t", tokenize("the WT1 gene was expressed"));
        let post = model.posteriors(&s);
        assert_eq!(post.len(), 5);
        for row in &post {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert!(post[1][B.index()] > 0.5, "post = {:?}", post[1]);
    }

    #[test]
    fn transition_matrix_learned_bio_structure() {
        let (model, _) = NerModel::train(&toy_corpus(), &quick_cfg(), None);
        let t = model.transition_matrix();
        for row in t {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // O -> I never occurs in training; O -> O dominates
        assert!(t[O.index()][O.index()] > t[O.index()][I.index()]);
    }

    #[test]
    fn empty_sentence_handled() {
        let (model, _) = NerModel::train(&toy_corpus(), &quick_cfg(), None);
        let s = Sentence::unlabelled("e", vec![]);
        assert!(model.predict(&s).is_empty());
        assert!(model.posteriors(&s).is_empty());
    }

    #[test]
    #[should_panic(expected = "fully labelled")]
    fn rejects_unlabelled_training_corpus() {
        let mut corpus = toy_corpus();
        corpus.sentences[0].tags = None;
        let _ = NerModel::train(&corpus, &quick_cfg(), None);
    }

    #[test]
    fn min_feature_count_shrinks_index() {
        let corpus = toy_corpus();
        let (m1, _) = NerModel::train(&corpus, &quick_cfg(), None);
        let cfg2 = NerConfig { min_feature_count: 3, ..quick_cfg() };
        let (m2, _) = NerModel::train(&corpus, &cfg2, None);
        assert!(m2.feature_index().len() < m1.feature_index().len());
    }
}
