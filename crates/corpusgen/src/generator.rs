//! Synthetic corpus assembly: profiles, templates, annotation noise.
//!
//! Each generated corpus mimics the *statistics* the paper's analysis
//! turns on rather than the surface text of the originals:
//!
//! * the BC2GM profile mixes gene notation styles, injects ~6 %
//!   annotation noise (the paper found "a higher proportion of incorrect
//!   annotations in the gold standard corpus" for BC2GM), provides
//!   alternative annotations, and has a high gene density;
//! * the AML profile uses standardized HGNC-like symbols, near-zero
//!   annotation noise, no alternatives, and a much lower gene density —
//!   reproducing the lower positively-labelled-vertex rate (1.75 % vs
//!   8.5 %) that the paper credits for GraphNER's precision behaviour.

use crate::lexicon::{GeneLexicon, NomenclatureStyle};
use crate::pick;
use graphner_text::bc2::{AnnotationSet, Bc2Annotation};
use graphner_text::sentence::{mentions_to_tags, Mention};
use graphner_text::{Corpus, Sentence};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generation profile for one corpus.
#[derive(Clone, Debug)]
pub struct CorpusProfile {
    /// Corpus name ("BC2GM" / "AML").
    pub name: String,
    /// Number of training sentences.
    pub train_sentences: usize,
    /// Number of test sentences.
    pub test_sentences: usize,
    /// Gene notation style mix.
    pub style: NomenclatureStyle,
    /// Probability that a gold mention is corrupted (dropped or
    /// boundary-shifted) in the released annotations.
    pub annotation_noise: f64,
    /// Whether an ALTGENE-style alternatives set is produced.
    pub with_alternatives: bool,
    /// Template category mix `(gene, ambiguous, non-gene)`; must sum
    /// to 1.
    pub template_mix: (f64, f64, f64),
    /// Symbol-gene inventory size.
    pub num_symbols: usize,
    /// Multiword-gene inventory size.
    pub num_multiword: usize,
    /// Fraction of the gene inventory available to training sentences
    /// (the remainder appears only at test time).
    pub train_gene_fraction: f64,
    /// Fraction of the spurious-entity inventory available to training
    /// sentences. Kept lower than the gene fraction: novel identifiers,
    /// venues, and codes keep appearing in new documents, and they are
    /// the raw material of the spurious-FP category GraphNER corrects.
    pub train_spurious_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl CorpusProfile {
    /// The BC2GM stand-in at the paper's size (15 000 / 5 000
    /// sentences).
    pub fn bc2gm() -> CorpusProfile {
        CorpusProfile {
            name: "BC2GM".to_string(),
            train_sentences: 15_000,
            test_sentences: 5_000,
            style: NomenclatureStyle::Mixed,
            annotation_noise: 0.06,
            with_alternatives: true,
            template_mix: (0.30, 0.28, 0.42),
            num_symbols: 300,
            num_multiword: 80,
            train_gene_fraction: 0.50,
            train_spurious_fraction: 0.5,
            seed: 0xBC2,
        }
    }

    /// The AML stand-in at the paper's size (10 504 / 3 952 sentences).
    pub fn aml() -> CorpusProfile {
        CorpusProfile {
            name: "AML".to_string(),
            train_sentences: 10_504,
            test_sentences: 3_952,
            style: NomenclatureStyle::Standardized,
            annotation_noise: 0.005,
            with_alternatives: false,
            template_mix: (0.16, 0.14, 0.70),
            num_symbols: 300,
            num_multiword: 30,
            train_gene_fraction: 0.70,
            train_spurious_fraction: 0.45,
            seed: 0xA31,
        }
    }

    /// Scale the corpus size by `factor` (for fast experiment runs).
    /// Lexicon sizes scale with the square root of the factor so that the
    /// *recurrence rate* of gene and spurious surface forms — the
    /// statistic graph propagation feeds on — stays healthy across
    /// scales.
    pub fn scaled(mut self, factor: f64) -> CorpusProfile {
        assert!(factor > 0.0);
        self.train_sentences = ((self.train_sentences as f64 * factor) as usize).max(20);
        self.test_sentences = ((self.test_sentences as f64 * factor) as usize).max(10);
        let lex = factor.sqrt();
        self.num_symbols = ((self.num_symbols as f64 * lex) as usize).max(20);
        self.num_multiword = ((self.num_multiword as f64 * lex) as usize).max(8);
        self
    }
}

/// A generated corpus pair with its evaluation gold and oracle.
#[derive(Clone, Debug)]
pub struct GeneratedCorpus {
    /// Labelled training sentences (`D_l`), annotations already noisy.
    pub train: Corpus,
    /// Labelled test sentences (kept labelled for evaluation; strip tags
    /// before prediction).
    pub test: Corpus,
    /// BC2-format gold for the test set: primaries from the (noisy) test
    /// tags plus alternatives when the profile provides them.
    pub test_gold: AnnotationSet,
    /// The nomenclature, which doubles as the §III-E categorization
    /// oracle.
    pub lexicon: GeneLexicon,
    /// The profile that produced this corpus.
    pub profile: CorpusProfile,
}

const VERBS: [&str; 8] = [
    "mutated",
    "overexpressed",
    "silenced",
    "amplified",
    "deleted",
    "detected",
    "sequenced",
    "downregulated",
];
const ADJS: [&str; 6] = ["low", "high", "elevated", "reduced", "significant", "absent"];
const DISEASES: [&str; 8] =
    ["AML", "MPN", "leukemia", "lymphoma", "myeloma", "carcinoma", "sarcoma", "glioma"];

/// Template categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Category {
    Gene,
    Ambiguous,
    NonGene,
}

/// Templates as token strings; `{g}` = gold gene, `{gp}` = gene with
/// parenthesized symbol, `{e}` = ambiguous entity, `{sp}` = spurious
/// entity, `{d}` disease, `{v}` verb, `{a}` adjective, `{n}` digit.
const GENE_TEMPLATES: [&str; 9] = [
    "the {g} gene was {v} in {d} patients .",
    "mutation of {g} was detected in the {d} cohort .",
    "we observed recurrent mutations in {g} .",
    "expression of {g} and {g} was {a} .",
    "{gp} was highly expressed in {d} samples .",
    "drug response was {a} in {g} positive patients .",
    "the {g} locus was {v} in all samples .",
    "activation of {g} may contribute to {d} progression .",
    "recently , the mutation of {g} was detected in {d} .",
];

const AMBIGUOUS_TEMPLATES: [&str; 4] = [
    "{e} was associated with poor outcome .",
    "samples positive for {e} were excluded from analysis .",
    "this study focused on {e} in {d} .",
    "levels of {e} were {a} across subtypes .",
];

const NONGENE_TEMPLATES: [&str; 16] = [
    "patients were recruited at {sp} between 1998 and 2004 .",
    "{sp} staging criteria were applied to all cases .",
    "we did not observe this mutation in the patient ' s tumor - {n} subclone .",
    "clinical data were reviewed by two independent experts .",
    "treatment outcomes were compared across {d} subtypes .",
    "the median follow - up was {n} years .",
    "informed consent was obtained from all participants .",
    "bone marrow samples were collected at diagnosis .",
    "response rates were {a} among patients with relapsed {d} .",
    "a total of {n} patients met the inclusion criteria for this analysis .",
    "survival analysis was performed using standard statistical methods .",
    "adverse events were graded according to {sp} criteria .",
    "demographic characteristics were balanced between the two treatment arms .",
    "samples were processed within {n} hours of collection at each site .",
    "specimens from site {sp} were shipped to the central laboratory .",
    "enrolment at {sp} closed after the interim analysis .",
];

/// Optional filler clauses diluting gene density, so the positively
/// labelled vertex rate lands near the paper's (8.5 % BC2GM, 1.75 %
/// AML) rather than the raw template rate.
const FILLER_PRE: [&str; 6] = [
    "in this retrospective study ,",
    "as previously reported ,",
    "notably ,",
    "in a subset of cases ,",
    "according to consensus guidelines ,",
    "taken together ,",
];

const FILLER_POST: [&str; 6] = [
    "during the follow - up period",
    "in the validation cohort",
    "after adjustment for age and sex",
    "across all subgroups",
    "at the time of diagnosis",
    "in the majority of cases",
];

struct Generator<'a> {
    lexicon: &'a GeneLexicon,
    profile: &'a CorpusProfile,
    rng: ChaCha8Rng,
    /// Index bounds into the gene/spurious inventories for the current
    /// partition (training sentences only draw from a prefix, so the
    /// test set contains unseen genes *and* unseen spurious entities).
    symbol_limit: usize,
    multiword_limit: usize,
    spurious_limit: usize,
    lowercase_limit: usize,
}

impl<'a> Generator<'a> {
    /// Pick a spurious entity from the partition's slice of the pool.
    fn spurious_tokens(&mut self) -> Vec<String> {
        let idx = self.rng.gen_range(0..self.spurious_limit);
        self.lexicon.spurious[idx].clone()
    }

    /// Pick a gene surface form per the profile's notation style.
    /// Returns the tokens of the mention.
    fn gene_tokens(&mut self) -> Vec<String> {
        let style_roll = self.rng.gen::<f64>();
        match self.profile.style {
            NomenclatureStyle::Standardized => {
                let idx = self.rng.gen_range(0..self.symbol_limit);
                vec![self.lexicon.symbols[idx].clone()]
            }
            NomenclatureStyle::Mixed => {
                if style_roll < 0.40 {
                    let idx = self.rng.gen_range(0..self.symbol_limit);
                    vec![self.lexicon.symbols[idx].clone()]
                } else if style_roll < 0.60 {
                    // lowercase common-noun style
                    let idx = self.rng.gen_range(0..self.lowercase_limit);
                    vec![self.lexicon.lowercase[idx].clone()]
                } else if style_roll < 0.92 {
                    let idx = self.rng.gen_range(0..self.multiword_limit);
                    let g = &self.lexicon.multiword[idx];
                    // primary form 60 %, a variant spelling otherwise
                    if self.rng.gen::<f64>() < 0.6 {
                        g.primary.clone()
                    } else {
                        g.variants[self.rng.gen_range(0..g.variants.len())].clone()
                    }
                } else {
                    // hyphenated symbol style: "KDR - 2"
                    let idx = self.rng.gen_range(0..self.symbol_limit);
                    vec![
                        self.lexicon.symbols[idx].clone(),
                        "-".to_string(),
                        self.rng.gen_range(1..=4u32).to_string(),
                    ]
                }
            }
        }
    }

    /// Generate one sentence: tokens plus *true* gene mentions.
    fn sentence(&mut self, category: Category) -> (Vec<String>, Vec<Mention>) {
        let template = match category {
            Category::Gene => pick(&mut self.rng, &GENE_TEMPLATES),
            Category::Ambiguous => pick(&mut self.rng, &AMBIGUOUS_TEMPLATES),
            Category::NonGene => pick(&mut self.rng, &NONGENE_TEMPLATES),
        };
        let mut tokens: Vec<String> = Vec::new();
        let mut mentions = Vec::new();
        for part in template.split(' ') {
            match part {
                "{g}" => {
                    let g = self.gene_tokens();
                    let start = tokens.len();
                    tokens.extend(g);
                    mentions.push(Mention::new(start, tokens.len()));
                }
                "{gp}" => {
                    // multiword gene followed by its parenthesized symbol,
                    // both gold — the "wilm 's tumor - 1 ( wt1 )" pattern.
                    // The standardized (AML) nomenclature has no multiword
                    // names, so there the slot degrades to a plain symbol.
                    if self.profile.style == NomenclatureStyle::Standardized {
                        let g = self.gene_tokens();
                        let start = tokens.len();
                        tokens.extend(g);
                        mentions.push(Mention::new(start, tokens.len()));
                    } else {
                        let idx = self.rng.gen_range(0..self.multiword_limit);
                        let g = self.lexicon.multiword[idx].clone();
                        let start = tokens.len();
                        tokens.extend(g.primary.iter().cloned());
                        mentions.push(Mention::new(start, tokens.len()));
                        tokens.push("(".to_string());
                        let s = tokens.len();
                        tokens.push(g.symbol.clone());
                        mentions.push(Mention::new(s, s + 1));
                        tokens.push(")".to_string());
                    }
                }
                "{e}" => {
                    // ambiguous: gene 55 %, gene-related non-gold 10 %,
                    // spurious 35 %
                    let roll = self.rng.gen::<f64>();
                    if roll < 0.55 {
                        let g = self.gene_tokens();
                        let start = tokens.len();
                        tokens.extend(g);
                        mentions.push(Mention::new(start, tokens.len()));
                    } else if roll < 0.65 {
                        let pool = if self.rng.gen::<bool>() {
                            &self.lexicon.families
                        } else {
                            &self.lexicon.domains
                        };
                        let f = pick(&mut self.rng, pool);
                        tokens.extend(f.iter().cloned());
                    } else {
                        let sp = self.spurious_tokens();
                        tokens.extend(sp);
                    }
                }
                "{sp}" => {
                    let sp = self.spurious_tokens();
                    tokens.extend(sp);
                }
                "{d}" => tokens.push(pick(&mut self.rng, &DISEASES).to_string()),
                "{v}" => tokens.push(pick(&mut self.rng, &VERBS).to_string()),
                "{a}" => tokens.push(pick(&mut self.rng, &ADJS).to_string()),
                "{n}" => tokens.push(self.rng.gen_range(1..=9u32).to_string()),
                literal => tokens.push(literal.to_string()),
            }
        }
        // dilute with filler clauses: optional preamble and a clause
        // inserted before the final period
        if self.rng.gen::<f64>() < 0.45 {
            let pre: Vec<String> =
                pick(&mut self.rng, &FILLER_PRE).split(' ').map(str::to_string).collect();
            let shift = pre.len();
            for m in mentions.iter_mut() {
                *m = Mention::new(m.start + shift, m.end + shift);
            }
            let mut with_pre = pre;
            with_pre.extend(tokens);
            tokens = with_pre;
        }
        if self.rng.gen::<f64>() < 0.45 && tokens.last().map(String::as_str) == Some(".") {
            let post = pick(&mut self.rng, &FILLER_POST).split(' ');
            if let Some(dot) = tokens.pop() {
                tokens.extend(post.map(str::to_string));
                tokens.push(dot);
            }
        }
        (tokens, mentions)
    }

    /// Apply annotation noise to true mentions, producing the released
    /// (gold) mentions.
    fn noisy_mentions(&mut self, mentions: &[Mention], len: usize) -> Vec<Mention> {
        let mut out = Vec::with_capacity(mentions.len());
        for &m in mentions {
            if self.rng.gen::<f64>() >= self.profile.annotation_noise {
                out.push(m);
                continue;
            }
            let roll = self.rng.gen::<f64>();
            if roll < 0.7 {
                // drop the annotation entirely (the "GRK6" failure mode)
            } else if roll < 0.9 && m.len() > 1 {
                // shrink: lose the final token
                out.push(Mention::new(m.start, m.end - 1));
            } else if m.end < len {
                // extend into the following token
                out.push(Mention::new(m.start, m.end + 1));
            } else {
                out.push(m);
            }
        }
        out
    }

    fn category(&mut self) -> Category {
        let (g, a, _) = self.profile.template_mix;
        let roll = self.rng.gen::<f64>();
        if roll < g {
            Category::Gene
        } else if roll < g + a {
            Category::Ambiguous
        } else {
            Category::NonGene
        }
    }
}

/// Generate alternative spans for a gold mention: progressively drop
/// trailing tokens of multiword mentions, the dominant pattern in real
/// ALTGENE files.
fn alternatives_for(sentence: &Sentence, m: &Mention) -> Vec<Mention> {
    let mut alts = Vec::new();
    if m.len() >= 3 {
        alts.push(Mention::new(m.start, m.end - 1));
    }
    if m.len() >= 4 {
        alts.push(Mention::new(m.start, m.end - 2));
    }
    let _ = sentence;
    alts
}

/// Generate a standalone unlabelled corpus from a profile: same
/// templates and lexicon, full (test-side) inventories, tags stripped.
/// This is the "abundant unlabelled data" BANNER-ChemDNER learns its
/// Brown clusters and embeddings from.
pub fn generate_unlabelled(profile: &CorpusProfile, n_sentences: usize, seed: u64) -> Corpus {
    let mut seed_rng = ChaCha8Rng::seed_from_u64(profile.seed);
    let lexicon = GeneLexicon::generate(&mut seed_rng, profile.num_symbols, profile.num_multiword);
    let mut gen = Generator {
        lexicon: &lexicon,
        profile,
        rng: ChaCha8Rng::seed_from_u64(seed),
        symbol_limit: lexicon.symbols.len(),
        multiword_limit: lexicon.multiword.len(),
        spurious_limit: lexicon.spurious.len(),
        lowercase_limit: lexicon.lowercase.len(),
    };
    let sentences = (0..n_sentences)
        .map(|i| {
            let category = gen.category();
            let (tokens, _) = gen.sentence(category);
            Sentence::unlabelled(format!("UL{i:05}"), tokens)
        })
        .collect();
    Corpus::from_sentences(sentences)
}

/// Generate a corpus pair from a profile.
pub fn generate(profile: &CorpusProfile) -> GeneratedCorpus {
    let mut seed_rng = ChaCha8Rng::seed_from_u64(profile.seed);
    let lexicon = GeneLexicon::generate(&mut seed_rng, profile.num_symbols, profile.num_multiword);

    let build = |lexicon: &GeneLexicon,
                 count: usize,
                 id_prefix: &str,
                 train_partition: bool,
                 seed: u64|
     -> Corpus {
        let mut gen = Generator {
            lexicon,
            profile,
            rng: ChaCha8Rng::seed_from_u64(seed),
            symbol_limit: if train_partition {
                ((lexicon.symbols.len() as f64 * profile.train_gene_fraction) as usize).max(1)
            } else {
                lexicon.symbols.len()
            },
            // multiword genes are fully shared between partitions: the
            // unseen-gene effect is carried by symbols and spurious
            // entities, so the graph is not asked to invent multiword
            // boundaries unsupported by the (noisy) gold
            multiword_limit: lexicon.multiword.len(),
            lowercase_limit: if train_partition {
                ((lexicon.lowercase.len() as f64 * profile.train_gene_fraction) as usize).max(1)
            } else {
                lexicon.lowercase.len()
            },
            spurious_limit: if train_partition {
                ((lexicon.spurious.len() as f64 * profile.train_spurious_fraction) as usize).max(1)
            } else {
                lexicon.spurious.len()
            },
        };
        let sentences = (0..count)
            .map(|i| {
                let category = gen.category();
                let (tokens, true_mentions) = gen.sentence(category);
                let gold = gen.noisy_mentions(&true_mentions, tokens.len());
                let tags = mentions_to_tags(&gold, tokens.len());
                Sentence::labelled(format!("{id_prefix}{i:05}"), tokens, tags)
            })
            .collect();
        Corpus::from_sentences(sentences)
    };

    let train = build(&lexicon, profile.train_sentences, "TR", true, profile.seed ^ 0x1111);
    let test = build(&lexicon, profile.test_sentences, "TE", false, profile.seed ^ 0x2222);

    // Evaluation gold from the (noisy) test tags.
    let mut test_gold = AnnotationSet::from_corpus(&test);
    if profile.with_alternatives {
        for sentence in &test.sentences {
            if let Some(mentions) = sentence.gold_mentions() {
                for m in &mentions {
                    for alt in alternatives_for(sentence, m) {
                        test_gold.add_alternative(Bc2Annotation::from_mention(sentence, &alt));
                    }
                }
            }
        }
    }

    GeneratedCorpus { train, test, test_gold, lexicon, profile: clone_profile(profile) }
}

fn clone_profile(p: &CorpusProfile) -> CorpusProfile {
    p.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_text::BioTag;

    fn small_bc2gm() -> GeneratedCorpus {
        generate(&CorpusProfile::bc2gm().scaled(0.02))
    }

    fn small_aml() -> GeneratedCorpus {
        generate(&CorpusProfile::aml().scaled(0.02))
    }

    #[test]
    fn sizes_match_profile() {
        let c = small_bc2gm();
        assert_eq!(c.train.len(), 300);
        assert_eq!(c.test.len(), 100);
        assert!(c.train.fully_labelled());
        assert!(c.test.fully_labelled());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_bc2gm();
        let b = small_bc2gm();
        assert_eq!(a.train.sentences[7], b.train.sentences[7]);
        assert_eq!(a.test.sentences[3], b.test.sentences[3]);
    }

    #[test]
    fn bc2gm_has_alternatives_aml_does_not() {
        let bc = small_bc2gm();
        let aml = small_aml();
        let n_alts: usize = bc.test_gold.alternatives.values().map(Vec::len).sum();
        assert!(n_alts > 0, "BC2GM profile should emit alternatives");
        assert!(aml.test_gold.alternatives.is_empty());
    }

    #[test]
    fn aml_is_sparser_in_genes() {
        let bc = generate(&CorpusProfile::bc2gm().scaled(0.05));
        let aml = generate(&CorpusProfile::aml().scaled(0.05));
        let density = |c: &Corpus| c.num_gold_mentions() as f64 / c.len() as f64;
        assert!(
            density(&aml.train) < density(&bc.train),
            "AML {} vs BC2GM {}",
            density(&aml.train),
            density(&bc.train)
        );
    }

    #[test]
    fn aml_uses_single_token_symbols() {
        let c = small_aml();
        for s in &c.train.sentences {
            for m in s.gold_mentions().unwrap() {
                // standardized style: single-token mentions only (noise
                // can extend by one token)
                assert!(m.len() <= 2, "unexpected long mention {:?}", s.mention_text(&m));
            }
        }
    }

    #[test]
    fn bc2gm_has_multiword_mentions() {
        let c = small_bc2gm();
        let has_multi =
            c.train.sentences.iter().flat_map(|s| s.gold_mentions().unwrap()).any(|m| m.len() >= 3);
        assert!(has_multi);
    }

    #[test]
    fn tags_are_well_formed_bio() {
        let c = small_bc2gm();
        for s in c.train.sentences.iter().chain(&c.test.sentences) {
            let tags = s.tags.as_ref().unwrap();
            let mut prev = None;
            for &t in tags {
                assert!(t.may_follow(prev), "ill-formed BIO in {}", s.id);
                prev = Some(t);
            }
        }
    }

    #[test]
    fn gold_annotation_set_counts_match_corpus() {
        let c = small_aml();
        assert_eq!(c.test_gold.num_primary(), c.test.num_gold_mentions());
    }

    #[test]
    fn noise_rate_reflected_in_annotations() {
        // high-noise variant drops ~3 % of mentions (half of 6 %)
        let clean = generate(&CorpusProfile {
            annotation_noise: 0.0,
            ..CorpusProfile::bc2gm().scaled(0.05)
        });
        let noisy = generate(&CorpusProfile {
            annotation_noise: 0.5,
            ..CorpusProfile::bc2gm().scaled(0.05)
        });
        assert!(noisy.train.num_gold_mentions() < clean.train.num_gold_mentions());
    }

    #[test]
    fn oracle_accepts_generated_genes() {
        let c = small_bc2gm();
        let mut checked = 0;
        for s in &c.test.sentences {
            for m in s.gold_mentions().unwrap() {
                // boundary noise can attach a filler token, so only check
                // mentions whose text is a pure lexicon form
                let text = s.mention_text(&m);
                if c.lexicon.is_gene_related(&text) {
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn test_set_contains_unseen_genes() {
        let c = generate(&CorpusProfile::bc2gm().scaled(0.1));
        let train_tokens: std::collections::HashSet<&str> =
            c.train.sentences.iter().flat_map(|s| s.tokens.iter().map(String::as_str)).collect();
        let unseen_mentions =
            c.test
                .sentences
                .iter()
                .flat_map(|s| {
                    let toks = &s.tokens;
                    s.gold_mentions().unwrap().into_iter().map(move |m| {
                        (m.start..m.end).map(|i| toks[i].as_str()).collect::<Vec<_>>()
                    })
                })
                .filter(|toks| toks.iter().any(|t| !train_tokens.contains(t)))
                .count();
        assert!(unseen_mentions > 0, "test set should contain unseen gene tokens");
    }

    #[test]
    fn some_sentences_have_no_genes() {
        let c = small_aml();
        let empty = c
            .train
            .sentences
            .iter()
            .filter(|s| s.tags.as_ref().unwrap().iter().all(|&t| t == BioTag::O))
            .count();
        assert!(empty > c.train.len() / 3);
    }
}

#[cfg(test)]
mod alignment_tests {
    use super::*;

    /// With noise off, every gold mention must be a surface form from
    /// the lexicon — this catches any mention-index drift introduced by
    /// the filler-clause insertion.
    #[test]
    fn zero_noise_mentions_align_with_lexicon_forms() {
        let profile =
            CorpusProfile { annotation_noise: 0.0, ..CorpusProfile::bc2gm().scaled(0.05) };
        let c = generate(&profile);
        let mut checked = 0;
        for s in c.train.sentences.iter().chain(&c.test.sentences) {
            for m in s.gold_mentions().unwrap() {
                let text = s.mention_text(&m);
                assert!(
                    c.lexicon.is_gene_related(&text),
                    "gold mention {text:?} in {} is not a lexicon gene form",
                    s.id
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "only {checked} mentions checked");
    }

    #[test]
    fn lowercase_gene_class_appears_in_mixed_corpora() {
        let c = generate(&CorpusProfile::bc2gm().scaled(0.05));
        let lowercase_mentions = c
            .train
            .sentences
            .iter()
            .flat_map(|s| s.gold_mentions().unwrap().into_iter().map(move |m| s.mention_text(&m)))
            .filter(|t| t.len() > 1 && t.chars().all(|ch| ch.is_ascii_lowercase()))
            .count();
        assert!(lowercase_mentions > 10, "found {lowercase_mentions}");
    }

    #[test]
    fn test_set_contains_unseen_spurious_entities() {
        let profile = CorpusProfile::bc2gm().scaled(0.1);
        let c = generate(&profile);
        let train_tokens: std::collections::HashSet<&str> =
            c.train.sentences.iter().flat_map(|s| s.tokens.iter().map(String::as_str)).collect();
        let unseen_spurious = c
            .lexicon
            .spurious
            .iter()
            .filter(|sp| sp.iter().any(|t| !train_tokens.contains(t.as_str())))
            .count();
        assert!(unseen_spurious > 0, "no spurious entity is test-only");
    }

    #[test]
    fn unlabelled_generator_produces_tag_free_text() {
        let profile = CorpusProfile::bc2gm().scaled(0.02);
        let u = generate_unlabelled(&profile, 50, 99);
        assert_eq!(u.len(), 50);
        assert!(u.sentences.iter().all(|s| s.tags.is_none()));
        assert!(u.num_tokens() > 200);
        // deterministic under seed
        let u2 = generate_unlabelled(&profile, 50, 99);
        assert_eq!(u.sentences[7], u2.sentences[7]);
    }
}
