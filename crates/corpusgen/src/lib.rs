//! Seeded synthetic biomedical corpora standing in for BC2GM and AML.
//!
//! The original corpora (BioCreative II gene mention; the 80-article
//! acute-myeloid-leukemia collection) are not redistributable, so this
//! crate generates corpora that preserve the statistics GraphNER's
//! behaviour depends on: gene density, nomenclature heterogeneity,
//! annotation-noise rate, alternative annotations, recurring 3-gram
//! contexts across train and test, and a spurious-entity vocabulary for
//! the qualitative error analysis. See `DESIGN.md` §1 for the full
//! substitution argument.

pub mod generator;
pub mod lexicon;

/// Uniform draw from a non-empty slice. Same index stream as
/// `SliceRandom::choose` (one `gen_range(0..len)` call), but without
/// the `Option` that forced `unwrap()` at every call site.
pub(crate) fn pick<'a, T, R: rand::Rng>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

pub use generator::{generate, generate_unlabelled, CorpusProfile, GeneratedCorpus};
pub use lexicon::{GeneLexicon, MultiwordGene, NomenclatureStyle};
