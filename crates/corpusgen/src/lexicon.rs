//! Synthetic gene nomenclature and supporting vocabularies.
//!
//! The corpora the paper evaluates on cannot be redistributed here, so
//! the generator builds a gene nomenclature with the properties the
//! paper's analysis depends on:
//!
//! * HGNC-like *symbols* (`TP53`-style) — the AML corpus "preferentially
//!   use\[s\] a gene nomenclature maintained by HGNC";
//! * *multiword descriptive names* with orthographic variants
//!   (`wilms tumor - 1` / `wilms tumour 1`) — the BC2GM corpus mixes "a
//!   variety of notation styles", and these variants both populate the
//!   ALTGENE alternatives and give graph propagation its purchase
//!   (Figure 1's `[tumor - 1]` vertex);
//! * *gene families* and *protein domains* — gene-related surface forms
//!   that are not gold mentions, the paper's "gene-related" FP category;
//! * *spurious entities* ("Ann Arbor") — capitalized non-gene phrases
//!   that an imperfect tagger confuses with genes.

use crate::pick;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashSet;

/// A multiword gene with orthographic variants and an abbreviation.
#[derive(Clone, Debug)]
pub struct MultiwordGene {
    /// Canonical token sequence, e.g. `["wilms", "tumor", "-", "1"]`.
    pub primary: Vec<String>,
    /// Acceptable variant token sequences (fuel for ALTGENE
    /// alternatives and for notation diversity in text).
    pub variants: Vec<Vec<String>>,
    /// Short symbol, e.g. `WT1`.
    pub symbol: String,
}

/// The complete synthetic nomenclature.
#[derive(Clone, Debug)]
pub struct GeneLexicon {
    /// Single-token HGNC-like symbols.
    pub symbols: Vec<String>,
    /// Lowercase common-noun gene names ("insulin"-style): no
    /// orthographic cue separates them from ordinary nouns, so a tagger
    /// can only learn them by identity — the recall-limited class of
    /// real gene-mention corpora.
    pub lowercase: Vec<String>,
    /// Multiword descriptive names.
    pub multiword: Vec<MultiwordGene>,
    /// Gene families (gene-related, never gold).
    pub families: Vec<Vec<String>>,
    /// Protein domains (gene-related, never gold).
    pub domains: Vec<Vec<String>>,
    /// Spurious capitalized entities (never gene-related).
    pub spurious: Vec<Vec<String>>,
    /// Every gene-related surface form, lowercased, for the §III-E
    /// categorization oracle.
    gene_related_forms: FxHashSet<String>,
}

const SURNAMES: [&str; 24] = [
    "wilms",
    "hodgkin",
    "crohn",
    "marten",
    "kellar",
    "burkit",
    "vanteg",
    "rosler",
    "duval",
    "hartwig",
    "lomen",
    "pritch",
    "ashmor",
    "corvin",
    "deller",
    "fenwick",
    "garrod",
    "helmut",
    "ivers",
    "jarnek",
    "kestrel",
    "lindqvist",
    "morvan",
    "norden",
];

const GENE_NOUNS: [&str; 10] = [
    "tumor",
    "factor",
    "receptor",
    "kinase",
    "protein",
    "antigen",
    "ligand",
    "channel",
    "transporter",
    "adaptor",
];

const FAMILY_HEADS: [&str; 8] = [
    "ubiquitin",
    "ligase",
    "protease",
    "phosphatase",
    "helicase",
    "synthase",
    "oxidase",
    "reductase",
];

const DOMAIN_NAMES: [&str; 6] = ["SH2", "SH3", "PDZ", "RING", "WD40", "PH"];

const PLACES: [(&str, &str); 10] = [
    ("Ann", "Arbor"),
    ("New", "Haven"),
    ("Fort", "Collins"),
    ("Grand", "Rapids"),
    ("Cedar", "Falls"),
    ("Oak", "Ridge"),
    ("Palo", "Alto"),
    ("Baton", "Rouge"),
    ("Sioux", "Falls"),
    ("Santa", "Cruz"),
];

/// How many distinct nomenclature styles the corpus mixes. The BC2GM
/// profile uses all three ("gene names may be used inconsistently with
/// a variety of notation styles"); AML uses only the standardized
/// symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NomenclatureStyle {
    /// HGNC symbols only (AML profile).
    Standardized,
    /// Symbols, multiword names, and variant spellings (BC2GM profile).
    Mixed,
}

impl GeneLexicon {
    /// Generate a lexicon with `num_symbols` symbol genes and
    /// `num_multiword` multiword genes, deterministically from `rng`.
    pub fn generate(rng: &mut ChaCha8Rng, num_symbols: usize, num_multiword: usize) -> GeneLexicon {
        let mut seen = FxHashSet::default();
        let mut symbols = Vec::with_capacity(num_symbols);
        while symbols.len() < num_symbols {
            let s = random_symbol(rng);
            if seen.insert(s.clone()) {
                symbols.push(s);
            }
        }
        // open-class spurious "site/sample codes": capitalized
        // letter+digit tokens that share the orthographic shape of gene
        // symbols but never name genes. They are the synthetic analogue
        // of the arbitrary identifiers real abstracts are full of, and
        // the raw material of the "Ann Arbor" spurious-FP category: a
        // tagger can only tell them from genes by corpus-level identity,
        // which is exactly the evidence graph propagation aggregates.
        let mut lowercase = Vec::with_capacity(num_symbols / 3);
        while lowercase.len() < num_symbols / 3 {
            let w = random_lowercase_gene(rng);
            if seen.insert(w.clone()) {
                lowercase.push(w);
            }
        }
        let n_codes = (num_symbols / 6).max(10);
        let mut site_codes = Vec::with_capacity(n_codes);
        while site_codes.len() < n_codes {
            let c = random_site_code(rng);
            if seen.insert(c.clone()) {
                site_codes.push(c);
            }
        }

        let mut multiword = Vec::with_capacity(num_multiword);
        let mut used_pairs = FxHashSet::default();
        while multiword.len() < num_multiword {
            let surname = *pick(rng, &SURNAMES);
            let noun = *pick(rng, &GENE_NOUNS);
            let num = rng.gen_range(1..=9u32);
            if !used_pairs.insert((surname, noun, num)) {
                continue;
            }
            let primary: Vec<String> =
                [surname, noun, "-", &num.to_string()].iter().map(|s| s.to_string()).collect();
            let mut variants = vec![
                // without the hyphen: "wilms tumor 1"
                vec![surname.to_string(), noun.to_string(), num.to_string()],
                // british-ish spelling variant of the noun
                vec![surname.to_string(), variant_noun(noun), "-".to_string(), num.to_string()],
                // head only: "wilms tumor"
                vec![surname.to_string(), noun.to_string()],
            ];
            variants.dedup();
            let symbol = format!("{}{}{}", initial(surname), initial(noun), num);
            multiword.push(MultiwordGene { primary, variants, symbol });
        }

        let families: Vec<Vec<String>> = FAMILY_HEADS
            .iter()
            .map(|h| vec![format!("E{}", rng.gen_range(1..=4)), h.to_string()])
            .collect();
        let domains: Vec<Vec<String>> =
            DOMAIN_NAMES.iter().map(|d| vec![d.to_string(), "domain".to_string()]).collect();
        let mut spurious: Vec<Vec<String>> =
            PLACES.iter().map(|(a, b)| vec![a.to_string(), b.to_string()]).collect();
        // "Table 3" / "Figure 2" style tokens: capitalized + digit, the
        // shape a gene tagger over-triggers on
        for head in ["Table", "Figure", "Cohort", "Panel"] {
            spurious.push(vec![head.to_string(), rng.gen_range(1..=9u32).to_string()]);
        }
        // clinical-code tokens that share the uppercase-plus-digit shape
        // of gene symbols exactly (ICD9, NCT417, CTCAE4, ...)
        for code in ["ICD9", "ICD10", "CTCAE4", "WHO2016", "NCCN2", "ECOG1"] {
            spurious.push(vec![code.to_string()]);
        }
        let mut seen_codes = FxHashSet::default();
        while seen_codes.len() < 8 {
            let code = format!(
                "NCT{}{}{}",
                rng.gen_range(1..=9u32),
                rng.gen_range(0..=9u32),
                rng.gen_range(0..=9u32)
            );
            if seen_codes.insert(code.clone()) {
                spurious.push(vec![code]);
            }
        }
        for c in &site_codes {
            spurious.push(vec![c.clone()]);
        }
        // shuffle so the train/test partition prefix mixes all spurious
        // kinds rather than leaving one whole family unseen
        spurious.shuffle(rng);

        let mut gene_related_forms = FxHashSet::default();
        for s in symbols.iter().chain(lowercase.iter()) {
            gene_related_forms.insert(s.to_lowercase());
        }
        for m in &multiword {
            gene_related_forms.insert(m.primary.join(" ").to_lowercase());
            gene_related_forms.insert(m.symbol.to_lowercase());
            for v in &m.variants {
                gene_related_forms.insert(v.join(" ").to_lowercase());
            }
        }
        for f in families.iter().chain(domains.iter()) {
            gene_related_forms.insert(f.join(" ").to_lowercase());
        }
        // family/domain head tokens, so every "E<k> <head>" combination
        // and fragments like "SH2" categorize as gene-related
        for h in FAMILY_HEADS.iter().chain(DOMAIN_NAMES.iter()) {
            gene_related_forms.insert(h.to_lowercase());
        }
        gene_related_forms.insert("domain".to_string());

        GeneLexicon {
            symbols,
            lowercase,
            multiword,
            families,
            domains,
            spurious,
            gene_related_forms,
        }
    }

    /// Oracle for the §III-E categorization: does a surface form name a
    /// gene, gene family, or protein domain? Single gene-name tokens
    /// (e.g. a boundary-shifted fragment like `tumor`) also count as
    /// gene-related, matching the paper's manual-review criterion.
    pub fn is_gene_related(&self, text: &str) -> bool {
        let lower = text.to_lowercase();
        if self.gene_related_forms.contains(&lower) {
            return true;
        }
        // any token of a known gene-related form
        lower.split(' ').any(|tok| {
            GENE_NOUNS.contains(&tok)
                || SURNAMES.contains(&tok)
                || self.gene_related_forms.contains(tok)
        })
    }
}

/// A random HGNC-like symbol: 2–4 uppercase letters then 0–2 digits.
fn random_symbol(rng: &mut ChaCha8Rng) -> String {
    const LETTERS: &[u8] = b"ABCDEFGHKLMNPRSTVWXZ";
    let n_letters = rng.gen_range(2..=4usize);
    let n_digits = rng.gen_range(0..=2usize);
    let mut s = String::new();
    for _ in 0..n_letters {
        s.push(LETTERS[rng.gen_range(0..LETTERS.len())] as char);
    }
    for _ in 0..n_digits {
        s.push(char::from(b'0' + rng.gen_range(0..10u8)));
    }
    s
}

/// A random lowercase gene name: a pronounceable stem plus a
/// biochemistry-flavoured suffix (-in, -ase, -gen, -ol).
fn random_lowercase_gene(rng: &mut ChaCha8Rng) -> String {
    const ONSETS: [&str; 12] = ["gl", "v", "c", "tr", "br", "m", "s", "pl", "kr", "d", "fl", "n"];
    const VOWELS: [&str; 5] = ["a", "e", "i", "o", "u"];
    const MIDS: [&str; 8] = ["rg", "st", "nd", "lv", "mp", "rt", "ss", "ct"];
    const SUFFIXES: [&str; 4] = ["in", "ase", "gen", "ol"];
    format!(
        "{}{}{}{}{}",
        ONSETS[rng.gen_range(0..ONSETS.len())],
        VOWELS[rng.gen_range(0..VOWELS.len())],
        MIDS[rng.gen_range(0..MIDS.len())],
        VOWELS[rng.gen_range(0..VOWELS.len())],
        SUFFIXES[rng.gen_range(0..SUFFIXES.len())]
    )
}

/// A random non-gene site/sample code, drawn from the *same* shape
/// distribution as gene symbols so that orthography alone cannot
/// separate the two classes — only corpus-level identity can, which is
/// the disambiguation signal graph propagation aggregates.
fn random_site_code(rng: &mut ChaCha8Rng) -> String {
    random_symbol(rng)
}

/// Uppercased first letter of a lexicon word (empty for empty input).
fn initial(s: &str) -> String {
    s.chars().next().map(|c| c.to_uppercase().to_string()).unwrap_or_default()
}

fn variant_noun(noun: &str) -> String {
    match noun {
        "tumor" => "tumour".to_string(),
        "factor" => "factors".to_string(),
        "receptor" => "receptors".to_string(),
        other => format!("{other}s"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn lex(seed: u64) -> GeneLexicon {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        GeneLexicon::generate(&mut rng, 50, 20)
    }

    #[test]
    fn sizes_and_uniqueness() {
        let l = lex(1);
        assert_eq!(l.symbols.len(), 50);
        assert_eq!(l.multiword.len(), 20);
        let unique: FxHashSet<&String> = l.symbols.iter().collect();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(lex(7).symbols, lex(7).symbols);
        assert_ne!(lex(7).symbols, lex(8).symbols);
    }

    #[test]
    fn symbols_look_like_hgnc() {
        for s in &lex(2).symbols {
            assert!(s.len() >= 2 && s.len() <= 6, "{s}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn multiword_variants_differ_from_primary() {
        for m in &lex(3).multiword {
            assert!(m.primary.len() >= 3);
            for v in &m.variants {
                assert_ne!(*v, m.primary);
            }
            assert!(!m.variants.is_empty());
        }
    }

    #[test]
    fn oracle_categorizes() {
        let l = lex(4);
        assert!(l.is_gene_related(&l.symbols[0]));
        assert!(l.is_gene_related(&l.multiword[0].primary.join(" ")));
        assert!(l.is_gene_related("E3 ubiquitin"));
        assert!(l.is_gene_related("SH2 domain"));
        assert!(!l.is_gene_related("Ann Arbor"));
        assert!(!l.is_gene_related("Table 3"));
        assert!(!l.is_gene_related("treatment outcome"));
    }

    #[test]
    fn boundary_fragments_are_gene_related() {
        let l = lex(5);
        // a boundary-shifted fragment of a multiword gene
        assert!(l.is_gene_related("wilms tumor"));
        assert!(l.is_gene_related("tumor"));
    }

    #[test]
    fn spurious_entities_are_capitalized() {
        for sp in &lex(6).spurious {
            assert!(sp[0].chars().next().unwrap().is_ascii_uppercase());
        }
    }
}
