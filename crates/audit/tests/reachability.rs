//! Property tests for the symbol-graph reachability walks, plus a
//! snapshot of the rendered hot-path inventory.
//!
//! The two properties pin the analyzer's accepted failure direction:
//! adding information (a call edge) can only grow the reachable set,
//! and removing resolution confidence (an ambiguous name) can only
//! shrink it. Together they guarantee the hot-path rules under-report
//! but never fabricate.

use std::collections::BTreeSet;

use graphner_audit::symbols::{index_file, CallSite, FileIndex, FnItem};
use graphner_audit::symgraph::{FnId, SymbolGraph};
use proptest::prelude::*;

/// One synthetic library file holding `n` functions named `f0..f{n-1}`
/// with the given call edges; the functions listed in `roots` carry a
/// `// hot:` annotation.
fn synthetic_file(n: usize, edges: &[(usize, usize)], roots: &[usize]) -> FileIndex {
    let mut file = index_file("crates/graph/src/synthetic.rs", "");
    for i in 0..n {
        let mut f = FnItem::synthetic(&format!("f{i}"), i + 1);
        if roots.contains(&i) {
            f.hot = Some("synthetic root".to_string());
        }
        file.fns.push(f);
    }
    for &(a, b) in edges {
        file.fns[a].calls.push(CallSite { name: format!("f{b}"), line: a + 1 });
    }
    file
}

fn hot_set(files: &[FileIndex]) -> BTreeSet<FnId> {
    SymbolGraph::link(files).hot_reachability().into_keys().collect()
}

/// Reduce raw sampled `(from, to)` pairs and root picks into a valid
/// graph over `n` functions (the vendored proptest shim has no
/// dependent strategies, so indices are sampled wide and folded here).
fn normalize(
    n: usize,
    raw_edges: &[(usize, usize)],
    raw_roots: &[usize],
) -> (Vec<(usize, usize)>, Vec<usize>) {
    let edges = raw_edges.iter().map(|&(a, b)| (a % n, b % n)).collect();
    let roots = raw_roots.iter().map(|&r| r % n).collect();
    (edges, roots)
}

proptest! {
    /// Adding one call edge never shrinks the hot-reachable set.
    #[test]
    fn edge_addition_is_monotone(
        n in 2usize..10,
        raw_edges in prop::collection::vec((0usize..10, 0usize..10), 0..20),
        raw_roots in prop::collection::vec(0usize..10, 1..3),
        extra in (0usize..10, 0usize..10),
    ) {
        let (edges, roots) = normalize(n, &raw_edges, &raw_roots);
        let before = hot_set(&[synthetic_file(n, &edges, &roots)]);
        let extra = (extra.0 % n, extra.1 % n);
        let mut more = edges.clone();
        more.push(extra);
        let after = hot_set(&[synthetic_file(n, &more, &roots)]);
        prop_assert!(
            before.is_subset(&after),
            "edge {extra:?} shrank the hot set: {before:?} -> {after:?}"
        );
    }

    /// Making a callee name ambiguous (a second definition in another
    /// file) drops its edges and can only under-report: the hot set
    /// never gains a function.
    #[test]
    fn ambiguity_only_under_reports(
        n in 2usize..10,
        raw_edges in prop::collection::vec((0usize..10, 0usize..10), 0..20),
        raw_roots in prop::collection::vec(0usize..10, 1..3),
        dup in 0usize..10,
    ) {
        let (edges, roots) = normalize(n, &raw_edges, &raw_roots);
        let dup = dup % n;
        let base = synthetic_file(n, &edges, &roots);
        let before = hot_set(std::slice::from_ref(&base));

        let mut shadow = index_file("crates/core/src/shadow.rs", "");
        shadow.fns.push(FnItem::synthetic(&format!("f{dup}"), 1));
        let after = hot_set(&[base, shadow]);

        prop_assert!(
            after.is_subset(&before),
            "duplicating f{dup} grew the hot set: {before:?} -> {after:?}"
        );
        prop_assert!(!after.contains(&(1, 0)), "the shadow definition itself went hot");
    }

    /// Roots themselves are always hot, whatever the edge set does.
    #[test]
    fn roots_are_always_reached(
        n in 2usize..10,
        raw_edges in prop::collection::vec((0usize..10, 0usize..10), 0..20),
        raw_roots in prop::collection::vec(0usize..10, 1..3),
    ) {
        let (edges, roots) = normalize(n, &raw_edges, &raw_roots);
        let set = hot_set(&[synthetic_file(n, &edges, &roots)]);
        for r in roots {
            prop_assert!(set.contains(&(0, r)), "root f{r} missing from {set:?}");
        }
    }
}

/// Snapshot of the rendered hot-function call path and the full
/// `--hot-report` text for a known three-function chain.
#[test]
fn hot_path_render_snapshot() {
    let source = "\
// hot: chain root for the snapshot
fn root_fn(x: u64) -> u64 { mid_fn(x) }
fn mid_fn(x: u64) -> u64 { leaf_fn(x) }
fn leaf_fn(x: u64) -> u64 { x }
";
    let files = vec![index_file("crates/graph/src/chain.rs", source)];
    let graph = SymbolGraph::link(&files);
    let reach = graph.hot_reachability();
    assert_eq!(graph.render_hot_path((0, 2), &reach), "root_fn -> mid_fn -> leaf_fn");

    let rendered = graphner_audit::hot::inventory(&files).render();
    let expected = "\
# hot-path inventory: 1 roots, 3 functions, 0 alloc sites, 0 spans
root crates/graph/src/chain.rs:2 root_fn alloc_sites=0 — chain root for the snapshot
fn crates/graph/src/chain.rs:3 mid_fn alloc_sites=0 via root_fn -> mid_fn
fn crates/graph/src/chain.rs:4 leaf_fn alloc_sites=0 via root_fn -> mid_fn -> leaf_fn
";
    assert_eq!(rendered, expected);
}
