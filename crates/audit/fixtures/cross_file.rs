//@ scan-as: crates/graph/src/fixture_cross.rs
//! Self-test fixture for the pass-2 cross-file rule families. Scoped
//! as library code of a result-bearing crate, so every family applies:
//! `unsafe-safety`, `panic-path`, `det-merge`, `det-threads` and
//! `span-known`. Each family has at least one violating site (with a
//! `//~` marker) and one compliant twin (without), so the self-test
//! proves both that the rules fire and that they stay quiet.

// ----- unsafe provenance -------------------------------------------------

/// A doc comment without the magic word does not count as provenance.
unsafe fn missing_contract(p: *const u32) -> u32 { //~ unsafe-safety
    *p
}

// SAFETY: `p` is non-null, aligned and valid for reads per this
// fixture's (imaginary) caller contract.
unsafe fn documented_contract(p: *const u32) -> u32 {
    *p
}

fn block_sites(xs: &[u32]) -> u32 {
    let a = unsafe { *xs.as_ptr() }; //~ unsafe-safety
    // SAFETY: `xs` is non-empty — asserted by every caller above.
    let b = unsafe { *xs.as_ptr() };
    a + b
}

struct Wrapper(*const u32);
unsafe impl Send for Wrapper {} //~ unsafe-safety
// SAFETY: the pointee is immutable and `'static` in this fixture.
unsafe impl Sync for Wrapper {}

struct Wrapper2(*const u32);
// SAFETY: the raw pointer is never dereferenced; Send/Sync only assert
// the absence of thread affinity. One comment covers the pair.
unsafe impl Send for Wrapper2 {}
unsafe impl Sync for Wrapper2 {}

// ----- panic reachability ------------------------------------------------

fn panics_directly(x: Option<u32>) -> u32 {
    x.unwrap() //~ no-unwrap
}

fn reaches_panic_transitively(x: Option<u32>) -> u32 { //~ panic-path
    panics_directly(x) + 1
}

fn deeper_caller(x: Option<u32>) -> u32 { //~ panic-path
    reaches_panic_transitively(x)
}

fn stays_clean(x: u32) -> u32 {
    helper_clean(x)
}

fn helper_clean(x: u32) -> u32 {
    x.saturating_add(1)
}

// ----- determinism of parallel merges ------------------------------------

fn residual_unannotated(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x.abs()).reduce(|| 0.0, f64::max) //~ det-merge
}

fn residual_annotated(xs: &[f64]) -> f64 {
    // det: f64::max is exact — the merge order cannot change the bits.
    xs.par_iter().map(|x| x.abs()).reduce(|| 0.0, f64::max)
}

fn sequential_merge_is_fine(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

fn thread_dependent_path(xs: &[f64]) -> usize {
    let n = current_num_threads(); //~ det-threads
    xs.len() / n.max(1)
}

fn thread_independent_path(xs: &[f64]) -> usize {
    xs.len() / 64
}

// ----- span-name closure -------------------------------------------------

fn opens_spans() {
    let _known = span("graph.knn");
    let _new = span("fixture.unknown_span"); //~ span-known
}
