//@ scan-as: crates/graph/src/fixture_hot.rs
//! Self-test fixture: the hot-path families. `// hot:` seeds the root,
//! the symbol-graph walk pulls `reached_helper` into the hot set, and
//! `cold_fn` stays outside it — every finding below must be exactly
//! the marked ones, nothing more.

// hot: fixture kernel standing in for a propagation inner loop
fn hot_kernel(xs: &[u64], i: usize, s: usize) -> Vec<u64> {
    let mut out = Vec::new(); //~ hot-alloc
    out.push(xs[i * s]); //~ hot-alloc //~ hot-overflow
    // alloc: scratch copy a real kernel would hoist to the caller
    let scratch = xs.to_vec();
    let wide = xs[i] as u128; // widening: not lossy, no finding
    let narrow = xs[i] as u32; //~ hot-cast
    // cast: fixture ids are < 2^32 by construction
    let contracted = xs[s] as u32;
    // bound: i + 1 < xs.len() is checked by the fixture caller
    let bounded = xs[i + 1];
    let guarded = xs[i.checked_mul(s).map_or(0, |p| p + 1)]; // checked_ guard
    let sum = scratch.len() as u64 + wide as u64 + narrow as u64;
    out.push(reached_helper(sum + contracted as u64 + bounded + guarded)); //~ hot-alloc
    out
}

// not annotated: hot only because hot_kernel calls it
fn reached_helper(x: u64) -> u64 {
    let mut v = vec![x]; //~ hot-alloc
    // alloc: one formatting buffer per fixture call
    let s: String = x.to_string();
    v.push(s.len() as u64); //~ hot-alloc
    v[0]
}

// hot: bounded kernel variant, root in its own right
// bound: every index below is < xs.len() by the doc contract
fn fn_level_bound_covers_all_sites(xs: &[u64], i: usize, s: usize) -> u64 {
    let a = xs[i * s];
    let b = xs[i * s + 1];
    a + b + reached_helper(a)
}

fn cold_fn(xs: &[u64], i: usize, s: usize) -> u64 {
    // cold code: allocation, lossy casts and unchecked index
    // arithmetic are all fine outside the hot set
    let v = xs.to_vec();
    let lossy = xs[0] as u32;
    v[i * s] + lossy as u64
}

#[cfg(test)]
mod tests {
    // hot: annotations in test code must not seed the walk
    fn test_only_kernel(xs: &[u64]) -> Vec<u64> {
        xs.to_vec()
    }
}
