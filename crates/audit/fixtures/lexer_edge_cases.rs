//@ scan-as: crates/graph/src/fixture.rs
//! Self-test fixture: adversarial lexing. Violations hide behind every
//! construct that could fool a naive text search — the findings below
//! must be exactly the marked ones, nothing more.

/* block comment with a.unwrap() inside
   /* nested block comment: panic!("no") */
   still commented: println!("no") */
fn after_comments(x: Option<u32>) -> u32 {
    x.unwrap() //~ no-unwrap
}

fn strings_with_hashes() -> String {
    let raw = r##"r-string with "quotes"# and b.unwrap() and 1.0 == 1.0"##;
    let bytes = b"byte string with c.expect(\"x\")";
    let ch = '"'; // a quote character, not a string opener
    let lifetime_ok: &'static str = "lifetimes are not chars";
    format!("{raw}{}{ch}{lifetime_ok}", bytes.len())
}

fn numbers(x: f64, n: u32) -> bool {
    let range_is_int = (0..2).len() == 2; // `0..2` must not lex as floats
    let method_on_int = 1.max(2) == 2; // `1.max` is not a float literal
    let suffixed = x == 1f64; //~ no-float-eq
    let exponent = 2.5e3 != x; //~ no-float-eq
    range_is_int && method_on_int && suffixed && exponent && n == 0
}

fn float_literals_with_method_calls(x: f64) -> bool {
    // suffixed float literals followed by `.method(...)` must lex as
    // one Float token plus a call, not derail into garbage
    let m = 1.0f64.max(x);
    let e = 2.5e3f64.min(x);
    let i = 1f64.abs();
    let plain = 3.5.clamp(0.0, 4.0);
    let ok = m.is_finite() && e.is_finite() && i.is_finite() && plain.is_finite();
    ok && 1.0f64.max(x) == 2.0 //~ no-float-eq
}

fn lifetimes_vs_char_literals<'a>(s: &'a str) -> usize {
    // `'a` above is a lifetime; these are char literals — confusing
    // one for the other desyncs every rule that follows
    let newline = '\n';
    let tick = '\'';
    let plain = 'x';
    let underscore = '_';
    s.chars().filter(|&c| c == newline || c == tick || c == plain || c == underscore).count()
}

fn generic_lifetime_bounds<'a, T: 'a>(v: &'a [T], x: Option<&'a T>) -> &'a T {
    // lifetime-heavy signature first, then a real violation: if `'a`
    // mislexed as an unterminated char the marker below would not match
    x.unwrap_or(&v[0]); // unwrap_or is not unwrap: no finding here
    x.unwrap() //~ no-unwrap
}

#[cfg(test)]
mod tests {
    fn nested_braces_stay_excluded(x: Option<u32>) -> u32 {
        if let Some(v) = x {
            match v {
                0 => panic!("fine in tests"),
                _ => v,
            }
        } else {
            x.unwrap()
        }
    }
}

fn after_the_test_mod(x: Option<u32>) -> u32 {
    x.expect("region tracking must end at the test mod's closing brace") //~ no-unwrap
}
