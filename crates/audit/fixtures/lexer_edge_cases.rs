//@ scan-as: crates/graph/src/fixture.rs
//! Self-test fixture: adversarial lexing. Violations hide behind every
//! construct that could fool a naive text search — the findings below
//! must be exactly the marked ones, nothing more.

/* block comment with a.unwrap() inside
   /* nested block comment: panic!("no") */
   still commented: println!("no") */
fn after_comments(x: Option<u32>) -> u32 {
    x.unwrap() //~ no-unwrap
}

fn strings_with_hashes() -> String {
    let raw = r##"r-string with "quotes"# and b.unwrap() and 1.0 == 1.0"##;
    let bytes = b"byte string with c.expect(\"x\")";
    let ch = '"'; // a quote character, not a string opener
    let lifetime_ok: &'static str = "lifetimes are not chars";
    format!("{raw}{}{ch}{lifetime_ok}", bytes.len())
}

fn numbers(x: f64, n: u32) -> bool {
    let range_is_int = (0..2).len() == 2; // `0..2` must not lex as floats
    let method_on_int = 1.max(2) == 2; // `1.max` is not a float literal
    let suffixed = x == 1f64; //~ no-float-eq
    let exponent = 2.5e3 != x; //~ no-float-eq
    range_is_int && method_on_int && suffixed && exponent && n == 0
}

#[cfg(test)]
mod tests {
    fn nested_braces_stay_excluded(x: Option<u32>) -> u32 {
        if let Some(v) = x {
            match v {
                0 => panic!("fine in tests"),
                _ => v,
            }
        } else {
            x.unwrap()
        }
    }
}

fn after_the_test_mod(x: Option<u32>) -> u32 {
    x.expect("region tracking must end at the test mod's closing brace") //~ no-unwrap
}
