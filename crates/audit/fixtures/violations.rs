//@ scan-as: crates/core/src/fixture.rs
//! Self-test fixture: one deliberate violation of every audit rule,
//! each tagged with a `//~ rule-id` marker the self-test matches
//! exactly. Scoped as library code in a result-bearing crate, so all
//! six rules apply. This file is never compiled — it only feeds the
//! audit's own lexer.

use std::collections::HashMap; //~ no-std-hash
use std::collections::{BTreeMap, HashSet}; //~ no-std-hash
use std::time::Instant; //~ no-instant

fn unwrap_family(x: Option<u32>) -> u32 {
    let a = x.unwrap(); //~ no-unwrap
    let b = x.expect("present"); //~ no-unwrap
    if a + b == 0 {
        panic!("zero"); //~ no-unwrap
    }
    todo!() //~ no-unwrap
}

fn float_comparisons(x: f64) -> bool {
    let exact = x == 1.0; //~ no-float-eq
    let nonzero = 0.0 != x; //~ no-float-eq
    let sci = x == 1e-6; //~ no-float-eq
    exact || nonzero || sci
}

fn timing_and_printing() {
    let t = Instant::now(); //~ no-instant
    println!("elapsed: {:?}", t.elapsed()); //~ no-print
    eprintln!("progress"); //~ no-print
}

fn instantiates_std_hash() {
    let m: std::collections::HashMap<u32, u32> = Default::default(); //~ no-std-hash
    let _ = m;
}

fn badly_named_spans() {
    let _a = span("outer"); //~ span-name
    let _b = span("Graph.Build"); //~ span-name
    let _c = span("graph."); //~ span-name
    let _d = SpanRecord::synthetic("Phase 1", 3); //~ span-name
    let _e = span("propagate.Shards"); //~ span-name
}

// --- negative space: none of the following may produce findings ---

fn fine(x: Option<u32>, y: f64) -> u32 {
    // a.unwrap() in a comment is not a finding
    let s = "b.unwrap() in a string is not a finding";
    let r = r#"c.expect("raw") hidden in a raw string"#;
    let fallback = x.unwrap_or(0); // unwrap_or is a different method
    let int_eq = fallback == 0; // integer equality is fine
    let eps_ok = (y - 1.0).abs() < 1e-9; // epsilon comparison is fine
    let tree: BTreeMap<u32, u32> = BTreeMap::new(); // BTreeMap is the sanctioned map
    let set: HashSet<u32> = HashSet::new(); // bare name without std::collections:: path
    let _good_span = span("area.verb"); // conforming span name is fine
    let _shard_span = span("propagate.sweep"); // sharded-engine names conform too
    let _dyn_span = span(s); // non-literal names are out of scope
    match (s.len(), r.len(), int_eq, eps_ok, tree.len(), set.len()) {
        (0, 0, true, true, 0, 0) => unreachable!("unreachable! is permitted policy"),
        _ => fallback,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1); // exempt: inside #[cfg(test)]
        assert!(1.0 == 1.0); // exempt: float eq in tests
        println!("tests may print");
    }
}
