//! The audit CLI — the workspace's required lint gate.
//!
//! ```text
//! cargo run --release --bin audit -- --workspace            # full scan, CI gate
//! cargo run --release --bin audit -- --self-test            # lexer/rules vs fixtures
//! cargo run --release --bin audit -- path/to/file.rs ...    # scan specific files
//! ```
//!
//! Options:
//!
//! * `--root <dir>` — workspace root (default: two levels above this
//!   crate's manifest, i.e. the repo checkout the binary was built from).
//! * `--metrics-out <path>` — append the run's metrics
//!   (`audit.findings`, `audit.rule.<id>`, `audit.files_scanned`,
//!   `audit.allowlisted`, `audit.allowlist_issues`,
//!   `audit.unsafe_sites`) as JSONL through `graphner-obs`, so the
//!   metrics trajectory records lint debt over time.
//! * `--unsafe-report <path>` — write the `unsafe` provenance
//!   inventory (every site, its kind, enclosing function and
//!   `// SAFETY:` justification) collected during a `--workspace` or
//!   file scan; CI uploads it as a build artifact.
//! * `--hot-report <path>` — write the hot-path inventory: every
//!   `// hot:`-reachable function with its static alloc-site count,
//!   plus the `span … static_alloc_sites=<n>` lines the perfsuite
//!   static↔runtime reconciliation consumes.
//! * `--github-annotations` — additionally emit each finding and
//!   allowlist issue as a GitHub Actions workflow command
//!   (`::error file=…,line=…,title=…::…`) so CI renders them inline on
//!   the PR diff.
//!
//! Exit status: `0` clean, `1` findings or self-test failures, `2`
//! usage or I/O errors.

use graphner_audit::{self_test, workspace_sources, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: audit [--root <dir>] [--metrics-out <path>] [--unsafe-report <path>] [--hot-report <path>] [--github-annotations] (--workspace | --self-test | <file.rs>...)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut selftest = false;
    let mut root_override: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut unsafe_report: Option<PathBuf> = None;
    let mut hot_report: Option<PathBuf> = None;
    let mut github_annotations = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--self-test" => selftest = true,
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--unsafe-report" => match args.next() {
                Some(path) => unsafe_report = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--hot-report" => match args.next() {
                Some(path) => hot_report = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--github-annotations" => github_annotations = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(),
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    if !workspace && !selftest && paths.is_empty() {
        return usage();
    }

    // Default root: this crate lives at <root>/crates/audit.
    let root = root_override.unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let root = root.canonicalize().unwrap_or(root);

    let mut failed = false;

    if selftest {
        let fixtures_dir = root.join("crates/audit/fixtures");
        let fixtures = match list_fixtures(&fixtures_dir) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("audit: cannot list fixtures in {}: {e}", fixtures_dir.display());
                return ExitCode::from(2);
            }
        };
        match self_test(&root, &fixtures) {
            Ok((files, expected, failures)) => {
                if expected == 0 {
                    eprintln!("audit --self-test: FAIL — fixtures expect zero findings, which proves nothing");
                    failed = true;
                }
                for failure in &failures {
                    for f in &failure.unexpected {
                        println!("self-test {}: unexpected finding {f}", failure.path);
                    }
                    for (rule, line) in &failure.missing {
                        println!(
                            "self-test {}:{line}: expected [{}] but the rules found nothing",
                            failure.path,
                            rule.id()
                        );
                    }
                }
                if failures.is_empty() && expected > 0 {
                    println!(
                        "audit --self-test: OK — {files} fixture file(s), {expected} expected finding(s), all matched exactly"
                    );
                } else {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }

    if workspace || !paths.is_empty() {
        let files = if workspace {
            match workspace_sources(&root) {
                Ok(mut f) => {
                    let mut extra: Vec<PathBuf> =
                        paths.iter().map(|p| absolutize(&root, p)).collect();
                    f.append(&mut extra);
                    f
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.iter().map(|p| absolutize(&root, p)).collect()
        };
        match graphner_audit::run(&root, &files) {
            Ok(report) => {
                print_report(&report);
                if github_annotations {
                    print_github_annotations(&report);
                }
                if let Some(path) = &unsafe_report {
                    if let Err(e) = std::fs::write(path, report.render_unsafe_report()) {
                        eprintln!("audit: cannot write unsafe report to {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
                if let Some(path) = &hot_report {
                    if let Err(e) = std::fs::write(path, report.hot.render()) {
                        eprintln!("audit: cannot write hot report to {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
                if let Some(path) = &metrics_out {
                    report.publish_metrics();
                    if let Err(e) = write_metrics(path) {
                        eprintln!("audit: cannot write metrics to {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
                if !report.is_clean() {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Fixture files, sorted for stable output.
fn list_fixtures(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut fixtures = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "rs") {
            fixtures.push(path);
        }
    }
    fixtures.sort();
    Ok(fixtures)
}

/// Resolve a CLI path against the workspace root unless already absolute.
fn absolutize(root: &Path, p: &Path) -> PathBuf {
    let candidate = if p.is_absolute() { p.to_path_buf() } else { root.join(p) };
    // fall back to CWD-relative if the root-relative guess is missing
    if candidate.is_file() || p.is_absolute() {
        candidate
    } else {
        p.to_path_buf()
    }
}

fn print_report(report: &Report) {
    for f in &report.findings {
        println!("{f}");
    }
    for issue in &report.allowlist_issues {
        println!("{issue}");
    }
    let status = if report.is_clean() { "OK" } else { "FAIL" };
    println!(
        "audit: {status} — {} file(s) scanned, {} finding(s), {} allowlisted, {} allowlist issue(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.allowlist_issues.len()
    );
}

/// Escape a GitHub workflow-command *message* (`%`, CR, LF).
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escape a workflow-command *property* value (message set plus `:`, `,`).
fn gh_escape_prop(s: &str) -> String {
    gh_escape(s).replace(':', "%3A").replace(',', "%2C")
}

/// Emit findings and allowlist issues as GitHub Actions inline
/// annotations so they render on the PR diff next to the offending
/// line. Workflow commands go to stdout by design.
fn print_github_annotations(report: &Report) {
    for f in &report.findings {
        println!(
            "::error file={},line={},title={}::{}",
            gh_escape_prop(&f.path),
            f.line,
            gh_escape_prop(&format!("audit {}", f.rule.id())),
            gh_escape(&f.what)
        );
    }
    for issue in &report.allowlist_issues {
        println!(
            "::error file={},title=audit allowlist::{}",
            gh_escape_prop(graphner_audit::ALLOWLIST_FILE),
            gh_escape(&issue.to_string())
        );
    }
}

/// Append the global metrics registry as JSONL.
fn write_metrics(path: &Path) -> std::io::Result<()> {
    use std::io::Write as _;
    let jsonl = graphner_obs::Registry::global().export_jsonl();
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(jsonl.as_bytes())
}
