//! Pass 1 of the workspace analyzer: the per-file item index.
//!
//! The token-pattern rules in [`crate::rules`] see one token at a time;
//! the cross-file rules in [`crate::xrules`] need *structure*: which
//! functions exist, what they call, where `unsafe` is asserted and
//! whether the assertion is justified, which parallel merges touch
//! floats, and which span names the file mints. This module parses the
//! token stream (plus the captured comments) into a [`FileIndex`] — a
//! deliberately shallow item model: function items with body extents,
//! call-expression edges by callee name, panic-source sites, `unsafe`
//! sites with their `// SAFETY:` provenance, parallel `reduce`/`sum`
//! sites with their `// det:` annotations, thread-count dependencies,
//! and literal span names. [`crate::symgraph`] links the per-file
//! indexes into the workspace symbol graph.
//!
//! Full name resolution is out of scope by design (the audit is
//! zero-dep and must stay fast); the linking pass resolves a call edge
//! only when the callee name is unique across the workspace, which is
//! exactly the class of edges a panic-reachability walk can trust.

use crate::lexer::{tokenize_full, Comment, Token, TokenKind};
use crate::rules::FileScope;

/// Keywords that look like call expressions (`if (…)`, `match (…)`)
/// but are not, plus binding forms an index expression cannot follow.
const NON_CALL_KEYWORDS: [&str; 28] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "where", "impl", "dyn", "box", "use", "pub", "mod", "struct",
    "enum", "trait", "unsafe", "await",
];

/// The panic family a reachability walk treats as sources: methods
/// (`.unwrap()` / `.expect()`) and diverging macros.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// Parallel-iterator entry points: a `reduce`/`sum` in the same
/// statement as one of these merges across chunk boundaries.
const PAR_ENTRIES: [&str; 4] = ["par_iter", "par_iter_mut", "into_par_iter", "par_chunks"];

/// Method names whose call allocates (or may allocate) on the heap —
/// the `hot-alloc` family flags these inside hot functions.
const ALLOC_METHODS: [&str; 6] = ["push", "collect", "to_string", "to_owned", "to_vec", "clone"];

/// Macros whose expansion allocates.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Owner types whose constructors allocate (`Vec::new`, `Box::new`, …).
const ALLOC_TYPES: [&str; 3] = ["Vec", "Box", "String"];

/// Allocating constructor names on [`ALLOC_TYPES`].
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];

/// Cast targets narrower than the `usize`/`f64` arithmetic hot code
/// computes in — an `as` cast to one of these can silently truncate.
const NARROW_CAST_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// One call expression inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name as written (last path segment / method name).
    pub name: String,
    /// 1-based line of the callee token.
    pub line: usize,
}

/// One direct panic source inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicSite {
    /// What was matched (`.unwrap()`, `panic!`, …).
    pub what: String,
    /// 1-based line.
    pub line: usize,
}

/// One allocation call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocSite {
    /// What was matched (`.push()`, `vec!`, `Vec::new`, …).
    pub what: String,
    /// 1-based line.
    pub line: usize,
    /// Body of the covering `// alloc:` contract, if present.
    pub annotation: Option<String>,
}

/// One narrowing `as` cast inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CastSite {
    /// Rendered cast (`sim as f32`).
    pub what: String,
    /// 1-based line.
    pub line: usize,
    /// Body of the covering `// cast:` contract, if present.
    pub annotation: Option<String>,
}

/// One unchecked `+`/`*` inside an index expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArithSite {
    /// Rendered index expression (`i * s + st`).
    pub what: String,
    /// 1-based line.
    pub line: usize,
    /// Body of the covering statement-level `// bound:` contract, if
    /// present (a fn-level `// bound:` lives on [`FnItem::bound`]).
    pub annotation: Option<String>,
}

/// One function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Whether this is an `unsafe fn`.
    pub is_unsafe: bool,
    /// Call expressions in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Direct panic-family sites in the body, in source order.
    pub panics: Vec<PanicSite>,
    /// Bracket-indexing expressions in the body — potential panic
    /// sites the explicit-source walk cannot prove guarded; surfaced
    /// in the inventory report, not gated.
    pub index_sites: usize,
    /// Body of the `// hot:` annotation directly above the `fn` line,
    /// if any — marks this function a hot-path root.
    pub hot: Option<String>,
    /// Body of a fn-level `// bound:` contract directly above the `fn`
    /// line, covering every index expression in the body.
    pub bound: Option<String>,
    /// Allocation call sites in the body, in source order.
    pub alloc_sites: Vec<AllocSite>,
    /// Narrowing `as` casts in the body, in source order.
    pub cast_sites: Vec<CastSite>,
    /// Unchecked index-arithmetic sites in the body, in source order.
    pub arith_sites: Vec<ArithSite>,
}

impl FnItem {
    /// An empty non-test library function item — the building block
    /// for synthetic call graphs in tests.
    pub fn synthetic(name: &str, line: usize) -> FnItem {
        FnItem {
            name: name.to_string(),
            line,
            is_test: false,
            is_unsafe: false,
            calls: Vec::new(),
            panics: Vec::new(),
            index_sites: 0,
            hot: None,
            bound: None,
            alloc_sites: Vec::new(),
            cast_sites: Vec::new(),
            arith_sites: Vec::new(),
        }
    }
}

/// What kind of `unsafe` assertion a site is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafeKind {
    /// An `unsafe { … }` block.
    Block,
    /// An `unsafe fn` item.
    Fn,
    /// An `unsafe impl` item.
    Impl,
    /// An `unsafe trait` declaration.
    Trait,
}

impl UnsafeKind {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "unsafe-block",
            UnsafeKind::Fn => "unsafe-fn",
            UnsafeKind::Impl => "unsafe-impl",
            UnsafeKind::Trait => "unsafe-trait",
        }
    }
}

/// One `unsafe` site with its provenance.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// Site kind.
    pub kind: UnsafeKind,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Short source context (`fn get`, `impl Send for TaskRef`, or the
    /// enclosing function of a block).
    pub context: String,
    /// Name of the innermost enclosing function, if any.
    pub enclosing_fn: Option<String>,
    /// The justification: body of the adjacent `// SAFETY:` comment
    /// (or `# Safety` doc section), if present. Consecutive unsafe
    /// items may share one comment — see [`index_file`].
    pub safety: Option<String>,
    /// Whether the site sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// One parallel `reduce`/`sum` merge site.
#[derive(Clone, Debug)]
pub struct DetSite {
    /// `reduce` or `sum`.
    pub op: String,
    /// 1-based line of the operator token.
    pub line: usize,
    /// Whether the statement contains a parallel-iterator entry point
    /// — only then does merge order depend on chunking at all.
    pub parallel: bool,
    /// Body of the covering `// det:` annotation, if present.
    pub annotation: Option<String>,
    /// Whether the site sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// One mention of a thread-count observable.
#[derive(Clone, Debug)]
pub struct ThreadSite {
    /// The identifier matched (`current_num_threads`, …).
    pub what: String,
    /// 1-based line.
    pub line: usize,
    /// Whether the site sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// One literal span name minted by the file.
#[derive(Clone, Debug)]
pub struct SpanUse {
    /// The literal name (already `area.verb`-shaped — malformed names
    /// are the `span-name` rule's problem, not this index's).
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Whether the site sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Index (into [`FileIndex::fns`]) of the innermost function whose
    /// body mints the span, if any — the anchor for the static↔runtime
    /// allocation reconciliation in the hot report.
    pub fn_index: Option<usize>,
}

/// Everything pass 1 extracts from one file.
#[derive(Clone, Debug)]
pub struct FileIndex {
    /// The path rules were scoped under (scan path for fixtures).
    pub path: String,
    /// Derived scope.
    pub scope: FileScope,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// `unsafe` sites, in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Parallel merge sites, in source order.
    pub det_sites: Vec<DetSite>,
    /// Thread-count observables, in source order.
    pub thread_sites: Vec<ThreadSite>,
    /// Literal span names, in source order.
    pub span_uses: Vec<SpanUse>,
}

/// Parse one file into its [`FileIndex`]. `path` decides rule scopes
/// (use the `//@ scan-as:` path for fixtures).
pub fn index_file(path: &str, source: &str) -> FileIndex {
    let lexed = tokenize_full(source);
    let tokens = &lexed.tokens;
    let comments = &lexed.comments;
    let regions = crate::rules::test_regions(tokens);
    let in_test = |i: usize| regions.iter().any(|&(lo, hi)| i >= lo && i <= hi);

    let mut fns = collect_fns(tokens, comments, &in_test);
    let bodies = body_spans(tokens);
    attribute_bodies(tokens, comments, &bodies, &mut fns);
    let unsafe_sites = collect_unsafe(tokens, comments, &fns, &in_test);
    let det_sites = collect_det(tokens, comments, &in_test);
    let thread_sites = collect_threads(tokens, &in_test);
    let span_uses = collect_spans(tokens, &bodies, &in_test);

    FileIndex {
        path: path.to_string(),
        scope: FileScope::from_path(path),
        fns,
        unsafe_sites,
        det_sites,
        thread_sites,
        span_uses,
    }
}

fn is_keyword_call(name: &str) -> bool {
    NON_CALL_KEYWORDS.contains(&name)
}

/// Token-index extent of the body of the `fn` at token `at` (open
/// brace ..= close brace); empty for bodyless trait declarations.
fn fn_body_span(tokens: &[Token], at: usize) -> std::ops::Range<usize> {
    let mut j = at + 2;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') {
            let close = crate::rules::matching_brace(tokens, j);
            return j..close + 1;
        }
        if t.is_punct(';') {
            break;
        }
        j += 1;
    }
    j..j
}

/// First sweep: find every `fn name` item and its flags. Nested fns
/// become their own items; attribution picks the innermost. The
/// fn-level `// hot:` / `// bound:` annotations are read from the
/// contiguous comment block ending directly above the `fn` line (place
/// them after any attributes).
fn collect_fns(
    tokens: &[Token],
    comments: &[Comment],
    in_test: &dyn Fn(usize) -> bool,
) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                let line = tokens[i].line;
                let mut item = FnItem::synthetic(name, line);
                item.is_test = in_test(i);
                item.is_unsafe = i > 0 && tokens[i - 1].is_ident("unsafe");
                item.hot = annotation_above(comments, line, "hot:");
                item.bound = annotation_above(comments, line, "bound:");
                out.push(item);
            }
        }
    }
    out
}

/// Body token spans, in the same order `collect_fns` emits items.
fn body_spans(tokens: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).and_then(Token::ident).is_some() {
            spans.push(fn_body_span(tokens, i));
        }
    }
    spans
}

/// Index (into `spans`) of the innermost span containing token `idx`.
fn innermost(spans: &[std::ops::Range<usize>], idx: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (f, span) in spans.iter().enumerate() {
        if span.contains(&idx) {
            best = match best {
                Some(b) if spans[b].len() <= spans[f].len() => Some(b),
                _ => Some(f),
            };
        }
    }
    best
}

/// Second sweep: walk every token once and attribute call sites, panic
/// sites, indexing expressions, allocation sites, narrowing casts and
/// index arithmetic to the *innermost* enclosing function (closures
/// therefore accrue to their defining function).
fn attribute_bodies(
    tokens: &[Token],
    comments: &[Comment],
    spans: &[std::ops::Range<usize>],
    fns: &mut [FnItem],
) {
    debug_assert_eq!(spans.len(), fns.len());

    for (i, tok) in tokens.iter().enumerate() {
        let Some(owner) = innermost(spans, i) else { continue };
        if let Some(name) = tok.ident() {
            let next_paren = tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
            let next_bang = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
            let next_turbo = tokens.get(i + 1).is_some_and(|t| t.is_op("::"));
            let prev_fn = i > 0 && tokens[i - 1].is_ident("fn");
            let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
            if next_paren && !prev_fn && !is_keyword_call(name) {
                if prev_dot && PANIC_METHODS.contains(&name) {
                    fns[owner]
                        .panics
                        .push(PanicSite { what: format!(".{name}()"), line: tok.line });
                } else {
                    fns[owner].calls.push(CallSite { name: name.to_string(), line: tok.line });
                }
            }
            if next_bang && PANIC_MACROS.contains(&name) {
                fns[owner].panics.push(PanicSite { what: format!("{name}!"), line: tok.line });
            }
            // hot-alloc capture: `.push(` / `.collect(` / `.collect::<`
            // method forms, `vec!` / `format!` macros, and
            // `Vec::new(` / `Box::new(` constructor paths.
            let site = if prev_dot && ALLOC_METHODS.contains(&name) && (next_paren || next_turbo) {
                Some(format!(".{name}()"))
            } else if next_bang && ALLOC_MACROS.contains(&name) {
                Some(format!("{name}!"))
            } else if next_paren && ALLOC_CTORS.contains(&name) && !prev_dot {
                ctor_owner(tokens, i).map(|ty| format!("{ty}::{name}"))
            } else {
                None
            };
            if let Some(what) = site {
                let annotation = statement_contract(tokens, comments, i, "alloc:");
                fns[owner].alloc_sites.push(AllocSite { what, line: tok.line, annotation });
            }
            // hot-cast capture: `expr as <narrow>` where the source is
            // not a literal (literal casts are compile-time checked).
            if name == "as" && i > 0 {
                let src = &tokens[i - 1];
                let src_name = match &src.kind {
                    TokenKind::Ident(s) if !is_keyword_call(s) => Some(s.clone()),
                    TokenKind::Punct(c) if *c == ')' || *c == ']' => Some("(..)".to_string()),
                    _ => None,
                };
                if let (Some(src_name), Some(target)) = (src_name, cast_target(tokens, i)) {
                    if NARROW_CAST_TARGETS.contains(&target.as_str()) {
                        let annotation = statement_contract(tokens, comments, i, "cast:");
                        fns[owner].cast_sites.push(CastSite {
                            what: format!("{src_name} as {target}"),
                            line: tok.line,
                            annotation,
                        });
                    }
                }
            }
        } else if tok.is_punct('[') && i > 0 {
            // indexing expression: `expr[` — the previous token ends an
            // expression (identifier, close paren/bracket)
            let prev = &tokens[i - 1];
            let indexes = match &prev.kind {
                TokenKind::Ident(name) => !is_keyword_call(name),
                TokenKind::Punct(c) => *c == ')' || *c == ']',
                _ => false,
            };
            if indexes {
                fns[owner].index_sites += 1;
                if let Some(site) = index_arith_site(tokens, comments, i) {
                    fns[owner].arith_sites.push(site);
                }
            }
        }
    }
}

/// The owner type of an allocating constructor path call at ident `i`
/// (`Vec :: new`, `Vec :: < T > :: new`), if it is one of
/// [`ALLOC_TYPES`].
fn ctor_owner(tokens: &[Token], i: usize) -> Option<String> {
    if i < 2 || !tokens[i - 1].is_op("::") {
        return None;
    }
    let mut j = i - 2;
    // skip a turbofish generic group `< … >` between owner and ctor
    if tokens[j].is_punct('>') {
        let mut depth = 0i32;
        loop {
            match &tokens[j].kind {
                TokenKind::Punct('>') => depth += 1,
                TokenKind::Punct('<') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j < 2 || !tokens[j - 1].is_op("::") {
            return None;
        }
        j -= 2;
    }
    tokens[j].ident().filter(|n| ALLOC_TYPES.contains(n)).map(str::to_string)
}

/// The base name of the target type of an `as` cast at ident `i`
/// (`as u32` → `u32`, `as crate::Foo` → `Foo`); `None` for pointer,
/// `dyn`, or reference targets.
fn cast_target(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    let mut last: Option<&str> = None;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Ident(name) if name == "dyn" || name == "const" || name == "mut" => {
                return None
            }
            TokenKind::Ident(name) => last = Some(name),
            TokenKind::Op("::") => {}
            TokenKind::Punct('*') | TokenKind::Punct('&') => return None,
            _ => break,
        }
        j += 1;
    }
    last.map(str::to_string)
}

/// An [`ArithSite`] for the index expression opening at `open`, if it
/// contains an unguarded binary `+` or `*`. A `checked_*` or
/// `div_ceil` call anywhere inside the brackets counts as a guard.
fn index_arith_site(tokens: &[Token], comments: &[Comment], open: usize) -> Option<ArithSite> {
    let close = matching_bracket(tokens, open);
    let inner = &tokens[open + 1..close];
    if inner.iter().any(|t| t.ident().is_some_and(|n| n.starts_with("checked_") || n == "div_ceil"))
    {
        return None;
    }
    let mut op_at = None;
    for (k, t) in inner.iter().enumerate() {
        let is_op = matches!(t.kind, TokenKind::Punct('+') | TokenKind::Punct('*'));
        if !is_op || k == 0 {
            continue;
        }
        // binary only: the previous token must end an expression
        // (rules out unary deref `*x` and `&*p`)
        let binary = match &inner[k - 1].kind {
            TokenKind::Ident(name) => !is_keyword_call(name),
            TokenKind::Int | TokenKind::Float => true,
            TokenKind::Punct(c) => *c == ')' || *c == ']',
            _ => false,
        };
        // rule out `+=` compound assignment
        let assign = inner.get(k + 1).is_some_and(|t| t.is_punct('='));
        if binary && !assign {
            op_at = Some(open + 1 + k);
            break;
        }
    }
    let at = op_at?;
    let what: String = inner
        .iter()
        .take(24)
        .map(|t| match &t.kind {
            TokenKind::Ident(s) => s.clone(),
            TokenKind::Op(o) => (*o).to_string(),
            TokenKind::Punct(c) => c.to_string(),
            TokenKind::Int | TokenKind::Float => "N".to_string(),
            _ => "_".to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ");
    let annotation = statement_contract(tokens, comments, at, "bound:");
    Some(ArithSite { what, line: tokens[at].line, annotation })
}

/// Index of the `]` matching the `[` at `open` (or the last token).
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Whether a comment block's body carries a safety justification.
fn is_safety_text(body: &str) -> bool {
    body.contains("SAFETY:") || body.contains("# Safety")
}

/// Third sweep: `unsafe` sites with their provenance comments.
///
/// A site's justification is the contiguous comment block ending on
/// the line directly above it (or a trailing comment on its own line)
/// whose body mentions `SAFETY:` (or a `# Safety` doc section). One
/// comment may cover a *run* of consecutive unsafe items — the idiom
/// for `unsafe impl Send` / `unsafe impl Sync` pairs — so a site on
/// the line right after a justified site inherits that justification.
fn collect_unsafe(
    tokens: &[Token],
    comments: &[Comment],
    fns: &[FnItem],
    in_test: &dyn Fn(usize) -> bool,
) -> Vec<UnsafeSite> {
    let mut sites: Vec<UnsafeSite> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let next = tokens.get(i + 1);
        let kind = match next {
            Some(t) if t.is_punct('{') => UnsafeKind::Block,
            Some(t) if t.is_ident("fn") => UnsafeKind::Fn,
            Some(t) if t.is_ident("impl") => UnsafeKind::Impl,
            Some(t) if t.is_ident("trait") => UnsafeKind::Trait,
            _ => continue, // `unsafe` in other positions (e.g. extern blocks)
        };
        let line = tok.line;
        let enclosing_fn = enclosing_fn_name(fns, line, kind);
        let context = match kind {
            UnsafeKind::Block => enclosing_fn
                .as_deref()
                .map(|f| format!("block in fn {f}"))
                .unwrap_or_else(|| "block at file scope".to_string()),
            _ => render_context(tokens, i + 1),
        };
        let safety = adjacent_safety(comments, line).or_else(|| {
            // one comment may justify a run of consecutive `unsafe
            // impl` items (the Send/Sync pair idiom) — but only impls:
            // fns and blocks each need their own contract
            sites
                .last()
                .filter(|prev| {
                    kind == UnsafeKind::Impl
                        && prev.kind == UnsafeKind::Impl
                        && prev.line + 1 == line
                        && prev.safety.is_some()
                })
                .and_then(|prev| prev.safety.clone())
        });
        sites.push(UnsafeSite { kind, line, context, enclosing_fn, safety, is_test: in_test(i) });
    }
    sites
}

/// The joined body of the contiguous comment block ending on the line
/// directly above `line` (empty when there is none).
fn block_above(comments: &[Comment], line: usize) -> String {
    let mut block: Vec<&Comment> = Vec::new();
    let mut want = line - 1;
    for c in comments.iter().rev() {
        if c.end_line == want && c.line <= c.end_line {
            block.push(c);
            want = c.line.saturating_sub(1);
        } else if c.end_line < line.saturating_sub(1) || (!block.is_empty() && c.end_line < want) {
            break;
        }
    }
    block.reverse();
    block.iter().map(|c| c.body()).collect::<Vec<_>>().join("\n")
}

/// The body of the comment block justifying a site at `line`, if any:
/// a contiguous run of comments ending on `line - 1`, or a trailing
/// comment on `line` itself.
fn adjacent_safety(comments: &[Comment], line: usize) -> Option<String> {
    let above = block_above(comments, line);
    if !above.is_empty() && is_safety_text(&above) {
        return Some(above);
    }
    let trailing = comments.iter().find(|c| c.line == line)?;
    let body = trailing.body();
    if is_safety_text(body) {
        Some(body.to_string())
    } else {
        None
    }
}

/// The text following `key` on a line of the comment block directly
/// above `line` that *starts* with `key` (`// hot: reason` → `reason`
/// for key `"hot:"`). Requiring the prefix position keeps prose
/// mentions of the keyword from acting as annotations.
fn annotation_above(comments: &[Comment], line: usize, key: &str) -> Option<String> {
    block_above(comments, line)
        .lines()
        .find_map(|l| l.trim_start().strip_prefix(key).map(|rest| rest.trim().to_string()))
}

/// Contract comment covering the statement containing token `at`: the
/// contiguous comment block directly above the statement's first line,
/// or any comment between that line and the site line (inline or
/// trailing), one of whose lines starts with `key`, yielding the text
/// after the key.
fn statement_contract(
    tokens: &[Token],
    comments: &[Comment],
    at: usize,
    key: &str,
) -> Option<String> {
    let find_key = |text: &str| {
        text.lines()
            .find_map(|l| l.trim_start().strip_prefix(key).map(|rest| rest.trim().to_string()))
    };
    let (stmt_start_line, _) = scan_statement_back(tokens, at);
    let line = tokens[at].line;
    if let Some(found) = find_key(&block_above(comments, stmt_start_line)) {
        return Some(found);
    }
    comments
        .iter()
        .filter(|c| c.line >= stmt_start_line && c.line <= line)
        .find_map(|c| find_key(c.body()))
}

/// Innermost function whose lines plausibly contain `line` — used only
/// for report context, so a line-based containment test (definition
/// line ≤ site line, nearest definition wins) is enough.
fn enclosing_fn_name(fns: &[FnItem], line: usize, kind: UnsafeKind) -> Option<String> {
    if matches!(kind, UnsafeKind::Fn) {
        // the site *is* the fn — name it directly via the nearest item
        // defined on this line
        return fns.iter().find(|f| f.line == line).map(|f| f.name.clone());
    }
    fns.iter().rfind(|f| f.line <= line).map(|f| f.name.clone())
}

/// Render a short context snippet from `tokens[start..]` up to the
/// item's opening brace (capped so reports stay one-line).
fn render_context(tokens: &[Token], start: usize) -> String {
    let mut parts = Vec::new();
    for t in tokens.iter().skip(start).take(12) {
        match &t.kind {
            TokenKind::Ident(s) => parts.push(s.clone()),
            TokenKind::Op(o) => parts.push((*o).to_string()),
            TokenKind::Punct('{') | TokenKind::Punct(';') => break,
            TokenKind::Punct(c) => parts.push(c.to_string()),
            _ => parts.push("…".to_string()),
        }
    }
    parts.join(" ")
}

/// Fourth sweep: parallel `reduce`/`sum` merge sites and their
/// `// det:` annotations.
fn collect_det(
    tokens: &[Token],
    comments: &[Comment],
    in_test: &dyn Fn(usize) -> bool,
) -> Vec<DetSite> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if name != "reduce" && name != "sum" {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
        let next_call = tokens.get(i + 1).is_some_and(|t| t.is_punct('(') || t.is_op("::"));
        if !prev_dot || !next_call {
            continue;
        }
        let (stmt_start_line, parallel) = scan_statement_back(tokens, i);
        let annotation = comments
            .iter()
            .filter(|c| {
                c.end_line + 1 >= stmt_start_line && c.line <= tok.line && {
                    // inside [stmt_start_line - 1, site line]
                    c.line + 1 >= stmt_start_line
                }
            })
            .find(|c| c.body().contains("det:"))
            .map(|c| c.body().to_string());
        out.push(DetSite {
            op: name.to_string(),
            line: tok.line,
            parallel,
            annotation,
            is_test: in_test(i),
        });
    }
    out
}

/// Walk backwards from the merge operator to the start of its
/// statement (a `;`, or an enclosing `{`/`(` boundary), reporting the
/// statement's first line and whether a parallel entry point occurs in
/// it.
fn scan_statement_back(tokens: &[Token], from: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut parallel = false;
    let mut first_line = tokens[from].line;
    let mut j = from;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        match &t.kind {
            TokenKind::Punct(')') | TokenKind::Punct('}') | TokenKind::Punct(']') => depth += 1,
            TokenKind::Punct('(') | TokenKind::Punct('{') | TokenKind::Punct('[') => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            TokenKind::Punct(';') if depth == 0 => break,
            TokenKind::Ident(name) if PAR_ENTRIES.contains(&name.as_str()) => {
                parallel = true;
            }
            _ => {}
        }
        first_line = t.line;
    }
    (first_line, parallel)
}

/// Fifth sweep: thread-count observables.
fn collect_threads(tokens: &[Token], in_test: &dyn Fn(usize) -> bool) -> Vec<ThreadSite> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_ident("current_num_threads") || t.is_ident("available_parallelism"))
        .map(|(i, t)| ThreadSite {
            what: t.ident().unwrap_or_default().to_string(),
            line: t.line,
            is_test: in_test(i),
        })
        .collect()
}

/// Sixth sweep: literal span names (well-shaped only — malformed names
/// belong to the `span-name` rule), each attributed to the innermost
/// enclosing function for the hot report's span section.
fn collect_spans(
    tokens: &[Token],
    bodies: &[std::ops::Range<usize>],
    in_test: &dyn Fn(usize) -> bool,
) -> Vec<SpanUse> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if name != "span" && name != "synthetic" {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(lit) = tokens.get(i + 2).and_then(Token::str_lit) else { continue };
        if crate::rules::valid_span_name(lit) {
            out.push(SpanUse {
                name: lit.to_string(),
                line: tok.line,
                is_test: in_test(i),
                fn_index: innermost(bodies, i),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(src: &str) -> FileIndex {
        index_file("crates/graph/src/x.rs", src)
    }

    #[test]
    fn fn_items_calls_and_panics() {
        let src = "fn a(x: Option<u32>) -> u32 {\n b(x.unwrap())\n}\nfn b(v: u32) -> u32 {\n helper(v); panic!(\"no\")\n}\nfn helper(v: u32) -> u32 { v }";
        let ix = idx(src);
        assert_eq!(ix.fns.len(), 3);
        let a = &ix.fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.calls.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), vec!["b"]);
        assert_eq!(a.panics.len(), 1);
        assert_eq!(a.panics[0].what, ".unwrap()");
        let b = &ix.fns[1];
        assert_eq!(b.calls.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), vec!["helper"]);
        assert_eq!(b.panics[0].what, "panic!");
    }

    #[test]
    fn closures_attribute_to_their_function_and_nested_fns_do_not() {
        let src = "fn outer() {\n let f = |x: u32| inner_call(x);\n f(1);\n fn nested() { nested_call(); }\n}";
        let ix = idx(src);
        let outer = &ix.fns[0];
        assert!(outer.calls.iter().any(|c| c.name == "inner_call"));
        assert!(outer.calls.iter().any(|c| c.name == "f"));
        assert!(!outer.calls.iter().any(|c| c.name == "nested_call"));
        let nested = &ix.fns[1];
        assert_eq!(nested.name, "nested");
        assert!(nested.calls.iter().any(|c| c.name == "nested_call"));
    }

    #[test]
    fn indexing_is_counted_not_collected() {
        let src = "fn f(xs: &[u32], i: usize) -> u32 {\n let a = xs[i];\n let b = [0u32; 4];\n a + b[0]\n}";
        let ix = idx(src);
        // `xs[i]` and `b[0]` index; `[0u32; 4]` is an array literal
        assert_eq!(ix.fns[0].index_sites, 2);
    }

    #[test]
    fn unsafe_sites_with_and_without_safety() {
        let src = "\
// SAFETY: the pointer is valid for the call.\n\
unsafe fn justified(p: *const u32) -> u32 { *p }\n\
unsafe fn bare(p: *const u32) -> u32 { *p }\n\
fn body() {\n\
    // SAFETY: slot is in bounds.\n\
    let _ = unsafe { raw() };\n\
    let _ = unsafe { raw() };\n\
}\n";
        let ix = idx(src);
        assert_eq!(ix.unsafe_sites.len(), 4);
        assert!(ix.unsafe_sites[0].safety.is_some());
        assert_eq!(ix.unsafe_sites[0].kind, UnsafeKind::Fn);
        assert!(ix.unsafe_sites[1].safety.is_none());
        assert!(ix.unsafe_sites[2].safety.is_some());
        assert_eq!(ix.unsafe_sites[2].kind, UnsafeKind::Block);
        assert_eq!(ix.unsafe_sites[2].enclosing_fn.as_deref(), Some("body"));
        // blocks never inherit from a preceding site — each needs its
        // own contract
        assert!(ix.unsafe_sites[3].safety.is_none());
    }

    #[test]
    fn unsafe_impl_pair_shares_one_comment() {
        let src = "\
struct W(*const u32);\n\
// SAFETY: the pointee is never mutated.\n\
unsafe impl Send for W {}\n\
unsafe impl Sync for W {}\n\
unsafe impl Other for W {}\n";
        let ix = idx(src);
        assert!(ix.unsafe_sites[0].safety.is_some());
        assert!(ix.unsafe_sites[1].safety.is_some(), "consecutive site inherits");
        // line 5 follows line 4 which inherited → chains
        assert!(ix.unsafe_sites[2].safety.is_some());
        assert!(ix.unsafe_sites[0].context.contains("impl Send for W"));
    }

    #[test]
    fn doc_safety_section_counts() {
        let src = "\
/// Does raw things.\n\
///\n\
/// # Safety\n\
///\n\
/// `p` must be valid.\n\
unsafe fn documented(p: *const u32) -> u32 { *p }\n";
        let ix = idx(src);
        assert!(ix.unsafe_sites[0].safety.is_some());
    }

    #[test]
    fn det_sites_parallel_detection_and_annotation() {
        let src = "\
fn seq(xs: &[f64]) -> f64 {\n\
    xs.iter().sum()\n\
}\n\
fn par_unannotated(xs: &[f64]) -> f64 {\n\
    xs.par_iter().map(|x| x.abs()).reduce(|| 0.0, f64::max)\n\
}\n\
fn par_annotated(xs: &[f64]) -> f64 {\n\
    // det: f64::max is exact, merge order cannot matter\n\
    xs.par_iter().map(|x| x.abs()).reduce(|| 0.0, f64::max)\n\
}\n";
        let ix = idx(src);
        assert_eq!(ix.det_sites.len(), 3);
        assert!(!ix.det_sites[0].parallel);
        assert!(ix.det_sites[1].parallel);
        assert!(ix.det_sites[1].annotation.is_none());
        assert!(ix.det_sites[2].parallel);
        assert!(ix.det_sites[2].annotation.is_some());
    }

    #[test]
    fn det_statement_scan_crosses_closure_braces() {
        let src = "\
fn grad(data: &[u32]) -> u32 {\n\
    let total = data\n\
        .par_chunks(8)\n\
        .map(|c| {\n\
            let mut s = 0;\n\
            for x in c { s += x; }\n\
            s\n\
        })\n\
        .reduce(|| 0, |a, b| a + b);\n\
    total\n\
}\n";
        let ix = idx(src);
        assert_eq!(ix.det_sites.len(), 1);
        assert!(ix.det_sites[0].parallel);
        assert_eq!(ix.det_sites[0].line, 9);
    }

    #[test]
    fn thread_and_span_collection() {
        let src = "\
fn f() {\n\
    let n = current_num_threads();\n\
    let _s = span(\"graph.knn\");\n\
    let _bad = span(\"NotValid\");\n\
    let _ = n;\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { let _ = current_num_threads(); span(\"x.y\"); }\n\
}\n";
        let ix = idx(src);
        assert_eq!(ix.thread_sites.len(), 2);
        assert!(!ix.thread_sites[0].is_test);
        assert!(ix.thread_sites[1].is_test);
        // malformed names are excluded; test-region spans flagged as such
        let names: Vec<(&str, bool)> =
            ix.span_uses.iter().map(|s| (s.name.as_str(), s.is_test)).collect();
        assert_eq!(names, vec![("graph.knn", false), ("x.y", true)]);
    }
}
