//! The audit rules: token-pattern lints encoding GraphNER project
//! policy that clippy cannot express.
//!
//! | id            | policy                                                          |
//! |---------------|-----------------------------------------------------------------|
//! | `no-unwrap`   | no `unwrap()` / `expect()` / `panic!` / `todo!` /               |
//! |               | `unimplemented!` in library code outside `#[cfg(test)]`         |
//! | `no-float-eq` | no bare `==` / `!=` against float literals in library code      |
//! | `no-std-hash` | no `std::collections::HashMap`/`HashSet` in result-bearing      |
//! |               | crates (core/crf/graph/eval) — `FxHashMap` with sorted          |
//! |               | iteration or `BTreeMap` only, for determinism                   |
//! | `no-instant`  | no `Instant` outside `graphner-obs` — wall-clock timing routes  |
//! |               | through obs spans / `Stopwatch`                                 |
//! | `no-print`    | no `println!`/`eprintln!`/`print!`/`eprint!` in library crates  |
//! |               | — output routes through `graphner-obs`                          |
//! | `span-name`   | literal names at `span("…")` / `SpanRecord::synthetic("…")`     |
//! |               | follow the `area.verb` convention: two or more non-empty        |
//! |               | dot-separated segments of `[a-z0-9_]`                           |
//!
//! The cross-file rules run in pass 2 over the linked symbol graph
//! (see [`crate::symgraph`] and [`crate::xrules`]):
//!
//! | id              | policy                                                        |
//! |-----------------|---------------------------------------------------------------|
//! | `unsafe-safety` | every `unsafe` block/fn/impl/trait carries an adjacent        |
//! |                 | `// SAFETY:` comment (or `# Safety` doc section)              |
//! | `panic-path`    | no library function in a result-bearing crate transitively    |
//! |                 | reaches an unallowlisted panic source through resolved calls  |
//! | `det-merge`     | parallel `reduce`/`sum` merges carry a `// det: <why          |
//! |                 | order-safe>` annotation in the same statement                 |
//! | `det-threads`   | no dependence on `current_num_threads()` /                    |
//! |                 | `available_parallelism()` outside `vendor/rayon` and `bench`  |
//! | `span-known`    | every well-shaped span name literal appears in                |
//! |                 | `crates/audit/span-names.txt` (and every non-fixture entry    |
//! |                 | there is still used somewhere)                                |
//!
//! The hot-path families also run in pass 2, but only inside the
//! hot-reachable function set seeded by `// hot:` annotations (see
//! [`crate::hot`]):
//!
//! | id              | policy                                                        |
//! |-----------------|---------------------------------------------------------------|
//! | `hot-alloc`     | no `Vec::new` / `vec!` / `push` / `collect` / `format!` /     |
//! |                 | `to_string` / `clone` / `Box::new` in a hot function without  |
//! |                 | a reason-bearing `// alloc:` contract in the statement        |
//! | `hot-cast`      | no lossy `as` cast to a narrow type (`u8`…`i32`, `f32`) in a  |
//! |                 | hot function without a `// cast:` contract — use `try_from`   |
//! |                 | or a typed guard instead                                      |
//! | `hot-overflow`  | no unchecked `+`/`*` inside an index expression of a hot      |
//! |                 | function without a `// bound:` contract (statement- or        |
//! |                 | fn-level) or a `checked_*`/`div_ceil` guard                   |
//!
//! Scope conventions (see [`FileScope`]): binary targets (`src/bin/`),
//! integration tests, benches, and `#[cfg(test)]` regions are exempt
//! from `no-unwrap`, `no-float-eq` and `no-print` — panicking on bad
//! CLI arguments and exact float assertions in tests are idiomatic.
//! `no-std-hash` applies to the *whole* file of result-bearing crates
//! (tests too: a test comparing against nondeterministic iteration is
//! itself flaky). `unreachable!` is deliberately not flagged: it marks
//! statically-evident dead branches, the sanctioned alternative to
//! `unwrap` for match arms an invariant rules out. `span-name` also
//! covers the bench crate's binaries: perfsuite's stage spans become
//! `BENCH_pipeline.json` keys, the most rename-sensitive names of all.

use crate::lexer::{Token, TokenKind};

/// Identifier of one audit rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unwrap()` / `expect()` / `panic!` family in library code.
    NoUnwrap,
    /// Bare `==`/`!=` against a float literal in library code.
    NoFloatEq,
    /// `std::collections::{HashMap,HashSet}` in a result-bearing crate.
    NoStdHash,
    /// `Instant` outside `graphner-obs`.
    NoInstant,
    /// Direct `println!`/`eprintln!` family in library crates.
    NoPrint,
    /// Span name literal not matching the `area.verb` convention.
    SpanName,
    /// `unsafe` site without an adjacent `// SAFETY:` justification.
    UnsafeSafety,
    /// Library fn in a result-bearing crate transitively reaches a
    /// panic source.
    PanicPath,
    /// Parallel `reduce`/`sum` merge without a `// det:` annotation.
    DetMerge,
    /// Thread-count observable outside `vendor/rayon` and `bench`.
    DetThreads,
    /// Span name literal missing from (or stale in) the known set.
    SpanKnown,
    /// Uncontracted allocation call site in a hot-reachable function.
    HotAlloc,
    /// Lossy narrowing `as` cast in a hot-reachable function.
    HotCast,
    /// Unchecked index arithmetic in a hot-reachable function.
    HotOverflow,
}

/// All rules, in reporting order. The first six run per file (pass 1),
/// the rest over the linked symbol graph (pass 2).
pub const ALL_RULES: [Rule; 14] = [
    Rule::NoUnwrap,
    Rule::NoFloatEq,
    Rule::NoStdHash,
    Rule::NoInstant,
    Rule::NoPrint,
    Rule::SpanName,
    Rule::UnsafeSafety,
    Rule::PanicPath,
    Rule::DetMerge,
    Rule::DetThreads,
    Rule::SpanKnown,
    Rule::HotAlloc,
    Rule::HotCast,
    Rule::HotOverflow,
];

impl Rule {
    /// The rule's stable string id (used in findings, the allowlist
    /// file and metric names).
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoFloatEq => "no-float-eq",
            Rule::NoStdHash => "no-std-hash",
            Rule::NoInstant => "no-instant",
            Rule::NoPrint => "no-print",
            Rule::SpanName => "span-name",
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::PanicPath => "panic-path",
            Rule::DetMerge => "det-merge",
            Rule::DetThreads => "det-threads",
            Rule::SpanKnown => "span-known",
            Rule::HotAlloc => "hot-alloc",
            Rule::HotCast => "hot-cast",
            Rule::HotOverflow => "hot-overflow",
        }
    }

    /// Parse a rule id.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == id)
    }
}

/// One policy violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the match.
    pub what: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.id(), self.what)
    }
}

/// Where a file sits in the workspace, deciding which rules apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileScope {
    /// Crate name as derived from the path (`core`, `graph`, `bench`,
    /// …; `vendor/rayon/src/` scans as `rayon`; the root `src/` scans
    /// as `graphner`).
    pub crate_name: String,
    /// Binary target (`src/bin/…`), integration test or bench file.
    pub is_binary: bool,
}

/// Crates whose outputs are results (tables, figures, saved models):
/// nondeterministic iteration there silently changes published numbers.
pub const RESULT_BEARING_CRATES: [&str; 4] = ["core", "crf", "graph", "eval"];

/// Crates exempt from `no-print`: `obs` implements the logger itself,
/// `bench` and `corpusgen` binaries *are* the presentation layer
/// (machine-readable tables on stdout), and `audit` reports findings.
pub const PRINT_EXEMPT_CRATES: [&str; 3] = ["obs", "bench", "audit"];

/// Crates allowed to touch `std::time::Instant` directly. Everything
/// else times through `graphner-obs` spans or `Stopwatch`, so wall
/// clocks have one owner.
pub const INSTANT_EXEMPT_CRATES: [&str; 2] = ["obs", "audit"];

/// Crates exempt from `no-unwrap`: the bench harness is CLI glue where
/// panicking on malformed arguments is the correct behaviour, and the
/// audit CLI reports its own errors.
pub const UNWRAP_EXEMPT_CRATES: [&str; 2] = ["bench", "audit"];

impl FileScope {
    /// Derive the scope from a workspace-relative path such as
    /// `crates/graph/src/knn.rs` or `src/lib.rs`.
    pub fn from_path(path: &str) -> FileScope {
        let norm = path.replace('\\', "/");
        let parts: Vec<&str> = norm.split('/').collect();
        let crate_name = match parts.first() {
            Some(&"crates") if parts.len() > 1 => parts[1].to_string(),
            Some(&"vendor") if parts.len() > 1 => parts[1].to_string(),
            _ => "graphner".to_string(),
        };
        let is_binary = parts.windows(2).any(|w| w == ["src", "bin"])
            || parts.contains(&"benches")
            || parts.contains(&"tests")
            || parts.contains(&"examples")
            || parts.contains(&"fixtures");
        FileScope { crate_name, is_binary }
    }

    fn library_rules_apply(&self, exempt: &[&str]) -> bool {
        !self.is_binary && !exempt.contains(&self.crate_name.as_str())
    }

    /// Whether `no-unwrap` gates this file — the same predicate decides
    /// which functions can carry panic-reachability *sources*.
    pub(crate) fn unwrap_checked(&self) -> bool {
        self.library_rules_apply(&UNWRAP_EXEMPT_CRATES)
    }

    /// Whether the file belongs to a result-bearing crate.
    pub(crate) fn result_bearing(&self) -> bool {
        RESULT_BEARING_CRATES.contains(&self.crate_name.as_str())
    }

    /// Whether span-name rules cover this file (library code anywhere,
    /// plus the bench crate's binaries — see `check_file`).
    pub(crate) fn span_checked(&self) -> bool {
        !self.is_binary || self.crate_name == "bench"
    }
}

/// Half-open token index ranges covered by `#[cfg(test)]`.
///
/// Matches the attribute token sequence `# [ cfg ( test ) ]` (also
/// `#![cfg(test)]`), then skips any further attributes and marks the
/// body of the annotated item — everything inside its outermost brace
/// pair — as excluded. Items ending in `;` without a body exclude
/// through the semicolon.
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // move past `# [ cfg ( test ) ]` (7 tokens, 8 with inner `!`)
            let mut j = i + 7;
            if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            // skip any further attributes on the same item
            while tokens.get(j).is_some_and(|t| t.is_punct('#')) {
                j = skip_attribute(tokens, j);
            }
            // find the item's body: first `{` before any `;`
            let mut k = j;
            let mut body = None;
            while let Some(t) = tokens.get(k) {
                if t.is_punct('{') {
                    body = Some(k);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                k += 1;
            }
            let end = match body {
                Some(open) => matching_brace(tokens, open),
                None => k,
            };
            regions.push((i, end));
            i = end + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Whether `tokens[i..]` starts the attribute `#[cfg(test)]` or
/// `#![cfg(test)]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    if !tokens.get(j).is_some_and(|t| t.is_punct('#')) {
        return false;
    }
    j += 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    tokens.get(j).is_some_and(|t| t.is_punct('['))
        && tokens.get(j + 1).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(j + 2).is_some_and(|t| t.is_punct('('))
        && tokens.get(j + 3).is_some_and(|t| t.is_ident("test"))
        && tokens.get(j + 4).is_some_and(|t| t.is_punct(')'))
        && tokens.get(j + 5).is_some_and(|t| t.is_punct(']'))
}

/// Index just past an attribute starting at the `#` at `i`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return j;
    }
    let mut depth = 0usize;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Whether a span name follows the `area.verb` convention: at least
/// two non-empty dot-separated segments of `[a-z0-9_]`. Stable names
/// in this shape group cleanly in trace viewers and survive renames of
/// surrounding code; anything ad-hoc (`"outer"`, `"Phase 1"`) breaks
/// the `BENCH_pipeline.json` stage keys derived from them.
pub(crate) fn valid_span_name(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        if seg.is_empty()
            || !seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Run every applicable rule over one file's source.
pub fn check_file(path: &str, source: &str) -> Vec<Finding> {
    let scope = FileScope::from_path(path);
    let tokens = crate::lexer::tokenize(source);
    let regions = test_regions(&tokens);
    let in_test = |i: usize| regions.iter().any(|&(lo, hi)| i >= lo && i <= hi);
    let mut findings = Vec::new();

    let finding = |rule: Rule, line: usize, what: String| Finding {
        rule,
        path: path.to_string(),
        line,
        what,
    };

    let unwrap_applies = scope.library_rules_apply(&UNWRAP_EXEMPT_CRATES);
    let float_applies = !scope.is_binary;
    let print_applies = scope.library_rules_apply(&PRINT_EXEMPT_CRATES);
    let instant_applies = !INSTANT_EXEMPT_CRATES.contains(&scope.crate_name.as_str());
    let hash_applies = RESULT_BEARING_CRATES.contains(&scope.crate_name.as_str());
    // span names feed trace exports and perf-gate stage keys, so the
    // rule covers library code everywhere plus the bench crate's
    // binaries (perfsuite's stage spans become BENCH_pipeline.json
    // keys). Test code is exempt — throwaway names like "outer" are
    // idiomatic when exercising the span registry itself.
    let span_applies = !scope.is_binary || scope.crate_name == "bench";

    for (i, tok) in tokens.iter().enumerate() {
        let test_code = in_test(i);

        // no-unwrap: `.unwrap(` / `.expect(` and `panic!` family
        if unwrap_applies && !test_code {
            if let Some(name) = tok.ident() {
                let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
                let next_paren = tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
                let next_bang = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
                if prev_dot && next_paren && (name == "unwrap" || name == "expect") {
                    findings.push(finding(Rule::NoUnwrap, tok.line, format!(".{name}()")));
                }
                if next_bang && matches!(name, "panic" | "todo" | "unimplemented") {
                    findings.push(finding(Rule::NoUnwrap, tok.line, format!("{name}!")));
                }
            }
        }

        // no-float-eq: `==` / `!=` adjacent to a float literal
        if float_applies && !test_code && (tok.is_op("==") || tok.is_op("!=")) {
            let float_next = matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokenKind::Float));
            let float_prev = i > 0 && tokens[i - 1].kind == TokenKind::Float;
            if float_next || float_prev {
                let op = if tok.is_op("==") { "==" } else { "!=" };
                findings.push(finding(
                    Rule::NoFloatEq,
                    tok.line,
                    format!("bare float `{op}` comparison"),
                ));
            }
        }

        // no-std-hash: std::collections::{HashMap,HashSet}
        if hash_applies
            && tok.is_ident("std")
            && tokens.get(i + 1).is_some_and(|t| t.is_op("::"))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("collections"))
            && tokens.get(i + 3).is_some_and(|t| t.is_op("::"))
        {
            match tokens.get(i + 4) {
                Some(t) if t.is_ident("HashMap") || t.is_ident("HashSet") => {
                    findings.push(finding(
                        Rule::NoStdHash,
                        t.line,
                        format!("std::collections::{}", t.ident().unwrap_or("?")),
                    ));
                }
                Some(t) if t.is_punct('{') => {
                    let end = matching_brace(&tokens, i + 4);
                    for t in &tokens[i + 4..=end.min(tokens.len() - 1)] {
                        if t.is_ident("HashMap") || t.is_ident("HashSet") {
                            findings.push(finding(
                                Rule::NoStdHash,
                                t.line,
                                format!("std::collections::{}", t.ident().unwrap_or("?")),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }

        // no-instant: any `Instant` mention outside obs
        if instant_applies && tok.is_ident("Instant") {
            findings.push(finding(
                Rule::NoInstant,
                tok.line,
                "Instant outside graphner-obs".to_string(),
            ));
        }

        // no-print: direct stdout/stderr macros in library code
        if print_applies && !test_code {
            if let Some(name) = tok.ident() {
                if matches!(name, "println" | "eprintln" | "print" | "eprint")
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                {
                    findings.push(finding(Rule::NoPrint, tok.line, format!("{name}!")));
                }
            }
        }

        // span-name: literal first argument of `span(` / `synthetic(`
        if span_applies && !test_code {
            if let Some(name) = tok.ident() {
                if matches!(name, "span" | "synthetic")
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                {
                    if let Some(lit) = tokens.get(i + 2).and_then(|t| t.str_lit()) {
                        if !valid_span_name(lit) {
                            findings.push(finding(
                                Rule::SpanName,
                                tok.line,
                                format!("span name \"{lit}\" is not `area.verb` shaped"),
                            ));
                        }
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<(Rule, usize)> {
        check_file(path, src).into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn unwrap_expect_panic_found_in_library_code() {
        let src = "fn f() {\n a.unwrap();\n b.expect(\"x\");\n panic!(\"y\");\n todo!();\n}";
        let found = rules_at("crates/text/src/a.rs", src);
        assert_eq!(
            found,
            vec![
                (Rule::NoUnwrap, 2),
                (Rule::NoUnwrap, 3),
                (Rule::NoUnwrap, 4),
                (Rule::NoUnwrap, 5)
            ]
        );
    }

    #[test]
    fn unwrap_in_cfg_test_is_ignored() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { a.unwrap(); }\n}";
        assert!(rules_at("crates/text/src/a.rs", src).is_empty());
    }

    #[test]
    fn unwrap_after_cfg_test_region_is_found() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }\nfn g() { b.unwrap(); }";
        assert_eq!(rules_at("crates/text/src/a.rs", src), vec![(Rule::NoUnwrap, 3)]);
    }

    #[test]
    fn unwrap_in_strings_comments_and_similar_names_ignored() {
        let src = "fn f() {\n // a.unwrap()\n let s = \"b.unwrap()\";\n c.unwrap_or(0);\n}";
        assert!(rules_at("crates/text/src/a.rs", src).is_empty());
    }

    #[test]
    fn unreachable_is_permitted() {
        let src = "fn f() { match x { _ => unreachable!(\"invariant\") } }";
        assert!(rules_at("crates/text/src/a.rs", src).is_empty());
    }

    #[test]
    fn bins_and_bench_are_unwrap_exempt() {
        let src = "fn main() { args.next().unwrap(); }";
        assert!(rules_at("crates/core/src/bin/tool.rs", src).is_empty());
        assert!(rules_at("crates/bench/src/harness.rs", src).is_empty());
    }

    #[test]
    fn float_eq_is_found_on_either_side() {
        let src = "fn f(x: f64) -> bool { x == 1.0 || 0.0 != x || x == 1e-6 }";
        let found = rules_at("crates/text/src/a.rs", src);
        assert_eq!(found, vec![(Rule::NoFloatEq, 1); 3]);
    }

    #[test]
    fn integer_eq_is_fine() {
        let src = "fn f(x: u32) -> bool { x == 1 && x != 0 }";
        assert!(rules_at("crates/text/src/a.rs", src).is_empty());
    }

    #[test]
    fn float_eq_in_tests_is_fine() {
        let src = "#[cfg(test)]\nmod tests { fn t() { assert!(x == 1.0); } }";
        assert!(rules_at("crates/text/src/a.rs", src).is_empty());
    }

    #[test]
    fn std_hash_flagged_only_in_result_bearing_crates() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: std::collections::HashSet<u32>; }";
        let found = rules_at("crates/graph/src/a.rs", src);
        assert_eq!(found, vec![(Rule::NoStdHash, 1), (Rule::NoStdHash, 2)]);
        assert!(rules_at("crates/corpusgen/src/a.rs", src).is_empty());
    }

    #[test]
    fn std_hash_brace_imports_and_btreemap() {
        let src = "use std::collections::{BTreeMap, HashMap};";
        let found = rules_at("crates/eval/src/a.rs", src);
        assert_eq!(found, vec![(Rule::NoStdHash, 1)]);
        assert!(rules_at("crates/eval/src/a.rs", "use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn std_hash_applies_even_in_tests() {
        let src =
            "#[cfg(test)]\nmod tests {\n fn t() { let s: std::collections::HashSet<u32>; }\n}";
        assert_eq!(rules_at("crates/core/src/a.rs", src), vec![(Rule::NoStdHash, 3)]);
    }

    #[test]
    fn instant_flagged_outside_obs() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let found = rules_at("crates/core/src/a.rs", src);
        assert_eq!(found, vec![(Rule::NoInstant, 1), (Rule::NoInstant, 2)]);
        assert!(rules_at("crates/obs/src/a.rs", src).is_empty());
    }

    #[test]
    fn print_flagged_in_library_but_not_bench_or_bins() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }";
        let found = rules_at("crates/graph/src/a.rs", src);
        assert_eq!(found, vec![(Rule::NoPrint, 1), (Rule::NoPrint, 1)]);
        assert!(rules_at("crates/bench/src/harness.rs", src).is_empty());
        assert!(rules_at("crates/bench/src/bin/table1.rs", src).is_empty());
        assert!(rules_at("crates/obs/src/logger.rs", src).is_empty());
    }

    #[test]
    fn span_names_must_be_dot_separated_lowercase() {
        let src = "fn f() {\n let _a = span(\"outer\");\n let _b = span(\"Graph.Build\");\n let _c = span(\"graph.\");\n let _d = SpanRecord::synthetic(\"Phase 1\", 3);\n}";
        let found = rules_at("crates/core/src/a.rs", src);
        assert_eq!(
            found,
            vec![
                (Rule::SpanName, 2),
                (Rule::SpanName, 3),
                (Rule::SpanName, 4),
                (Rule::SpanName, 5)
            ]
        );
    }

    #[test]
    fn conforming_and_dynamic_span_names_pass() {
        let src = "fn f(n: &str) {\n let _a = span(\"graph.knn\");\n let _b = span(\"serve.tag_batch\");\n let _c = span(\"a.b2.c_d\");\n let _d = span(n);\n let _e = other_span(\"X\");\n}";
        assert!(rules_at("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn span_name_scope_covers_bench_bins_but_not_tests() {
        let src = "fn f() { let _s = span(\"bad\"); }";
        assert_eq!(rules_at("crates/bench/src/bin/perfsuite.rs", src), vec![(Rule::SpanName, 1)]);
        assert!(rules_at("crates/obs/tests/rayon_spans.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn t() { span(\"outer\"); } }";
        assert!(rules_at("crates/obs/src/span.rs", test_src).is_empty());
    }

    #[test]
    fn scope_derivation() {
        let s = FileScope::from_path("crates/graph/src/knn.rs");
        assert_eq!(s.crate_name, "graph");
        assert!(!s.is_binary);
        assert!(FileScope::from_path("crates/bench/src/bin/t.rs").is_binary);
        assert!(FileScope::from_path("crates/obs/tests/rayon_spans.rs").is_binary);
        assert_eq!(FileScope::from_path("src/lib.rs").crate_name, "graphner");
        let v = FileScope::from_path("vendor/rayon/src/pool.rs");
        assert_eq!(v.crate_name, "rayon");
        assert!(!v.is_binary);
    }

    #[test]
    fn nested_braces_inside_test_mod_stay_excluded() {
        let src = "#[cfg(test)]\nmod tests {\n fn a() { if x { y.unwrap(); } }\n fn b() { z.unwrap(); }\n}\nfn c() { w.unwrap(); }";
        assert_eq!(rules_at("crates/text/src/a.rs", src), vec![(Rule::NoUnwrap, 6)]);
    }

    #[test]
    fn cfg_test_fn_with_extra_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { x.unwrap(); }\nfn real() { y.unwrap(); }";
        assert_eq!(rules_at("crates/text/src/a.rs", src), vec![(Rule::NoUnwrap, 4)]);
    }
}
