//! The workspace symbol graph: pass-1 [`FileIndex`]es linked into one
//! call graph, plus the transitive panic-reachability walk over it.
//!
//! Linking is deliberately conservative: a call edge resolves only
//! when the callee name is **unique** across all indexed library
//! functions. Ambiguous names (`new`, `len`, trait methods with many
//! impls) resolve to nothing — a missed edge can only under-report
//! reachability, never fabricate a finding, which is the right failure
//! direction for a gating rule. The per-site `no-unwrap` rule remains
//! the exhaustive backstop for *direct* panics; this walk adds the
//! cross-function dimension it cannot see.

use std::collections::{BTreeMap, BTreeSet};

use crate::symbols::{FileIndex, PanicSite};

/// A global function id: (file index, fn index within that file).
pub type FnId = (usize, usize);

/// Method names the std prelude (Iterator, slices, `Vec`, `String`, …)
/// exports: a call site bearing one of these almost always targets the
/// std method, so even a workspace-unique definition (the vendored
/// rayon shim redefines several) must not resolve. Dropping the edge
/// only under-reports reachability — the accepted failure direction.
const STD_SHADOWED: [&str; 32] = [
    "all",
    "any",
    "chain",
    "clone",
    "collect",
    "contains",
    "count",
    "default",
    "enumerate",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "fold",
    "for_each",
    "from",
    "get",
    "insert",
    "is_empty",
    "iter",
    "len",
    "map",
    "max",
    "min",
    "new",
    "position",
    "push",
    "rev",
    "sum",
    "take",
    "zip",
];

/// How a function reaches a panic, if it does.
#[derive(Clone, Debug)]
pub enum Reach {
    /// The body contains an active panic source itself.
    Direct(PanicSite),
    /// A resolved callee reaches one.
    Via(FnId),
}

/// How a function enters the hot-reachable set.
#[derive(Clone, Debug)]
pub enum HotReach {
    /// The function carries a `// hot:` root annotation (the reason).
    Root(String),
    /// A hot caller's resolved call edge reaches it.
    Via(FnId),
}

/// The linked graph. Borrows the indexes it links.
pub struct SymbolGraph<'a> {
    files: &'a [FileIndex],
    /// fn name → every library fn with that name, in (file, fn) order.
    by_name: BTreeMap<&'a str, Vec<FnId>>,
}

impl<'a> SymbolGraph<'a> {
    /// Link the per-file indexes. Only library functions participate:
    /// test functions neither resolve as callees nor get walked.
    pub fn link(files: &'a [FileIndex]) -> Self {
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                if !f.is_test {
                    by_name.entry(f.name.as_str()).or_default().push((fi, gi));
                }
            }
        }
        SymbolGraph { files, by_name }
    }

    /// The callee a name resolves to, if exactly one library fn bears
    /// it and the name is not shadowed by the std prelude.
    pub fn resolve(&self, name: &str) -> Option<FnId> {
        if STD_SHADOWED.contains(&name) {
            return None;
        }
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// Number of call edges that resolved during the last walk-free
    /// count (diagnostic for reports).
    pub fn resolved_edge_count(&self) -> usize {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| f.fns.iter().enumerate().map(move |(gi, g)| ((fi, gi), g)))
            .filter(|((_, _), g)| !g.is_test)
            .flat_map(|(id, g)| {
                g.calls.iter().filter_map(move |c| self.resolve(&c.name).filter(|&t| t != id))
            })
            .count()
    }

    /// Transitive panic reachability over the resolved call graph.
    ///
    /// `source_active(path, line)` decides whether a direct panic site
    /// seeds the walk — the caller passes the allowlist here, so a
    /// site whose contract is documented and accepted does not taint
    /// its callers. Only functions in `no-unwrap` scope (library code
    /// of non-exempt crates) carry direct sources; every library
    /// function can still *reach* one through calls.
    pub fn panic_reachability(
        &self,
        source_active: &dyn Fn(&str, usize) -> bool,
    ) -> BTreeMap<FnId, Reach> {
        let mut reach: BTreeMap<FnId, Reach> = BTreeMap::new();
        // Seed with direct sources.
        for (fi, file) in self.files.iter().enumerate() {
            if !file.scope.unwrap_checked() {
                continue;
            }
            for (gi, f) in file.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                if let Some(site) = f.panics.iter().find(|p| source_active(&file.path, p.line)) {
                    reach.insert((fi, gi), Reach::Direct(site.clone()));
                }
            }
        }
        // Fixpoint: propagate backwards over resolved call edges.
        loop {
            let mut changed = false;
            for (fi, file) in self.files.iter().enumerate() {
                for (gi, f) in file.fns.iter().enumerate() {
                    let id = (fi, gi);
                    if f.is_test || reach.contains_key(&id) {
                        continue;
                    }
                    let hit = f.calls.iter().find_map(|c| {
                        self.resolve(&c.name).filter(|t| *t != id && reach.contains_key(t))
                    });
                    if let Some(target) = hit {
                        reach.insert(id, Reach::Via(target));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        reach
    }

    /// The hot-reachable function set: a *forward* fixpoint from every
    /// `// hot:`-annotated library function over resolved call edges —
    /// the mirror image of [`Self::panic_reachability`], which walks
    /// callee→caller. A missed (ambiguous or std-shadowed) edge leaves
    /// a callee out of the hot set, so the hot-path rules can only
    /// under-report; they never fabricate a hot function.
    pub fn hot_reachability(&self) -> BTreeMap<FnId, HotReach> {
        let mut reach: BTreeMap<FnId, HotReach> = BTreeMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                if !f.is_test {
                    if let Some(reason) = &f.hot {
                        reach.insert((fi, gi), HotReach::Root(reason.clone()));
                    }
                }
            }
        }
        loop {
            let mut changed = false;
            let hot: Vec<FnId> = reach.keys().copied().collect();
            for id in hot {
                let (fi, gi) = id;
                let f = &self.files[fi].fns[gi];
                for call in &f.calls {
                    let Some(target) = self.resolve(&call.name).filter(|t| *t != id) else {
                        continue;
                    };
                    if let std::collections::btree_map::Entry::Vacant(slot) = reach.entry(target) {
                        slot.insert(HotReach::Via(id));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        reach
    }

    /// Every function reachable from `start` (inclusive) over resolved
    /// call edges — the static closure a span minted in `start` can
    /// execute under.
    pub fn reachable_from(&self, start: FnId) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let (fi, gi) = id;
            for call in &self.files[fi].fns[gi].calls {
                if let Some(target) = self.resolve(&call.name) {
                    if !seen.contains(&target) {
                        stack.push(target);
                    }
                }
            }
        }
        seen
    }

    /// Render the call chain from a hot root down to `id`, e.g.
    /// `sweep_shard -> jacobi_update -> neighbors`.
    pub fn render_hot_path(&self, id: FnId, reach: &BTreeMap<FnId, HotReach>) -> String {
        let mut parts = Vec::new();
        let mut cur = id;
        loop {
            let (fi, gi) = cur;
            parts.push(self.files[fi].fns[gi].name.clone());
            match reach.get(&cur) {
                Some(HotReach::Via(prev)) if parts.len() <= self.by_name.len() => cur = *prev,
                _ => break,
            }
        }
        parts.reverse();
        parts.join(" -> ")
    }

    /// The name of the function `id` points at (for reports).
    pub fn name_of(&self, id: FnId) -> &str {
        &self.files[id.0].fns[id.1].name
    }

    /// Render the call chain from `id` down to its direct panic site,
    /// e.g. `a → b → c: panic! at crates/x/src/y.rs:12`.
    pub fn render_path(&self, id: FnId, reach: &BTreeMap<FnId, Reach>) -> String {
        let mut parts = Vec::new();
        let mut cur = id;
        loop {
            let (fi, gi) = cur;
            let f = &self.files[fi].fns[gi];
            parts.push(f.name.clone());
            match reach.get(&cur) {
                Some(Reach::Via(next)) if parts.len() <= self.by_name.len() => cur = *next,
                Some(Reach::Direct(site)) => {
                    return format!(
                        "{}: {} at {}:{}",
                        parts.join(" -> "),
                        site.what,
                        self.files[fi].path,
                        site.line
                    );
                }
                _ => return parts.join(" -> "),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::index_file;

    fn graph_of(sources: &[(&str, &str)]) -> Vec<FileIndex> {
        sources.iter().map(|(p, s)| index_file(p, s)).collect()
    }

    #[test]
    fn cross_file_reachability_with_path() {
        let files = graph_of(&[
            (
                "crates/graph/src/a.rs",
                "pub fn entry(x: Option<u32>) -> u32 { middle(x) }\n",
            ),
            (
                "crates/core/src/b.rs",
                "pub fn middle(x: Option<u32>) -> u32 { sink(x) }\npub fn sink(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
        ]);
        let g = SymbolGraph::link(&files);
        let reach = g.panic_reachability(&|_, _| true);
        assert!(matches!(reach.get(&(1, 1)), Some(Reach::Direct(_))));
        assert!(matches!(reach.get(&(1, 0)), Some(Reach::Via(_))));
        assert!(matches!(reach.get(&(0, 0)), Some(Reach::Via(_))));
        let path = g.render_path((0, 0), &reach);
        assert!(path.starts_with("entry -> middle -> sink: .unwrap() at"), "{path}");
        assert!(path.ends_with("crates/core/src/b.rs:2"), "{path}");
    }

    #[test]
    fn suppressed_sources_do_not_seed_the_walk() {
        let files = graph_of(&[(
            "crates/graph/src/a.rs",
            "pub fn caller(x: Option<u32>) -> u32 { documented(x) }\npub fn documented(x: Option<u32>) -> u32 { x.expect(\"contract\") }\n",
        )]);
        let g = SymbolGraph::link(&files);
        let reach = g.panic_reachability(&|_, line| line != 2);
        assert!(reach.is_empty());
    }

    #[test]
    fn ambiguous_names_do_not_link() {
        let files = graph_of(&[
            ("crates/graph/src/a.rs", "pub fn helper() { panic!(\"a\") }\n"),
            ("crates/core/src/b.rs", "pub fn helper() {}\npub fn caller() { helper() }\n"),
        ]);
        let g = SymbolGraph::link(&files);
        let reach = g.panic_reachability(&|_, _| true);
        // both helpers share a name → the call edge stays unresolved
        assert!(matches!(reach.get(&(0, 0)), Some(Reach::Direct(_))));
        assert!(!reach.contains_key(&(1, 1)));
    }

    #[test]
    fn test_functions_and_exempt_crates_carry_no_sources() {
        let files = graph_of(&[
            (
                "crates/graph/src/a.rs",
                "#[cfg(test)]\nmod tests {\n fn t() { panic!(\"test only\") }\n}\n",
            ),
            ("crates/bench/src/b.rs", "pub fn bench_helper() { panic!(\"exempt crate\") }\n"),
        ]);
        let g = SymbolGraph::link(&files);
        let reach = g.panic_reachability(&|_, _| true);
        assert!(reach.is_empty());
    }

    #[test]
    fn recursion_terminates() {
        let files = graph_of(&[(
            "crates/graph/src/a.rs",
            "pub fn ping(n: u32) -> u32 { if n == 0 { boom() } else { pong(n - 1) } }\npub fn pong(n: u32) -> u32 { ping(n) }\npub fn boom() -> u32 { panic!(\"base\") }\n",
        )]);
        let g = SymbolGraph::link(&files);
        let reach = g.panic_reachability(&|_, _| true);
        assert_eq!(reach.len(), 3);
        let path = g.render_path((0, 0), &reach);
        assert!(path.contains("boom"), "{path}");
    }
}
