//! Pass 2: cross-file rules over the linked symbol graph.
//!
//! Four rule families, each consuming the pass-1 [`FileIndex`]es:
//!
//! * `unsafe-safety` — every `unsafe` site (block, fn, impl, trait)
//!   anywhere in the scanned tree must carry an adjacent `// SAFETY:`
//!   comment (or a `# Safety` doc section). Test code included: an
//!   unjustified `unsafe` in a test is still unjustified.
//! * `panic-path` — no library function of a result-bearing crate may
//!   transitively reach a panic source through resolved call edges.
//!   Allowlist-suppressed `no-unwrap` sites are *documented contracts*
//!   and do not seed the walk, so accepting a site once does not
//!   re-flag every caller.
//! * `det-merge` / `det-threads` — determinism lints: parallel
//!   `reduce`/`sum` merges need a `// det: <why order-safe>`
//!   annotation in their statement, and nothing outside `vendor/rayon`
//!   and `bench` may observe the thread count at all.
//! * `span-known` — every well-shaped span name literal must appear in
//!   `crates/audit/span-names.txt`, and (workspace mode only) every
//!   non-`[fixture]` entry there must still be used somewhere, so the
//!   registry can't rot in either direction.
//! * `hot-alloc` / `hot-cast` / `hot-overflow` — the hot-path families
//!   ([`crate::hot`]), which run only inside the `// hot:`-rooted
//!   reachable set of the same symbol graph.

use std::collections::BTreeSet;

use crate::rules::{Finding, Rule};
use crate::symbols::FileIndex;
use crate::symgraph::{Reach, SymbolGraph};

/// Crates whose behaviour may legitimately depend on the thread count:
/// the pool implements it, the bench harness reports it.
const THREAD_EXEMPT_CRATES: [&str; 2] = ["rayon", "bench"];

/// The parsed known-span registry (`crates/audit/span-names.txt`).
#[derive(Clone, Debug, Default)]
pub struct SpanRegistry {
    /// Entries in file order.
    pub entries: Vec<SpanEntry>,
    /// Path the registry was loaded from, for findings.
    pub path: String,
}

/// One line of the registry.
#[derive(Clone, Debug)]
pub struct SpanEntry {
    /// The span name.
    pub name: String,
    /// 1-based line in the registry file.
    pub line: usize,
    /// `[fixture]`-tagged names exist only in audit fixtures and are
    /// exempt from the workspace stale check.
    pub fixture: bool,
}

impl SpanRegistry {
    /// Parse the registry format: one name per line, optional
    /// ` [fixture]` tag, `#` comments and blank lines ignored.
    pub fn parse(path: &str, contents: &str) -> SpanRegistry {
        let mut entries = Vec::new();
        for (i, raw) in contents.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (name, fixture) = match line.strip_suffix("[fixture]") {
                Some(rest) => (rest.trim(), true),
                None => (line, false),
            };
            entries.push(SpanEntry { name: name.to_string(), line: i + 1, fixture });
        }
        SpanRegistry { entries, path: path.to_string() }
    }

    fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }
}

/// How pass 2 is being run — workspace mode additionally checks the
/// span registry for stale entries, which a single-fixture self-test
/// run cannot meaningfully do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Full workspace scan.
    Workspace,
    /// One fixture at a time (`--self-test`).
    SelfTest,
}

/// Run every pass-2 rule. `suppressed_sources` holds `(path, line)`
/// pairs of allowlist-accepted `no-unwrap` findings — documented panic
/// contracts that must not seed the reachability walk. `registry` is
/// `None` when no `span-names.txt` exists (scratch trees in unit
/// tests); the span-closure rule is skipped entirely then rather than
/// flagging every name against an empty set.
pub fn check(
    files: &[FileIndex],
    registry: Option<&SpanRegistry>,
    suppressed_sources: &BTreeSet<(String, usize)>,
    mode: Mode,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let graph = SymbolGraph::link(files);
    check_unsafe(files, &mut findings);
    check_panic_paths(files, &graph, suppressed_sources, &mut findings);
    check_det(files, &mut findings);
    crate::hot::check(files, &graph, &mut findings);
    if let Some(registry) = registry {
        check_spans(files, registry, mode, &mut findings);
    }
    findings
}

/// `unsafe-safety`: unjustified unsafe sites, everywhere.
fn check_unsafe(files: &[FileIndex], findings: &mut Vec<Finding>) {
    for file in files {
        for site in &file.unsafe_sites {
            if site.safety.is_none() {
                findings.push(Finding {
                    rule: Rule::UnsafeSafety,
                    path: file.path.clone(),
                    line: site.line,
                    what: format!(
                        "{} ({}) without a // SAFETY: comment",
                        site.kind.label(),
                        site.context
                    ),
                });
            }
        }
    }
}

/// `panic-path`: result-bearing library fns that reach a panic through
/// calls. Functions with an *active direct* source are already flagged
/// by `no-unwrap` — this rule reports only the transitive tier, so one
/// bad sink yields one per-site finding plus one finding per caller,
/// not two findings for the sink itself.
fn check_panic_paths(
    files: &[FileIndex],
    graph: &SymbolGraph<'_>,
    suppressed_sources: &BTreeSet<(String, usize)>,
    findings: &mut Vec<Finding>,
) {
    let active = |path: &str, line: usize| !suppressed_sources.contains(&(path.to_string(), line));
    let reach = graph.panic_reachability(&active);
    for (&(fi, gi), r) in &reach {
        let Reach::Via(_) = r else { continue };
        let file = &files[fi];
        if !file.scope.result_bearing() || file.scope.is_binary {
            continue;
        }
        let f = &file.fns[gi];
        findings.push(Finding {
            rule: Rule::PanicPath,
            path: file.path.clone(),
            line: f.line,
            what: format!("fn {} can panic: {}", f.name, graph.render_path((fi, gi), &reach)),
        });
    }
}

/// `det-merge` + `det-threads`.
fn check_det(files: &[FileIndex], findings: &mut Vec<Finding>) {
    for file in files {
        let crate_name = file.scope.crate_name.as_str();
        // det-merge: vendor/rayon implements the merges themselves
        // (its `reduce` is the ordered combiner, not a user of one)
        // and bench binaries don't publish results.
        let merge_applies = !THREAD_EXEMPT_CRATES.contains(&crate_name);
        if merge_applies {
            for site in &file.det_sites {
                if site.parallel && !site.is_test && site.annotation.is_none() {
                    findings.push(Finding {
                        rule: Rule::DetMerge,
                        path: file.path.clone(),
                        line: site.line,
                        what: format!(
                            "parallel .{}() merge without a // det: order-safety note",
                            site.op
                        ),
                    });
                }
            }
        }
        // det-threads: behaviour must not observe the worker count.
        if !THREAD_EXEMPT_CRATES.contains(&crate_name) {
            for site in &file.thread_sites {
                if site.is_test {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::DetThreads,
                    path: file.path.clone(),
                    line: site.line,
                    what: format!("{}() observed outside vendor/rayon and bench", site.what),
                });
            }
        }
    }
}

/// `span-known`: usage ⊆ registry, and (workspace) registry ⊆ usage
/// for non-fixture entries.
fn check_spans(
    files: &[FileIndex],
    registry: &SpanRegistry,
    mode: Mode,
    findings: &mut Vec<Finding>,
) {
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for file in files {
        if !file.scope.span_checked() {
            continue;
        }
        for span in &file.span_uses {
            if span.is_test {
                continue;
            }
            used.insert(span.name.as_str());
            if !registry.contains(&span.name) {
                findings.push(Finding {
                    rule: Rule::SpanKnown,
                    path: file.path.clone(),
                    line: span.line,
                    what: format!("span name \"{}\" is not in {}", span.name, registry.path),
                });
            }
        }
    }
    if mode == Mode::Workspace {
        for entry in &registry.entries {
            if !entry.fixture && !used.contains(entry.name.as_str()) {
                findings.push(Finding {
                    rule: Rule::SpanKnown,
                    path: registry.path.clone(),
                    line: entry.line,
                    what: format!("stale registry entry \"{}\": span no longer minted", entry.name),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::index_file;

    fn check_one(
        path: &str,
        src: &str,
        registry: Option<&SpanRegistry>,
        mode: Mode,
    ) -> Vec<Finding> {
        let files = vec![index_file(path, src)];
        check(&files, registry, &BTreeSet::new(), mode)
    }

    fn ids(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule.id()).collect()
    }

    #[test]
    fn registry_parses_comments_and_fixture_tags() {
        let reg = SpanRegistry::parse(
            "crates/audit/span-names.txt",
            "# header\n\ngraph.knn\narea.verb [fixture]\ncrf.train # trailer\n",
        );
        assert_eq!(reg.entries.len(), 3);
        assert_eq!(reg.entries[0].name, "graph.knn");
        assert!(!reg.entries[0].fixture);
        assert!(reg.entries[1].fixture);
        assert_eq!(reg.entries[1].line, 4);
        assert_eq!(reg.entries[2].name, "crf.train");
    }

    #[test]
    fn unsafe_without_safety_is_flagged_everywhere_even_tests() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { let _ = unsafe { raw() }; }\n\
}\n";
        let f = check_one("crates/graph/src/x.rs", src, None, Mode::Workspace);
        assert_eq!(ids(&f), vec!["unsafe-safety"]);
    }

    #[test]
    fn panic_path_reports_only_result_bearing_callers() {
        let files = vec![
            index_file(
                "crates/graph/src/a.rs",
                "pub fn caller(x: Option<u32>) -> u32 { sink(x) }\n",
            ),
            index_file(
                "crates/obs/src/b.rs",
                "pub fn other_caller(x: Option<u32>) -> u32 { sink(x) }\npub fn sink(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
        ];
        let f = check(&files, None, &BTreeSet::new(), Mode::Workspace);
        let pp: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::PanicPath).collect();
        // graph caller flagged; obs caller is not result-bearing
        assert_eq!(pp.len(), 1);
        assert_eq!(pp[0].path, "crates/graph/src/a.rs");
        assert!(pp[0].what.contains("caller -> sink"), "{}", pp[0].what);
    }

    #[test]
    fn suppressed_contract_does_not_taint_callers() {
        let files = vec![index_file(
            "crates/graph/src/a.rs",
            "pub fn caller(x: Option<u32>) -> u32 { documented(x) }\npub fn documented(x: Option<u32>) -> u32 { x.expect(\"contract\") }\n",
        )];
        let mut suppressed = BTreeSet::new();
        suppressed.insert(("crates/graph/src/a.rs".to_string(), 2));
        let f = check(&files, None, &suppressed, Mode::Workspace);
        assert!(f.iter().all(|f| f.rule != Rule::PanicPath), "{f:?}");
    }

    #[test]
    fn det_rules_respect_crate_exemptions() {
        let src = "\
pub fn merge(xs: &[f64]) -> f64 {\n\
    xs.par_iter().cloned().reduce(|| 0.0, f64::max)\n\
}\n\
pub fn threads() -> usize { current_num_threads() }\n";
        let flagged = check_one("crates/graph/src/x.rs", src, None, Mode::Workspace);
        assert_eq!(ids(&flagged), vec!["det-merge", "det-threads"]);
        let exempt = check_one("vendor/rayon/src/x.rs", src, None, Mode::Workspace);
        assert!(exempt.is_empty(), "{exempt:?}");
        let bench = check_one("crates/bench/src/x.rs", src, None, Mode::Workspace);
        assert!(bench.is_empty(), "{bench:?}");
    }

    #[test]
    fn span_known_flags_unknown_and_stale_but_not_fixture_entries() {
        let reg = SpanRegistry::parse(
            "crates/audit/span-names.txt",
            "graph.knn\nnever.used\narea.verb [fixture]\n",
        );
        let src = "pub fn f() { let _ = span(\"graph.knn\"); let _ = span(\"brand.new\"); }\n";
        let f = check_one("crates/core/src/x.rs", src, Some(&reg), Mode::Workspace);
        assert_eq!(ids(&f), vec!["span-known", "span-known"]);
        assert!(f[0].what.contains("brand.new"));
        assert!(f[1].what.contains("never.used"));
        // self-test mode skips the stale direction
        let st = check_one("crates/core/src/x.rs", src, Some(&reg), Mode::SelfTest);
        assert_eq!(ids(&st), vec!["span-known"]);
    }
}
