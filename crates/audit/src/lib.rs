//! `graphner-audit` — the workspace invariant checker.
//!
//! A zero-dependency static-analysis pass with its own lightweight Rust
//! lexer ([`lexer`]) that walks every workspace `src/` file and
//! enforces project policy clippy cannot express ([`rules`]), with a
//! reason-annotated escape hatch for the few justified exceptions
//! ([`allowlist`]). It is the static counterpart of the runtime
//! numeric guards in `graphner_core::check`: the audit proves the code
//! *cannot* panic, print, time, or iterate nondeterministically where
//! policy forbids it, while the guards prove the numbers flowing
//! through the pipeline stay on the probability simplex.
//!
//! Run it as `cargo run --release --bin audit -- --workspace` (a
//! required CI step), or `--self-test` to validate the lexer and rule
//! engine against fixture files with known violations.

pub mod allowlist;
pub mod hot;
pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod symgraph;
pub mod xrules;

use allowlist::{AllowEntry, AllowlistIssue};
use rules::{Finding, Rule, ALL_RULES};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use symbols::FileIndex;
use xrules::{Mode, SpanRegistry};

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "audit-allowlist.txt";

/// Workspace-relative path of the known span-name registry consumed by
/// the `span-known` rule.
pub const SPAN_NAMES_FILE: &str = "crates/audit/span-names.txt";

/// Fixture header directive: pretend the file lives at this workspace
/// path when deriving rule scopes (`//@ scan-as: crates/core/src/x.rs`).
pub const SCAN_AS: &str = "//@ scan-as:";

/// Marker comment declaring an expected finding on its line
/// (`//~ rule-id`, repeatable on one line).
pub const EXPECT_MARKER: &str = "//~";

/// One `unsafe` site in the workspace inventory (`--unsafe-report`).
#[derive(Clone, Debug)]
pub struct UnsafeRecord {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Site kind label (`unsafe-block`, `unsafe-fn`, …).
    pub kind: &'static str,
    /// Short source context.
    pub context: String,
    /// Innermost enclosing function, if any.
    pub enclosing_fn: Option<String>,
    /// The `// SAFETY:` justification, if present.
    pub safety: Option<String>,
}

/// Outcome of one audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allowlist entry (finding, entry index
    /// into the parsed allowlist).
    pub suppressed: Vec<(Finding, AllowEntry)>,
    /// Structural or staleness problems with the allowlist itself.
    pub allowlist_issues: Vec<AllowlistIssue>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Every `unsafe` site encountered, justified or not, in scan
    /// order — the `--unsafe-report` inventory.
    pub unsafe_sites: Vec<UnsafeRecord>,
    /// The hot-path inventory (`--hot-report`): hot-reachable functions
    /// with their static alloc-site counts, plus the span mapping the
    /// perfsuite reconciliation consumes.
    pub hot: hot::HotInventory,
}

impl Report {
    /// Whether the run passes (no findings, clean allowlist).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.allowlist_issues.is_empty()
    }

    /// Count of surviving findings for `rule`.
    pub fn count_for(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Publish the run to the global `graphner-obs` metrics registry:
    /// `audit.findings` (total), `audit.rule.<id>` per rule,
    /// `audit.files_scanned`, `audit.allowlisted`, and
    /// `audit.allowlist_issues`.
    pub fn publish_metrics(&self) {
        graphner_obs::counter("audit.findings").add(self.findings.len() as u64);
        for rule in ALL_RULES {
            graphner_obs::counter(&format!("audit.rule.{}", rule.id()))
                .add(self.count_for(rule) as u64);
        }
        graphner_obs::counter("audit.files_scanned").add(self.files_scanned as u64);
        graphner_obs::counter("audit.allowlisted").add(self.suppressed.len() as u64);
        graphner_obs::counter("audit.allowlist_issues").add(self.allowlist_issues.len() as u64);
        graphner_obs::counter("audit.unsafe_sites").add(self.unsafe_sites.len() as u64);
        graphner_obs::counter("audit.hot_fns").add(self.hot.fns.len() as u64);
    }

    /// Render the `unsafe` inventory as the `--unsafe-report` text: one
    /// block per site — location, kind, enclosing function, context and
    /// the (possibly multi-line) justification.
    pub fn render_unsafe_report(&self) -> String {
        let mut out = String::new();
        let justified = self.unsafe_sites.iter().filter(|s| s.safety.is_some()).count();
        out.push_str(&format!(
            "# unsafe inventory: {} sites, {} justified, {} missing\n",
            self.unsafe_sites.len(),
            justified,
            self.unsafe_sites.len() - justified
        ));
        for site in &self.unsafe_sites {
            out.push_str(&format!(
                "\n{}:{} [{}] {}\n",
                site.path, site.line, site.kind, site.context
            ));
            if let Some(f) = &site.enclosing_fn {
                out.push_str(&format!("  in: fn {f}\n"));
            }
            match &site.safety {
                // comment bodies already carry their `SAFETY:` prefix
                Some(text) => {
                    for line in text.lines() {
                        out.push_str(&format!("  | {line}\n"));
                    }
                }
                None => out.push_str("  ! missing // SAFETY: justification\n"),
            }
        }
        out
    }
}

/// Errors from walking or reading the tree.
#[derive(Debug)]
pub enum AuditError {
    /// An I/O failure on `path`.
    Io { path: PathBuf, source: std::io::Error },
    /// A fixture file without the mandatory `//@ scan-as:` header.
    MissingScanAs { path: PathBuf },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io { path, source } => {
                write!(f, "audit: io error on {}: {source}", path.display())
            }
            AuditError::MissingScanAs { path } => {
                write!(f, "audit: fixture {} lacks a `{SCAN_AS} <path>` header", path.display())
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Every `.rs` file under the workspace's source trees: the root
/// package `src/` plus each `crates/*/src/`, plus the vendored
/// `vendor/rayon/src/` worker pool (real concurrency code deserves the
/// strictest policy), recursively, in sorted order. The target tree
/// and the remaining vendor stubs are never entered.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
            .into_iter()
            .map(|entry| entry.join("src"))
            .filter(|p| p.is_dir())
            .collect();
        roots.append(&mut members);
    }
    let rayon_src = root.join("vendor").join("rayon").join("src");
    if rayon_src.is_dir() {
        roots.push(rayon_src);
    }
    for src in roots {
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|source| AuditError::Io { path: dir.to_path_buf(), source })?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| AuditError::Io { path: dir.to_path_buf(), source })?;
        paths.push(entry.path());
    }
    paths.sort();
    Ok(paths)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read_source(path: &Path) -> Result<String, AuditError> {
    std::fs::read_to_string(path)
        .map_err(|source| AuditError::Io { path: path.to_path_buf(), source })
}

/// The path of `file` relative to `root`, `/`-separated.
fn relative(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The path rules scope a source under: the `//@ scan-as:` header for
/// fixtures, the real relative path otherwise.
fn scan_path_of(source: &str, rel: &str) -> String {
    source
        .lines()
        .next()
        .and_then(|l| l.trim().strip_prefix(SCAN_AS))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| rel.to_string())
}

/// Scan one file (pass 1 only). If its first line carries a
/// `//@ scan-as:` header (fixtures), rules are scoped as if it lived
/// at that path; findings still report the real relative path.
pub fn scan_file(root: &Path, file: &Path) -> Result<(Vec<Finding>, String), AuditError> {
    let (findings, _, source) = analyze_file(root, file)?;
    Ok((findings, source))
}

/// Scan **and index** one file: pass-1 findings plus the pass-1 symbol
/// index pass 2 consumes. Scope derives from the scan path; both
/// findings and the index report the real relative path.
pub fn analyze_file(
    root: &Path,
    file: &Path,
) -> Result<(Vec<Finding>, FileIndex, String), AuditError> {
    let source = read_source(file)?;
    let rel = relative(root, file);
    let scan_path = scan_path_of(&source, &rel);
    let mut findings = rules::check_file(&scan_path, &source);
    for f in &mut findings {
        f.path = rel.clone();
    }
    let mut index = symbols::index_file(&scan_path, &source);
    index.path = rel;
    Ok((findings, index, source))
}

/// Load the span-name registry under `root`, if present. Scratch trees
/// without one skip the `span-known` rule entirely.
pub fn load_span_registry(root: &Path) -> Result<Option<SpanRegistry>, AuditError> {
    let path = root.join(SPAN_NAMES_FILE);
    if !path.is_file() {
        return Ok(None);
    }
    Ok(Some(SpanRegistry::parse(SPAN_NAMES_FILE, &read_source(&path)?)))
}

/// Run the two-pass audit over `files` (workspace-relative reporting
/// against `root`), applying the allowlist at `root/audit-allowlist.txt`
/// if present.
///
/// Pass 1 lints each file and builds its symbol index; pass 2 links
/// the indexes and runs the cross-file rules. Both passes share one
/// allowlist application, so an entry is stale only if *neither* pass
/// matched it. `no-unwrap` findings the allowlist suppressed are
/// documented panic contracts: they are handed to the reachability
/// walk as inactive sources, so accepting a site does not re-flag
/// every transitive caller under `panic-path`.
pub fn run(root: &Path, files: &[PathBuf]) -> Result<Report, AuditError> {
    let mut raw_findings = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut indexes: Vec<FileIndex> = Vec::new();
    for file in files {
        let (findings, index, source) = analyze_file(root, file)?;
        sources.push((relative(root, file), source));
        indexes.push(index);
        raw_findings.extend(findings);
    }

    let allowlist_path = root.join(ALLOWLIST_FILE);
    let (entries, mut issues) = if allowlist_path.is_file() {
        allowlist::parse(&read_source(&allowlist_path)?)
    } else {
        (Vec::new(), Vec::new())
    };

    let line_of = |f: &Finding| {
        sources
            .iter()
            .find(|(p, _)| *p == f.path)
            .and_then(|(_, src)| src.lines().nth(f.line.saturating_sub(1)))
            .map(str::to_string)
    };
    let mut used = vec![false; entries.len()];
    let (kept1, suppressed1) = allowlist::apply_tracked(raw_findings, &entries, line_of, &mut used);

    let suppressed_sources: BTreeSet<(String, usize)> = suppressed1
        .iter()
        .filter(|(f, _)| f.rule == Rule::NoUnwrap)
        .map(|(f, _)| (f.path.clone(), f.line))
        .collect();
    let registry = load_span_registry(root)?;
    let pass2 = xrules::check(&indexes, registry.as_ref(), &suppressed_sources, Mode::Workspace);
    let (kept2, suppressed2) = allowlist::apply_tracked(pass2, &entries, line_of, &mut used);
    issues.extend(allowlist::stale_entries(&entries, &used));

    let mut findings = kept1;
    findings.extend(kept2);
    let mut suppressed = suppressed1;
    suppressed.extend(suppressed2);
    let unsafe_sites = indexes
        .iter()
        .flat_map(|ix| {
            ix.unsafe_sites.iter().map(|s| UnsafeRecord {
                path: ix.path.clone(),
                line: s.line,
                kind: s.kind.label(),
                context: s.context.clone(),
                enclosing_fn: s.enclosing_fn.clone(),
                safety: s.safety.clone(),
            })
        })
        .collect();

    Ok(Report {
        findings,
        suppressed: suppressed.into_iter().map(|(f, e)| (f, e.clone())).collect(),
        allowlist_issues: issues,
        files_scanned: files.len(),
        unsafe_sites,
        hot: hot::inventory(&indexes),
    })
}

/// One fixture's self-test outcome.
#[derive(Debug)]
pub struct SelfTestFailure {
    pub path: String,
    /// Findings the rules produced but no marker expected.
    pub unexpected: Vec<Finding>,
    /// (rule, line) pairs a marker expected but the rules missed.
    pub missing: Vec<(Rule, usize)>,
}

/// Run the rule engine over fixture files and compare against their
/// inline `//~ rule-id` markers. Returns `(fixture count, total
/// expected findings, failures)`; the self-test passes when `failures`
/// is empty **and** at least one finding was expected — a fixture set
/// that expects nothing proves nothing.
///
/// Both passes run: per-file rules plus the cross-file rules over each
/// fixture's own (single-file) symbol graph, with the real span-name
/// registry loaded so `span-known` fixtures can exercise membership.
/// The registry's workspace stale check is skipped — one fixture can
/// never cover every registered span.
pub fn self_test(
    root: &Path,
    fixtures: &[PathBuf],
) -> Result<(usize, usize, Vec<SelfTestFailure>), AuditError> {
    let registry = load_span_registry(root)?;
    let mut failures = Vec::new();
    let mut total_expected = 0usize;
    for file in fixtures {
        let (mut found, index, source) = analyze_file(root, file)?;
        if !source.trim_start().starts_with(SCAN_AS) {
            return Err(AuditError::MissingScanAs { path: file.clone() });
        }
        found.extend(xrules::check(
            std::slice::from_ref(&index),
            registry.as_ref(),
            &BTreeSet::new(),
            Mode::SelfTest,
        ));
        let mut expected: Vec<(Rule, usize)> = Vec::new();
        for (idx, line) in source.lines().enumerate() {
            let mut rest = line;
            while let Some(pos) = rest.find(EXPECT_MARKER) {
                let after = &rest[pos + EXPECT_MARKER.len()..];
                let id: String = after
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                    .collect();
                if let Some(rule) = Rule::from_id(&id) {
                    expected.push((rule, idx + 1));
                }
                rest = after;
            }
        }
        total_expected += expected.len();

        let mut got: Vec<(Rule, usize)> = found.iter().map(|f| (f.rule, f.line)).collect();
        let mut missing = Vec::new();
        for want in &expected {
            match got.iter().position(|g| g == want) {
                Some(i) => {
                    got.remove(i);
                }
                None => missing.push(*want),
            }
        }
        let unexpected: Vec<Finding> =
            found.into_iter().filter(|f| got.contains(&(f.rule, f.line))).collect();
        if !missing.is_empty() || !unexpected.is_empty() {
            failures.push(SelfTestFailure { path: relative(root, file), unexpected, missing });
        }
    }
    Ok((fixtures.len(), total_expected, failures))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, contents: &str) -> PathBuf {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphner-audit-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn workspace_walk_finds_root_and_crate_sources_sorted() {
        let root = temp_root("walk");
        write(&root, "src/lib.rs", "fn a() {}");
        write(&root, "crates/zz/src/lib.rs", "fn z() {}");
        write(&root, "crates/aa/src/deep/x.rs", "fn x() {}");
        write(&root, "crates/aa/src/lib.rs", "fn y() {}");
        write(&root, "crates/aa/notes.md", "not rust");
        let files = workspace_sources(&root).unwrap();
        let rels: Vec<String> = files.iter().map(|f| relative(&root, f)).collect();
        assert_eq!(
            rels,
            vec![
                "crates/aa/src/deep/x.rs",
                "crates/aa/src/lib.rs",
                "crates/zz/src/lib.rs",
                "src/lib.rs"
            ]
        );
    }

    #[test]
    fn run_applies_allowlist_and_reports_relative_paths() {
        let root = temp_root("run");
        let f1 = write(&root, "crates/text/src/a.rs", "fn f() { x.unwrap(); }\n");
        let f2 = write(&root, "crates/text/src/b.rs", "fn g() { y.unwrap(); }\n");
        write(
            &root,
            ALLOWLIST_FILE,
            "no-unwrap | crates/text/src/b.rs | y.unwrap() | documented contract\n",
        );
        let report = run(&root, &[f1, f2]).unwrap();
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].path, "crates/text/src/a.rs");
        assert_eq!(report.suppressed.len(), 1);
        assert!(report.allowlist_issues.is_empty());
        assert!(!report.is_clean());
    }

    #[test]
    fn stale_allowlist_entry_fails_the_run() {
        let root = temp_root("stale");
        let f1 = write(&root, "crates/text/src/a.rs", "fn f() {}\n");
        write(&root, ALLOWLIST_FILE, "no-unwrap | crates/text/src/a.rs | gone | obsolete\n");
        let report = run(&root, &[f1]).unwrap();
        assert!(report.findings.is_empty());
        assert_eq!(report.allowlist_issues.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn scan_as_header_rescopes_fixture_rules() {
        let root = temp_root("scanas");
        // real path is under fixtures/ (bench-style exempt), but the
        // header scopes it as library code in a result-bearing crate
        let f = write(
            &root,
            "crates/audit/fixtures/v.rs",
            "//@ scan-as: crates/core/src/fixture.rs\nfn f() { x.unwrap(); }\n",
        );
        let (findings, _) = scan_file(&root, &f).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/audit/fixtures/v.rs");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn self_test_matches_markers_exactly() {
        let root = temp_root("selftest");
        let good = write(
            &root,
            "crates/audit/fixtures/good.rs",
            "//@ scan-as: crates/core/src/f.rs\nfn f() { x.unwrap(); } //~ no-unwrap\n",
        );
        let (n, expected, failures) = self_test(&root, std::slice::from_ref(&good)).unwrap();
        assert_eq!((n, expected), (1, 1));
        assert!(failures.is_empty());

        let bad = write(
            &root,
            "crates/audit/fixtures/bad.rs",
            "//@ scan-as: crates/core/src/f.rs\nfn f() { x.unwrap(); }\nfn g() {} //~ no-print\n",
        );
        let (_, _, failures) = self_test(&root, &[bad]).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].unexpected.len(), 1); // the unmarked unwrap
        assert_eq!(failures[0].missing, vec![(Rule::NoPrint, 3)]);
    }

    #[test]
    fn run_executes_pass2_rules_and_collects_unsafe_inventory() {
        let root = temp_root("pass2");
        let f1 = write(
            &root,
            "crates/graph/src/a.rs",
            "unsafe fn bare(p: *const u32) -> u32 { *p }\n\
             // SAFETY: `p` is valid per the caller contract.\n\
             unsafe fn fine(p: *const u32) -> u32 { *p }\n",
        );
        let report = run(&root, &[f1]).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::UnsafeSafety);
        assert_eq!(report.findings[0].path, "crates/graph/src/a.rs");
        assert_eq!(report.unsafe_sites.len(), 2);
        assert!(report.unsafe_sites[0].safety.is_none());
        assert!(report.unsafe_sites[1].safety.is_some());
        let rendered = report.render_unsafe_report();
        assert!(rendered.contains("2 sites, 1 justified, 1 missing"), "{rendered}");
        assert!(rendered.contains("crates/graph/src/a.rs:1"), "{rendered}");
        assert!(rendered.contains("! missing // SAFETY: justification"), "{rendered}");
    }

    #[test]
    fn allowlisted_contract_suppresses_panic_path_for_callers() {
        let root = temp_root("contract");
        let f1 = write(
            &root,
            "crates/graph/src/a.rs",
            "pub fn caller(x: Option<u32>) -> u32 { documented(x) }\n\
             pub fn documented(x: Option<u32>) -> u32 { x.expect(\"always set\") }\n",
        );
        // without the allowlist: the direct site is a finding and the
        // caller is flagged transitively
        let report = run(&root, std::slice::from_ref(&f1)).unwrap();
        let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::NoUnwrap), "{rules:?}");
        assert!(rules.contains(&Rule::PanicPath), "{rules:?}");
        // with it: the documented contract silences both tiers and the
        // entry is counted used (not stale)
        write(
            &root,
            ALLOWLIST_FILE,
            "no-unwrap | crates/graph/src/a.rs | x.expect(\"always set\") | contract: field is mandatory\n",
        );
        let report = run(&root, &[f1]).unwrap();
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.allowlist_issues.is_empty(), "{:?}", report.allowlist_issues);
        assert_eq!(report.suppressed.len(), 1);
    }

    #[test]
    fn pass2_findings_can_be_allowlisted_and_keep_entries_fresh() {
        let root = temp_root("pass2allow");
        let f1 = write(
            &root,
            "crates/graph/src/a.rs",
            "pub fn split(len: usize) -> usize { len / current_num_threads() }\n",
        );
        write(
            &root,
            ALLOWLIST_FILE,
            "det-threads | crates/graph/src/a.rs | current_num_threads() | diagnostics only, result unused\n",
        );
        let report = run(&root, &[f1]).unwrap();
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.allowlist_issues.is_empty(), "{:?}", report.allowlist_issues);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].0.rule, Rule::DetThreads);
    }

    #[test]
    fn self_test_requires_scan_as_header() {
        let root = temp_root("noheader");
        let f = write(&root, "crates/audit/fixtures/h.rs", "fn f() {}\n");
        assert!(matches!(self_test(&root, &[f]), Err(AuditError::MissingScanAs { .. })));
    }
}
