//! `graphner-audit` — the workspace invariant checker.
//!
//! A zero-dependency static-analysis pass with its own lightweight Rust
//! lexer ([`lexer`]) that walks every workspace `src/` file and
//! enforces project policy clippy cannot express ([`rules`]), with a
//! reason-annotated escape hatch for the few justified exceptions
//! ([`allowlist`]). It is the static counterpart of the runtime
//! numeric guards in `graphner_core::check`: the audit proves the code
//! *cannot* panic, print, time, or iterate nondeterministically where
//! policy forbids it, while the guards prove the numbers flowing
//! through the pipeline stay on the probability simplex.
//!
//! Run it as `cargo run --release --bin audit -- --workspace` (a
//! required CI step), or `--self-test` to validate the lexer and rule
//! engine against fixture files with known violations.

pub mod allowlist;
pub mod lexer;
pub mod rules;

use allowlist::{AllowEntry, AllowlistIssue};
use rules::{Finding, Rule, ALL_RULES};
use std::path::{Path, PathBuf};

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "audit-allowlist.txt";

/// Fixture header directive: pretend the file lives at this workspace
/// path when deriving rule scopes (`//@ scan-as: crates/core/src/x.rs`).
pub const SCAN_AS: &str = "//@ scan-as:";

/// Marker comment declaring an expected finding on its line
/// (`//~ rule-id`, repeatable on one line).
pub const EXPECT_MARKER: &str = "//~";

/// Outcome of one audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allowlist entry (finding, entry index
    /// into the parsed allowlist).
    pub suppressed: Vec<(Finding, AllowEntry)>,
    /// Structural or staleness problems with the allowlist itself.
    pub allowlist_issues: Vec<AllowlistIssue>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run passes (no findings, clean allowlist).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.allowlist_issues.is_empty()
    }

    /// Count of surviving findings for `rule`.
    pub fn count_for(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Publish the run to the global `graphner-obs` metrics registry:
    /// `audit.findings` (total), `audit.rule.<id>` per rule,
    /// `audit.files_scanned`, `audit.allowlisted`, and
    /// `audit.allowlist_issues`.
    pub fn publish_metrics(&self) {
        graphner_obs::counter("audit.findings").add(self.findings.len() as u64);
        for rule in ALL_RULES {
            graphner_obs::counter(&format!("audit.rule.{}", rule.id()))
                .add(self.count_for(rule) as u64);
        }
        graphner_obs::counter("audit.files_scanned").add(self.files_scanned as u64);
        graphner_obs::counter("audit.allowlisted").add(self.suppressed.len() as u64);
        graphner_obs::counter("audit.allowlist_issues").add(self.allowlist_issues.len() as u64);
    }
}

/// Errors from walking or reading the tree.
#[derive(Debug)]
pub enum AuditError {
    /// An I/O failure on `path`.
    Io { path: PathBuf, source: std::io::Error },
    /// A fixture file without the mandatory `//@ scan-as:` header.
    MissingScanAs { path: PathBuf },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io { path, source } => {
                write!(f, "audit: io error on {}: {source}", path.display())
            }
            AuditError::MissingScanAs { path } => {
                write!(f, "audit: fixture {} lacks a `{SCAN_AS} <path>` header", path.display())
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Every `.rs` file under the workspace's source trees: the root
/// package `src/` plus each `crates/*/src/`, plus the vendored
/// `vendor/rayon/src/` worker pool (real concurrency code deserves the
/// strictest policy), recursively, in sorted order. The target tree
/// and the remaining vendor stubs are never entered.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
            .into_iter()
            .map(|entry| entry.join("src"))
            .filter(|p| p.is_dir())
            .collect();
        roots.append(&mut members);
    }
    let rayon_src = root.join("vendor").join("rayon").join("src");
    if rayon_src.is_dir() {
        roots.push(rayon_src);
    }
    for src in roots {
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|source| AuditError::Io { path: dir.to_path_buf(), source })?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| AuditError::Io { path: dir.to_path_buf(), source })?;
        paths.push(entry.path());
    }
    paths.sort();
    Ok(paths)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read_source(path: &Path) -> Result<String, AuditError> {
    std::fs::read_to_string(path)
        .map_err(|source| AuditError::Io { path: path.to_path_buf(), source })
}

/// The path of `file` relative to `root`, `/`-separated.
fn relative(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scan one file. If its first line carries a `//@ scan-as:` header
/// (fixtures), rules are scoped as if it lived at that path; findings
/// still report the real relative path.
pub fn scan_file(root: &Path, file: &Path) -> Result<(Vec<Finding>, String), AuditError> {
    let source = read_source(file)?;
    let rel = relative(root, file);
    let scan_path = source
        .lines()
        .next()
        .and_then(|l| l.trim().strip_prefix(SCAN_AS))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| rel.clone());
    let mut findings = rules::check_file(&scan_path, &source);
    for f in &mut findings {
        f.path = rel.clone();
    }
    Ok((findings, source))
}

/// Run the audit over `files` (workspace-relative reporting against
/// `root`), applying the allowlist at `root/audit-allowlist.txt` if
/// present.
pub fn run(root: &Path, files: &[PathBuf]) -> Result<Report, AuditError> {
    let mut raw_findings = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for file in files {
        let (findings, source) = scan_file(root, file)?;
        sources.push((relative(root, file), source));
        raw_findings.extend(findings);
    }

    let allowlist_path = root.join(ALLOWLIST_FILE);
    let (entries, mut issues) = if allowlist_path.is_file() {
        allowlist::parse(&read_source(&allowlist_path)?)
    } else {
        (Vec::new(), Vec::new())
    };

    let line_of = |f: &Finding| {
        sources
            .iter()
            .find(|(p, _)| *p == f.path)
            .and_then(|(_, src)| src.lines().nth(f.line.saturating_sub(1)))
            .map(str::to_string)
    };
    let (kept, suppressed, stale) = allowlist::apply(raw_findings, &entries, line_of);
    issues.extend(stale);

    Ok(Report {
        findings: kept,
        suppressed: suppressed.into_iter().map(|(f, e)| (f, e.clone())).collect(),
        allowlist_issues: issues,
        files_scanned: files.len(),
    })
}

/// One fixture's self-test outcome.
#[derive(Debug)]
pub struct SelfTestFailure {
    pub path: String,
    /// Findings the rules produced but no marker expected.
    pub unexpected: Vec<Finding>,
    /// (rule, line) pairs a marker expected but the rules missed.
    pub missing: Vec<(Rule, usize)>,
}

/// Run the rule engine over fixture files and compare against their
/// inline `//~ rule-id` markers. Returns `(fixture count, total
/// expected findings, failures)`; the self-test passes when `failures`
/// is empty **and** at least one finding was expected — a fixture set
/// that expects nothing proves nothing.
pub fn self_test(
    root: &Path,
    fixtures: &[PathBuf],
) -> Result<(usize, usize, Vec<SelfTestFailure>), AuditError> {
    let mut failures = Vec::new();
    let mut total_expected = 0usize;
    for file in fixtures {
        let (found, source) = scan_file(root, file)?;
        if !source.trim_start().starts_with(SCAN_AS) {
            return Err(AuditError::MissingScanAs { path: file.clone() });
        }
        let mut expected: Vec<(Rule, usize)> = Vec::new();
        for (idx, line) in source.lines().enumerate() {
            let mut rest = line;
            while let Some(pos) = rest.find(EXPECT_MARKER) {
                let after = &rest[pos + EXPECT_MARKER.len()..];
                let id: String = after
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                    .collect();
                if let Some(rule) = Rule::from_id(&id) {
                    expected.push((rule, idx + 1));
                }
                rest = after;
            }
        }
        total_expected += expected.len();

        let mut got: Vec<(Rule, usize)> = found.iter().map(|f| (f.rule, f.line)).collect();
        let mut missing = Vec::new();
        for want in &expected {
            match got.iter().position(|g| g == want) {
                Some(i) => {
                    got.remove(i);
                }
                None => missing.push(*want),
            }
        }
        let unexpected: Vec<Finding> =
            found.into_iter().filter(|f| got.contains(&(f.rule, f.line))).collect();
        if !missing.is_empty() || !unexpected.is_empty() {
            failures.push(SelfTestFailure { path: relative(root, file), unexpected, missing });
        }
    }
    Ok((fixtures.len(), total_expected, failures))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, contents: &str) -> PathBuf {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphner-audit-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn workspace_walk_finds_root_and_crate_sources_sorted() {
        let root = temp_root("walk");
        write(&root, "src/lib.rs", "fn a() {}");
        write(&root, "crates/zz/src/lib.rs", "fn z() {}");
        write(&root, "crates/aa/src/deep/x.rs", "fn x() {}");
        write(&root, "crates/aa/src/lib.rs", "fn y() {}");
        write(&root, "crates/aa/notes.md", "not rust");
        let files = workspace_sources(&root).unwrap();
        let rels: Vec<String> = files.iter().map(|f| relative(&root, f)).collect();
        assert_eq!(
            rels,
            vec![
                "crates/aa/src/deep/x.rs",
                "crates/aa/src/lib.rs",
                "crates/zz/src/lib.rs",
                "src/lib.rs"
            ]
        );
    }

    #[test]
    fn run_applies_allowlist_and_reports_relative_paths() {
        let root = temp_root("run");
        let f1 = write(&root, "crates/text/src/a.rs", "fn f() { x.unwrap(); }\n");
        let f2 = write(&root, "crates/text/src/b.rs", "fn g() { y.unwrap(); }\n");
        write(
            &root,
            ALLOWLIST_FILE,
            "no-unwrap | crates/text/src/b.rs | y.unwrap() | documented contract\n",
        );
        let report = run(&root, &[f1, f2]).unwrap();
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].path, "crates/text/src/a.rs");
        assert_eq!(report.suppressed.len(), 1);
        assert!(report.allowlist_issues.is_empty());
        assert!(!report.is_clean());
    }

    #[test]
    fn stale_allowlist_entry_fails_the_run() {
        let root = temp_root("stale");
        let f1 = write(&root, "crates/text/src/a.rs", "fn f() {}\n");
        write(&root, ALLOWLIST_FILE, "no-unwrap | crates/text/src/a.rs | gone | obsolete\n");
        let report = run(&root, &[f1]).unwrap();
        assert!(report.findings.is_empty());
        assert_eq!(report.allowlist_issues.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn scan_as_header_rescopes_fixture_rules() {
        let root = temp_root("scanas");
        // real path is under fixtures/ (bench-style exempt), but the
        // header scopes it as library code in a result-bearing crate
        let f = write(
            &root,
            "crates/audit/fixtures/v.rs",
            "//@ scan-as: crates/core/src/fixture.rs\nfn f() { x.unwrap(); }\n",
        );
        let (findings, _) = scan_file(&root, &f).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/audit/fixtures/v.rs");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn self_test_matches_markers_exactly() {
        let root = temp_root("selftest");
        let good = write(
            &root,
            "crates/audit/fixtures/good.rs",
            "//@ scan-as: crates/core/src/f.rs\nfn f() { x.unwrap(); } //~ no-unwrap\n",
        );
        let (n, expected, failures) = self_test(&root, std::slice::from_ref(&good)).unwrap();
        assert_eq!((n, expected), (1, 1));
        assert!(failures.is_empty());

        let bad = write(
            &root,
            "crates/audit/fixtures/bad.rs",
            "//@ scan-as: crates/core/src/f.rs\nfn f() { x.unwrap(); }\nfn g() {} //~ no-print\n",
        );
        let (_, _, failures) = self_test(&root, &[bad]).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].unexpected.len(), 1); // the unmarked unwrap
        assert_eq!(failures[0].missing, vec![(Rule::NoPrint, 3)]);
    }

    #[test]
    fn self_test_requires_scan_as_header() {
        let root = temp_root("noheader");
        let f = write(&root, "crates/audit/fixtures/h.rs", "fn f() {}\n");
        assert!(matches!(self_test(&root, &[f]), Err(AuditError::MissingScanAs { .. })));
    }
}
