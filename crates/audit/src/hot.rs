//! The hot-path rule families and the `--hot-report` inventory.
//!
//! A `// hot:` annotation directly above a library `fn` marks it a
//! hot-path *root* (the propagation inner loops, kNN scoring, the CRF
//! forward-backward lattice, Viterbi decode, `tag_batch`). A forward
//! fixpoint over the linked [`SymbolGraph`] — root → resolved callees —
//! computes the **hot-reachable set**, and three rule families run only
//! inside it:
//!
//! * `hot-alloc` — allocation call sites (`Vec::new`, `vec!`, `.push`,
//!   `.collect`, `format!`, `.to_string`, `.clone`, `Box::new`) must
//!   carry a reason-bearing `// alloc:` contract in their statement.
//! * `hot-cast` — `as` casts to a type narrower than the `usize`/`f64`
//!   arithmetic domain (`u8`…`i32`, `f32`) must carry a `// cast:`
//!   contract; prefer `try_from` or a typed guard.
//! * `hot-overflow` — unchecked binary `+`/`*` inside an index
//!   expression needs a `// bound:` contract (statement-level, or
//!   fn-level directly above the `fn`) or a `checked_*`/`div_ceil`
//!   guard in the expression itself.
//!
//! The walk inherits the resolver's conservatism: ambiguous and
//! std-shadowed callee names never resolve, so the hot set — and with
//! it every finding — can only under-report. The static↔runtime
//! reconciliation closes that gap: the inventory's `span` section maps
//! each span minted inside (or calling into) the hot set to its
//! statically visible allocation-site count, and perfsuite
//! cross-references those counts against the measured per-span
//! `mem.net_bytes`, failing when a span with zero static sites
//! allocates above threshold at runtime (a hidden vendored/closure
//! allocation the lexical rules cannot see).

use crate::rules::{Finding, Rule};
use crate::symbols::FileIndex;
use crate::symgraph::{FnId, HotReach, SymbolGraph};

/// One hot-reachable function in the `--hot-report` inventory.
#[derive(Clone, Debug)]
pub struct HotFnRecord {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Function name.
    pub name: String,
    /// Number of allocation call sites in the body (contracted or not).
    pub alloc_sites: usize,
    /// The `// hot:` reason for roots, `None` for reached functions.
    pub root_reason: Option<String>,
    /// Rendered call path from a root down to this function.
    pub via: String,
}

/// One span whose dynamic extent enters the hot set.
#[derive(Clone, Debug)]
pub struct HotSpanRecord {
    /// The span name literal.
    pub name: String,
    /// Workspace-relative path of the minting site.
    pub path: String,
    /// 1-based line of the minting site.
    pub line: usize,
    /// Total allocation sites statically visible from the minting
    /// function over resolved call edges (its own body included).
    pub static_alloc_sites: usize,
}

/// The `--hot-report` payload: hot functions plus the span mapping the
/// perfsuite reconciliation consumes.
#[derive(Clone, Debug, Default)]
pub struct HotInventory {
    /// Hot-reachable functions, in (file, fn) order.
    pub fns: Vec<HotFnRecord>,
    /// Hot spans, in (file, span) order.
    pub spans: Vec<HotSpanRecord>,
}

impl HotInventory {
    /// Render the report text. Line grammar (consumed by perfsuite —
    /// keep stable): `root <path>:<line> <name> alloc_sites=<n> — <reason>`,
    /// `fn <path>:<line> <name> alloc_sites=<n> via <a -> b -> c>`,
    /// `span <name> <path>:<line> static_alloc_sites=<n>`.
    pub fn render(&self) -> String {
        let roots = self.fns.iter().filter(|f| f.root_reason.is_some()).count();
        let total_allocs: usize = self.fns.iter().map(|f| f.alloc_sites).sum();
        let mut out = format!(
            "# hot-path inventory: {} roots, {} functions, {} alloc sites, {} spans\n",
            roots,
            self.fns.len(),
            total_allocs,
            self.spans.len()
        );
        for f in &self.fns {
            match &f.root_reason {
                Some(reason) => out.push_str(&format!(
                    "root {}:{} {} alloc_sites={} — {}\n",
                    f.path, f.line, f.name, f.alloc_sites, reason
                )),
                None => out.push_str(&format!(
                    "fn {}:{} {} alloc_sites={} via {}\n",
                    f.path, f.line, f.name, f.alloc_sites, f.via
                )),
            }
        }
        for s in &self.spans {
            out.push_str(&format!(
                "span {} {}:{} static_alloc_sites={}\n",
                s.name, s.path, s.line, s.static_alloc_sites
            ));
        }
        out
    }
}

/// Run the three hot-path families over the hot-reachable set.
pub(crate) fn check(files: &[FileIndex], graph: &SymbolGraph<'_>, findings: &mut Vec<Finding>) {
    let reach = graph.hot_reachability();
    for &(fi, gi) in reach.keys() {
        let file = &files[fi];
        let f = &file.fns[gi];
        if f.is_test {
            continue;
        }
        for site in &f.alloc_sites {
            if site.annotation.is_none() {
                findings.push(Finding {
                    rule: Rule::HotAlloc,
                    path: file.path.clone(),
                    line: site.line,
                    what: format!(
                        "{} in hot fn {} without an // alloc: contract",
                        site.what, f.name
                    ),
                });
            }
        }
        for site in &f.cast_sites {
            if site.annotation.is_none() {
                findings.push(Finding {
                    rule: Rule::HotCast,
                    path: file.path.clone(),
                    line: site.line,
                    what: format!(
                        "lossy `{}` in hot fn {} — use try_from/a typed guard or add a // cast: contract",
                        site.what, f.name
                    ),
                });
            }
        }
        for site in &f.arith_sites {
            if site.annotation.is_none() && f.bound.is_none() {
                findings.push(Finding {
                    rule: Rule::HotOverflow,
                    path: file.path.clone(),
                    line: site.line,
                    what: format!(
                        "unchecked index arithmetic `{}` in hot fn {} without a // bound: contract",
                        site.what, f.name
                    ),
                });
            }
        }
    }
}

/// Build the `--hot-report` inventory over `files`.
pub fn inventory(files: &[FileIndex]) -> HotInventory {
    let graph = SymbolGraph::link(files);
    let reach = graph.hot_reachability();
    let mut fns = Vec::new();
    for (&(fi, gi), r) in &reach {
        let file = &files[fi];
        let f = &file.fns[gi];
        fns.push(HotFnRecord {
            path: file.path.clone(),
            line: f.line,
            name: f.name.clone(),
            alloc_sites: f.alloc_sites.len(),
            root_reason: match r {
                HotReach::Root(reason) => Some(reason.clone()),
                HotReach::Via(_) => None,
            },
            via: graph.render_hot_path((fi, gi), &reach),
        });
    }
    let mut spans = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for span in &file.span_uses {
            if span.is_test {
                continue;
            }
            let Some(gi) = span.fn_index else { continue };
            let id: FnId = (fi, gi);
            let closure = graph.reachable_from(id);
            if !closure.iter().any(|t| reach.contains_key(t)) {
                continue;
            }
            let static_alloc_sites =
                closure.iter().map(|&(cf, cg)| files[cf].fns[cg].alloc_sites.len()).sum();
            spans.push(HotSpanRecord {
                name: span.name.clone(),
                path: file.path.clone(),
                line: span.line,
                static_alloc_sites,
            });
        }
    }
    HotInventory { fns, spans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::index_file;
    use crate::xrules::{check as xcheck, Mode};
    use std::collections::BTreeSet;

    fn findings_of(src: &str) -> Vec<(&'static str, usize)> {
        let files = vec![index_file("crates/graph/src/x.rs", src)];
        xcheck(&files, None, &BTreeSet::new(), Mode::Workspace)
            .into_iter()
            .map(|f| (f.rule.id(), f.line))
            .collect()
    }

    #[test]
    fn alloc_in_hot_fn_needs_contract() {
        let src = "\
// hot: inner loop\n\
pub fn kernel(xs: &[u32]) -> Vec<u32> {\n\
    let mut out = Vec::new();\n\
    for &x in xs {\n\
        out.push(x);\n\
    }\n\
    // alloc: one-shot result buffer, sized by the caller\n\
    let copy = xs.to_vec();\n\
    drop(copy);\n\
    out\n\
}\n\
pub fn cold(xs: &[u32]) -> Vec<u32> {\n\
    xs.to_vec()\n\
}\n";
        let found = findings_of(src);
        assert_eq!(found, vec![("hot-alloc", 3), ("hot-alloc", 5)]);
    }

    #[test]
    fn hot_set_extends_through_resolved_calls() {
        let src = "\
// hot: root\n\
pub fn root_fn(xs: &[u32]) { helper_fn(xs) }\n\
pub fn helper_fn(xs: &[u32]) { let mut v = Vec::new(); v.push(xs.len()); }\n";
        let found = findings_of(src);
        assert_eq!(found, vec![("hot-alloc", 3), ("hot-alloc", 3)]);
    }

    #[test]
    fn narrow_casts_flagged_widening_not() {
        let src = "\
// hot: scoring kernel\n\
pub fn score(sim: f64, j: usize, w: f32) -> (f32, u32, f64) {\n\
    let a = sim as f32;\n\
    // cast: vertex ids are < 2^32 by construction (MAX_EDGES)\n\
    let b = j as u32;\n\
    let c = w as f64;\n\
    (a, b, c)\n\
}\n";
        let found = findings_of(src);
        assert_eq!(found, vec![("hot-cast", 3)]);
    }

    #[test]
    fn index_arith_needs_bound_contract_or_guard() {
        let src = "\
// hot: lattice walk\n\
pub fn walk(node: &[f64], i: usize, s: usize, st: usize) -> f64 {\n\
    node[i * s + st]\n\
}\n\
// hot: lattice walk, contracted\n\
// bound: i < l and st < s with l*s == node.len(), so the product fits\n\
pub fn walk_bounded(node: &[f64], i: usize, s: usize, st: usize) -> f64 {\n\
    node[i * s + st] + node[i * s]\n\
}\n\
// hot: guarded walk\n\
pub fn walk_guarded(node: &[f64], i: usize, s: usize) -> f64 {\n\
    node[i.checked_mul(s).unwrap_or(0)]\n\
}\n";
        let found = findings_of(src);
        assert_eq!(found, vec![("hot-overflow", 3)]);
    }

    #[test]
    fn cold_functions_and_tests_are_exempt() {
        let src = "\
pub fn cold(xs: &[u32], i: usize, s: usize) -> u32 {\n\
    let v: Vec<u32> = xs.to_vec();\n\
    v[i * s]\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    // hot: annotations in test code do not seed\n\
    fn t(xs: &[u32]) { let _ = xs.to_vec(); }\n\
}\n";
        assert!(findings_of(src).is_empty());
    }

    #[test]
    fn inventory_lists_roots_reached_fns_and_spans() {
        let files = vec![index_file(
            "crates/graph/src/x.rs",
            "\
pub fn stage(xs: &[u32]) -> usize {\n\
    let _s = span(\"graph.stage\");\n\
    kernel_fn(xs)\n\
}\n\
// hot: per-vertex kernel\n\
pub fn kernel_fn(xs: &[u32]) -> usize {\n\
    // alloc: scratch, hoisted per batch\n\
    let v: Vec<u32> = xs.to_vec();\n\
    v.len()\n\
}\n\
pub fn unrelated() {}\n",
        )];
        let inv = inventory(&files);
        assert_eq!(inv.fns.len(), 1);
        assert_eq!(inv.fns[0].name, "kernel_fn");
        assert_eq!(inv.fns[0].alloc_sites, 1);
        assert!(inv.fns[0].root_reason.is_some());
        assert_eq!(inv.spans.len(), 1);
        assert_eq!(inv.spans[0].name, "graph.stage");
        assert_eq!(inv.spans[0].static_alloc_sites, 1);
        let text = inv.render();
        assert!(
            text.contains("# hot-path inventory: 1 roots, 1 functions, 1 alloc sites, 1 spans"),
            "{text}"
        );
        assert!(
            text.contains(
                "root crates/graph/src/x.rs:6 kernel_fn alloc_sites=1 — per-vertex kernel"
            ),
            "{text}"
        );
        assert!(
            text.contains("span graph.stage crates/graph/src/x.rs:2 static_alloc_sites=1"),
            "{text}"
        );
    }
}
