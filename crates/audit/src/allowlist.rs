//! The audit allowlist: justified exceptions to the rules.
//!
//! Lives at `audit-allowlist.txt` in the workspace root. One entry per
//! line, four pipe-separated fields:
//!
//! ```text
//! rule-id | workspace/relative/path.rs | line-substring | reason
//! ```
//!
//! A finding is suppressed when an entry's rule and path match and the
//! `line-substring` occurs verbatim in the offending source line — the
//! substring anchor means entries survive line-number drift but go
//! stale when the code they justify is removed. Stale entries (ones
//! that matched nothing this run) are themselves reported as findings,
//! so the allowlist can only shrink silently, never grow.

use crate::rules::{Finding, Rule};

/// One parsed allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub needle: String,
    pub reason: String,
    /// 1-based line in the allowlist file, for error reporting.
    pub source_line: usize,
}

/// Problems with the allowlist file itself (reported as audit failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllowlistIssue {
    /// A line that is not `rule | path | needle | reason`.
    Malformed { source_line: usize, text: String },
    /// An unknown rule id.
    UnknownRule { source_line: usize, rule: String },
    /// An entry with an empty reason string — justifications are mandatory.
    MissingReason { source_line: usize },
    /// A repeat of an earlier entry's (rule, path, substring) triple —
    /// the later copy can never suppress anything the first didn't.
    Duplicate { source_line: usize, first_line: usize },
    /// An entry that suppressed nothing this run.
    Stale { entry: AllowEntry },
}

impl std::fmt::Display for AllowlistIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllowlistIssue::Malformed { source_line, text } => {
                write!(f, "allowlist:{source_line}: malformed entry `{text}` (want `rule | path | line-substring | reason`)")
            }
            AllowlistIssue::UnknownRule { source_line, rule } => {
                write!(f, "allowlist:{source_line}: unknown rule id `{rule}`")
            }
            AllowlistIssue::MissingReason { source_line } => {
                write!(f, "allowlist:{source_line}: entry has an empty reason — every exception must be justified")
            }
            AllowlistIssue::Duplicate { source_line, first_line } => {
                write!(f, "allowlist:{source_line}: duplicate of line {first_line} — same (rule, path, substring) triple; remove one")
            }
            AllowlistIssue::Stale { entry } => {
                write!(
                    f,
                    "allowlist:{}: stale entry [{}] {} `{}` matched no finding — remove it",
                    entry.source_line,
                    entry.rule.id(),
                    entry.path,
                    entry.needle
                )
            }
        }
    }
}

/// Parse the allowlist file contents. Blank lines and `#` comments are
/// skipped. Returns entries plus any structural issues.
pub fn parse(contents: &str) -> (Vec<AllowEntry>, Vec<AllowlistIssue>) {
    let mut entries = Vec::new();
    let mut issues = Vec::new();
    for (idx, raw) in contents.lines().enumerate() {
        let source_line = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if fields.len() != 4 {
            issues.push(AllowlistIssue::Malformed { source_line, text: line.to_string() });
            continue;
        }
        let Some(rule) = Rule::from_id(fields[0]) else {
            issues.push(AllowlistIssue::UnknownRule { source_line, rule: fields[0].to_string() });
            continue;
        };
        if fields[3].is_empty() {
            issues.push(AllowlistIssue::MissingReason { source_line });
            continue;
        }
        if let Some(first) = entries
            .iter()
            .find(|e: &&AllowEntry| e.rule == rule && e.path == fields[1] && e.needle == fields[2])
        {
            issues.push(AllowlistIssue::Duplicate { source_line, first_line: first.source_line });
            continue;
        }
        entries.push(AllowEntry {
            rule,
            path: fields[1].to_string(),
            needle: fields[2].to_string(),
            reason: fields[3].to_string(),
            source_line,
        });
    }
    (entries, issues)
}

/// Split findings into (kept, suppressed) under the allowlist, and
/// report stale entries. `line_of` fetches the source line text a
/// finding points at, so needles can be matched against real code.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
    line_of: impl Fn(&Finding) -> Option<String>,
) -> (Vec<Finding>, Vec<(Finding, &AllowEntry)>, Vec<AllowlistIssue>) {
    let mut used = vec![false; entries.len()];
    let (kept, suppressed) = apply_tracked(findings, entries, line_of, &mut used);
    let stale = stale_entries(entries, &used);
    (kept, suppressed, stale)
}

/// [`apply`] for multi-batch runs: the caller owns the per-entry
/// `used` flags, so the two-pass audit can feed pass-1 and pass-2
/// findings through the same allowlist and only then decide which
/// entries went stale.
pub fn apply_tracked<'e>(
    findings: Vec<Finding>,
    entries: &'e [AllowEntry],
    line_of: impl Fn(&Finding) -> Option<String>,
    used: &mut [bool],
) -> (Vec<Finding>, Vec<(Finding, &'e AllowEntry)>) {
    debug_assert_eq!(used.len(), entries.len());
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let text = line_of(&f).unwrap_or_default();
        let hit = entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.rule == f.rule && e.path == f.path && text.contains(&e.needle));
        match hit {
            Some((idx, entry)) => {
                used[idx] = true;
                suppressed.push((f, entry));
            }
            None => kept.push(f),
        }
    }
    (kept, suppressed)
}

/// The [`AllowlistIssue::Stale`] reports for entries whose `used` flag
/// never went up.
pub fn stale_entries(entries: &[AllowEntry], used: &[bool]) -> Vec<AllowlistIssue> {
    entries
        .iter()
        .zip(used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| AllowlistIssue::Stale { entry: e.clone() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, line: usize) -> Finding {
        Finding { rule, path: path.to_string(), line, what: "x".to_string() }
    }

    #[test]
    fn parse_roundtrip_and_comments() {
        let (entries, issues) = parse(
            "# header\n\nno-unwrap | crates/a/src/b.rs | foo.unwrap() | contract: always set\n",
        );
        assert!(issues.is_empty());
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, Rule::NoUnwrap);
        assert_eq!(entries[0].needle, "foo.unwrap()");
        assert_eq!(entries[0].source_line, 3);
    }

    #[test]
    fn parse_rejects_malformed_unknown_and_reasonless() {
        let (entries, issues) =
            parse("just one field\nnot-a-rule | p | n | r\nno-unwrap | p | n |\n");
        assert!(entries.is_empty());
        assert_eq!(issues.len(), 3);
        assert!(matches!(issues[0], AllowlistIssue::Malformed { source_line: 1, .. }));
        assert!(matches!(issues[1], AllowlistIssue::UnknownRule { source_line: 2, .. }));
        assert!(matches!(issues[2], AllowlistIssue::MissingReason { source_line: 3 }));
    }

    #[test]
    fn parse_rejects_duplicate_triples() {
        let (entries, issues) = parse(
            "no-unwrap | a.rs | x.unwrap() | first copy\n\
             no-unwrap | a.rs | x.unwrap() | second copy, different reason\n\
             no-unwrap | a.rs | y.unwrap() | different substring is fine\n\
             no-print  | a.rs | x.unwrap() | different rule is fine\n",
        );
        assert_eq!(entries.len(), 3);
        assert_eq!(issues.len(), 1);
        assert!(
            matches!(issues[0], AllowlistIssue::Duplicate { source_line: 2, first_line: 1 }),
            "{issues:?}"
        );
        assert!(issues[0].to_string().contains("duplicate of line 1"), "{}", issues[0]);
    }

    #[test]
    fn apply_suppresses_matching_and_flags_stale() {
        let (entries, _) = parse(
            "no-unwrap | a.rs | x.unwrap() | fine\nno-unwrap | b.rs | gone() | was removed\n",
        );
        let findings = vec![finding(Rule::NoUnwrap, "a.rs", 7), finding(Rule::NoUnwrap, "c.rs", 2)];
        let (kept, suppressed, stale) = apply(findings, &entries, |f| {
            Some(if f.path == "a.rs" { "let y = x.unwrap();".into() } else { "other".into() })
        });
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "c.rs");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].1.needle, "x.unwrap()");
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn needle_must_match_line_text_not_just_path() {
        let (entries, _) = parse("no-unwrap | a.rs | .expect( | contract\n");
        let findings = vec![finding(Rule::NoUnwrap, "a.rs", 1)];
        let (kept, suppressed, _) = apply(findings, &entries, |_| Some("x.unwrap()".into()));
        assert_eq!(kept.len(), 1);
        assert!(suppressed.is_empty());
    }
}
