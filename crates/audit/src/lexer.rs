//! A lightweight Rust lexer — just enough syntax to audit policy.
//!
//! The audit rules need to see identifiers, punctuation and literal
//! *kinds* with accurate line numbers, while never being fooled by the
//! contents of strings or comments (a doc comment mentioning
//! `unwrap()` is not a violation). Full parsing is deliberately out of
//! scope: the rules are token-pattern matchers, and a token stream
//! that faithfully skips comments, all string flavours (including raw
//! and byte strings), char literals vs. lifetimes, and numeric
//! literals (including float detection) is sufficient for every rule
//! the project enforces.

/// What kind of token this is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword, e.g. `unwrap`, `std`, `mod`.
    Ident(String),
    /// A single punctuation character (`.`, `{`, `(`, `!`, …).
    /// Multi-character operators the rules care about are fused into
    /// [`TokenKind::Op`].
    Punct(char),
    /// A fused multi-character operator: `==`, `!=`, `<=`, `>=`, `::`,
    /// `->`, `=>`, `..`.
    Op(&'static str),
    /// An integer literal (including hex/octal/binary forms).
    Int,
    /// A floating-point literal (`1.0`, `1.`, `1e-6`, `2.5f32`).
    Float,
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`), carrying its raw
    /// inner text (escape sequences left verbatim). Rules never match
    /// *inside* the payload accidentally — it only surfaces through
    /// [`Token::str_lit`] for rules that ask, like the span-name check.
    Str(String),
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// One comment with its source position. Comments never become tokens
/// — rules cannot be fooled by their contents — but the symbol-index
/// pass reads them back out for provenance annotations (`// SAFETY:`,
/// `// det:`), which live *in* comments by design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// 1-based line of the comment's last character (equals `line` for
    /// single-line comments).
    pub end_line: usize,
    /// Interior text: everything after the `//` of a line comment
    /// (including any third `/` or `!` of doc comments), or between the
    /// delimiters of a block comment.
    pub text: String,
}

impl Comment {
    /// The comment body with doc markers (`/`, `!`, `*`) and
    /// surrounding whitespace stripped — what annotation rules match
    /// against.
    pub fn body(&self) -> &str {
        self.text.trim_start_matches(['/', '!', '*']).trim()
    }
}

/// Tokens plus captured comments, from [`tokenize_full`].
#[derive(Clone, Debug, Default)]
pub struct LexOutput {
    /// The token stream (comments and whitespace skipped).
    pub tokens: Vec<Token>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the fused operator `op`.
    pub fn is_op(&self, op: &str) -> bool {
        matches!(&self.kind, TokenKind::Op(o) if *o == op)
    }

    /// The raw inner text, if this token is a string literal.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize Rust source. Comments are skipped (line numbers still
/// advance through them); char contents are discarded, string contents
/// ride on [`TokenKind::Str`].
pub fn tokenize(source: &str) -> Vec<Token> {
    tokenize_full(source).tokens
}

/// Tokenize Rust source, also capturing every comment with its line
/// span and interior text — the input to the symbol-index pass, whose
/// provenance rules (`// SAFETY:`, `// det:`) live in comments.
pub fn tokenize_full(source: &str) -> LexOutput {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, line: usize) {
        self.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.lex_line_comment(line),
                '/' if self.peek(1) == Some('*') => self.lex_block_comment(line),
                '\'' => self.lex_quote(line),
                '"' => {
                    let text = self.lex_string();
                    self.push(TokenKind::Str(text), line);
                }
                'r' | 'b' if self.is_string_prefix() => {
                    let text = self.lex_prefixed_string();
                    self.push(TokenKind::Str(text), line);
                }
                c if c.is_alphabetic() || c == '_' => self.lex_ident(line),
                c if c.is_ascii_digit() => self.lex_number(line),
                _ => self.lex_punct(line),
            }
        }
        LexOutput { tokens: self.tokens, comments: self.comments }
    }

    fn lex_line_comment(&mut self, line: usize) {
        self.bump(); // '/'
        self.bump(); // '/'
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.bump();
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { line, end_line: line, text });
    }

    fn lex_block_comment(&mut self, line: usize) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut text = String::new();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    self.bump();
                    text.push(c);
                }
                (None, _) => break, // unterminated: tolerate, stop at EOF
            }
        }
        self.comments.push(Comment { line, end_line: self.line, text });
    }

    /// `'` starts either a char literal or a lifetime. A lifetime is
    /// `'ident` *not* followed by a closing `'`; everything else (`'x'`,
    /// `'\n'`, `'\''`) is a char literal.
    fn lex_quote(&mut self, line: usize) {
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => {
                // escaped char literal: consume escape then closing '
                self.bump();
                self.bump(); // the escaped character
                             // unicode escapes \u{…} span to the closing brace
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, line);
            }
            Some(c) if (c.is_alphanumeric() || c == '_') && self.peek(1) != Some('\'') => {
                // lifetime: consume the identifier
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, line);
            }
            Some(_) => {
                self.bump(); // the character
                self.bump(); // closing '
                self.push(TokenKind::Char, line);
            }
            None => {}
        }
    }

    /// Whether the current `r`/`b` begins a raw/byte string rather
    /// than an identifier (`r#"…"#`, `br"…"`, `b"…"`, `b'…'` handled
    /// separately).
    fn is_string_prefix(&self) -> bool {
        let c0 = self.peek(0);
        let (c1, c2) = (self.peek(1), self.peek(2));
        match c0 {
            Some('r') => match c1 {
                Some('"') => true,
                // r#"…"# is a raw string; r#ident is a raw identifier
                Some('#') => matches!(c2, Some('"') | Some('#')),
                _ => false,
            },
            Some('b') => match c1 {
                Some('"') | Some('\'') => true,
                Some('r') => matches!(c2, Some('"') | Some('#')),
                _ => false,
            },
            _ => false,
        }
    }

    /// Consume a raw/byte string starting at the `r`/`b` prefix,
    /// returning its inner text (empty for byte-char literals).
    fn lex_prefixed_string(&mut self) -> String {
        let mut text = String::new();
        let mut raw = false;
        // consume prefix letters
        while let Some(c) = self.peek(0) {
            match c {
                'r' => {
                    raw = true;
                    self.bump();
                }
                'b' => {
                    self.bump();
                }
                _ => break,
            }
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening quote
                         // raw strings end at `"` followed by `hashes` hashes
            while let Some(c) = self.bump() {
                if c == '"' {
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(matched) == Some('#') {
                        matched += 1;
                    }
                    if matched == hashes {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                    // Not a terminator: the quote and the hashes seen
                    // are payload. Consume the hashes so they are not
                    // re-read (and duplicated) by the next iteration.
                    text.push('"');
                    for _ in 0..matched {
                        self.bump();
                        text.push('#');
                    }
                    continue;
                }
                text.push(c);
            }
        } else if self.peek(0) == Some('\'') {
            // byte char literal b'…': no text worth carrying
            self.bump();
            while let Some(c) = self.bump() {
                if c == '\\' {
                    self.bump();
                } else if c == '\'' {
                    break;
                }
            }
        } else {
            text = self.lex_string();
        }
        text
    }

    /// Consume a normal `"…"` string starting at the opening quote,
    /// returning the raw inner text (escapes left verbatim).
    fn lex_string(&mut self) -> String {
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                break;
            } else {
                text.push(c);
            }
        }
        text
    }

    fn lex_ident(&mut self, line: usize) {
        // raw identifier prefix r# (not a raw string — checked earlier)
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(s), line);
    }

    fn lex_number(&mut self, line: usize) {
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            // radix literal: consume prefix and digits (never a float)
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Int, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // fractional part: a `.` NOT followed by an identifier start or
        // a second `.` (those are method calls and range operators)
        if self.peek(0) == Some('.')
            && !matches!(self.peek(1), Some(c) if c.is_alphabetic() || c == '_' || c == '.')
        {
            is_float = true;
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // exponent
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump();
                if sign {
                    self.bump();
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // type suffix (f32, f64, u8, usize, …)
        if matches!(self.peek(0), Some('f')) && !is_float {
            // 1f32 / 1f64 are floats
            if (self.peek(1) == Some('3') && self.peek(2) == Some('2'))
                || (self.peek(1) == Some('6') && self.peek(2) == Some('4'))
            {
                is_float = true;
            }
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        self.push(if is_float { TokenKind::Float } else { TokenKind::Int }, line);
    }

    fn lex_punct(&mut self, line: usize) {
        let c = self.peek(0).unwrap_or(' ');
        let fused: Option<&'static str> = match (c, self.peek(1)) {
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            (':', Some(':')) => Some("::"),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            ('.', Some('.')) => Some(".."),
            _ => None,
        };
        if let Some(op) = fused {
            self.bump();
            self.bump();
            self.push(TokenKind::Op(op), line);
        } else {
            self.bump();
            self.push(TokenKind::Punct(c), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = tokenize("let x = foo.unwrap();");
        let names: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(names, vec!["let", "x", "foo", "unwrap"]);
        assert!(toks.iter().any(|t| t.is_punct('.')));
        assert!(toks.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn comments_are_skipped_but_lines_advance() {
        let toks = tokenize("// unwrap() in a comment\n/* panic! *//* /* nested */ */\nfoo");
        assert_eq!(toks.len(), 1);
        assert!(toks[0].is_ident("foo"));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = tokenize(r#"let s = "unwrap() == 1.0"; x"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.str_lit().is_some()).count(), 1);
        assert_eq!(toks.iter().find_map(|t| t.str_lit()), Some("unwrap() == 1.0"));
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = tokenize("r#\"has \"quotes\" and unwrap()\"# b\"bytes\" br#\"raw bytes\"# end");
        assert_eq!(toks.iter().filter(|t| t.str_lit().is_some()).count(), 3);
        assert_eq!(toks[0].str_lit(), Some("has \"quotes\" and unwrap()"));
        assert_eq!(toks[1].str_lit(), Some("bytes"));
        assert_eq!(toks[2].str_lit(), Some("raw bytes"));
        assert!(toks.iter().any(|t| t.is_ident("end")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = tokenize("r#type r#match");
        assert!(toks[0].is_ident("type"));
        assert!(toks[1].is_ident("match"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 3);
    }

    #[test]
    fn float_detection() {
        assert_eq!(kinds("1.0"), vec![TokenKind::Float]);
        assert_eq!(kinds("1."), vec![TokenKind::Float]);
        assert_eq!(kinds("1e-6"), vec![TokenKind::Float]);
        assert_eq!(kinds("2.5f32"), vec![TokenKind::Float]);
        assert_eq!(kinds("1f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("42"), vec![TokenKind::Int]);
        assert_eq!(kinds("0xff"), vec![TokenKind::Int]);
        assert_eq!(kinds("1u64"), vec![TokenKind::Int]);
        // method call on an integer is not a float
        assert_eq!(
            kinds("1.max"),
            vec![TokenKind::Int, TokenKind::Punct('.'), TokenKind::Ident("max".into())]
        );
        // range of integers is not a float
        assert_eq!(kinds("0..2"), vec![TokenKind::Int, TokenKind::Op(".."), TokenKind::Int]);
    }

    #[test]
    fn fused_operators() {
        let toks = tokenize("a == b != c :: d -> e => f <= g >= h");
        let ops: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Op(o) => Some(*o),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["==", "!=", "::", "->", "=>", "<=", ">="]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        assert!(tokenize("/* never closed").is_empty());
        assert_eq!(tokenize("\"never closed").len(), 1);
        assert_eq!(tokenize("r#\"never closed").len(), 1);
    }

    #[test]
    fn raw_string_interior_quote_hash_runs_are_not_duplicated() {
        // `"#` inside an `r##"…"##` string is payload, not a close;
        // the old lexer re-read the partial hash run and duplicated it.
        let toks = tokenize("r##\"a\"#b\"## end");
        assert_eq!(toks[0].str_lit(), Some("a\"#b"));
        assert!(toks[1].is_ident("end"));
        // a bare quote (zero following hashes) inside a hashed raw string
        let toks = tokenize("r#\"say \"hi\" now\"# x");
        assert_eq!(toks[0].str_lit(), Some("say \"hi\" now"));
        assert!(toks[1].is_ident("x"));
        // the first `"#` candidate closes an `r#` string
        let toks = tokenize("r#\"a\"##\"#");
        assert_eq!(toks[0].str_lit(), Some("a"));
    }

    #[test]
    fn raw_strings_spanning_lines_keep_line_numbers() {
        let toks = tokenize("r#\"line\nline\nline\"#\nafter");
        assert_eq!(toks[0].str_lit(), Some("line\nline\nline"));
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn comments_are_captured_with_spans() {
        let out = tokenize_full(
            "// SAFETY: top\nfn f() {} // trailing\n/* block\nspans lines */\n/// doc\nx",
        );
        let lines: Vec<(usize, usize)> =
            out.comments.iter().map(|c| (c.line, c.end_line)).collect();
        assert_eq!(lines, vec![(1, 1), (2, 2), (3, 4), (5, 5)]);
        assert_eq!(out.comments[0].body(), "SAFETY: top");
        assert_eq!(out.comments[1].body(), "trailing");
        assert_eq!(out.comments[2].body(), "block\nspans lines");
        assert_eq!(out.comments[3].body(), "doc");
        assert_eq!(out.tokens.iter().filter_map(|t| t.ident()).count(), 3); // fn f x
    }

    #[test]
    fn nested_block_comments_capture_interior_and_terminate() {
        let out = tokenize_full("/* a /* nested */ b */ after /*/ tricky */ end");
        assert!(out.tokens.iter().any(|t| t.is_ident("after")));
        assert!(out.tokens.iter().any(|t| t.is_ident("end")));
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].text, " a /* nested */ b ");
        // `/*/` opens a comment whose body starts with `/`
        assert_eq!(out.comments[1].text, "/ tricky ");
    }
}
