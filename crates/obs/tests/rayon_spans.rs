//! Span capture must stay deterministic while a rayon pool records
//! spans concurrently. (Under the repo's in-tree sequential rayon
//! stand-in this degenerates to single-threaded execution; with the
//! real crate it exercises genuine parallelism. The std::thread
//! variant in `span.rs` unit tests always runs truly parallel.)

use graphner_obs::span::{span, with_capture};
use rayon::prelude::*;

#[test]
fn capture_isolates_current_thread_from_rayon_workers() {
    let data: Vec<usize> = (0..256).collect();
    let ((), spans) = with_capture(|| {
        let _stage = span("stage.outer");
        let total: usize = data
            .par_iter()
            .map(|&i| {
                let _worker = span("worker.item");
                i
            })
            .sum();
        assert_eq!(total, 256 * 255 / 2);
    });
    // the outer stage span is always captured…
    assert_eq!(spans.iter().filter(|s| s.name == "stage.outer").count(), 1);
    // …and every captured span belongs to the capturing thread with
    // consistent nesting: items recorded on this thread must sit
    // strictly inside the stage span's sequence window.
    let stage = spans.iter().find(|s| s.name == "stage.outer").unwrap();
    for item in spans.iter().filter(|s| s.name == "worker.item") {
        assert_eq!(item.thread, stage.thread);
        assert!(item.enter_seq > stage.enter_seq);
        assert!(item.exit_seq < stage.exit_seq);
        assert_eq!(item.depth, stage.depth + 1);
    }
}
