//! Span capture must stay deterministic while the rayon pool records
//! spans concurrently. This binary pins `GRAPHNER_THREADS=4` before
//! first pool use so the vendored worker pool runs genuinely parallel
//! even on single-core CI runners: `with_capture` must keep filtering
//! worker spans out, `with_capture_all` must see them.

use graphner_obs::span::{span, with_capture, with_capture_all};
use rayon::prelude::*;

/// Force a multi-worker pool regardless of host core count. The pool
/// reads the variable once at first use; both tests call this first,
/// and setting the same value twice is harmless whichever runs first.
fn pin_pool_threads() {
    std::env::set_var(rayon::THREADS_ENV, "4");
}

#[test]
fn capture_isolates_current_thread_from_rayon_workers() {
    pin_pool_threads();
    let data: Vec<usize> = (0..256).collect();
    let ((), spans) = with_capture(|| {
        let _stage = span("stage.outer");
        let total: usize = data
            .par_iter()
            .map(|&i| {
                let _worker = span("worker.item");
                i
            })
            .sum();
        assert_eq!(total, 256 * 255 / 2);
    });
    // the outer stage span is always captured…
    assert_eq!(spans.iter().filter(|s| s.name == "stage.outer").count(), 1);
    // …and every captured span belongs to the capturing thread with
    // consistent nesting: items recorded on this thread must sit
    // strictly inside the stage span's sequence window. Items executed
    // by pool workers are in the global registry but not here — that
    // current-thread filter is what `with_capture`'s docs promise.
    let stage = spans.iter().find(|s| s.name == "stage.outer").unwrap();
    for item in spans.iter().filter(|s| s.name == "worker.item") {
        assert_eq!(item.thread, stage.thread);
        assert!(item.enter_seq > stage.enter_seq);
        assert!(item.exit_seq < stage.exit_seq);
        assert_eq!(item.depth, stage.depth + 1);
    }
}

#[test]
fn capture_all_sees_the_worker_spans_with_capture_hides() {
    pin_pool_threads();
    let data: Vec<usize> = (0..256).collect();
    // The caller thread participates in chunk execution, so on a
    // single-core host a trivially cheap job can finish before any
    // worker gets scheduled. Stretch each item past a scheduler tick's
    // worth of total work and allow a few attempts: one chunk landing
    // on a worker is all the cross-thread assertion needs.
    let mut off_thread = 0usize;
    for _attempt in 0..5 {
        let ((), all) = with_capture_all(|| {
            let _stage = span("xthread.stage");
            let total: usize = data
                .par_iter()
                .map(|&i| {
                    let _worker = span("xthread.item");
                    let watch = graphner_obs::Stopwatch::start();
                    while watch.elapsed_seconds() < 100e-6 {
                        std::hint::spin_loop();
                    }
                    i
                })
                .sum();
            assert_eq!(total, 256 * 255 / 2);
        });
        // Filter by name: with_capture_all's window also catches spans
        // from unrelated concurrent tests in this binary (documented
        // price of the all-threads scope).
        let stage = all.iter().find(|s| s.name == "xthread.stage").expect("stage span captured");
        let items: Vec<_> = all.iter().filter(|s| s.name == "xthread.item").collect();
        // no worker span is lost: every one of the 256 items is
        // captured, whichever thread executed its chunk…
        assert_eq!(items.len(), 256);
        // …and each one sits inside the stage's global sequence window,
        // because par_iter joins all chunks before the stage guard drops
        for item in &items {
            assert!(item.enter_seq > stage.enter_seq);
            assert!(item.exit_seq < stage.exit_seq);
        }
        off_thread = items.iter().filter(|s| s.thread != stage.thread).count();
        if off_thread > 0 {
            break;
        }
    }
    // the all-threads capture saw spans a current-thread capture
    // could not have: chunks executed on pool workers
    assert!(off_thread > 0, "expected some items on pool workers, all ran on the caller");
}
