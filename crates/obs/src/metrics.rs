//! Named counters, gauges and log-bucketed histograms with JSON export.
//!
//! Metrics live in a [`Registry`] — normally the process-wide default
//! reached through the free functions [`counter`], [`gauge`] and
//! [`histogram`], but tests build isolated `Registry::new()` instances.
//! Handles are `Arc`s, so call sites can cache them across hot loops.
//!
//! Export is deliberately dependency-free: [`Registry::export_json`]
//! emits one JSON object, [`Registry::export_jsonl`] one JSON object
//! per line, both with metrics sorted by name so output is stable and
//! diffable. Non-finite floats export as `null` to stay valid JSON.

use crate::json::{json_number, json_opt_number, json_string};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float metric.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Buckets per decade of the histogram's log scale.
const BUCKETS_PER_DECADE: usize = 8;
/// Lower edge of the first regular bucket.
const FIRST_EDGE: f64 = 1e-9;
/// Decades covered by regular buckets: [1e-9, 1e9).
const DECADES: usize = 18;
/// Number of regular buckets.
const NUM_BUCKETS: usize = BUCKETS_PER_DECADE * DECADES;

/// Interior, mutex-guarded histogram state.
#[derive(Debug)]
struct HistogramData {
    /// Regular log-scale buckets plus dedicated under/overflow.
    buckets: Box<[u64; NUM_BUCKETS]>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A fixed-bucket histogram on a log scale covering `[1e-9, 1e9)` with
/// eight buckets per decade (~33% relative resolution), suitable for
/// durations in seconds, residuals, degrees, and similar positive
/// quantities. Values at or below `1e-9` (including zero and
/// negatives) land in an underflow bucket; values `>= 1e9` overflow.
#[derive(Debug)]
pub struct Histogram {
    data: Mutex<HistogramData>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            data: Mutex::new(HistogramData {
                buckets: Box::new([0; NUM_BUCKETS]),
                underflow: 0,
                overflow: 0,
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }
}

/// Index of the regular bucket for `value`, if it has one.
fn bucket_index(value: f64) -> Option<usize> {
    if value.is_nan() || value <= FIRST_EDGE {
        return None; // underflow (also zero, negatives, NaN)
    }
    let idx = ((value / FIRST_EDGE).log10() * BUCKETS_PER_DECADE as f64).floor() as isize;
    if idx < 0 {
        None
    } else if (idx as usize) < NUM_BUCKETS {
        Some(idx as usize)
    } else {
        None // overflow — caller distinguishes by value > FIRST_EDGE
    }
}

/// Bucket edges `[lower, upper)` for regular bucket `i`.
fn bucket_edges(i: usize) -> (f64, f64) {
    let lower = FIRST_EDGE * 10f64.powf(i as f64 / BUCKETS_PER_DECADE as f64);
    let upper = FIRST_EDGE * 10f64.powf((i + 1) as f64 / BUCKETS_PER_DECADE as f64);
    (lower, upper)
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: f64) {
        self.record_many(value, 1);
    }

    /// Record `n` identical observations in one lock acquisition.
    pub fn record_many(&self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let mut data = crate::acquire(&self.data);
        match bucket_index(value) {
            Some(i) => data.buckets[i] += n,
            None if value > FIRST_EDGE => data.overflow += n,
            None => data.underflow += n,
        }
        data.count += n;
        if value.is_finite() {
            data.sum += value * n as f64;
            data.min = data.min.min(value);
            data.max = data.max.max(value);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        crate::acquire(&self.data).count
    }

    /// Sum of recorded (finite) observations.
    pub fn sum(&self) -> f64 {
        crate::acquire(&self.data).sum
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        let data = crate::acquire(&self.data);
        data.min.is_finite().then_some(data.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        let data = crate::acquire(&self.data);
        data.max.is_finite().then_some(data.max)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`). Total — every input
    /// has a defined answer:
    ///
    /// * empty histogram (or one that has seen only non-finite
    ///   values) → `0.0`;
    /// * all recorded finite values equal (the single-sample case in
    ///   particular) → exactly that value, never a bucket midpoint;
    /// * otherwise the geometric midpoint of the bucket holding the
    ///   rank-`⌈q·count⌉` observation, clamped to the exact observed
    ///   `[min, max]`, so the relative error is bounded by the bucket
    ///   width (one eighth of a decade, ~15% from midpoint to edge).
    ///
    /// Monotone by construction: the rank is nondecreasing in `q`, the
    /// bucket scan returns nondecreasing midpoints over ranks, and the
    /// final clamp applies fixed bounds — so `q1 <= q2` implies
    /// `quantile(q1) <= quantile(q2)` on any histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let data = crate::acquire(&self.data);
        if data.count == 0 || data.min > data.max {
            // empty, or no finite observation ever landed: a defined
            // floor beats a NaN-poisoned readout downstream
            return 0.0;
        }
        if data.min == data.max {
            // one distinct finite value — report it exactly
            return data.min;
        }
        let clamp = |v: f64| v.clamp(data.min, data.max);
        let rank = ((q.clamp(0.0, 1.0) * data.count as f64).ceil() as u64).max(1);
        let mut seen = data.underflow;
        if rank <= seen {
            return clamp(FIRST_EDGE);
        }
        for (i, &n) in data.buckets.iter().enumerate() {
            seen += n;
            if rank <= seen {
                let (lower, upper) = bucket_edges(i);
                return clamp((lower * upper).sqrt());
            }
        }
        clamp(data.max)
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A named collection of metrics.
///
/// `Registry::global()` is the process-wide default used by the free
/// functions; `Registry::new()` gives tests an isolated instance.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide default registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(crate::acquire(&self.counters).entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(crate::acquire(&self.gauges).entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(crate::acquire(&self.histograms).entry(name.to_string()).or_default())
    }

    /// One JSONL line per metric, sorted by (type, name):
    ///
    /// ```json
    /// {"type":"counter","name":"...","value":N}
    /// {"type":"gauge","name":"...","value":X}
    /// {"type":"histogram","name":"...","count":N,"sum":X,"min":X,"max":X,"p50":X,"p95":X,"p99":X}
    /// ```
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, c) in crate::acquire(&self.counters).iter() {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}\n",
                json_string(name),
                c.get(),
            ));
        }
        for (name, g) in crate::acquire(&self.gauges).iter() {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json_string(name),
                json_number(g.get()),
            ));
        }
        for (name, h) in crate::acquire(&self.histograms).iter() {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}\n",
                json_string(name),
                h.count(),
                json_number(h.sum()),
                json_opt_number(h.min()),
                json_opt_number(h.max()),
                json_number(h.p50()),
                json_number(h.p95()),
                json_number(h.p99()),
            ));
        }
        out
    }

    /// The same content as [`Registry::export_jsonl`] wrapped into one
    /// JSON object: `{"metrics":[...]}`.
    pub fn export_json(&self) -> String {
        let jsonl = self.export_jsonl();
        let body: Vec<&str> = jsonl.lines().collect();
        format!("{{\"metrics\":[{}]}}", body.join(","))
    }
}

/// The global counter named `name`.
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// The global gauge named `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// The global histogram named `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    Registry::global().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let registry = Registry::new();
        let c = registry.counter("edges");
        c.incr();
        c.add(4);
        assert_eq!(registry.counter("edges").get(), 5);
        let g = registry.gauge("loss");
        g.set(-1.5);
        assert!((registry.gauge("loss").get() + 1.5).abs() < 1e-15);
    }

    #[test]
    fn histogram_quantiles_match_sorted_vector_oracle() {
        // mixed-magnitude sample spanning several decades
        let h = Histogram::default();
        let mut values = Vec::new();
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..5000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // log-uniform over roughly [1e-6, 1e2]
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let v = 10f64.powf(-6.0 + 8.0 * u);
            values.push(v);
            h.record(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.5, 0.95, 0.99] {
            let oracle =
                values[((q * values.len() as f64).ceil() as usize - 1).min(values.len() - 1)];
            let estimate = h.quantile(q);
            let ratio = estimate / oracle;
            // one log-scale bucket is a factor 10^(1/8) ≈ 1.33 wide;
            // midpoint estimate must land within ~±1 bucket of truth
            assert!(
                (0.70..=1.40).contains(&ratio),
                "q={q}: estimate {estimate} vs oracle {oracle} (ratio {ratio})"
            );
        }
        assert_eq!(h.count(), 5000);
        let min = h.min().unwrap();
        let max = h.max().unwrap();
        assert!(h.quantile(0.0) >= min);
        assert!(h.quantile(1.0) <= max);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::default();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            h.record(10f64.powf(-8.0 + 12.0 * u));
        }
        let mut last = f64::NEG_INFINITY;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} dropped below {last}");
            last = v;
        }
    }

    #[test]
    fn histogram_handles_edge_values() {
        let h = Histogram::default();
        h.record(0.0); // underflow
        h.record(-3.0); // underflow
        h.record(1e12); // overflow
        h.record_many(2.0, 7);
        assert_eq!(h.count(), 10);
        assert!((h.min().unwrap() + 3.0).abs() < 1e-15);
        assert!((h.max().unwrap() - 1e12).abs() < 1e-3);
        // median falls among the 2.0 observations
        let p50 = h.p50();
        assert!((1.5..3.0).contains(&p50), "p50 {p50}");
        assert!(h.quantile(1.0) <= 1e12);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Histogram::default();
        h.record(3.7);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.7, "q={q} must be the sample, not a bucket midpoint");
        }
        // repeated identical samples are equally exact
        h.record_many(3.7, 99);
        assert_eq!(h.p50(), 3.7);
        assert_eq!(h.p99(), 3.7);
    }

    #[test]
    fn export_schema_is_stable() {
        // exact-string comparison: any schema change must be deliberate
        let registry = Registry::new();
        registry.counter("knn.candidate_pairs").add(42);
        registry.gauge("lbfgs.objective").set(2.5);
        let h = registry.histogram("graph.degree");
        h.record_many(4.0, 3);
        let jsonl = registry.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"name\":\"knn.candidate_pairs\",\"value\":42}"
        );
        assert_eq!(lines[1], "{\"type\":\"gauge\",\"name\":\"lbfgs.objective\",\"value\":2.5}");
        assert!(lines[2].starts_with(
            "{\"type\":\"histogram\",\"name\":\"graph.degree\",\"count\":3,\"sum\":12,"
        ));
        assert!(lines[2].ends_with("}"));
        // the wrapped object is the same lines joined with commas
        let json = registry.export_json();
        assert_eq!(json, format!("{{\"metrics\":[{}]}}", lines.join(",")));
    }

    #[test]
    fn export_sorted_by_name_and_escaped() {
        let registry = Registry::new();
        registry.counter("zzz").incr();
        registry.counter("aaa \"x\"\n").incr();
        let jsonl = registry.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines[0], "{\"type\":\"counter\",\"name\":\"aaa \\\"x\\\"\\n\",\"value\":1}");
        assert!(lines[1].contains("\"zzz\""));
    }

    #[test]
    fn global_registry_free_functions() {
        counter("obs.test.global_counter").add(2);
        assert!(counter("obs.test.global_counter").get() >= 2);
        gauge("obs.test.global_gauge").set(1.0);
        histogram("obs.test.global_hist").record(0.5);
        assert!(Registry::global().export_jsonl().contains("obs.test.global_counter"));
    }
}
