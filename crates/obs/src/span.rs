//! Nestable RAII wall-clock spans with a thread-safe global registry.
//!
//! A [`span`] guard measures the wall time between its creation and its
//! drop, then appends a [`SpanRecord`] to the process-wide registry.
//! Records carry the owning thread, the nesting depth at entry,
//! monotone enter/exit sequence numbers, microsecond timestamps
//! relative to a process epoch, and a list of typed attributes
//! ([`AttrValue`]), so callers can reconstruct the nesting tree — and
//! export it as a Chrome-trace timeline ([`crate::trace`]) — even when
//! several threads record concurrently.
//!
//! Attributes are attached from *inside* the span with [`attr`]: the
//! value lands on the innermost span currently open on the calling
//! thread, so deep callees (the propagation kernel reporting its sweep
//! count, the k-NN builder reporting edges) annotate the enclosing
//! stage span without threading a handle through every signature.
//!
//! [`with_capture`] wraps a closure and returns exactly the spans that
//! completed on the *current thread* during the closure — deterministic
//! even while other threads (e.g. parallel tests) record their own.

use crate::alloc::AllocSnapshot;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on retained records; beyond it new spans are timed but not
/// recorded, so a pathological loop cannot grow memory without bound.
const REGISTRY_CAP: usize = 262_144;

/// Global monotone sequence for enter/exit ordering across threads.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Global registry of completed spans.
static REGISTRY: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Next thread label; thread ids are process-local and monotone.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Process epoch all span timestamps are measured from (first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process epoch.
fn epoch_us(at: Instant) -> u64 {
    at.saturating_duration_since(epoch()).as_micros() as u64
}

thread_local! {
    /// Current nesting depth on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Stable per-thread label.
    static THREAD_LABEL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Attribute buffers of the spans currently open on this thread,
    /// innermost last. [`attr`] appends to the top buffer; the guard
    /// drop pops its buffer into the finished record.
    static OPEN_ATTRS: RefCell<Vec<Vec<(&'static str, AttrValue)>>> =
        const { RefCell::new(Vec::new()) };
}

/// One typed span attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned count (vertices, edges, batch size, bytes).
    U64(u64),
    /// A signed quantity (net allocation deltas).
    I64(i64),
    /// A measurement (residuals, rates).
    F64(f64),
    /// A short label.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    /// Render as a JSON value fragment.
    pub(crate) fn to_json(&self) -> String {
        match self {
            AttrValue::U64(v) => format!("{v}"),
            AttrValue::I64(v) => format!("{v}"),
            AttrValue::F64(v) => crate::json::json_number(*v),
            AttrValue::Str(s) => crate::json::json_string(s),
        }
    }
}

/// Attach `key = value` to the innermost span currently open on this
/// thread. A no-op when no span is open (so library code can annotate
/// unconditionally) and on keys already present (first write wins, so
/// an inner helper cannot clobber the stage's own attribute).
pub fn attr(key: &'static str, value: impl Into<AttrValue>) {
    let value = value.into();
    OPEN_ATTRS.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(top) = stack.last_mut() {
            if !top.iter().any(|(k, _)| *k == key) {
                top.push((key, value));
            }
        }
    });
}

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"test.propagate"`.
    pub name: &'static str,
    /// Label of the thread the span ran on.
    pub thread: u64,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: usize,
    /// Global sequence number taken at guard creation.
    pub enter_seq: u64,
    /// Global sequence number taken at guard drop.
    pub exit_seq: u64,
    /// Microseconds from the process epoch to guard creation.
    pub start_us: u64,
    /// Microseconds from the process epoch to guard drop. Never less
    /// than `start_us`; for a child span the `[start_us, end_us]`
    /// window is contained in its parent's.
    pub end_us: u64,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Typed attributes attached via [`attr`] while the span was open,
    /// in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// A record that was never timed — a named duration injected
    /// directly, used when converting legacy timing data into span
    /// form (e.g. `TestTimings` round-trips in `graphner-core`).
    pub fn synthetic(name: &'static str, seconds: f64) -> SpanRecord {
        let enter = SEQ.fetch_add(1, Ordering::Relaxed);
        let exit = SEQ.fetch_add(1, Ordering::Relaxed);
        let now = epoch_us(Instant::now());
        SpanRecord {
            name,
            thread: THREAD_LABEL.with(|t| *t),
            depth: DEPTH.with(|d| d.get()),
            enter_seq: enter,
            exit_seq: exit,
            start_us: now,
            end_us: now,
            seconds,
            attrs: Vec::new(),
        }
    }

    /// The attribute named `key`, if attached.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A plain wall-clock timer for call sites that want a duration as a
/// value (e.g. timing fields in result structs) rather than a recorded
/// span. This is the only sanctioned way to read the wall clock
/// outside this crate: the workspace audit forbids `Instant` anywhere
/// else, so all timing flows through `graphner-obs`.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: Instant::now() }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// RAII guard created by [`span`]; records on drop.
pub struct SpanGuard {
    name: &'static str,
    depth: usize,
    enter_seq: u64,
    start: Instant,
    alloc: AllocSnapshot,
}

/// Start a span; the returned guard records into the global registry
/// when dropped. Guards must drop in LIFO order on their thread (the
/// natural scoping of `let _s = span(..)`), or attributes attach to
/// the wrong span.
pub fn span(name: &'static str) -> SpanGuard {
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    OPEN_ATTRS.with(|stack| stack.borrow_mut().push(Vec::new()));
    SpanGuard {
        name,
        depth,
        enter_seq: SEQ.fetch_add(1, Ordering::Relaxed),
        start: Instant::now(),
        alloc: crate::alloc::snapshot(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ended = Instant::now();
        let seconds = ended.duration_since(self.start).as_secs_f64();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let mut attrs = OPEN_ATTRS.with(|stack| stack.borrow_mut().pop()).unwrap_or_default();
        if crate::alloc::enabled() {
            attrs.push(("mem.net_bytes", AttrValue::I64(self.alloc.net_bytes())));
            attrs.push(("mem.peak_bytes", AttrValue::U64(self.alloc.peak_delta_bytes())));
        }
        let record = SpanRecord {
            name: self.name,
            thread: THREAD_LABEL.with(|t| *t),
            depth: self.depth,
            enter_seq: self.enter_seq,
            exit_seq: SEQ.fetch_add(1, Ordering::Relaxed),
            start_us: epoch_us(self.start),
            end_us: epoch_us(ended),
            seconds,
            attrs,
        };
        let mut registry = crate::acquire(&REGISTRY);
        if registry.len() < REGISTRY_CAP {
            registry.push(record);
        }
    }
}

/// Run `f` and return its result together with every span that
/// completed **on the current thread** while it ran, ordered by exit.
///
/// # Current-thread scope — worker spans are *not* captured
///
/// The capture window filters by the calling thread's label as well as
/// the sequence window. Spans recorded by *other* threads — notably
/// the worker-pool threads executing `par_iter` chunks inside `f` —
/// are registered globally but **excluded from this return value**.
/// That filtering is what makes the capture deterministic while other
/// threads record concurrently, and it is why the stage spans feeding
/// `TestTimings` in `graphner-core` are opened on the session thread
/// around whole parallel stages, never inside chunk closures. Use
/// [`with_capture_all`] when worker-side spans are the point, or
/// [`drain`] for a whole-process export.
pub fn with_capture<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    let thread = THREAD_LABEL.with(|t| *t);
    let first_seq = SEQ.load(Ordering::Relaxed);
    let result = f();
    let last_seq = SEQ.load(Ordering::Relaxed);
    let mut captured: Vec<SpanRecord> = crate::acquire(&REGISTRY)
        .iter()
        .filter(|r| r.thread == thread && r.enter_seq >= first_seq && r.exit_seq <= last_seq)
        .cloned()
        .collect();
    captured.sort_by_key(|r| r.exit_seq);
    (result, captured)
}

/// Run `f` and return its result together with every span — from
/// **any** thread — that entered and exited during the closure,
/// ordered by exit sequence.
///
/// Unlike [`with_capture`], this sees pool-worker spans recorded while
/// `f` ran, so it is the right scope for asserting on worker-side
/// instrumentation. The price is isolation, not determinism of
/// content: spans from unrelated threads that happen to run during `f`
/// (e.g. parallel tests) are captured too, so filter by name before
/// asserting counts.
pub fn with_capture_all<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    let first_seq = SEQ.load(Ordering::Relaxed);
    let result = f();
    let last_seq = SEQ.load(Ordering::Relaxed);
    let mut captured: Vec<SpanRecord> = crate::acquire(&REGISTRY)
        .iter()
        .filter(|r| r.enter_seq >= first_seq && r.exit_seq <= last_seq)
        .cloned()
        .collect();
    captured.sort_by_key(|r| r.exit_seq);
    (result, captured)
}

/// Remove and return every record in the registry (all threads).
/// Chiefly for tools that export spans at end of run.
pub fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *crate::acquire(&REGISTRY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depth_and_sequencing() {
        let ((), spans) = with_capture(|| {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::hint::black_box(1 + 1);
            }
        });
        assert_eq!(spans.len(), 2);
        // children drop first, so exit order is inner then outer
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(outer.depth, inner.depth.wrapping_sub(1));
        assert!(inner.enter_seq > outer.enter_seq);
        assert!(inner.exit_seq < outer.exit_seq);
        assert!(inner.seconds <= outer.seconds);
        assert!(outer.seconds >= 0.0);
        // timestamp window of the child is contained in the parent's
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.end_us <= outer.end_us);
        assert!(outer.end_us >= outer.start_us);
    }

    #[test]
    fn capture_excludes_spans_outside_the_window() {
        {
            let _before = span("outside.before");
        }
        let ((), spans) = with_capture(|| {
            let _in = span("inside");
        });
        assert_eq!(spans.iter().filter(|s| s.name == "inside").count(), 1);
        assert!(spans.iter().all(|s| s.name != "outside.before"));
    }

    #[test]
    fn capture_is_per_thread_under_std_threads() {
        std::thread::scope(|scope| {
            // hammer the registry from two other threads the whole time
            let noise = |tag: &'static str| {
                move || {
                    for _ in 0..500 {
                        let _n = span(tag);
                    }
                }
            };
            scope.spawn(noise("noise.a"));
            scope.spawn(noise("noise.b"));
            let ((), spans) = with_capture(|| {
                let _mine = span("mine.outer");
                let _child = span("mine.child");
            });
            let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
            assert_eq!(names, vec!["mine.child", "mine.outer"]);
        });
    }

    #[test]
    fn capture_all_sees_other_threads_in_window() {
        let ((), spans) = with_capture_all(|| {
            let _mine = span("all.outer");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = span("all.worker");
                });
            });
        });
        assert_eq!(spans.iter().filter(|s| s.name == "all.worker").count(), 1);
        assert_eq!(spans.iter().filter(|s| s.name == "all.outer").count(), 1);
        let worker = spans.iter().find(|s| s.name == "all.worker").unwrap();
        let outer = spans.iter().find(|s| s.name == "all.outer").unwrap();
        assert_ne!(worker.thread, outer.thread);
    }

    #[test]
    fn synthetic_records_carry_given_seconds() {
        let record = SpanRecord::synthetic("legacy.phase", 1.25);
        assert_eq!(record.name, "legacy.phase");
        assert!((record.seconds - 1.25).abs() < 1e-15);
        assert!(record.exit_seq > record.enter_seq);
        assert_eq!(record.start_us, record.end_us);
        assert!(record.attrs.is_empty());
    }

    #[test]
    fn attrs_attach_to_innermost_open_span() {
        let ((), spans) = with_capture(|| {
            let _outer = span("attr.outer");
            attr("graph.vertices", 42u64);
            {
                let _inner = span("attr.inner");
                attr("propagate.sweeps", 3usize);
                attr("propagate.residual", 0.5f64);
            }
            attr("late", "tail");
        });
        let inner = spans.iter().find(|s| s.name == "attr.inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "attr.outer").unwrap();
        assert_eq!(inner.attr("propagate.sweeps"), Some(&AttrValue::U64(3)));
        assert_eq!(inner.attr("propagate.residual"), Some(&AttrValue::F64(0.5)));
        assert!(inner.attr("graph.vertices").is_none());
        assert_eq!(outer.attr("graph.vertices"), Some(&AttrValue::U64(42)));
        assert_eq!(outer.attr("late"), Some(&AttrValue::Str("tail".to_string())));
    }

    #[test]
    fn attr_first_write_wins_and_no_open_span_is_a_noop() {
        attr("orphan", 1u64); // no open span: must not panic or leak
        let ((), spans) = with_capture(|| {
            let _s = span("attr.dedup");
            attr("k", 1u64);
            attr("k", 2u64);
        });
        let s = spans.iter().find(|s| s.name == "attr.dedup").unwrap();
        assert_eq!(s.attr("k"), Some(&AttrValue::U64(1)));
        assert_eq!(s.attrs.iter().filter(|(k, _)| *k == "k").count(), 1);
    }

    #[test]
    fn mem_attrs_present_exactly_when_alloc_enabled() {
        let ((), spans) = with_capture(|| {
            let _s = span("mem.probe");
            std::hint::black_box(vec![0u8; 4096]);
        });
        let s = spans.iter().find(|s| s.name == "mem.probe").unwrap();
        assert_eq!(s.attr("mem.net_bytes").is_some(), crate::alloc::enabled());
        assert_eq!(s.attr("mem.peak_bytes").is_some(), crate::alloc::enabled());
    }
}
