//! Nestable RAII wall-clock spans with a thread-safe global registry.
//!
//! A [`span`] guard measures the wall time between its creation and its
//! drop, then appends a [`SpanRecord`] to the process-wide registry.
//! Records carry the owning thread, the nesting depth at entry, and
//! monotone enter/exit sequence numbers, so callers can reconstruct
//! the nesting tree even when several threads record concurrently.
//!
//! [`with_capture`] wraps a closure and returns exactly the spans that
//! completed on the *current thread* during the closure — deterministic
//! even while other threads (e.g. parallel tests) record their own.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on retained records; beyond it new spans are timed but not
/// recorded, so a pathological loop cannot grow memory without bound.
const REGISTRY_CAP: usize = 262_144;

/// Global monotone sequence for enter/exit ordering across threads.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Global registry of completed spans.
static REGISTRY: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Next thread label; thread ids are process-local and monotone.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Current nesting depth on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Stable per-thread label.
    static THREAD_LABEL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"test.propagate"`.
    pub name: &'static str,
    /// Label of the thread the span ran on.
    pub thread: u64,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: usize,
    /// Global sequence number taken at guard creation.
    pub enter_seq: u64,
    /// Global sequence number taken at guard drop.
    pub exit_seq: u64,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
}

impl SpanRecord {
    /// A record that was never timed — a named duration injected
    /// directly, used when converting legacy timing data into span
    /// form (e.g. `TestTimings` round-trips in `graphner-core`).
    pub fn synthetic(name: &'static str, seconds: f64) -> SpanRecord {
        let enter = SEQ.fetch_add(1, Ordering::Relaxed);
        let exit = SEQ.fetch_add(1, Ordering::Relaxed);
        SpanRecord {
            name,
            thread: THREAD_LABEL.with(|t| *t),
            depth: DEPTH.with(|d| d.get()),
            enter_seq: enter,
            exit_seq: exit,
            seconds,
        }
    }
}

/// A plain wall-clock timer for call sites that want a duration as a
/// value (e.g. timing fields in result structs) rather than a recorded
/// span. This is the only sanctioned way to read the wall clock
/// outside this crate: the workspace audit forbids `Instant` anywhere
/// else, so all timing flows through `graphner-obs`.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: Instant::now() }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// RAII guard created by [`span`]; records on drop.
pub struct SpanGuard {
    name: &'static str,
    depth: usize,
    enter_seq: u64,
    start: Instant,
}

/// Start a span; the returned guard records into the global registry
/// when dropped.
pub fn span(name: &'static str) -> SpanGuard {
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard { name, depth, enter_seq: SEQ.fetch_add(1, Ordering::Relaxed), start: Instant::now() }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let seconds = self.start.elapsed().as_secs_f64();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: self.name,
            thread: THREAD_LABEL.with(|t| *t),
            depth: self.depth,
            enter_seq: self.enter_seq,
            exit_seq: SEQ.fetch_add(1, Ordering::Relaxed),
            seconds,
        };
        let mut registry = crate::acquire(&REGISTRY);
        if registry.len() < REGISTRY_CAP {
            registry.push(record);
        }
    }
}

/// Run `f` and return its result together with every span that
/// completed **on the current thread** while it ran, ordered by exit.
///
/// Filtering by thread and sequence window makes the capture
/// deterministic even when other threads (parallel tests, worker
/// pools) are recording spans concurrently.
pub fn with_capture<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    let thread = THREAD_LABEL.with(|t| *t);
    let first_seq = SEQ.load(Ordering::Relaxed);
    let result = f();
    let last_seq = SEQ.load(Ordering::Relaxed);
    let mut captured: Vec<SpanRecord> = crate::acquire(&REGISTRY)
        .iter()
        .filter(|r| r.thread == thread && r.enter_seq >= first_seq && r.exit_seq <= last_seq)
        .cloned()
        .collect();
    captured.sort_by_key(|r| r.exit_seq);
    (result, captured)
}

/// Remove and return every record in the registry (all threads).
/// Chiefly for tools that export spans at end of run.
pub fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *crate::acquire(&REGISTRY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depth_and_sequencing() {
        let ((), spans) = with_capture(|| {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::hint::black_box(1 + 1);
            }
        });
        assert_eq!(spans.len(), 2);
        // children drop first, so exit order is inner then outer
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(outer.depth, inner.depth.wrapping_sub(1));
        assert!(inner.enter_seq > outer.enter_seq);
        assert!(inner.exit_seq < outer.exit_seq);
        assert!(inner.seconds <= outer.seconds);
        assert!(outer.seconds >= 0.0);
    }

    #[test]
    fn capture_excludes_spans_outside_the_window() {
        {
            let _before = span("outside.before");
        }
        let ((), spans) = with_capture(|| {
            let _in = span("inside");
        });
        assert_eq!(spans.iter().filter(|s| s.name == "inside").count(), 1);
        assert!(spans.iter().all(|s| s.name != "outside.before"));
    }

    #[test]
    fn capture_is_per_thread_under_std_threads() {
        std::thread::scope(|scope| {
            // hammer the registry from two other threads the whole time
            let noise = |tag: &'static str| {
                move || {
                    for _ in 0..500 {
                        let _n = span(tag);
                    }
                }
            };
            scope.spawn(noise("noise.a"));
            scope.spawn(noise("noise.b"));
            let ((), spans) = with_capture(|| {
                let _mine = span("mine.outer");
                let _child = span("mine.child");
            });
            let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
            assert_eq!(names, vec!["mine.child", "mine.outer"]);
        });
    }

    #[test]
    fn synthetic_records_carry_given_seconds() {
        let record = SpanRecord::synthetic("legacy.phase", 1.25);
        assert_eq!(record.name, "legacy.phase");
        assert!((record.seconds - 1.25).abs() < 1e-15);
        assert!(record.exit_seq > record.enter_seq);
    }
}
