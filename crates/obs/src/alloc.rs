//! Heap accounting through a counting global allocator.
//!
//! With the `obs-alloc` cargo feature enabled, this module installs a
//! zero-dependency [`GlobalAlloc`] wrapper around [`System`] that
//! maintains two process-wide registers:
//!
//! * **current** — live heap bytes (allocations minus deallocations);
//! * **peak** — high-water mark of *current* since process start or
//!   the last [`reset_peak`] call.
//!
//! The read API ([`enabled`], [`current_bytes`], [`peak_bytes`],
//! [`reset_peak`]) exists unconditionally so call sites need no `cfg`
//! guards: without the feature every read returns zero and
//! [`enabled`] returns `false`.
//!
//! Span integration: when the feature is on, every [`crate::span`]
//! guard snapshots the registers at entry and attaches `mem.net_bytes`
//! (signed live-byte delta) and `mem.peak_bytes` (peak-watermark
//! advance over the entry level) to its [`crate::SpanRecord`] on drop.
//! Under concurrency these are *process-wide* numbers — allocations
//! from other threads during the span are included — so treat them as
//! stage-level accounting (the perfsuite benchmarks run stages on one
//! thread with the pool quiesced between measurements), not as exact
//! per-callsite attribution.
//!
//! The accounting itself is two relaxed atomic RMWs per allocation —
//! cheap enough to leave on for benchmarking runs, but the feature
//! stays off by default so the hot paths of ordinary builds pay
//! nothing.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live heap bytes.
static CURRENT: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CURRENT`] since start or last [`reset_peak`].
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Whether the counting allocator is installed (the `obs-alloc`
/// feature). When `false`, all reads in this module return zero.
pub fn enabled() -> bool {
    cfg!(feature = "obs-alloc")
}

/// Live heap bytes right now (0 without `obs-alloc`).
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes since process start or the last
/// [`reset_peak`] (0 without `obs-alloc`).
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak register to the current live-byte level, so the next
/// [`peak_bytes`] reading reflects only allocation since this call.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// One snapshot of both registers, taken by span guards at entry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AllocSnapshot {
    pub(crate) current: u64,
    pub(crate) peak: u64,
}

pub(crate) fn snapshot() -> AllocSnapshot {
    AllocSnapshot { current: current_bytes(), peak: peak_bytes() }
}

impl AllocSnapshot {
    /// Signed live-byte delta from this snapshot to now.
    pub(crate) fn net_bytes(&self) -> i64 {
        current_bytes() as i64 - self.current as i64
    }

    /// Peak bytes held above the entry level while the span ran. When
    /// the global watermark did not advance during the span (the
    /// process-wide peak predates it), falls back to the non-negative
    /// net delta — a lower bound on the true span peak.
    pub(crate) fn peak_delta_bytes(&self) -> u64 {
        let peak_now = peak_bytes();
        if peak_now > self.peak {
            peak_now.saturating_sub(self.current)
        } else {
            self.net_bytes().max(0) as u64
        }
    }
}

#[cfg(feature = "obs-alloc")]
mod install {
    use super::{CURRENT, PEAK};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::Ordering;

    /// [`System`] plus the current/peak registers.
    struct CountingAlloc;

    fn add(n: u64) {
        let now = CURRENT.fetch_add(n, Ordering::Relaxed) + n;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(n: u64) {
        // Saturating: a reset race or foreign frees can only make the
        // register drift low, never wrap to u64::MAX.
        let _ = CURRENT
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| Some(c.saturating_sub(n)));
    }

    // SAFETY: every method delegates verbatim to `System` and only
    // adds relaxed atomic counter updates on top, so the allocator
    // contract (layout fidelity, no unwinding, thread safety) is
    // exactly `System`'s.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we
        // forward `layout` unchanged to `System`.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                add(layout.size() as u64);
            }
            p
        }

        // SAFETY: same delegation as `alloc`, zero-filled variant.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                add(layout.size() as u64);
            }
            p
        }

        // SAFETY: caller guarantees `ptr` came from this allocator
        // with `layout`; forwarded unchanged to `System`.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            sub(layout.size() as u64);
        }

        // SAFETY: caller guarantees `ptr`/`layout` pair per the
        // `GlobalAlloc::realloc` contract; forwarded unchanged.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                let old = layout.size() as u64;
                let new = new_size as u64;
                if new >= old {
                    add(new - old);
                } else {
                    sub(old - new);
                }
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_consistent_with_feature_state() {
        if enabled() {
            // exact levels race with concurrent test threads, so only
            // liveness is asserted: the registers move at all
            let block: Vec<u8> = Vec::with_capacity(1 << 16);
            assert!(current_bytes() > 0);
            assert!(peak_bytes() > 0);
            drop(block);
        } else {
            assert_eq!(current_bytes(), 0);
            assert_eq!(peak_bytes(), 0);
        }
    }

    #[test]
    fn snapshot_deltas_are_nonnegative_peaks() {
        let snap = snapshot();
        let block: Vec<u8> = Vec::with_capacity(1 << 12);
        // exact values race with concurrent test threads; the
        // invariants that must hold regardless: peak deltas never go
        // negative (u64) and the disabled registers never move
        if !enabled() {
            assert_eq!(snap.peak_delta_bytes(), 0);
            assert_eq!(snap.net_bytes(), 0);
        }
        let _ = (snap.peak_delta_bytes(), snap.net_bytes()); // must not panic
        drop(block);
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let before = peak_bytes();
        reset_peak();
        // concurrent test threads may allocate between the store and
        // the load, so only the direction is asserted: a reset never
        // raises the watermark above where live bytes can push it
        assert!(peak_bytes() <= before.max(current_bytes()) + (1 << 20));
    }
}
