//! Observability for the GraphNER pipeline, with zero external
//! dependencies.
//!
//! Three pillars, each usable on its own:
//!
//! * [`span`] — nestable RAII wall-clock timers. `let _s =
//!   span("test.propagate");` records a [`SpanRecord`] into a global
//!   registry when the guard drops. [`with_capture`] scopes a
//!   deterministic view of the spans recorded by the current thread,
//!   which is how `TestTimings` in `graphner-core` is built.
//! * [`metrics`] — process-wide named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s with p50/p95/p99 readout, exportable
//!   as JSON or JSONL through a [`Registry`].
//! * [`logger`] — a progress logger filtered by the `GRAPHNER_LOG`
//!   environment variable (`off` | `summary` | `debug`; default
//!   `summary`). Output goes to **stderr** so machine-readable stdout
//!   (the bench tables) stays clean at every level.
//!
//! Two further modules build on the span pillar:
//!
//! * [`trace`] — lowers captured spans (with their typed [`AttrValue`]
//!   attributes, attached via [`attr`]) to Chrome Trace Event Format
//!   JSON that Perfetto opens directly; a deterministic logical clock
//!   makes identical runs export byte-identical traces.
//! * [`alloc`] — a counting global allocator behind the `obs-alloc`
//!   cargo feature; when enabled, span guards attach `mem.net_bytes`
//!   and `mem.peak_bytes` to their records, and `current_bytes`/
//!   `peak_bytes`/`reset_peak` expose process-wide heap registers.
//!
//! The layer is hand-rolled rather than built on `tracing` +
//! `metrics`-style crates deliberately: the repo builds fully offline
//! against in-repo stand-ins, and the pipeline needs only a narrow
//! slice of that machinery. See DESIGN.md ("Observability") for the
//! trade-off discussion.

pub mod alloc;
pub(crate) mod json;
pub mod logger;
pub mod metrics;
pub mod span;
pub mod trace;

pub use logger::{level, set_level, Level};
pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram, Registry};
pub use span::{
    attr, span, with_capture, with_capture_all, AttrValue, SpanGuard, SpanRecord, Stopwatch,
};
pub use trace::{
    chrome_trace_json, trace_events, TraceClock, TraceEvent, TracePhase, TRACE_CLOCK_ENV,
};

/// Lock a mutex, recovering the data if a panicking thread poisoned
/// it. Every mutex in this crate guards plain bookkeeping state
/// (metric maps, span buffers) that remains valid after a panic
/// elsewhere, so observability keeps working during unwinding instead
/// of turning one panic into a cascade.
pub(crate) fn acquire<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
