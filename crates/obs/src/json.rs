//! Minimal JSON *encoding* helpers shared by the metric registry and
//! the trace exporter. Encoding only — the crate never parses JSON.

/// JSON string literal with the escapes RFC 8259 requires.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A float as a JSON number (`null` when non-finite).
pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        // shortest round-trip representation; always contains enough
        // info to reparse exactly
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An optional float as a JSON number.
pub(crate) fn json_opt_number(v: Option<f64>) -> String {
    match v {
        Some(v) => json_number(v),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_controls_and_quotes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_render_null_when_non_finite() {
        assert_eq!(json_number(2.5), "2.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_opt_number(None), "null");
    }
}
