//! Chrome-trace-format export of the span registry.
//!
//! [`chrome_trace_json`] serializes completed [`SpanRecord`]s into the
//! Trace Event Format JSON that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) open directly: one `B`/`E`
//! (duration begin/end) event pair per span, one track per recording
//! thread, with the span's typed attributes as the `args` of the `B`
//! event. Experiment binaries write one via `--trace-out <path>` (see
//! `graphner-bench`).
//!
//! # Clocks and determinism
//!
//! Timestamps come from one of two clocks ([`TraceClock`]):
//!
//! * [`TraceClock::Wall`] — microseconds since the earliest exported
//!   span began. Real durations, the clock to *look at* a run with.
//! * [`TraceClock::Logical`] — the span's global enter/exit sequence
//!   numbers, rebased to the smallest exported one. Every event gets a
//!   distinct, scheduling-independent timestamp, so two identical
//!   single-threaded runs export **byte-identical** JSON (asserted by
//!   `tests/determinism.rs`). Durations are meaningless; structure and
//!   attributes are exact.
//!
//! Both clocks rebase against the minimum over the exported set, and
//! thread labels are renumbered densely in order of first appearance,
//! so the output never leaks process-lifetime state (how many spans or
//! threads existed before the capture).
//!
//! # Nesting
//!
//! Events are emitted in global sequence order. Per thread, span
//! guards enter and exit in LIFO order, so the emitted `B`/`E` stream
//! of each track is balanced and properly nested — `tests/properties.rs`
//! property-checks this over random span trees.

use crate::span::{AttrValue, SpanRecord};
use std::collections::BTreeMap;

/// Which clock trace timestamps are drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceClock {
    /// Microseconds since the earliest exported span's start.
    Wall,
    /// Rebased global sequence numbers: deterministic, not temporal.
    Logical,
}

/// Environment variable selecting the trace clock (`wall` | `logical`).
pub const TRACE_CLOCK_ENV: &str = "GRAPHNER_TRACE_CLOCK";

impl TraceClock {
    /// Read [`TRACE_CLOCK_ENV`] (`logical` selects the deterministic
    /// clock; anything else, including unset, means wall time).
    pub fn from_env() -> TraceClock {
        match std::env::var(TRACE_CLOCK_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("logical") => TraceClock::Logical,
            _ => TraceClock::Wall,
        }
    }
}

/// Begin or end of one span on one track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// Duration-begin (`"ph":"B"`); carries the span's attributes.
    Begin,
    /// Duration-end (`"ph":"E"`).
    End,
}

/// One Chrome-trace duration event, the structured form behind
/// [`chrome_trace_json`]. Exposed so tests can assert on balance and
/// nesting without parsing JSON.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Begin or end.
    pub phase: TracePhase,
    /// Timestamp in the selected clock's units (µs for wall).
    pub ts: u64,
    /// Dense track id (threads renumbered by first appearance).
    pub tid: u64,
    /// Attributes (begin events only; empty on end events).
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Global ordering key: the span's enter or exit sequence number.
    pub seq: u64,
}

/// Lower the spans to an event stream: two events per span, sorted by
/// global sequence, timestamps rebased per `clock`, thread labels
/// renumbered densely by first appearance.
pub fn trace_events(spans: &[SpanRecord], clock: TraceClock) -> Vec<TraceEvent> {
    if spans.is_empty() {
        return Vec::new();
    }
    let min_seq = spans.iter().map(|s| s.enter_seq).min().unwrap_or(0);
    let min_us = spans.iter().map(|s| s.start_us).min().unwrap_or(0);

    // dense tids by order of first appearance (earliest enter_seq)
    let mut first_seen: BTreeMap<u64, u64> = BTreeMap::new();
    let mut by_enter: Vec<&SpanRecord> = spans.iter().collect();
    by_enter.sort_by_key(|s| s.enter_seq);
    for s in &by_enter {
        let next = first_seen.len() as u64;
        first_seen.entry(s.thread).or_insert(next);
    }

    let mut events = Vec::with_capacity(spans.len() * 2);
    for s in spans {
        let tid = first_seen[&s.thread];
        let (begin_ts, end_ts) = match clock {
            TraceClock::Wall => (s.start_us - min_us, s.end_us - min_us),
            TraceClock::Logical => (s.enter_seq - min_seq, s.exit_seq - min_seq),
        };
        events.push(TraceEvent {
            name: s.name,
            phase: TracePhase::Begin,
            ts: begin_ts,
            tid,
            attrs: s.attrs.clone(),
            seq: s.enter_seq,
        });
        events.push(TraceEvent {
            name: s.name,
            phase: TracePhase::End,
            ts: end_ts,
            tid,
            attrs: Vec::new(),
            seq: s.exit_seq,
        });
    }
    events.sort_by_key(|e| e.seq);
    events
}

/// Serialize spans as a Chrome Trace Event Format JSON document.
///
/// The output is a single `{"traceEvents":[...]}` object: per-track
/// metadata naming the process and threads, then one `B` and one `E`
/// event per span in global sequence order. Open the file directly in
/// Perfetto or `chrome://tracing`.
pub fn chrome_trace_json(spans: &[SpanRecord], clock: TraceClock) -> String {
    let events = trace_events(spans, clock);
    let mut lines: Vec<String> = Vec::with_capacity(events.len() + 4);
    lines.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"graphner\"}}"
            .to_string(),
    );
    let num_tracks = events.iter().map(|e| e.tid + 1).max().unwrap_or(0);
    for tid in 0..num_tracks {
        let label = if tid == 0 { "main".to_string() } else { format!("thread-{tid}") };
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            crate::json::json_string(&label)
        ));
    }
    for e in &events {
        let ph = match e.phase {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
        };
        let mut line = format!(
            "{{\"name\":{},\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            crate::json::json_string(e.name),
            e.tid,
            e.ts
        );
        if !e.attrs.is_empty() {
            let args: Vec<String> = e
                .attrs
                .iter()
                .map(|(k, v)| format!("{}:{}", crate::json::json_string(k), v.to_json()))
                .collect();
            line.push_str(&format!(",\"args\":{{{}}}", args.join(",")));
        }
        line.push('}');
        lines.push(line);
    }
    format!("{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n", lines.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{attr, span, with_capture};

    fn sample_spans() -> Vec<SpanRecord> {
        let ((), spans) = with_capture(|| {
            let _outer = span("trace.outer");
            attr("graph.vertices", 7u64);
            {
                let _inner = span("trace.inner");
                attr("propagate.residual", 0.25f64);
            }
        });
        spans
    }

    fn phases(events: &[TraceEvent]) -> Vec<(&'static str, TracePhase)> {
        events.iter().map(|e| (e.name, e.phase)).collect()
    }

    #[test]
    fn events_are_balanced_and_sequenced() {
        let spans = sample_spans();
        let events = trace_events(&spans, TraceClock::Logical);
        assert_eq!(
            phases(&events),
            vec![
                ("trace.outer", TracePhase::Begin),
                ("trace.inner", TracePhase::Begin),
                ("trace.inner", TracePhase::End),
                ("trace.outer", TracePhase::End),
            ]
        );
        // logical clock rebases to zero and keeps every ts distinct
        assert_eq!(events[0].ts, 0);
        let mut ts: Vec<u64> = events.iter().map(|e| e.ts).collect();
        ts.dedup();
        assert_eq!(ts.len(), events.len());
        // attributes ride on the begin events only
        assert!(events[0].attrs.iter().any(|(k, _)| *k == "graph.vertices"));
        assert!(events[2].attrs.is_empty());
    }

    #[test]
    fn wall_clock_contains_child_window_in_parent() {
        let spans = sample_spans();
        let events = trace_events(&spans, TraceClock::Wall);
        let at = |name: &str, phase: TracePhase| {
            events.iter().find(|e| e.name == name && e.phase == phase).unwrap().ts
        };
        assert!(at("trace.inner", TracePhase::Begin) >= at("trace.outer", TracePhase::Begin));
        assert!(at("trace.inner", TracePhase::End) <= at("trace.outer", TracePhase::End));
    }

    #[test]
    fn json_document_shape_and_attr_rendering() {
        let spans = sample_spans();
        let json = chrome_trace_json(&spans, TraceClock::Logical);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
        assert!(json.contains("\"name\":\"trace.outer\",\"ph\":\"B\""));
        // under obs-alloc the args object also carries mem.* attrs, so
        // match the rendered pair rather than the whole object
        assert!(json.contains("\"args\":{\"graph.vertices\":7"));
        assert!(json.contains("\"propagate.residual\":0.25"));
        assert!(json.contains("\"thread_name\""));
        // two B + two E + process + one thread metadata
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn logical_export_is_identical_across_identical_captures() {
        // under obs-alloc the mem.* attrs legitimately vary run to run
        // (allocator state is process history); everything else must not
        let strip = |mut spans: Vec<SpanRecord>| {
            for s in &mut spans {
                s.attrs.retain(|(k, _)| !k.starts_with("mem."));
            }
            spans
        };
        let a = chrome_trace_json(&strip(sample_spans()), TraceClock::Logical);
        let b = chrome_trace_json(&strip(sample_spans()), TraceClock::Logical);
        assert_eq!(a, b, "logical-clock traces of identical runs must match byte-for-byte");
    }

    #[test]
    fn empty_span_set_exports_an_openable_document() {
        let json = chrome_trace_json(&[], TraceClock::Wall);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("process_name"));
    }
}
