//! Env-filtered progress logging.
//!
//! The level is read once from `GRAPHNER_LOG`:
//!
//! | value | effect |
//! |---|---|
//! | `off` / `0` / `none` | no log output at all |
//! | `summary` (default, also any unknown value) | per-stage summaries |
//! | `debug` / `trace` | per-iteration detail on top of summaries |
//!
//! All output goes to **stderr**, so stdout (bench tables, piped
//! output) is identical whatever the level. Use through the macros:
//!
//! ```
//! graphner_obs::obs_summary!("propagation: {} iterations", 3);
//! graphner_obs::obs_debug!("iter {:3}: residual {:.3e}", 1, 0.5);
//! ```
//!
//! The macros skip formatting entirely when filtered out, so logging
//! in hot loops costs one atomic load at `off`/`summary`.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No output.
    Off = 0,
    /// Stage-level summaries.
    Summary = 1,
    /// Per-iteration detail.
    Debug = 2,
}

/// Cached level; `u8::MAX` means "not read from the env yet".
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

fn parse(value: &str) -> Level {
    match value.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "none" => Level::Off,
        "debug" | "trace" | "2" => Level::Debug,
        _ => Level::Summary,
    }
}

/// The active level (reads `GRAPHNER_LOG` on first call).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Summary,
        2 => Level::Debug,
        _ => {
            let level = std::env::var("GRAPHNER_LOG").map(|v| parse(&v)).unwrap_or(Level::Summary);
            LEVEL.store(level as u8, Ordering::Relaxed);
            level
        }
    }
}

/// Override the level programmatically (tools and tests).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Is `at` visible under the active level?
pub fn enabled(at: Level) -> bool {
    at <= level() && at != Level::Off
}

/// Write one log line to stderr. Callers go through the macros, which
/// check [`enabled`] first.
pub fn emit(args: std::fmt::Arguments<'_>) {
    eprintln!("{args}");
}

/// Log at [`Level::Summary`].
#[macro_export]
macro_rules! obs_summary {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Summary) {
            $crate::logger::emit(format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Debug) {
            $crate::logger::emit(format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_maps_all_documented_values() {
        assert_eq!(parse("off"), Level::Off);
        assert_eq!(parse("0"), Level::Off);
        assert_eq!(parse("NONE"), Level::Off);
        assert_eq!(parse("summary"), Level::Summary);
        assert_eq!(parse("anything-else"), Level::Summary);
        assert_eq!(parse("debug"), Level::Debug);
        assert_eq!(parse("Trace"), Level::Debug);
    }

    #[test]
    fn enabled_respects_ordering_and_off() {
        set_level(Level::Off);
        assert!(!enabled(Level::Summary));
        assert!(!enabled(Level::Debug));
        set_level(Level::Summary);
        assert!(enabled(Level::Summary));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Summary));
        assert!(enabled(Level::Debug));
        // leave a deterministic state for other tests in this process
        set_level(Level::Off);
    }
}
