//! GraphNER — Algorithm 1 of the paper.
//!
//! ```text
//! procedure TRAIN
//!   CRF_train(D_l)
//!   X_ref, V_l ← Set_ReferenceDistributions(D_l)
//! procedure TEST
//!   P_s, T_s ← CRF_Posteriors_And_Transitions(D_l ∪ D_u)
//!   X ← Average(P_s, V)
//!   X ← Propagate(X, X_ref, μ, ν, #iterations)
//!   P'_s ← Combine(P_s, X, V, α)
//!   finalLabels ← Viterbi(P'_s, T_s)
//! ```
//!
//! The setting is transductive: the only unlabelled data used in graph
//! construction is the test set, and train/test run exactly once.

use crate::config::GraphNerConfig;
use crate::pipeline::TestSession;
use crate::stats::GraphStats;
use crate::timings::TestTimings;
use graphner_banner::{DistributionalResources, NerConfig, NerModel};
use graphner_crf::TrainReport;
use graphner_graph::LabelDist;
use graphner_obs::Stopwatch;
use graphner_text::{BioTag, Corpus, TrigramInterner, NUM_TAGS};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// A trained GraphNER model: the base CRF tagger plus the reference
/// distributions over labelled 3-grams.
#[derive(Clone, Debug)]
pub struct GraphNer {
    pub(crate) base: NerModel,
    pub(crate) cfg: GraphNerConfig,
    pub(crate) interner: TrigramInterner,
    pub(crate) x_ref: FxHashMap<u32, LabelDist>,
    /// Tag-level transition factors `T_s` used by the final Viterbi
    /// decode: the empirical transition probabilities of the training
    /// tags *divided by the tag prior*, `T[y][y'] = P(y'|y) / P(y')`.
    /// The node beliefs fed to the decode are posteriors that already
    /// contain the label prior, so raw conditional probabilities would
    /// double-count it and crush the rare B/I tags; the likelihood-ratio
    /// form contributes only the sequential dependence beyond the prior
    /// (and still zeroes out ill-formed transitions such as `O → I`).
    pub(crate) transitions: [[f64; NUM_TAGS]; NUM_TAGS],
    /// The labelled corpus, retained because the transductive test
    /// procedure runs the CRF and graph construction over `D_l ∪ D_u`.
    /// Behind an [`Arc`] so [`GraphNer::reconfigured`] and `clone` —
    /// called once per ablation row by the sweep binaries — share it
    /// instead of copying every sentence.
    pub(crate) train_corpus: Arc<Corpus>,
}

/// Prior-scaled, tempered, bounded empirical transition factors
/// `min((P(y'|y) / P(y'))^τ, cap)` from gold tag bigrams, with add-k
/// smoothing on the bigram counts. `k` and `cap` come from
/// [`GraphNerConfig::trans_add_k`] and
/// [`GraphNerConfig::trans_ratio_cap`].
///
/// The cap matters on corpora where a tag is almost absent (the AML
/// profile has essentially no I tags): there the raw ratio
/// `P(I|I)/P(I)` grows unboundedly and a decode using it produces
/// sentence-long I runs out of nothing but the propagation's uniform
/// floor. A trained CRF never exhibits this because L2 regularization
/// bounds its transition potentials; the cap plays the same role here.
pub(crate) fn empirical_transitions(
    corpus: &Corpus,
    k: f64,
    tau: f64,
    cap: f64,
) -> [[f64; NUM_TAGS]; NUM_TAGS] {
    let mut counts = [[k; NUM_TAGS]; NUM_TAGS];
    let mut unigrams = [k * NUM_TAGS as f64; NUM_TAGS];
    for sentence in &corpus.sentences {
        if let Some(tags) = &sentence.tags {
            for &t in tags {
                unigrams[t.index()] += 1.0;
            }
            for w in tags.windows(2) {
                counts[w[0].index()][w[1].index()] += 1.0;
            }
        }
    }
    let total: f64 = unigrams.iter().sum();
    let mut out = [[0.0; NUM_TAGS]; NUM_TAGS];
    for y in 0..NUM_TAGS {
        let z: f64 = counts[y].iter().sum();
        for yp in 0..NUM_TAGS {
            let cond = counts[y][yp] / z;
            let prior = unigrams[yp] / total;
            out[y][yp] = (cond / prior).powf(tau).min(cap);
        }
    }
    crate::check::assert_finite_matrix("empirical transitions", &out);
    out
}

/// Result of training.
#[derive(Clone, Debug)]
pub struct TrainOutput {
    /// Base-CRF training report.
    pub report: TrainReport,
    /// Wall seconds spent training the base CRF.
    pub crf_seconds: f64,
    /// Wall seconds spent setting reference distributions (line 3).
    pub ref_seconds: f64,
}

/// Result of the transductive test procedure.
#[derive(Clone, Debug)]
pub struct TestOutput {
    /// Final BIO labels per test sentence (Algorithm 1, line 9).
    pub predictions: Vec<Vec<BioTag>>,
    /// Baseline labels for the same sentences: a posterior re-decode of
    /// the already-computed test posteriors under the same transition
    /// factors as the graph decode, so the comparison isolates the
    /// graph's contribution (and α = 1 makes the two coincide) without
    /// a second CRF inference pass.
    pub base_predictions: Vec<Vec<BioTag>>,
    /// Graph statistics (§III-D).
    pub stats: GraphStats,
    /// Stage wall-times (Fig. 2), reconstructed from the recorded
    /// `graphner-obs` stage spans.
    pub timings: TestTimings,
    /// Propagation sweeps actually performed (equation 2).
    pub propagation_iterations: usize,
    /// Whether the final propagation residual fell below
    /// [`graphner_graph::CONVERGENCE_TOL`] within the sweep budget.
    pub converged: bool,
}

impl GraphNer {
    /// TRAIN (Algorithm 1, lines 1–3): train the base CRF and set the
    /// reference distributions.
    pub fn train(
        train: &Corpus,
        base_cfg: &NerConfig,
        dist: Option<DistributionalResources>,
        cfg: GraphNerConfig,
    ) -> (GraphNer, TrainOutput) {
        let t0 = Stopwatch::start();
        let (base, report) = NerModel::train(train, base_cfg, dist);
        let crf_seconds = t0.elapsed_seconds();

        // Line 3: X_ref(v) = average gold label distribution of every
        // 3-gram v occurring in D_l.
        let t1 = Stopwatch::start();
        let mut interner = TrigramInterner::new();
        let mut sums: FxHashMap<u32, ([f64; NUM_TAGS], f64)> = FxHashMap::default();
        for sentence in &train.sentences {
            let tags = sentence.tags.as_ref().expect("labelled corpus");
            for i in 0..sentence.len() {
                let v = interner.intern_at(sentence, i);
                let entry = sums.entry(v).or_insert(([0.0; NUM_TAGS], 0.0));
                entry.0[tags[i].index()] += 1.0;
                entry.1 += 1.0;
            }
        }
        let x_ref: FxHashMap<u32, LabelDist> = sums
            .into_iter()
            .map(|(v, (counts, n))| {
                let mut d = [0.0; NUM_TAGS];
                for (dy, cy) in d.iter_mut().zip(counts) {
                    *dy = cy / n;
                }
                (v, d)
            })
            .collect();
        if cfg!(debug_assertions) {
            for d in x_ref.values() {
                crate::check::assert_distribution("X_ref (train)", d);
            }
        }
        let ref_seconds = t1.elapsed_seconds();

        let transitions =
            empirical_transitions(train, cfg.trans_add_k, cfg.trans_power, cfg.trans_ratio_cap);
        (
            GraphNer {
                base,
                cfg,
                interner,
                x_ref,
                transitions,
                train_corpus: Arc::new(train.clone()),
            },
            TrainOutput { report, crf_seconds, ref_seconds },
        )
    }

    /// The base tagger.
    pub fn base(&self) -> &NerModel {
        &self.base
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GraphNerConfig {
        &self.cfg
    }

    /// Number of labelled 3-grams (`|V_l|`).
    pub fn num_labelled_vertices(&self) -> usize {
        self.x_ref.len()
    }

    /// The prior-scaled transition factors used by the final decode.
    pub fn transitions(&self) -> [[f64; NUM_TAGS]; NUM_TAGS] {
        self.transitions
    }

    /// A copy of this model with a different GraphNER configuration but
    /// the same trained base CRF and reference distributions — the tool
    /// for the Table III ablations, where only the graph construction
    /// and propagation settings vary.
    pub fn reconfigured(&self, cfg: GraphNerConfig) -> GraphNer {
        let transitions = empirical_transitions(
            &self.train_corpus,
            cfg.trans_add_k,
            cfg.trans_power,
            cfg.trans_ratio_cap,
        );
        GraphNer {
            base: self.base.clone(),
            cfg,
            interner: self.interner.clone(),
            x_ref: self.x_ref.clone(),
            transitions,
            train_corpus: Arc::clone(&self.train_corpus),
        }
    }

    /// TEST (Algorithm 1, lines 4–9), transductively over this test set.
    ///
    /// Thin driver: opens a one-shot [`TestSession`] and runs it under
    /// this model's configuration. Sweeps that vary only the
    /// configuration (Tables III and IV) should instead hold one
    /// session per test corpus and call [`TestSession::run`] per row,
    /// reusing the cached posteriors and graph artifacts. Each stage
    /// runs inside a `graphner-obs` span named by
    /// [`crate::timings::stage`]; the returned [`TestTimings`] is built
    /// from those recorded spans.
    pub fn test(&self, test: &Corpus) -> TestOutput {
        TestSession::new(self, test).run(&self.cfg)
    }
}

/// Build a BC2-format annotation set from per-sentence predictions.
pub fn annotations_from_predictions(
    corpus: &Corpus,
    predictions: &[Vec<BioTag>],
) -> graphner_text::AnnotationSet {
    use graphner_text::bc2::Bc2Annotation;
    use graphner_text::sentence::tags_to_mentions;
    assert_eq!(corpus.len(), predictions.len());
    let mut set = graphner_text::AnnotationSet::new();
    for (sentence, tags) in corpus.sentences.iter().zip(predictions) {
        for m in tags_to_mentions(tags) {
            set.add_primary(Bc2Annotation::from_mention(sentence, &m));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphFeatureSet;
    use graphner_crf::{viterbi_tags, Order, TrainConfig};
    use graphner_graph::PropagationParams;
    use graphner_text::{tokenize, BioTag::*, Sentence};

    fn quick_base_cfg() -> NerConfig {
        NerConfig {
            order: Order::One,
            train: TrainConfig { max_iterations: 60, l2: 0.1, ..Default::default() },
            min_feature_count: 1,
        }
    }

    fn toy_train() -> Corpus {
        let mk =
            |id: &str, text: &str, tags: Vec<BioTag>| Sentence::labelled(id, tokenize(text), tags);
        Corpus::from_sentences(vec![
            mk("s0", "the WT1 gene was expressed", vec![O, B, O, O, O]),
            mk("s1", "mutation of SH2B3 was detected", vec![O, O, B, O, O]),
            mk("s2", "the KRAS gene was mutated", vec![O, B, O, O, O]),
            mk("s3", "expression of TP53 was low", vec![O, O, B, O, O]),
            mk("s4", "the patient was treated", vec![O, O, O, O]),
            mk("s5", "no mutation was found", vec![O, O, O, O]),
        ])
    }

    fn toy_test() -> Corpus {
        Corpus::from_sentences(vec![
            Sentence::labelled("t0", tokenize("the FLT3 gene was expressed"), vec![O, B, O, O, O]),
            Sentence::labelled("t1", tokenize("no mutation was found"), vec![O, O, O, O]),
        ])
    }

    #[test]
    fn train_sets_reference_distributions() {
        let (gner, out) =
            GraphNer::train(&toy_train(), &quick_base_cfg(), None, GraphNerConfig::default());
        assert!(out.report.objective.is_finite());
        assert!(out.crf_seconds >= 0.0);
        // every unique trigram of the training corpus is a labelled vertex
        assert!(gner.num_labelled_vertices() > 20);
    }

    #[test]
    fn reference_distributions_are_gold_averages() {
        let (gner, _) =
            GraphNer::train(&toy_train(), &quick_base_cfg(), None, GraphNerConfig::default());
        // trigram [the WT1 gene] occurs once with centre tag B
        let v = gner.interner.lookup_at(&toy_train().sentences[0], 1).unwrap();
        let d = gner.x_ref[&v];
        assert_eq!(d, [1.0, 0.0, 0.0]);
        // trigram [<s> the WT1] centre "the" tagged O
        let v2 = gner.interner.lookup_at(&toy_train().sentences[0], 0).unwrap();
        assert_eq!(gner.x_ref[&v2], [0.0, 0.0, 1.0]);
    }

    #[test]
    fn test_produces_predictions_for_every_sentence() {
        let train = toy_train();
        let test = toy_test();
        let (gner, _) = GraphNer::train(&train, &quick_base_cfg(), None, GraphNerConfig::default());
        let out = gner.test(&test.without_tags());
        assert_eq!(out.predictions.len(), 2);
        assert_eq!(out.predictions[0].len(), 5);
        assert_eq!(out.base_predictions.len(), 2);
        // graph covers train + test trigrams
        assert!(out.stats.num_vertices > gner.num_labelled_vertices());
        assert!(out.stats.pct_labelled > 0.5);
    }

    #[test]
    fn graphner_finds_gene_in_seen_context() {
        let train = toy_train();
        let test = toy_test();
        let (gner, _) = GraphNer::train(&train, &quick_base_cfg(), None, GraphNerConfig::default());
        let out = gner.test(&test.without_tags());
        // "the FLT3 gene": unseen symbol in a heavily seen gene context
        assert_eq!(out.predictions[0][1], B, "predictions: {:?}", out.predictions[0]);
        // non-gene sentence stays clean
        assert!(out.predictions[1].iter().all(|&t| t == O));
    }

    #[test]
    fn alpha_one_reduces_to_base_crf() {
        let train = toy_train();
        let test = toy_test();
        let cfg = GraphNerConfig {
            alpha: 1.0,
            propagation: PropagationParams { mu: 1e-6, nu: 1e-6, iterations: 1, self_anchor: 0.5 },
            ..Default::default()
        };
        let (gner, _) = GraphNer::train(&train, &quick_base_cfg(), None, cfg);
        let out = gner.test(&test.without_tags());
        // with α = 1 the combined beliefs are exactly the CRF posteriors;
        // decoding may still differ from base Viterbi only through the
        // posterior-vs-pathscore decode, so compare against posterior
        // decode of the same node beliefs under the same transitions
        for (sentence, pred) in test.sentences.iter().zip(&out.predictions) {
            let post = gner.base().posteriors(sentence);
            let expect = viterbi_tags(&post, &gner.transitions());
            assert_eq!(pred, &expect);
        }
    }

    #[test]
    fn lexical_feature_set_runs_end_to_end() {
        let cfg =
            GraphNerConfig { feature_set: GraphFeatureSet::Lexical, ..GraphNerConfig::default() };
        let (gner, _) = GraphNer::train(&toy_train(), &quick_base_cfg(), None, cfg);
        let out = gner.test(&toy_test().without_tags());
        assert_eq!(out.predictions.len(), 2);
    }

    #[test]
    fn annotations_round_trip() {
        let test = toy_test();
        let preds = vec![vec![O, B, O, O, O], vec![O, O, O, O]];
        let set = annotations_from_predictions(&test, &preds);
        assert_eq!(set.num_primary(), 1);
        let ann = &set.primary["t0"][0];
        assert_eq!(ann.text, "FLT3");
    }

    #[test]
    fn timings_are_populated() {
        let (gner, _) =
            GraphNer::train(&toy_train(), &quick_base_cfg(), None, GraphNerConfig::default());
        let out = gner.test(&toy_test().without_tags());
        let t = &out.timings;
        assert!(t.total() >= t.graph_seconds);
        assert!(t.total() > 0.0);
        // every stage span was recorded
        assert!(t.posterior_seconds > 0.0);
        assert!(t.graph_seconds > 0.0);
        assert!(t.average_seconds > 0.0);
        assert!(t.propagate_seconds > 0.0);
        assert!(t.decode_seconds > 0.0);
        // the propagation report surfaces through the output
        assert_eq!(out.propagation_iterations, gner.config().propagation.iterations);
    }
}

/// Inductive (self-training) extension — the setting of Subramanya et
/// al. (2010) that the paper explicitly contrasts with its transductive
/// choice: "they expand the labelled data-set by treating the output of
/// Viterbi decoding as correct and iterating over the train and test
/// procedures, overwriting these labels until convergence or the 10th
/// iteration."
impl GraphNer {
    /// Run the inductive loop: repeatedly run the transductive test,
    /// adopt the predicted labels as reference distributions for the
    /// test 3-grams, and re-test. Stops when predictions converge or
    /// after `max_rounds` (the paper's reference uses 10).
    ///
    /// Returns the final test output plus the number of rounds run.
    pub fn test_inductive(&self, test: &Corpus, max_rounds: usize) -> (TestOutput, usize) {
        let mut current = self.clone();
        let mut out = current.test(test);
        for round in 1..max_rounds {
            // expand the reference distributions with the predicted
            // labels of the test sentences (self-training)
            let mut next = current.clone();
            let mut sums: FxHashMap<u32, ([f64; NUM_TAGS], f64)> = FxHashMap::default();
            for (sentence, tags) in test.sentences.iter().zip(&out.predictions) {
                for i in 0..sentence.len() {
                    let v = next.interner.intern_at(sentence, i);
                    let e = sums.entry(v).or_insert(([0.0; NUM_TAGS], 0.0));
                    e.0[tags[i].index()] += 1.0;
                    e.1 += 1.0;
                }
            }
            for (v, (counts, n)) in sums {
                // adopt predicted labels as references, but never
                // overwrite vertices carrying true labelled-data
                // references
                if !self.x_ref.contains_key(&v) {
                    let mut d = [0.0; NUM_TAGS];
                    for (dy, cy) in d.iter_mut().zip(counts) {
                        *dy = cy / n;
                    }
                    next.x_ref.insert(v, d);
                }
            }
            let new_out = next.test(test);
            let converged = new_out.predictions == out.predictions;
            current = next;
            out = new_out;
            if converged {
                return (out, round + 1);
            }
        }
        (out, max_rounds)
    }
}

#[cfg(test)]
mod inductive_tests {
    use super::*;
    use crate::config::GraphNerConfig;
    use graphner_crf::{Order, TrainConfig};
    use graphner_text::{tokenize, BioTag::*, Sentence};

    #[test]
    fn inductive_loop_converges_and_stays_sane() {
        let mk =
            |id: &str, text: &str, tags: Vec<BioTag>| Sentence::labelled(id, tokenize(text), tags);
        let train = Corpus::from_sentences(vec![
            mk("s0", "the WT1 gene was expressed", vec![O, B, O, O, O]),
            mk("s1", "mutation of SH2B3 was detected", vec![O, O, B, O, O]),
            mk("s2", "the KRAS gene was mutated", vec![O, B, O, O, O]),
            mk("s3", "no mutation was found", vec![O, O, O, O]),
        ]);
        let cfg = NerConfig {
            order: Order::One,
            train: TrainConfig { max_iterations: 60, ..Default::default() },
            min_feature_count: 1,
        };
        let (gner, _) = GraphNer::train(&train, &cfg, None, GraphNerConfig::default());
        let test = Corpus::from_sentences(vec![
            Sentence::unlabelled("t0", tokenize("the FLT3 gene was expressed")),
            Sentence::unlabelled("t1", tokenize("no mutation was found")),
        ]);
        let (out, rounds) = gner.test_inductive(&test, 10);
        assert!(rounds <= 10);
        assert_eq!(out.predictions.len(), 2);
        assert_eq!(out.predictions[0][1], B);
        assert!(out.predictions[1].iter().all(|&t| t == O));
        // inductive must agree with transductive on this easy case
        let transductive = gner.test(&test);
        assert_eq!(out.predictions, transductive.predictions);
    }
}
