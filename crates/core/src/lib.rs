//! GraphNER: corpus-level similarities and graph propagation for named
//! entity recognition.
//!
//! This crate implements the paper's primary contribution, Algorithm 1:
//! a transductive graph-based semi-supervised extension of a CRF
//! gene-mention tagger. Train a base CRF ([`graphner_banner::NerModel`])
//! and reference label distributions over the 3-grams of the labelled
//! data; at test time, build a cosine k-NN similarity graph over the
//! 3-grams of `D_l ∪ D_u`, seed it with averaged CRF posteriors,
//! propagate (equation 2), interpolate with the CRF posteriors, and
//! re-decode with Viterbi.
//!
//! ```no_run
//! use graphner_core::{GraphNer, GraphNerConfig, annotations_from_predictions};
//! use graphner_banner::NerConfig;
//! # let train = graphner_text::Corpus::new();
//! # let test = graphner_text::Corpus::new();
//! let (model, _) = GraphNer::train(&train, &NerConfig::default(), None,
//!                                  GraphNerConfig::default());
//! let out = model.test(&test);
//! let detections = annotations_from_predictions(&test, &out.predictions);
//! ```

// Index loops over parallel arrays are the clearest form for the
// numeric kernels in this crate; clippy's iterator rewrites would
// obscure the index relationships between the buffers.
#![allow(clippy::needless_range_loop)]

pub mod check;
pub mod config;
pub mod graphbuild;
pub mod model;
pub mod persist;
pub mod pipeline;
pub mod stats;
pub mod timings;

pub use config::{
    ConfigError, GraphFeatureSet, GraphNerConfig, GraphNerConfigBuilder, ServeConfig,
};
// the propagation-schedule knobs carried on `GraphNerConfig`, re-exported
// so builder users need not depend on graphner-graph directly
pub use graphbuild::{build_graph, build_vertex_vectors, feature_tag_mi, knn_from_vectors};
pub use graphner_graph::{ShardSize, SweepSchedule};
pub use model::{annotations_from_predictions, GraphNer, TestOutput, TrainOutput};
pub use persist::{load_model, save_model, PersistError};
pub use pipeline::{GraphTagger, TestSession};
pub use stats::GraphStats;
pub use timings::TestTimings;
