//! GraphNER hyper-parameters (Table IV of the paper).

use graphner_graph::{PropagationParams, ShardSize, SweepSchedule};

/// Vertex-representation choice for graph construction (Table III).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphFeatureSet {
    /// All features extracted by the base tagger at the centre token.
    All,
    /// Only lemmas of the words in a window of length 5.
    Lexical,
    /// Features whose mutual information with the tag assigned by the
    /// base CRF exceeds the threshold.
    MiThreshold(f64),
}

impl GraphFeatureSet {
    /// Display name matching Table III.
    pub fn name(&self) -> String {
        match self {
            GraphFeatureSet::All => "All-features".to_string(),
            GraphFeatureSet::Lexical => "Lexical-features".to_string(),
            GraphFeatureSet::MiThreshold(t) => format!("MI > {t}"),
        }
    }

    /// Hashable identity of the variant, used to key per-feature-set
    /// caches (`f64` is not `Hash`; the threshold is folded in as bits).
    pub fn cache_key(&self) -> (u8, u64) {
        match self {
            GraphFeatureSet::All => (0, 0),
            GraphFeatureSet::Lexical => (1, 0),
            GraphFeatureSet::MiThreshold(t) => (2, t.to_bits()),
        }
    }
}

/// Upper bound on [`ServeConfig::queue_capacity`] and
/// [`ServeConfig::max_batch`]: beyond a million queued requests or
/// sentences per flush the knob is a typo, not a tuning choice.
pub const MAX_SERVE_QUEUE: u64 = 1 << 20;
/// Upper bound on [`ServeConfig::linger_us`] — one minute. A batcher
/// that lingers longer than any sane deadline is misconfigured.
pub const MAX_LINGER_US: u64 = 60_000_000;
/// Upper bound on [`ServeConfig::deadline_ms`] — one hour.
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Serving knobs for `graphner-serve`: how deep the request queue runs
/// before backpressure, how the batcher coalesces, and when a request
/// expires. Like [`SweepSchedule`] this is a pure execution section —
/// it describes how the server runs, not what the model learned, so it
/// is deliberately *not* persisted with a trained model.
///
/// Validated by [`GraphNerConfigBuilder::build`]: every knob must be
/// non-zero ([`ConfigError::ZeroServeKnob`]) and within its cap
/// ([`ConfigError::ServeKnobOverflow`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded request-queue depth; a full queue answers 429 with
    /// `Retry-After` instead of buffering without limit.
    pub queue_capacity: usize,
    /// Maximum sentences the batcher coalesces into one `tag_batch`
    /// call before flushing.
    pub max_batch: usize,
    /// Maximum microseconds the batcher lingers waiting for more
    /// requests after the first one arrives; flushing on whichever of
    /// linger/`max_batch` trips first bounds the latency cost of
    /// coalescing.
    pub linger_us: u64,
    /// Per-request deadline in milliseconds; a request that cannot be
    /// answered in time gets 503 rather than occupying the queue
    /// forever.
    pub deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        // Tuned for the smoke-scale model: a 256-deep queue absorbs
        // bursts at 500+ RPS, 64-sentence flushes keep the worker pool
        // busy without head-of-line blocking, 500 µs linger adds well
        // under the 2 s deadline.
        ServeConfig { queue_capacity: 256, max_batch: 64, linger_us: 500, deadline_ms: 2_000 }
    }
}

/// Full GraphNER configuration: the interpolation weight α, the
/// propagation hyper-parameters (μ, ν, #iterations), the graph degree
/// K, and the vertex representation.
///
/// Construct through [`GraphNerConfig::builder`], which validates the
/// values and returns a typed [`ConfigError`] on nonsense (K = 0, a
/// non-simplex α, zero propagation iterations, …), or through
/// [`GraphNerConfig::default`] / [`GraphNerConfig::table_iv`] for the
/// paper's settings. The fields remain public for ablation sweeps over
/// an already-valid base (`GraphNerConfig { k: 5, ..base }`), but
/// building a config from a bare struct literal is deprecated: it
/// skips validation, and invalid values surface later as debug-mode
/// guard panics deep inside the pipeline instead of an error at the
/// API boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphNerConfig {
    /// Interpolation weight on the CRF posterior in
    /// `α·P_s(S,i) + (1−α)·X(w₋₁,w,w₊₁)`. "Smaller α values were
    /// consistently preferred in our cross validations."
    pub alpha: f64,
    /// Graph-propagation parameters (μ, ν, #iterations).
    pub propagation: PropagationParams,
    /// Graph out-degree K (nearest neighbours kept per vertex).
    pub k: usize,
    /// Vertex representation for graph construction.
    pub feature_set: GraphFeatureSet,
    /// Tempering exponent on the decode's transition factors
    /// `(P(y'|y)/P(y'))^τ`. The node beliefs entering the final Viterbi
    /// are posterior-like but carry floors from the propagation's
    /// uniform term, so the full sequence prior (τ = 1) over-amplifies
    /// rare-tag continuations (`B → I`); τ = 0.5 keeps the structural
    /// constraints (`O → I` stays impossible) while damping the
    /// amplification — mirroring the mild behaviour of the unnormalized
    /// MALLET transition potentials the original implementation
    /// extracts.
    pub trans_power: f64,
    /// Add-k smoothing constant on the gold tag-bigram counts behind
    /// the decode's transition factors.
    pub trans_add_k: f64,
    /// Upper bound on each transition factor `(P(y'|y)/P(y'))^τ`. On
    /// corpora where a tag is almost absent the raw ratio grows
    /// unboundedly; the cap plays the role L2 regularization plays for
    /// a trained CRF's transition potentials.
    pub trans_ratio_cap: f64,
    /// How the sharded propagation engine schedules its sweeps: the
    /// shard size and whether converged shards may be skipped
    /// (active-set). A pure execution knob — the default (auto-sized
    /// shards, no skipping) is byte-identical to the unsharded update,
    /// and the schedule is deliberately *not* persisted with a trained
    /// model: it describes how to run, not what was learned.
    pub schedule: SweepSchedule,
    /// Serving knobs (queue depth, batching, deadlines) for
    /// `graphner-serve`. Another pure execution section: not persisted,
    /// never affects what the model predicts — only how fast and under
    /// what backpressure policy.
    pub serve: ServeConfig,
}

impl Default for GraphNerConfig {
    fn default() -> GraphNerConfig {
        // Table IV: (α, μ, ν, #iterations) = (0.02, 1e-6, 1e-6, 2–3),
        // K = 10, All-features.
        GraphNerConfig {
            alpha: 0.02,
            propagation: PropagationParams { mu: 1e-6, nu: 1e-6, iterations: 3, self_anchor: 0.5 },
            k: 10,
            feature_set: GraphFeatureSet::All,
            trans_power: 0.5,
            trans_add_k: 0.1,
            trans_ratio_cap: 3.0,
            schedule: SweepSchedule::default(),
            serve: ServeConfig::default(),
        }
    }
}

/// A rejected [`GraphNerConfigBuilder::build`]: which knob was invalid
/// and why. Every variant is a configuration that *parses* but cannot
/// mean anything — the builder refuses it up front rather than letting
/// it surface as a guard panic or a silently degenerate result.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `k = 0`: a graph with no neighbours has no edges to propagate
    /// over.
    ZeroK,
    /// α outside `[0, 1]`: the interpolation
    /// `α·P_s + (1−α)·X` is a convex combination, so its weights
    /// `(α, 1−α)` must lie on the simplex.
    AlphaNotSimplex(f64),
    /// Zero propagation iterations: the graph would never be consulted.
    ZeroIterations,
    /// μ or ν is negative, NaN or infinite.
    BadPropagationWeight {
        /// `"mu"` or `"nu"`.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `self_anchor` outside `[0, 1]` (it weights a convex combination
    /// of a vertex's own belief and its neighbourhood).
    SelfAnchorNotSimplex(f64),
    /// A decode-transition constant (`trans_power`, `trans_add_k`,
    /// `trans_ratio_cap`) is negative, NaN or infinite — or the cap is
    /// zero, which would erase every transition factor.
    BadTransitionConstant {
        /// Which constant.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `shard_size = Fixed(0)`: a zero-vertex shard cannot tile the
    /// vertex range.
    ZeroShardSize,
    /// A [`ServeConfig`] knob is zero: a zero-capacity queue rejects
    /// everything, a zero-sentence batch never flushes, a zero linger
    /// degenerates, and a zero deadline expires every request on
    /// arrival.
    ZeroServeKnob {
        /// Which serving knob.
        name: &'static str,
    },
    /// A [`ServeConfig`] knob exceeds its sanity cap.
    ServeKnobOverflow {
        /// Which serving knob.
        name: &'static str,
        /// The rejected value.
        value: u64,
        /// The cap it exceeded.
        max: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroK => write!(f, "k must be >= 1 (a 0-NN graph has no edges)"),
            ConfigError::AlphaNotSimplex(a) => {
                write!(f, "alpha must lie in [0, 1] for a convex interpolation, got {a}")
            }
            ConfigError::ZeroIterations => {
                write!(f, "propagation must run at least one iteration")
            }
            ConfigError::BadPropagationWeight { name, value } => {
                write!(f, "{name} must be finite and non-negative, got {value}")
            }
            ConfigError::SelfAnchorNotSimplex(v) => {
                write!(f, "self_anchor must lie in [0, 1], got {v}")
            }
            ConfigError::BadTransitionConstant { name, value } => {
                write!(f, "{name} must be finite, non-negative and usable, got {value}")
            }
            ConfigError::ZeroShardSize => {
                write!(f, "shard_size must be >= 1 vertex (or ShardSize::Auto)")
            }
            ConfigError::ZeroServeKnob { name } => {
                write!(f, "serve.{name} must be >= 1")
            }
            ConfigError::ServeKnobOverflow { name, value, max } => {
                write!(f, "serve.{name} = {value} exceeds the sanity cap {max}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`GraphNerConfig`], starting from the
/// Table IV defaults. Setters overwrite one knob each;
/// [`build`](GraphNerConfigBuilder::build) checks the combination and
/// returns a typed [`ConfigError`] instead of letting an invalid
/// configuration flow into the pipeline.
#[derive(Clone, Debug, Default)]
pub struct GraphNerConfigBuilder {
    cfg: GraphNerConfig,
}

impl GraphNerConfigBuilder {
    /// Interpolation weight α on the CRF posterior.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.cfg.alpha = alpha;
        self
    }

    /// Graph out-degree K.
    pub fn k(mut self, k: usize) -> Self {
        self.cfg.k = k;
        self
    }

    /// Replace all propagation parameters at once.
    pub fn propagation(mut self, propagation: PropagationParams) -> Self {
        self.cfg.propagation = propagation;
        self
    }

    /// Number of Jacobi propagation sweeps.
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.cfg.propagation.iterations = iterations;
        self
    }

    /// Propagation μ (neighbour agreement weight).
    pub fn mu(mut self, mu: f64) -> Self {
        self.cfg.propagation.mu = mu;
        self
    }

    /// Propagation ν (uniform-prior regularization weight).
    pub fn nu(mut self, nu: f64) -> Self {
        self.cfg.propagation.nu = nu;
        self
    }

    /// Self-anchor weight of each vertex during sweeps.
    pub fn self_anchor(mut self, self_anchor: f64) -> Self {
        self.cfg.propagation.self_anchor = self_anchor;
        self
    }

    /// Vertex representation for graph construction.
    pub fn feature_set(mut self, feature_set: GraphFeatureSet) -> Self {
        self.cfg.feature_set = feature_set;
        self
    }

    /// Tempering exponent τ on the decode's transition factors.
    pub fn trans_power(mut self, trans_power: f64) -> Self {
        self.cfg.trans_power = trans_power;
        self
    }

    /// Add-k smoothing on the gold tag-bigram counts.
    pub fn trans_add_k(mut self, trans_add_k: f64) -> Self {
        self.cfg.trans_add_k = trans_add_k;
        self
    }

    /// Upper bound on each transition factor.
    pub fn trans_ratio_cap(mut self, trans_ratio_cap: f64) -> Self {
        self.cfg.trans_ratio_cap = trans_ratio_cap;
        self
    }

    /// Vertices per propagation shard ([`ShardSize::Auto`] sizes from
    /// the vertex count; `Fixed(0)` is rejected by `build`).
    pub fn shard_size(mut self, shard_size: ShardSize) -> Self {
        self.cfg.schedule.shard_size = shard_size;
        self
    }

    /// Enable or disable active-set sweep scheduling (skipping shards
    /// whose residual converged). `false` — the default — reproduces
    /// the unsharded propagation output exactly.
    pub fn active_set(mut self, active_set: bool) -> Self {
        self.cfg.schedule.active_set = active_set;
        self
    }

    /// Replace the whole serving section at once.
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.cfg.serve = serve;
        self
    }

    /// Bounded request-queue depth for `graphner-serve`.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.cfg.serve.queue_capacity = queue_capacity;
        self
    }

    /// Maximum sentences per batcher flush.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.cfg.serve.max_batch = max_batch;
        self
    }

    /// Maximum microseconds the batcher lingers for more requests.
    pub fn linger_us(mut self, linger_us: u64) -> Self {
        self.cfg.serve.linger_us = linger_us;
        self
    }

    /// Per-request deadline in milliseconds.
    pub fn deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.cfg.serve.deadline_ms = deadline_ms;
        self
    }

    /// Validate the accumulated configuration.
    pub fn build(self) -> Result<GraphNerConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.k == 0 {
            return Err(ConfigError::ZeroK);
        }
        if !cfg.alpha.is_finite() || !(0.0..=1.0).contains(&cfg.alpha) {
            return Err(ConfigError::AlphaNotSimplex(cfg.alpha));
        }
        if cfg.propagation.iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        for (name, value) in [("mu", cfg.propagation.mu), ("nu", cfg.propagation.nu)] {
            if !value.is_finite() || value < 0.0 {
                return Err(ConfigError::BadPropagationWeight { name, value });
            }
        }
        let anchor = cfg.propagation.self_anchor;
        if !anchor.is_finite() || !(0.0..=1.0).contains(&anchor) {
            return Err(ConfigError::SelfAnchorNotSimplex(anchor));
        }
        for (name, value) in [("trans_power", cfg.trans_power), ("trans_add_k", cfg.trans_add_k)] {
            if !value.is_finite() || value < 0.0 {
                return Err(ConfigError::BadTransitionConstant { name, value });
            }
        }
        if !cfg.trans_ratio_cap.is_finite() || cfg.trans_ratio_cap <= 0.0 {
            return Err(ConfigError::BadTransitionConstant {
                name: "trans_ratio_cap",
                value: cfg.trans_ratio_cap,
            });
        }
        if cfg.schedule.shard_size == ShardSize::Fixed(0) {
            return Err(ConfigError::ZeroShardSize);
        }
        let serve = &cfg.serve;
        for (name, value, max) in [
            ("queue_capacity", serve.queue_capacity as u64, MAX_SERVE_QUEUE),
            ("max_batch", serve.max_batch as u64, MAX_SERVE_QUEUE),
            ("linger_us", serve.linger_us, MAX_LINGER_US),
            ("deadline_ms", serve.deadline_ms, MAX_DEADLINE_MS),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroServeKnob { name });
            }
            if value > max {
                return Err(ConfigError::ServeKnobOverflow { name, value, max });
            }
        }
        Ok(cfg)
    }
}

impl GraphNerConfig {
    /// Start a validating builder at the Table IV defaults.
    pub fn builder() -> GraphNerConfigBuilder {
        GraphNerConfigBuilder::default()
    }

    /// The cross-validated configuration the paper reports for a given
    /// corpus/base-model pair (Table IV).
    pub fn table_iv(corpus: &str, chemdner: bool) -> GraphNerConfig {
        let iterations = match (corpus, chemdner) {
            ("BC2GM", true) => 3,
            _ => 2,
        };
        GraphNerConfig {
            alpha: 0.02,
            propagation: PropagationParams { mu: 1e-6, nu: 1e-6, iterations, self_anchor: 0.5 },
            k: 10,
            feature_set: GraphFeatureSet::All,
            trans_power: 0.5,
            ..GraphNerConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = GraphNerConfig::default();
        assert_eq!(c.alpha, 0.02);
        assert_eq!(c.propagation.mu, 1e-6);
        assert_eq!(c.propagation.nu, 1e-6);
        assert_eq!(c.k, 10);
        // decode transition constants (previously hardcoded)
        assert_eq!(c.trans_add_k, 0.1);
        assert_eq!(c.trans_ratio_cap, 3.0);
    }

    #[test]
    fn cache_keys_distinguish_variants() {
        assert_ne!(GraphFeatureSet::All.cache_key(), GraphFeatureSet::Lexical.cache_key());
        assert_ne!(
            GraphFeatureSet::MiThreshold(0.005).cache_key(),
            GraphFeatureSet::MiThreshold(0.01).cache_key()
        );
        assert_eq!(
            GraphFeatureSet::MiThreshold(0.01).cache_key(),
            GraphFeatureSet::MiThreshold(0.01).cache_key()
        );
    }

    #[test]
    fn table_iv_lookup() {
        assert_eq!(GraphNerConfig::table_iv("BC2GM", true).propagation.iterations, 3);
        assert_eq!(GraphNerConfig::table_iv("BC2GM", false).propagation.iterations, 2);
        assert_eq!(GraphNerConfig::table_iv("AML", true).propagation.iterations, 2);
    }

    #[test]
    fn builder_accepts_valid_overrides() {
        let cfg = GraphNerConfig::builder()
            .alpha(0.1)
            .k(5)
            .iterations(4)
            .feature_set(GraphFeatureSet::Lexical)
            .build()
            .expect("valid configuration");
        assert_eq!(cfg.alpha, 0.1);
        assert_eq!(cfg.k, 5);
        assert_eq!(cfg.propagation.iterations, 4);
        assert_eq!(cfg.feature_set, GraphFeatureSet::Lexical);
        // untouched knobs keep the Table IV defaults
        assert_eq!(cfg.trans_ratio_cap, 3.0);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert_eq!(GraphNerConfig::builder().k(0).build(), Err(ConfigError::ZeroK));
        assert_eq!(
            GraphNerConfig::builder().alpha(1.5).build(),
            Err(ConfigError::AlphaNotSimplex(1.5))
        );
        assert_eq!(
            GraphNerConfig::builder().alpha(-0.01).build(),
            Err(ConfigError::AlphaNotSimplex(-0.01))
        );
        assert_eq!(
            GraphNerConfig::builder().iterations(0).build(),
            Err(ConfigError::ZeroIterations)
        );
        assert_eq!(
            GraphNerConfig::builder().mu(-1e-6).build(),
            Err(ConfigError::BadPropagationWeight { name: "mu", value: -1e-6 })
        );
        assert_eq!(
            GraphNerConfig::builder().self_anchor(2.0).build(),
            Err(ConfigError::SelfAnchorNotSimplex(2.0))
        );
        assert_eq!(
            GraphNerConfig::builder().trans_ratio_cap(0.0).build(),
            Err(ConfigError::BadTransitionConstant { name: "trans_ratio_cap", value: 0.0 })
        );
        let nan = GraphNerConfig::builder().nu(f64::NAN).build();
        assert!(matches!(nan, Err(ConfigError::BadPropagationWeight { name: "nu", .. })));
        assert_eq!(
            GraphNerConfig::builder().shard_size(ShardSize::Fixed(0)).build(),
            Err(ConfigError::ZeroShardSize)
        );
    }

    #[test]
    fn schedule_defaults_to_unsharded_semantics_and_accepts_overrides() {
        let c = GraphNerConfig::default();
        assert_eq!(c.schedule, SweepSchedule::default());
        assert!(!c.schedule.active_set);
        let tuned = GraphNerConfig::builder()
            .shard_size(ShardSize::Fixed(4096))
            .active_set(true)
            .build()
            .expect("valid schedule");
        assert_eq!(tuned.schedule.shard_size, ShardSize::Fixed(4096));
        assert!(tuned.schedule.active_set);
        // the schedule is an execution knob: it never affects equality
        // of the *learned* configuration fields
        assert_eq!(tuned.alpha, c.alpha);
    }

    #[test]
    fn serve_section_defaults_and_builder_overrides() {
        let c = GraphNerConfig::default();
        assert_eq!(c.serve, ServeConfig::default());
        assert_eq!(c.serve.queue_capacity, 256);
        assert_eq!(c.serve.max_batch, 64);
        let tuned = GraphNerConfig::builder()
            .queue_capacity(32)
            .max_batch(8)
            .linger_us(250)
            .deadline_ms(500)
            .build()
            .expect("valid serve section");
        assert_eq!(
            tuned.serve,
            ServeConfig { queue_capacity: 32, max_batch: 8, linger_us: 250, deadline_ms: 500 }
        );
        // the serve section is an execution knob: learned fields untouched
        assert_eq!(tuned.alpha, c.alpha);
        let whole = GraphNerConfig::builder()
            .serve(ServeConfig { queue_capacity: 1, max_batch: 1, linger_us: 1, deadline_ms: 1 })
            .build()
            .expect("minimal serve section is valid");
        assert_eq!(whole.serve.queue_capacity, 1);
    }

    #[test]
    fn builder_rejects_zero_and_overflowing_serve_knobs() {
        assert_eq!(
            GraphNerConfig::builder().queue_capacity(0).build(),
            Err(ConfigError::ZeroServeKnob { name: "queue_capacity" })
        );
        assert_eq!(
            GraphNerConfig::builder().max_batch(0).build(),
            Err(ConfigError::ZeroServeKnob { name: "max_batch" })
        );
        assert_eq!(
            GraphNerConfig::builder().linger_us(0).build(),
            Err(ConfigError::ZeroServeKnob { name: "linger_us" })
        );
        assert_eq!(
            GraphNerConfig::builder().deadline_ms(0).build(),
            Err(ConfigError::ZeroServeKnob { name: "deadline_ms" })
        );
        assert_eq!(
            GraphNerConfig::builder().linger_us(MAX_LINGER_US + 1).build(),
            Err(ConfigError::ServeKnobOverflow {
                name: "linger_us",
                value: MAX_LINGER_US + 1,
                max: MAX_LINGER_US,
            })
        );
        assert_eq!(
            GraphNerConfig::builder().deadline_ms(MAX_DEADLINE_MS + 1).build(),
            Err(ConfigError::ServeKnobOverflow {
                name: "deadline_ms",
                value: MAX_DEADLINE_MS + 1,
                max: MAX_DEADLINE_MS,
            })
        );
        assert_eq!(
            GraphNerConfig::builder().queue_capacity((MAX_SERVE_QUEUE + 1) as usize).build(),
            Err(ConfigError::ServeKnobOverflow {
                name: "queue_capacity",
                value: MAX_SERVE_QUEUE + 1,
                max: MAX_SERVE_QUEUE,
            })
        );
        // caps themselves are accepted
        assert!(GraphNerConfig::builder().linger_us(MAX_LINGER_US).build().is_ok());
        // error messages name the knob
        let msg = ConfigError::ZeroServeKnob { name: "max_batch" }.to_string();
        assert!(msg.contains("max_batch"));
        let msg =
            ConfigError::ServeKnobOverflow { name: "linger_us", value: 999, max: 10 }.to_string();
        assert!(msg.contains("linger_us") && msg.contains("999"));
    }

    #[test]
    fn config_error_messages_name_the_knob() {
        assert!(ConfigError::ZeroK.to_string().contains('k'));
        assert!(ConfigError::AlphaNotSimplex(2.0).to_string().contains("alpha"));
        assert!(ConfigError::BadTransitionConstant { name: "trans_power", value: -1.0 }
            .to_string()
            .contains("trans_power"));
    }

    #[test]
    fn feature_set_names() {
        assert_eq!(GraphFeatureSet::All.name(), "All-features");
        assert_eq!(GraphFeatureSet::Lexical.name(), "Lexical-features");
        assert_eq!(GraphFeatureSet::MiThreshold(0.01).name(), "MI > 0.01");
    }
}
