//! GraphNER hyper-parameters (Table IV of the paper).

use graphner_graph::PropagationParams;

/// Vertex-representation choice for graph construction (Table III).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphFeatureSet {
    /// All features extracted by the base tagger at the centre token.
    All,
    /// Only lemmas of the words in a window of length 5.
    Lexical,
    /// Features whose mutual information with the tag assigned by the
    /// base CRF exceeds the threshold.
    MiThreshold(f64),
}

impl GraphFeatureSet {
    /// Display name matching Table III.
    pub fn name(&self) -> String {
        match self {
            GraphFeatureSet::All => "All-features".to_string(),
            GraphFeatureSet::Lexical => "Lexical-features".to_string(),
            GraphFeatureSet::MiThreshold(t) => format!("MI > {t}"),
        }
    }

    /// Hashable identity of the variant, used to key per-feature-set
    /// caches (`f64` is not `Hash`; the threshold is folded in as bits).
    pub fn cache_key(&self) -> (u8, u64) {
        match self {
            GraphFeatureSet::All => (0, 0),
            GraphFeatureSet::Lexical => (1, 0),
            GraphFeatureSet::MiThreshold(t) => (2, t.to_bits()),
        }
    }
}

/// Full GraphNER configuration: the interpolation weight α, the
/// propagation hyper-parameters (μ, ν, #iterations), the graph degree
/// K, and the vertex representation.
#[derive(Clone, Debug)]
pub struct GraphNerConfig {
    /// Interpolation weight on the CRF posterior in
    /// `α·P_s(S,i) + (1−α)·X(w₋₁,w,w₊₁)`. "Smaller α values were
    /// consistently preferred in our cross validations."
    pub alpha: f64,
    /// Graph-propagation parameters (μ, ν, #iterations).
    pub propagation: PropagationParams,
    /// Graph out-degree K (nearest neighbours kept per vertex).
    pub k: usize,
    /// Vertex representation for graph construction.
    pub feature_set: GraphFeatureSet,
    /// Tempering exponent on the decode's transition factors
    /// `(P(y'|y)/P(y'))^τ`. The node beliefs entering the final Viterbi
    /// are posterior-like but carry floors from the propagation's
    /// uniform term, so the full sequence prior (τ = 1) over-amplifies
    /// rare-tag continuations (`B → I`); τ = 0.5 keeps the structural
    /// constraints (`O → I` stays impossible) while damping the
    /// amplification — mirroring the mild behaviour of the unnormalized
    /// MALLET transition potentials the original implementation
    /// extracts.
    pub trans_power: f64,
    /// Add-k smoothing constant on the gold tag-bigram counts behind
    /// the decode's transition factors.
    pub trans_add_k: f64,
    /// Upper bound on each transition factor `(P(y'|y)/P(y'))^τ`. On
    /// corpora where a tag is almost absent the raw ratio grows
    /// unboundedly; the cap plays the role L2 regularization plays for
    /// a trained CRF's transition potentials.
    pub trans_ratio_cap: f64,
}

impl Default for GraphNerConfig {
    fn default() -> GraphNerConfig {
        // Table IV: (α, μ, ν, #iterations) = (0.02, 1e-6, 1e-6, 2–3),
        // K = 10, All-features.
        GraphNerConfig {
            alpha: 0.02,
            propagation: PropagationParams { mu: 1e-6, nu: 1e-6, iterations: 3, self_anchor: 0.5 },
            k: 10,
            feature_set: GraphFeatureSet::All,
            trans_power: 0.5,
            trans_add_k: 0.1,
            trans_ratio_cap: 3.0,
        }
    }
}

impl GraphNerConfig {
    /// The cross-validated configuration the paper reports for a given
    /// corpus/base-model pair (Table IV).
    pub fn table_iv(corpus: &str, chemdner: bool) -> GraphNerConfig {
        let iterations = match (corpus, chemdner) {
            ("BC2GM", true) => 3,
            _ => 2,
        };
        GraphNerConfig {
            alpha: 0.02,
            propagation: PropagationParams { mu: 1e-6, nu: 1e-6, iterations, self_anchor: 0.5 },
            k: 10,
            feature_set: GraphFeatureSet::All,
            trans_power: 0.5,
            ..GraphNerConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = GraphNerConfig::default();
        assert_eq!(c.alpha, 0.02);
        assert_eq!(c.propagation.mu, 1e-6);
        assert_eq!(c.propagation.nu, 1e-6);
        assert_eq!(c.k, 10);
        // decode transition constants (previously hardcoded)
        assert_eq!(c.trans_add_k, 0.1);
        assert_eq!(c.trans_ratio_cap, 3.0);
    }

    #[test]
    fn cache_keys_distinguish_variants() {
        assert_ne!(GraphFeatureSet::All.cache_key(), GraphFeatureSet::Lexical.cache_key());
        assert_ne!(
            GraphFeatureSet::MiThreshold(0.005).cache_key(),
            GraphFeatureSet::MiThreshold(0.01).cache_key()
        );
        assert_eq!(
            GraphFeatureSet::MiThreshold(0.01).cache_key(),
            GraphFeatureSet::MiThreshold(0.01).cache_key()
        );
    }

    #[test]
    fn table_iv_lookup() {
        assert_eq!(GraphNerConfig::table_iv("BC2GM", true).propagation.iterations, 3);
        assert_eq!(GraphNerConfig::table_iv("BC2GM", false).propagation.iterations, 2);
        assert_eq!(GraphNerConfig::table_iv("AML", true).propagation.iterations, 2);
    }

    #[test]
    fn feature_set_names() {
        assert_eq!(GraphFeatureSet::All.name(), "All-features");
        assert_eq!(GraphFeatureSet::Lexical.name(), "Lexical-features");
        assert_eq!(GraphFeatureSet::MiThreshold(0.01).name(), "MI > 0.01");
    }
}
