//! Stage wall-times of the test procedure, for the Fig. 2 cost
//! experiments.

/// Per-stage wall seconds of [`crate::GraphNer::test`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TestTimings {
    /// Line 5: CRF posterior extraction over `D_l ∪ D_u`.
    pub posterior_seconds: f64,
    /// Graph construction (feature vectors + k-NN).
    pub graph_seconds: f64,
    /// Line 6: posterior averaging over vertices.
    pub average_seconds: f64,
    /// Line 7: graph propagation.
    pub propagate_seconds: f64,
    /// Lines 8–9: combination and Viterbi decode.
    pub decode_seconds: f64,
}

impl TestTimings {
    /// Total test time.
    pub fn total(&self) -> f64 {
        self.posterior_seconds
            + self.graph_seconds
            + self.average_seconds
            + self.propagate_seconds
            + self.decode_seconds
    }

    /// GraphNER's *added* cost over the plain CRF test run — everything
    /// except the posterior extraction the CRF would do anyway.
    pub fn added_over_crf(&self) -> f64 {
        self.total() - self.posterior_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = TestTimings {
            posterior_seconds: 1.0,
            graph_seconds: 2.0,
            average_seconds: 0.5,
            propagate_seconds: 0.25,
            decode_seconds: 0.25,
        };
        assert!((t.total() - 4.0).abs() < 1e-12);
        assert!((t.added_over_crf() - 3.0).abs() < 1e-12);
    }
}
