//! Stage wall-times of the test procedure, for the Fig. 2 cost
//! experiments.
//!
//! The timings are no longer measured ad hoc: [`crate::GraphNer::test`]
//! wraps each stage in a `graphner-obs` span and [`TestTimings`] is a
//! *view* over the recorded [`SpanRecord`]s, keyed by the stage-name
//! constants in [`stage`].

use graphner_obs::SpanRecord;

/// Span names recorded by [`crate::GraphNer::test`], one per stage of
/// Algorithm 1's TEST procedure.
pub mod stage {
    /// Line 5: CRF posterior extraction over `D_l ∪ D_u`.
    pub const POSTERIORS: &str = "test.posteriors";
    /// Graph construction (feature vectors + k-NN).
    pub const GRAPH: &str = "test.graph";
    /// Line 6: posterior averaging over vertices.
    pub const AVERAGE: &str = "test.average";
    /// Line 7: graph propagation.
    pub const PROPAGATE: &str = "test.propagate";
    /// Lines 8–9: combination and Viterbi decode.
    pub const DECODE: &str = "test.decode";
}

/// Per-stage wall seconds of [`crate::GraphNer::test`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TestTimings {
    /// Line 5: CRF posterior extraction over `D_l ∪ D_u`.
    pub posterior_seconds: f64,
    /// Graph construction (feature vectors + k-NN).
    pub graph_seconds: f64,
    /// Line 6: posterior averaging over vertices.
    pub average_seconds: f64,
    /// Line 7: graph propagation.
    pub propagate_seconds: f64,
    /// Lines 8–9: combination and Viterbi decode.
    pub decode_seconds: f64,
}

impl TestTimings {
    /// Build the per-stage timings from recorded spans. Spans whose
    /// names are not stage names (nested sub-spans, unrelated
    /// instrumentation) are ignored; repeated stage spans accumulate.
    pub fn from_spans(spans: &[SpanRecord]) -> TestTimings {
        let mut t = TestTimings::default();
        for s in spans {
            match s.name {
                stage::POSTERIORS => t.posterior_seconds += s.seconds,
                stage::GRAPH => t.graph_seconds += s.seconds,
                stage::AVERAGE => t.average_seconds += s.seconds,
                stage::PROPAGATE => t.propagate_seconds += s.seconds,
                stage::DECODE => t.decode_seconds += s.seconds,
                _ => {}
            }
        }
        t
    }

    /// Total test time.
    pub fn total(&self) -> f64 {
        self.posterior_seconds
            + self.graph_seconds
            + self.average_seconds
            + self.propagate_seconds
            + self.decode_seconds
    }

    /// GraphNER's *added* cost over the plain CRF test run — everything
    /// except the posterior extraction the CRF would do anyway.
    pub fn added_over_crf(&self) -> f64 {
        self.total() - self.posterior_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = TestTimings {
            posterior_seconds: 1.0,
            graph_seconds: 2.0,
            average_seconds: 0.5,
            propagate_seconds: 0.25,
            decode_seconds: 0.25,
        };
        assert!((t.total() - 4.0).abs() < 1e-12);
        assert!((t.added_over_crf() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_spans_round_trips() {
        let spans = vec![
            SpanRecord::synthetic(stage::POSTERIORS, 1.0),
            SpanRecord::synthetic(stage::GRAPH, 2.0),
            SpanRecord::synthetic(stage::AVERAGE, 0.5),
            SpanRecord::synthetic(stage::PROPAGATE, 0.25),
            SpanRecord::synthetic(stage::DECODE, 0.25),
            // nested sub-spans and unrelated spans must not count
            SpanRecord::synthetic("graph.knn", 1.5),
            SpanRecord::synthetic("something.else", 9.0),
        ];
        let t = TestTimings::from_spans(&spans);
        assert_eq!(t.posterior_seconds, 1.0);
        assert_eq!(t.graph_seconds, 2.0);
        assert_eq!(t.average_seconds, 0.5);
        assert_eq!(t.propagate_seconds, 0.25);
        assert_eq!(t.decode_seconds, 0.25);
        assert!((t.total() - 4.0).abs() < 1e-12);
        assert!((t.added_over_crf() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_stage_spans_accumulate() {
        let spans = vec![
            SpanRecord::synthetic(stage::PROPAGATE, 0.25),
            SpanRecord::synthetic(stage::PROPAGATE, 0.75),
        ];
        let t = TestTimings::from_spans(&spans);
        assert_eq!(t.propagate_seconds, 1.0);
        assert_eq!(t.posterior_seconds, 0.0);
    }
}
