//! Versioned binary persistence for trained [`GraphNer`] models.
//!
//! The workspace carries no serialization dependency, so the format is
//! hand-rolled: little-endian integers, `f64` via [`f64::to_bits`]
//! (bit-exact round trips, NaN-safe), length-prefixed UTF-8 strings.
//!
//! ```text
//! magic    b"GNER"
//! version  u32 (currently 1)
//! config   α, (μ, ν, #iterations, self-anchor), K, feature set,
//!          τ, add-k, ratio cap
//! trans    NUM_TAGS × NUM_TAGS transition factors
//! x_ref    labelled-vertex reference distributions, sorted by vertex id
//! interner word vocabulary + trigram triples, in id order
//! base     BANNER feature strings (id order) + CRF order and weights
//! corpus   the training corpus (the transductive TEST procedure needs
//!          `D_l`, so a loaded model can run `test` immediately)
//! ```
//!
//! Everything is written in deterministic order, so saving the same
//! model twice produces identical bytes. Models whose base system uses
//! distributional resources (BANNER-ChemDNER) are rejected: the Brown
//! clustering and embedding clusters are not persisted.

use crate::config::{GraphFeatureSet, GraphNerConfig};
use crate::model::GraphNer;
use graphner_banner::{BaseSystem, FeatureIndex, NerModel};
use graphner_crf::{ChainCrf, Order};
use graphner_graph::{LabelDist, PropagationParams};
use graphner_text::{BioTag, Corpus, Sentence, Trigram, TrigramInterner, Vocab, NUM_TAGS};
use rustc_hash::FxHashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"GNER";
const VERSION: u32 = 1;

/// Why a save or load failed.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a model this version can read, or the model is
    /// not persistable (distributional resources).
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

fn bad(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

// ---- primitive writers/readers -------------------------------------

fn put_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    put_u64(w, v.to_bits())
}

fn put_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    put_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn get_u8<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn get_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f64<R: Read>(r: &mut R) -> Result<f64, PersistError> {
    Ok(f64::from_bits(get_u64(r)?))
}

fn get_len<R: Read>(r: &mut R, what: &str) -> Result<usize, PersistError> {
    let n = get_u64(r)?;
    // an absurd length means a corrupt stream; fail before allocating
    if n > (1 << 40) {
        return Err(bad(format!("implausible {what} length {n}")));
    }
    Ok(n as usize)
}

fn get_str<R: Read>(r: &mut R) -> Result<String, PersistError> {
    let n = get_len(r, "string")?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("string is not valid UTF-8"))
}

// ---- sections ------------------------------------------------------

fn put_config<W: Write>(w: &mut W, cfg: &GraphNerConfig) -> io::Result<()> {
    put_f64(w, cfg.alpha)?;
    put_f64(w, cfg.propagation.mu)?;
    put_f64(w, cfg.propagation.nu)?;
    put_u64(w, cfg.propagation.iterations as u64)?;
    put_f64(w, cfg.propagation.self_anchor)?;
    put_u64(w, cfg.k as u64)?;
    let (tag, bits) = cfg.feature_set.cache_key();
    put_u8(w, tag)?;
    put_u64(w, bits)?;
    put_f64(w, cfg.trans_power)?;
    put_f64(w, cfg.trans_add_k)?;
    put_f64(w, cfg.trans_ratio_cap)
}

fn get_config<R: Read>(r: &mut R) -> Result<GraphNerConfig, PersistError> {
    let alpha = get_f64(r)?;
    let mu = get_f64(r)?;
    let nu = get_f64(r)?;
    let iterations = get_u64(r)? as usize;
    let self_anchor = get_f64(r)?;
    let k = get_u64(r)? as usize;
    let fs_tag = get_u8(r)?;
    let fs_bits = get_u64(r)?;
    let feature_set = match fs_tag {
        0 => GraphFeatureSet::All,
        1 => GraphFeatureSet::Lexical,
        2 => GraphFeatureSet::MiThreshold(f64::from_bits(fs_bits)),
        t => return Err(bad(format!("unknown feature-set tag {t}"))),
    };
    Ok(GraphNerConfig {
        alpha,
        propagation: PropagationParams { mu, nu, iterations, self_anchor },
        k,
        feature_set,
        trans_power: get_f64(r)?,
        trans_add_k: get_f64(r)?,
        trans_ratio_cap: get_f64(r)?,
        // the sweep schedule and the serve section are runtime
        // execution knobs, not learned quantities: they are never
        // serialized, and a loaded model runs under the defaults
        schedule: Default::default(),
        serve: Default::default(),
    })
}

fn put_x_ref<W: Write>(w: &mut W, x_ref: &FxHashMap<u32, LabelDist>) -> io::Result<()> {
    let mut entries: Vec<(&u32, &LabelDist)> = x_ref.iter().collect();
    entries.sort_unstable_by_key(|(v, _)| **v);
    put_u64(w, entries.len() as u64)?;
    for (v, dist) in entries {
        put_u32(w, *v)?;
        for &p in dist.iter() {
            put_f64(w, p)?;
        }
    }
    Ok(())
}

fn get_x_ref<R: Read>(r: &mut R) -> Result<FxHashMap<u32, LabelDist>, PersistError> {
    let n = get_len(r, "x_ref")?;
    let mut x_ref = FxHashMap::default();
    for _ in 0..n {
        let v = get_u32(r)?;
        let mut d = [0.0; NUM_TAGS];
        for p in d.iter_mut() {
            *p = get_f64(r)?;
        }
        x_ref.insert(v, d);
    }
    Ok(x_ref)
}

fn put_interner<W: Write>(w: &mut W, interner: &TrigramInterner) -> io::Result<()> {
    put_u64(w, interner.words.len() as u64)?;
    for (_, word) in interner.words.iter() {
        put_str(w, word)?;
    }
    let trigrams = interner.trigrams();
    put_u64(w, trigrams.len() as u64)?;
    for tg in trigrams {
        for &word in &tg.0 {
            put_u32(w, word)?;
        }
    }
    Ok(())
}

fn get_interner<R: Read>(r: &mut R) -> Result<TrigramInterner, PersistError> {
    let num_words = get_len(r, "vocabulary")?;
    let mut words = Vec::with_capacity(num_words);
    for _ in 0..num_words {
        words.push(get_str(r)?);
    }
    let num_trigrams = get_len(r, "trigram list")?;
    let mut trigrams = Vec::with_capacity(num_trigrams);
    for _ in 0..num_trigrams {
        let mut tg = [0u32; 3];
        for word in tg.iter_mut() {
            *word = get_u32(r)?;
            if *word as usize >= num_words {
                return Err(bad(format!("trigram word id {word} out of range")));
            }
        }
        trigrams.push(Trigram(tg));
    }
    Ok(TrigramInterner::from_parts(Vocab::from_strings(words), trigrams))
}

fn put_base<W: Write>(w: &mut W, base: &NerModel) -> io::Result<()> {
    let crf = base.crf();
    put_u8(
        w,
        match crf.space().order() {
            Order::One => 1,
            Order::Two => 2,
        },
    )?;
    let features = base.feature_index().strings_in_id_order();
    put_u64(w, features.len() as u64)?;
    for f in &features {
        put_str(w, f)?;
    }
    put_u64(w, crf.params().len() as u64)?;
    for &p in crf.params() {
        put_f64(w, p)?;
    }
    Ok(())
}

fn get_base<R: Read>(r: &mut R) -> Result<NerModel, PersistError> {
    let order = match get_u8(r)? {
        1 => Order::One,
        2 => Order::Two,
        o => return Err(bad(format!("unknown CRF order tag {o}"))),
    };
    let num_features = get_len(r, "feature index")?;
    let mut features = Vec::with_capacity(num_features);
    for _ in 0..num_features {
        features.push(get_str(r)?);
    }
    let num_params = get_len(r, "parameter vector")?;
    let mut params = Vec::with_capacity(num_params);
    for _ in 0..num_params {
        params.push(get_f64(r)?);
    }
    let expected = ChainCrf::new(order, num_features).params().len();
    if num_params != expected {
        return Err(bad(format!("parameter vector has {num_params} entries, expected {expected}")));
    }
    let crf = ChainCrf::from_parts(order, num_features, params);
    Ok(NerModel::from_parts(FeatureIndex::from_strings(features), crf))
}

fn put_corpus<W: Write>(w: &mut W, corpus: &Corpus) -> io::Result<()> {
    put_u64(w, corpus.len() as u64)?;
    for sentence in &corpus.sentences {
        put_str(w, &sentence.id)?;
        put_u64(w, sentence.tokens.len() as u64)?;
        for token in &sentence.tokens {
            put_str(w, token)?;
        }
        match &sentence.tags {
            Some(tags) => {
                put_u8(w, 1)?;
                for &tag in tags {
                    put_u8(w, tag.index() as u8)?;
                }
            }
            None => put_u8(w, 0)?,
        }
    }
    Ok(())
}

fn get_corpus<R: Read>(r: &mut R) -> Result<Corpus, PersistError> {
    let num_sentences = get_len(r, "corpus")?;
    let mut sentences = Vec::with_capacity(num_sentences);
    for _ in 0..num_sentences {
        let id = get_str(r)?;
        let num_tokens = get_len(r, "sentence")?;
        let mut tokens = Vec::with_capacity(num_tokens);
        for _ in 0..num_tokens {
            tokens.push(get_str(r)?);
        }
        let sentence = match get_u8(r)? {
            0 => Sentence::unlabelled(id, tokens),
            1 => {
                let mut tags = Vec::with_capacity(num_tokens);
                for _ in 0..num_tokens {
                    let idx = get_u8(r)? as usize;
                    let tag = BioTag::try_from_index(idx)
                        .ok_or_else(|| bad(format!("invalid BIO tag index {idx}")))?;
                    tags.push(tag);
                }
                Sentence::labelled(id, tokens, tags)
            }
            t => return Err(bad(format!("unknown tag-presence marker {t}"))),
        };
        sentences.push(sentence);
    }
    Ok(Corpus::from_sentences(sentences))
}

// ---- public API ----------------------------------------------------

/// Serialize a trained model into a writer.
///
/// Fails with [`PersistError::Format`] for BANNER-ChemDNER base models,
/// whose distributional resources are not persistable.
pub fn write_model<W: Write>(model: &GraphNer, w: &mut W) -> Result<(), PersistError> {
    if model.base.system() == BaseSystem::BannerChemDner {
        return Err(bad("BANNER-ChemDNER base models carry distributional resources, \
             which this format does not persist"));
    }
    w.write_all(MAGIC)?;
    put_u32(w, VERSION)?;
    put_config(w, &model.cfg)?;
    for row in &model.transitions {
        for &t in row.iter() {
            put_f64(w, t)?;
        }
    }
    put_x_ref(w, &model.x_ref)?;
    put_interner(w, &model.interner)?;
    put_base(w, &model.base)?;
    put_corpus(w, &model.train_corpus)?;
    Ok(())
}

/// Deserialize a model from a reader.
pub fn read_model<R: Read>(r: &mut R) -> Result<GraphNer, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a GraphNER model file (bad magic)"));
    }
    let version = get_u32(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported format version {version} (expected {VERSION})")));
    }
    let cfg = get_config(r)?;
    let mut transitions = [[0.0; NUM_TAGS]; NUM_TAGS];
    for row in transitions.iter_mut() {
        for t in row.iter_mut() {
            *t = get_f64(r)?;
        }
    }
    let x_ref = get_x_ref(r)?;
    if cfg!(debug_assertions) {
        for d in x_ref.values() {
            crate::check::assert_distribution("X_ref (loaded model)", d);
        }
    }
    let interner = get_interner(r)?;
    let base = get_base(r)?;
    let train_corpus = Arc::new(get_corpus(r)?);
    Ok(GraphNer { base, cfg, interner, x_ref, transitions, train_corpus })
}

/// Save a trained model to a file.
pub fn save_model(model: &GraphNer, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_model(model, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Load a trained model from a file.
pub fn load_model(path: impl AsRef<Path>) -> Result<GraphNer, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    let model = read_model(&mut r)?;
    // trailing garbage means the file is not what it claims to be
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(bad("trailing bytes after model payload"));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_banner::NerConfig;
    use graphner_crf::TrainConfig;
    use graphner_text::tokenize;

    fn toy_model() -> GraphNer {
        use graphner_text::BioTag::*;
        let mk =
            |id: &str, text: &str, tags: Vec<BioTag>| Sentence::labelled(id, tokenize(text), tags);
        let train = Corpus::from_sentences(vec![
            mk("s0", "the WT1 gene was expressed", vec![O, B, O, O, O]),
            mk("s1", "mutation of SH2B3 was detected", vec![O, O, B, O, O]),
            mk("s2", "the KRAS gene was mutated", vec![O, B, O, O, O]),
            mk("s3", "no mutation was found", vec![O, O, O, O]),
        ]);
        let cfg = NerConfig {
            order: Order::One,
            train: TrainConfig { max_iterations: 50, ..Default::default() },
            min_feature_count: 1,
        };
        let (gner, _) = GraphNer::train(&train, &cfg, None, GraphNerConfig::default());
        gner
    }

    fn toy_test_corpus() -> Corpus {
        Corpus::from_sentences(vec![
            Sentence::unlabelled("t0", tokenize("the FLT3 gene was expressed")),
            Sentence::unlabelled("t1", tokenize("no mutation was found")),
        ])
    }

    #[test]
    fn round_trip_preserves_predictions_and_state() {
        let model = toy_model();
        let mut bytes = Vec::new();
        write_model(&model, &mut bytes).unwrap();
        let loaded = read_model(&mut bytes.as_slice()).unwrap();

        assert_eq!(loaded.transitions, model.transitions);
        assert_eq!(loaded.x_ref, model.x_ref);
        assert_eq!(loaded.interner.len(), model.interner.len());
        assert_eq!(loaded.cfg.alpha, model.cfg.alpha);
        assert_eq!(loaded.cfg.k, model.cfg.k);
        assert_eq!(loaded.base.crf().params(), model.base.crf().params());
        assert_eq!(loaded.train_corpus.len(), model.train_corpus.len());

        let test = toy_test_corpus();
        let out = model.test(&test);
        let out2 = loaded.test(&test);
        assert_eq!(out.predictions, out2.predictions);
        assert_eq!(out.base_predictions, out2.base_predictions);
    }

    #[test]
    fn serialization_is_deterministic() {
        let model = toy_model();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_model(&model, &mut a).unwrap();
        write_model(&model, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let model = toy_model();
        let mut bytes = Vec::new();
        write_model(&model, &mut bytes).unwrap();

        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(read_model(&mut wrong.as_slice()), Err(PersistError::Format(_))));

        let truncated = &bytes[..bytes.len() / 2];
        assert!(matches!(read_model(&mut &truncated[..]), Err(PersistError::Io(_))));

        let mut future = bytes.clone();
        future[4] = 99; // version
        assert!(matches!(read_model(&mut future.as_slice()), Err(PersistError::Format(_))));
    }

    #[test]
    fn chemdner_models_are_refused() {
        use graphner_banner::{DistributionalConfig, DistributionalResources};
        use graphner_text::BioTag::*;
        let mk =
            |id: &str, text: &str, tags: Vec<BioTag>| Sentence::labelled(id, tokenize(text), tags);
        let train = Corpus::from_sentences(vec![
            mk("s0", "the WT1 gene was expressed", vec![O, B, O, O, O]),
            mk("s1", "no mutation was found", vec![O, O, O, O]),
        ]);
        let dist = DistributionalResources::train(&train, &DistributionalConfig::default());
        let cfg = NerConfig {
            order: Order::One,
            train: TrainConfig { max_iterations: 20, ..Default::default() },
            min_feature_count: 1,
        };
        let (gner, _) = GraphNer::train(&train, &cfg, Some(dist), GraphNerConfig::default());
        let mut bytes = Vec::new();
        assert!(matches!(write_model(&gner, &mut bytes), Err(PersistError::Format(_))));
    }

    #[test]
    fn file_round_trip_and_trailing_bytes() {
        let model = toy_model();
        let dir = std::env::temp_dir();
        let path = dir.join("graphner-persist-test.gner");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.transitions, model.transitions);

        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_model(&path), Err(PersistError::Format(_))));
        let _ = std::fs::remove_file(&path);
    }
}
