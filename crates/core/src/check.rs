//! Debug-mode numeric guards — the runtime counterpart of the
//! `graphner-audit` static pass.
//!
//! The audit binary enforces what the *source* must look like; this
//! module enforces what the *numbers* must look like while the pipeline
//! runs. Every guard returns immediately in release builds
//! (`cfg!(debug_assertions)` is const-folded to `false`), so the
//! configurations the paper's tables are produced with pay nothing,
//! while every `cargo test` run (debug profile) sweeps the full guard
//! set over the posterior, averaging, propagation, interpolation and
//! persistence stages.
//!
//! On violation a guard panics with the calling context and the first
//! offending index/value, which is exactly what a failing invariant
//! should do in a test run: the panic site names the stage, not the
//! arithmetic that happened to trip downstream.

use graphner_graph::{KnnGraph, LabelDist, SparseVec};

/// How far a probability row may drift from summing to exactly 1
/// before [`assert_distribution`] treats it as a bug. Forward–backward
/// posteriors and the Jacobi sweeps renormalize analytically, so
/// anything beyond accumulated rounding noise indicates a real defect.
pub const DISTRIBUTION_TOL: f64 = 1e-6;

/// Slack for "non-negative": convex combinations of distributions can
/// round a true zero to a tiny negative value.
const NEG_SLACK: f64 = -1e-12;

/// Tolerance for edge-weight agreement between the two directions of a
/// mutual edge. Weights are cosines stored as `f32`; both directions
/// are computed from the same dot product, so they must agree to `f32`
/// rounding, not merely "be similar".
const WEIGHT_TOL: f32 = 1e-6;

/// Assert `d` is a probability distribution: every entry finite and
/// non-negative, entries summing to 1 within [`DISTRIBUTION_TOL`].
/// No-op in release builds.
#[inline]
pub fn assert_distribution(ctx: &str, d: &[f64]) {
    if !cfg!(debug_assertions) {
        return;
    }
    let mut sum = 0.0;
    for (i, &p) in d.iter().enumerate() {
        assert!(p.is_finite(), "{ctx}: entry {i} is not finite ({p})");
        assert!(p >= NEG_SLACK, "{ctx}: entry {i} is negative ({p})");
        sum += p;
    }
    assert!(
        (sum - 1.0).abs() <= DISTRIBUTION_TOL,
        "{ctx}: entries sum to {sum}, expected 1 within {DISTRIBUTION_TOL}"
    );
}

/// [`assert_distribution`] over a belief table, one row per vertex or
/// token. No-op in release builds.
#[inline]
pub fn assert_distributions(ctx: &str, rows: &[LabelDist]) {
    if !cfg!(debug_assertions) {
        return;
    }
    for (i, row) in rows.iter().enumerate() {
        let mut sum = 0.0;
        for (j, &p) in row.iter().enumerate() {
            assert!(p.is_finite(), "{ctx}: row {i} entry {j} is not finite ({p})");
            assert!(p >= NEG_SLACK, "{ctx}: row {i} entry {j} is negative ({p})");
            sum += p;
        }
        assert!(
            (sum - 1.0).abs() <= DISTRIBUTION_TOL,
            "{ctx}: row {i} sums to {sum}, expected 1 within {DISTRIBUTION_TOL}"
        );
    }
}

/// Assert every entry of a dense matrix (any row-major shape whose rows
/// deref to `[f64]`) is finite. No-op in release builds.
#[inline]
pub fn assert_finite_matrix<R: AsRef<[f64]>>(ctx: &str, rows: &[R]) {
    if !cfg!(debug_assertions) {
        return;
    }
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.as_ref().iter().enumerate() {
            assert!(v.is_finite(), "{ctx}: entry ({i}, {j}) is not finite ({v})");
        }
    }
}

/// Assert every stored value of a sparse PMI vector is finite. A NaN
/// here poisons every cosine the vertex participates in, so the guard
/// fires at construction, not at the first corrupted similarity.
/// No-op in release builds.
#[inline]
pub fn assert_finite_sparse(ctx: &str, vectors: &[SparseVec]) {
    if !cfg!(debug_assertions) {
        return;
    }
    for (v, vec) in vectors.iter().enumerate() {
        for &(f, w) in vec.entries() {
            assert!(w.is_finite(), "{ctx}: vertex {v} feature {f} is not finite ({w})");
        }
    }
}

/// Assert the *mutual* edges of a directed k-NN graph carry consistent
/// weights: whenever both `u → v` and `v → u` exist, their weights must
/// agree to `f32` rounding, because cosine similarity is symmetric and
/// both directions score the same vector pair. The raw k-NN graph is
/// directed (v may be among u's nearest without the converse), so this
/// — not full symmetry — is its invariant; [`assert_symmetric_knn`]
/// checks the stronger property for symmetrized graphs. No-op in
/// release builds.
#[inline]
pub fn assert_edge_weights_symmetric(ctx: &str, graph: &KnnGraph) {
    if !cfg!(debug_assertions) {
        return;
    }
    for u in 0..graph.num_vertices() as u32 {
        for (v, w_uv) in graph.neighbors(u) {
            assert!(w_uv.is_finite(), "{ctx}: edge {u} → {v} has non-finite weight {w_uv}");
            if let Some((_, w_vu)) = graph.neighbors(v).find(|&(back, _)| back == u) {
                assert!(
                    (w_uv - w_vu).abs() <= WEIGHT_TOL,
                    "{ctx}: mutual edge {u} ↔ {v} weights disagree ({w_uv} vs {w_vu})"
                );
            }
        }
    }
}

/// Assert a graph is fully symmetric: every edge `u → v` has a reverse
/// edge `v → u` of equal weight (to `f32` rounding). Holds for the
/// output of [`KnnGraph::symmetrized`], never for a raw directed k-NN
/// graph with asymmetric neighbourhoods. No-op in release builds.
#[inline]
pub fn assert_symmetric_knn(ctx: &str, graph: &KnnGraph) {
    if !cfg!(debug_assertions) {
        return;
    }
    for u in 0..graph.num_vertices() as u32 {
        for (v, w_uv) in graph.neighbors(u) {
            assert!(w_uv.is_finite(), "{ctx}: edge {u} → {v} has non-finite weight {w_uv}");
            let back = graph.neighbors(v).find(|&(back, _)| back == u);
            assert!(back.is_some(), "{ctx}: edge {u} → {v} has no reverse edge");
            let Some((_, w_vu)) = back else { unreachable!("asserted above") };
            assert!(
                (w_uv - w_vu).abs() <= WEIGHT_TOL,
                "{ctx}: edge {u} ↔ {v} weights disagree ({w_uv} vs {w_vu})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The guards are meaningful only where debug assertions are on —
    // which is exactly the configuration `cargo test` builds.

    #[test]
    fn accepts_valid_distributions() {
        assert_distribution("ok", &[0.2, 0.3, 0.5]);
        assert_distribution("ok", &[1.0, 0.0, 0.0]);
        // rounding-noise negative zero is tolerated
        assert_distribution("ok", &[1.0 + 1e-13, -1e-13, 0.0]);
        assert_distributions("ok", &[[0.5, 0.25, 0.25], [1.0 / 3.0; 3]]);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_unnormalized() {
        assert_distribution("bad", &[0.5, 0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_mass() {
        assert_distribution("bad", &[1.1, -0.1, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn rejects_nan() {
        assert_distribution("bad", &[f64::NAN, 0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "row 1")]
    fn names_the_offending_row() {
        assert_distributions("bad", &[[0.5, 0.25, 0.25], [0.9, 0.0, 0.0]]);
    }

    #[test]
    fn finite_matrix_accepts_and_rejects() {
        assert_finite_matrix("ok", &[[0.0, 1.5], [2.0, -3.0]]);
        let caught = std::panic::catch_unwind(|| {
            assert_finite_matrix("bad", &[[0.0, f64::INFINITY]]);
        });
        assert!(caught.is_err());
    }

    #[test]
    #[should_panic(expected = "vertex 1")]
    fn sparse_guard_names_the_vertex() {
        let good = SparseVec::from_pairs(vec![(0, 1.0)]);
        let bad = SparseVec::from_pairs(vec![(3, f32::NAN)]);
        assert_finite_sparse("bad", &[good, bad]);
    }

    #[test]
    fn directed_graph_passes_weight_consistency_but_not_symmetry() {
        // 0 → 1 with no reverse edge: fine for the directed invariant,
        // a violation of full symmetry
        let g = KnnGraph::from_adjacency(vec![vec![(1, 0.5)], vec![]], 1);
        assert_edge_weights_symmetric("ok", &g);
        let caught = std::panic::catch_unwind(|| assert_symmetric_knn("bad", &g));
        assert!(caught.is_err());
    }

    #[test]
    #[should_panic(expected = "weights disagree")]
    fn mutual_edge_weight_mismatch_is_caught() {
        let g = KnnGraph::from_adjacency(vec![vec![(1, 0.5)], vec![(0, 0.7)]], 1);
        assert_edge_weights_symmetric("bad", &g);
    }

    #[test]
    fn symmetric_graph_passes_both() {
        let g = KnnGraph::from_adjacency(vec![vec![(1, 0.5)], vec![(0, 0.5)]], 1);
        assert_edge_weights_symmetric("ok", &g);
        assert_symmetric_knn("ok", &g);
    }
}
