//! Graph statistics (§III-D of the paper).
//!
//! The paper characterizes its all-feature graphs by vertex count,
//! percentage of labelled vertices, percentage of *positively* labelled
//! vertices (appeared as B or I in the train set), weak connectivity,
//! and the influence/influencee histograms of Figure 3.

use graphner_graph::{histogram, Histogram, KnnGraph, LabelDist};
use graphner_text::BioTag;

/// Statistics of one constructed similarity graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Number of vertices (unique 3-grams of `D_l ∪ D_u`).
    pub num_vertices: usize,
    /// Number of directed edges (≈ `K · V`).
    pub num_edges: usize,
    /// Fraction of vertices with a reference distribution (`V_l`).
    pub pct_labelled: f64,
    /// Fraction of vertices whose reference distribution puts mass on B
    /// or I.
    pub pct_positive: f64,
    /// Number of weakly connected components.
    pub components: usize,
    /// Size of the largest weakly connected component.
    pub largest_component: usize,
    /// `Influence(v)` per vertex.
    pub influence: Vec<f64>,
    /// `|Influencees(v)|` per vertex.
    pub influencees: Vec<u32>,
}

impl GraphStats {
    /// Compute all statistics for a graph with its labelled-vertex
    /// reference distributions.
    pub fn compute(graph: &KnnGraph, x_ref: &[Option<LabelDist>]) -> GraphStats {
        let n = graph.num_vertices();
        assert_eq!(x_ref.len(), n);
        let labelled = x_ref.iter().filter(|r| r.is_some()).count();
        let positive = x_ref
            .iter()
            .filter(|r| r.is_some_and(|d| d[BioTag::B.index()] > 0.0 || d[BioTag::I.index()] > 0.0))
            .count();
        GraphStats {
            num_vertices: n,
            num_edges: graph.num_edges(),
            pct_labelled: if n == 0 { 0.0 } else { labelled as f64 / n as f64 },
            pct_positive: if n == 0 { 0.0 } else { positive as f64 / n as f64 },
            components: graph.weakly_connected_components(),
            largest_component: graph.largest_component_size(),
            influence: graph.influence(),
            influencees: graph.influencees(),
        }
    }

    /// Histogram of `Influence(v)` (left panel of Figure 3).
    pub fn influence_histogram(&self, bins: usize) -> Histogram {
        histogram(&self.influence, bins)
    }

    /// Histogram of `|Influencees(v)|` (right panel of Figure 3).
    pub fn influencees_histogram(&self, bins: usize) -> Histogram {
        let vals: Vec<f64> = self.influencees.iter().map(|&c| c as f64).collect();
        histogram(&vals, bins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_basic_stats() {
        let g = KnnGraph::from_adjacency(vec![vec![(1, 0.9)], vec![(0, 0.9)], vec![(0, 0.5)]], 1);
        let x_ref = vec![Some([1.0, 0.0, 0.0]), Some([0.0, 0.0, 1.0]), None];
        let s = GraphStats::compute(&g, &x_ref);
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_edges, 3);
        assert!((s.pct_labelled - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.pct_positive - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 3);
    }

    #[test]
    fn histograms_cover_all_vertices() {
        let g = KnnGraph::from_adjacency(
            vec![vec![(1, 0.9)], vec![(2, 0.8)], vec![(0, 0.7)], vec![(0, 0.6)]],
            1,
        );
        let x_ref = vec![None; 4];
        let s = GraphStats::compute(&g, &x_ref);
        let h = s.influence_histogram(5);
        assert_eq!(h.counts.iter().sum::<usize>(), 4);
        let h2 = s.influencees_histogram(5);
        assert_eq!(h2.counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn most_vertices_have_low_influence() {
        // a hub graph: everyone points at vertex 0
        let adj: Vec<Vec<(u32, f32)>> =
            (0..20).map(|i| if i == 0 { vec![(1, 0.5)] } else { vec![(0, 0.9)] }).collect();
        let g = KnnGraph::from_adjacency(adj, 1);
        let s = GraphStats::compute(&g, &vec![None; 20]);
        let h = s.influence_histogram(10);
        // the first bin (low influence) holds nearly everything, as in
        // the paper's Figure 3
        assert!(h.counts[0] >= 18);
    }
}
