//! Graph statistics (§III-D of the paper).
//!
//! The paper characterizes its all-feature graphs by vertex count,
//! percentage of labelled vertices, percentage of *positively* labelled
//! vertices (appeared as B or I in the train set), weak connectivity,
//! and the influence/influencee histograms of Figure 3.

use graphner_graph::{histogram, Histogram, KnnGraph, LabelDist, Partition, ShardBalance};
use graphner_text::BioTag;

/// Statistics of one constructed similarity graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Number of vertices (unique 3-grams of `D_l ∪ D_u`).
    pub num_vertices: usize,
    /// Number of directed edges (≈ `K · V`).
    pub num_edges: usize,
    /// Fraction of vertices with a reference distribution (`V_l`).
    pub pct_labelled: f64,
    /// Fraction of vertices whose reference distribution puts mass on B
    /// or I.
    pub pct_positive: f64,
    /// Number of weakly connected components.
    pub components: usize,
    /// Size of the largest weakly connected component.
    pub largest_component: usize,
    /// `Influence(v)` per vertex.
    pub influence: Vec<f64>,
    /// `|Influencees(v)|` per vertex.
    pub influencees: Vec<u32>,
    /// Resolved vertices-per-shard of the propagation partition the
    /// pipeline ran with.
    pub shard_vertices: usize,
    /// Total cross-shard edges of that partition.
    pub boundary_edges: usize,
    /// Per-shard vertex/edge/boundary-edge balance, in shard order.
    pub shard_balance: Vec<ShardBalance>,
}

impl GraphStats {
    /// Compute all statistics for a graph with its labelled-vertex
    /// reference distributions and the propagation partition the
    /// pipeline swept over.
    pub fn compute(
        graph: &KnnGraph,
        x_ref: &[Option<LabelDist>],
        partition: &Partition,
    ) -> GraphStats {
        let n = graph.num_vertices();
        assert_eq!(x_ref.len(), n);
        assert_eq!(partition.num_vertices(), n, "partition must be built from this graph");
        let labelled = x_ref.iter().filter(|r| r.is_some()).count();
        let positive = x_ref
            .iter()
            .filter(|r| r.is_some_and(|d| d[BioTag::B.index()] > 0.0 || d[BioTag::I.index()] > 0.0))
            .count();
        GraphStats {
            num_vertices: n,
            num_edges: graph.num_edges(),
            pct_labelled: if n == 0 { 0.0 } else { labelled as f64 / n as f64 },
            pct_positive: if n == 0 { 0.0 } else { positive as f64 / n as f64 },
            components: graph.weakly_connected_components(),
            largest_component: graph.largest_component_size(),
            influence: graph.influence(),
            influencees: graph.influencees(),
            shard_vertices: partition.shard_vertices(),
            boundary_edges: partition.boundary_edges(),
            shard_balance: partition.balance(),
        }
    }

    /// Histogram of `Influence(v)` (left panel of Figure 3).
    pub fn influence_histogram(&self, bins: usize) -> Histogram {
        histogram(&self.influence, bins)
    }

    /// Histogram of `|Influencees(v)|` (right panel of Figure 3).
    pub fn influencees_histogram(&self, bins: usize) -> Histogram {
        let vals: Vec<f64> = self.influencees.iter().map(|&c| c as f64).collect();
        histogram(&vals, bins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_graph::ShardSize;

    fn auto_partition(g: &KnnGraph) -> Partition {
        Partition::new(g, ShardSize::Auto)
    }

    #[test]
    fn computes_basic_stats() {
        let g = KnnGraph::from_adjacency(vec![vec![(1, 0.9)], vec![(0, 0.9)], vec![(0, 0.5)]], 1);
        let x_ref = vec![Some([1.0, 0.0, 0.0]), Some([0.0, 0.0, 1.0]), None];
        let s = GraphStats::compute(&g, &x_ref, &auto_partition(&g));
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_edges, 3);
        assert!((s.pct_labelled - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.pct_positive - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 3);
        // one auto-sized shard swallows the toy graph: no boundary
        assert_eq!(s.shard_balance.len(), 1);
        assert_eq!(s.boundary_edges, 0);
    }

    #[test]
    fn histograms_cover_all_vertices() {
        let g = KnnGraph::from_adjacency(
            vec![vec![(1, 0.9)], vec![(2, 0.8)], vec![(0, 0.7)], vec![(0, 0.6)]],
            1,
        );
        let x_ref = vec![None; 4];
        let s = GraphStats::compute(&g, &x_ref, &auto_partition(&g));
        let h = s.influence_histogram(5);
        assert_eq!(h.counts.iter().sum::<usize>(), 4);
        let h2 = s.influencees_histogram(5);
        assert_eq!(h2.counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn most_vertices_have_low_influence() {
        // a hub graph: everyone points at vertex 0
        let adj: Vec<Vec<(u32, f32)>> =
            (0..20).map(|i| if i == 0 { vec![(1, 0.5)] } else { vec![(0, 0.9)] }).collect();
        let g = KnnGraph::from_adjacency(adj, 1);
        let s = GraphStats::compute(&g, &vec![None; 20], &auto_partition(&g));
        let h = s.influence_histogram(10);
        // the first bin (low influence) holds nearly everything, as in
        // the paper's Figure 3
        assert!(h.counts[0] >= 18);
    }

    #[test]
    fn shard_balance_follows_the_partition() {
        let adj: Vec<Vec<(u32, f32)>> =
            (0..10).map(|i| vec![(((i + 1) % 10) as u32, 0.5)]).collect();
        let g = KnnGraph::from_adjacency(adj, 1);
        let p = Partition::new(&g, ShardSize::Fixed(4));
        let s = GraphStats::compute(&g, &vec![None; 10], &p);
        assert_eq!(s.shard_vertices, 4);
        assert_eq!(s.shard_balance.len(), 3);
        let vertices: usize = s.shard_balance.iter().map(|b| b.vertices).sum();
        assert_eq!(vertices, 10);
        let boundary: usize = s.shard_balance.iter().map(|b| b.boundary_edges).sum();
        assert_eq!(boundary, s.boundary_edges);
        // a 10-ring cut into [0,4),[4,8),[8,10): one crossing per cut
        // in edge direction... vertex 3→4, 7→8, 9→0 cross
        assert_eq!(s.boundary_edges, 3);
    }
}
