//! Staged test pipeline with a session-level artifact cache.
//!
//! Algorithm 1's TEST procedure decomposes into five stages, each a
//! struct whose `run` consumes and produces *named artifacts*:
//!
//! ```text
//! PosteriorStage ─▶ CorpusPosteriors ─┬─▶ AverageStage ─▶ VertexBeliefs
//! GraphStage     ─▶ KnnGraph ─────────┤
//!                                     ├─▶ PropagateStage ─▶ VertexBeliefs
//!                                     └─▶ DecodeStage ─▶ predictions
//! ```
//!
//! [`GraphNer::test`] is a thin driver over [`TestSession`], which owns
//! the artifacts. The point of the session is the ablation sweeps
//! (Tables III and IV): every row of those tables varies only the graph
//! or propagation hyper-parameters, yet the monolithic `test` recomputed
//! the CRF posteriors over `D_l ∪ D_u` — by far the dominant cost — and
//! the PMI vectors for every row. A session caches
//!
//! * the corpus posteriors (config-independent),
//! * the grown interner (its content is feature-set-independent),
//! * PMI vertex vectors per [`GraphFeatureSet`],
//! * k-NN graphs per (feature set, K),
//! * the averaged vertex beliefs and the dense `X_ref` slice,
//!
//! and each [`TestSession::run`] reuses whatever the requested
//! configuration allows. Stage spans ([`stage`]) are recorded only when
//! a stage actually computes, so the per-row [`TestTimings`] reflect
//! real work: a cached stage contributes zero seconds.

use crate::check;
use crate::config::{GraphFeatureSet, GraphNerConfig};
use crate::graphbuild::{build_vertex_vectors, knn_from_vectors};
use crate::model::{empirical_transitions, GraphNer, TestOutput};
use crate::stats::GraphStats;
use crate::timings::{stage, TestTimings};
use graphner_banner::NerModel;
use graphner_crf::viterbi_tags;
use graphner_graph::{propagate_partitioned, KnnGraph, LabelDist, Partition, SparseVec, UNIFORM};
use graphner_obs::{attr, counter, obs_summary, span, with_capture};
use graphner_text::{
    check_posteriors_finite, validate_sentences, BioTag, Corpus, Sentence, TagError, Tagger,
    TrigramInterner, NUM_TAGS,
};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// Per-vertex label beliefs, indexed by interner vertex id — the `X`
/// of Algorithm 1, produced by [`AverageStage`] and refined in place by
/// [`PropagateStage`].
pub type VertexBeliefs = Vec<LabelDist>;

/// CRF posteriors over `D_l ∪ D_u`, in corpus order (train first).
#[derive(Clone, Debug)]
pub struct CorpusPosteriors {
    /// One posterior row per token, one inner vec per sentence.
    pub per_sentence: Vec<Vec<LabelDist>>,
    /// Number of leading train sentences.
    pub num_train: usize,
}

impl CorpusPosteriors {
    /// The test-sentence slice (`D_u`).
    pub fn test(&self) -> &[Vec<LabelDist>] {
        &self.per_sentence[self.num_train..]
    }
}

/// The sentences the transductive procedure ranges over: `D_l ∪ D_u`
/// in a fixed order (train first), shared by every stage.
fn all_sentences<'s>(model: &'s GraphNer, test: &'s Corpus) -> Vec<&'s Sentence> {
    model.train_corpus.sentences.iter().chain(test.sentences.iter()).collect()
}

/// Line 5: CRF posterior extraction over `D_l ∪ D_u`.
pub struct PosteriorStage;

impl PosteriorStage {
    /// Run the base CRF's forward-backward over every sentence (rayon
    /// over sentences).
    pub fn run(model: &GraphNer, test: &Corpus) -> CorpusPosteriors {
        let sentences = all_sentences(model, test);
        let per_sentence: Vec<Vec<LabelDist>> =
            sentences.par_iter().map(|s| model.base.posteriors(s)).collect();
        if cfg!(debug_assertions) {
            for rows in &per_sentence {
                check::assert_distributions("CRF posteriors (PosteriorStage)", rows);
            }
        }
        CorpusPosteriors { per_sentence, num_train: model.train_corpus.len() }
    }
}

/// Graph construction: PMI feature vectors, then cosine k-NN.
pub struct GraphStage;

impl GraphStage {
    /// Build the PMI vertex vectors for a feature set, interning every
    /// 3-gram of `D_l ∪ D_u` into `interner`. K-independent.
    pub fn vectors(
        model: &GraphNer,
        interner: &mut TrigramInterner,
        test: &Corpus,
        feature_set: GraphFeatureSet,
    ) -> Vec<SparseVec> {
        let sentences = all_sentences(model, test);
        build_vertex_vectors(&model.base, interner, &sentences, feature_set)
    }

    /// Connect precomputed vectors into the K-nearest-neighbour graph.
    pub fn connect(vectors: &[SparseVec], k: usize) -> KnnGraph {
        knn_from_vectors(vectors, k)
    }
}

/// Line 6: `X(v)` = average CRF posterior over the occurrences of `v`.
pub struct AverageStage;

impl AverageStage {
    /// Average the posteriors vertex-wise. `interner` must already
    /// contain every 3-gram of `D_l ∪ D_u` (i.e. [`GraphStage::vectors`]
    /// ran first); vertices with no occurrence get the uniform belief.
    pub fn run(
        model: &GraphNer,
        test: &Corpus,
        posteriors: &CorpusPosteriors,
        interner: &TrigramInterner,
    ) -> VertexBeliefs {
        let n = interner.len();
        let mut x: VertexBeliefs = vec![[0.0; NUM_TAGS]; n];
        let mut occ = vec![0.0f64; n];
        for (sentence, post) in all_sentences(model, test).iter().zip(&posteriors.per_sentence) {
            for i in 0..sentence.len() {
                let Some(v) = interner.lookup_at(sentence, i) else {
                    unreachable!("GraphStage interns every corpus trigram before averaging")
                };
                let v = v as usize;
                for (xy, py) in x[v].iter_mut().zip(&post[i]) {
                    *xy += py;
                }
                occ[v] += 1.0;
            }
        }
        for (xv, &o) in x.iter_mut().zip(&occ) {
            if o > 0.0 {
                for v in xv.iter_mut() {
                    *v /= o;
                }
            } else {
                *xv = UNIFORM;
            }
        }
        check::assert_distributions("averaged vertex beliefs (AverageStage)", &x);
        x
    }
}

/// Line 7: Jacobi label propagation over the similarity graph, run by
/// the sharded engine against a prebuilt [`Partition`].
pub struct PropagateStage;

impl PropagateStage {
    /// Propagate in place; returns the sweep report. `partition` must
    /// be built from `graph` (the session caches one per resolved
    /// shard size, so repeated runs reuse the precomputed weight sums
    /// and boundary metadata).
    pub fn run(
        graph: &KnnGraph,
        partition: &Partition,
        x: &mut VertexBeliefs,
        x_ref: &[Option<LabelDist>],
        cfg: &GraphNerConfig,
    ) -> graphner_graph::PropagationReport {
        let report = propagate_partitioned(
            graph,
            partition,
            x,
            x_ref,
            &cfg.propagation,
            cfg.schedule.active_set,
        );
        check::assert_distributions("propagated vertex beliefs (PropagateStage)", x);
        report
    }
}

/// Lines 8–9: combine beliefs with the CRF posteriors and re-decode.
pub struct DecodeStage;

impl DecodeStage {
    /// Decode every test sentence from its cached posteriors and the
    /// propagated vertex beliefs.
    pub fn run(
        test: &Corpus,
        test_posteriors: &[Vec<LabelDist>],
        interner: &TrigramInterner,
        x: &[LabelDist],
        alpha: f64,
        transitions: &[[f64; NUM_TAGS]; NUM_TAGS],
    ) -> Vec<Vec<BioTag>> {
        test.sentences
            .par_iter()
            .zip(test_posteriors.par_iter())
            .map(|(sentence, post)| {
                combine_and_decode(sentence, post, interner, x, alpha, transitions)
            })
            .collect()
    }
}

/// Line 8: `P'_s(i) = α·P_s(i) + (1−α)·X(trigram at i)`, falling back
/// to the CRF posterior alone where the 3-gram is not in the graph.
fn combined_beliefs(
    sentence: &Sentence,
    post: &[LabelDist],
    interner: &TrigramInterner,
    x: &[LabelDist],
    alpha: f64,
) -> Vec<LabelDist> {
    let mut fallbacks = 0u64;
    let combined = (0..sentence.len())
        .map(|i| match interner.lookup_at(sentence, i) {
            Some(v) => {
                let xv = &x[v as usize];
                let mut d = [0.0; NUM_TAGS];
                for y in 0..NUM_TAGS {
                    d[y] = alpha * post[i][y] + (1.0 - alpha) * xv[y];
                }
                d
            }
            None => {
                fallbacks += 1;
                post[i]
            }
        })
        .collect();
    if fallbacks > 0 {
        // Novel-trigram fallbacks were invisible to metrics; the serve
        // path divides this counter by `serve.tokens` for its
        // fallback-rate gauge. One batched add per sentence keeps the
        // common transductive case (zero fallbacks) free of atomics.
        counter("serve.fallback").add(fallbacks);
    }
    combined
}

/// Lines 8–9 for a single sentence.
fn combine_and_decode(
    sentence: &Sentence,
    post: &[LabelDist],
    interner: &TrigramInterner,
    x: &[LabelDist],
    alpha: f64,
    transitions: &[[f64; NUM_TAGS]; NUM_TAGS],
) -> Vec<BioTag> {
    if sentence.is_empty() {
        return Vec::new();
    }
    let combined = combined_beliefs(sentence, post, interner, x, alpha);
    check::assert_distributions("interpolated beliefs (DecodeStage)", &combined);
    viterbi_tags(&combined, transitions)
}

/// A cached test session over one `(model, test corpus)` pair.
///
/// Construct once per test corpus and call [`TestSession::run`] with as
/// many configurations as needed — the Table III/IV sweeps run every
/// ablation row through one session so the CRF posteriors are extracted
/// once, not once per row. Artifacts invalidate never: the model and
/// corpus are borrowed immutably for the session's lifetime, so every
/// cached artifact stays valid.
pub struct TestSession<'a> {
    model: &'a GraphNer,
    test: &'a Corpus,
    /// Starts as the model's train-time interner (so vertex ids agree
    /// with `X_ref`) and grows to cover `D_u` on the first graph build.
    interner: TrigramInterner,
    posteriors: Option<CorpusPosteriors>,
    /// PMI vectors per [`GraphFeatureSet::cache_key`].
    vectors: FxHashMap<(u8, u64), Vec<SparseVec>>,
    /// k-NN graphs per (feature-set key, K).
    graphs: FxHashMap<((u8, u64), usize), KnnGraph>,
    /// Propagation partitions per (feature-set key, K, resolved shard
    /// size): the precomputed weight sums and boundary metadata are
    /// graph-derived, so they cache exactly like the graph itself.
    partitions: FxHashMap<((u8, u64), usize, usize), Partition>,
    /// Averaged vertex beliefs (config-independent).
    averaged: Option<VertexBeliefs>,
    /// Dense `X_ref` slice, indexed by vertex id.
    x_ref_slice: Option<Vec<Option<LabelDist>>>,
}

impl<'a> TestSession<'a> {
    /// Open a session for one test corpus.
    pub fn new(model: &'a GraphNer, test: &'a Corpus) -> TestSession<'a> {
        TestSession {
            model,
            test,
            interner: model.interner.clone(),
            posteriors: None,
            vectors: FxHashMap::default(),
            graphs: FxHashMap::default(),
            partitions: FxHashMap::default(),
            averaged: None,
            x_ref_slice: None,
        }
    }

    /// Number of distinct k-NN graphs built so far.
    pub fn cached_graph_count(&self) -> usize {
        self.graphs.len()
    }

    /// Number of distinct PMI vector sets built so far.
    pub fn cached_vector_count(&self) -> usize {
        self.vectors.len()
    }

    /// Number of distinct propagation partitions built so far.
    pub fn cached_partition_count(&self) -> usize {
        self.partitions.len()
    }

    fn ensure_posteriors(&mut self) {
        if self.posteriors.is_none() {
            let _s = span(stage::POSTERIORS);
            attr("corpus.sentences", self.model.train_corpus.len() + self.test.len());
            self.posteriors = Some(PosteriorStage::run(self.model, self.test));
        }
    }

    fn ensure_graph(&mut self, feature_set: GraphFeatureSet, k: usize) {
        let fs_key = feature_set.cache_key();
        if self.graphs.contains_key(&(fs_key, k)) {
            return;
        }
        // the span covers only the work this configuration adds: the
        // vectors when the feature set is new, plus the k-NN pass
        let _s = span(stage::GRAPH);
        if !self.vectors.contains_key(&fs_key) {
            let v = GraphStage::vectors(self.model, &mut self.interner, self.test, feature_set);
            self.vectors.insert(fs_key, v);
        }
        let graph = GraphStage::connect(&self.vectors[&fs_key], k);
        attr("graph.vertices", graph.num_vertices());
        attr("graph.edges", graph.num_edges());
        attr("graph.k", k);
        self.graphs.insert((fs_key, k), graph);
    }

    /// Build (or look up) the propagation partition of the graph
    /// keyed by `(feature set, k)` at the configured shard size.
    /// Requires a prior [`Self::ensure_graph`]. Returns the resolved
    /// vertices-per-shard, which completes the cache key: two
    /// `ShardSize` values resolving to the same concrete size share
    /// one partition.
    fn ensure_partition(&mut self, cfg: &GraphNerConfig) -> usize {
        let graph_key = (cfg.feature_set.cache_key(), cfg.k);
        let Some(graph) = self.graphs.get(&graph_key) else {
            unreachable!("callers run ensure_graph before ensure_partition")
        };
        let resolved = cfg.schedule.shard_size.resolve(graph.num_vertices());
        let key = (graph_key.0, graph_key.1, resolved);
        self.partitions
            .entry(key)
            .or_insert_with(|| Partition::new(graph, graphner_graph::ShardSize::Fixed(resolved)));
        resolved
    }

    /// Requires a prior [`Self::ensure_graph`], which completes the
    /// interner over `D_l ∪ D_u`.
    fn ensure_averaged(&mut self) {
        if self.averaged.is_none() {
            let _s = span(stage::AVERAGE);
            attr("average.vertices", self.interner.len());
            let Some(posteriors) = self.posteriors.as_ref() else {
                unreachable!("callers run ensure_posteriors before ensure_averaged")
            };
            self.averaged =
                Some(AverageStage::run(self.model, self.test, posteriors, &self.interner));
        }
    }

    fn ensure_x_ref_slice(&mut self) {
        if self.x_ref_slice.is_none() {
            let n = self.interner.len();
            self.x_ref_slice =
                Some((0..n as u32).map(|v| self.model.x_ref.get(&v).copied()).collect());
        }
    }

    /// TEST (Algorithm 1, lines 4–9) under one configuration, reusing
    /// every cached artifact the configuration permits.
    pub fn run(&mut self, cfg: &GraphNerConfig) -> TestOutput {
        let ((predictions, base_predictions, stats, report), spans) = with_capture(|| {
            self.ensure_posteriors();
            self.ensure_graph(cfg.feature_set, cfg.k);
            let shard_vertices = self.ensure_partition(cfg);
            self.ensure_averaged();
            self.ensure_x_ref_slice();

            let graph_key = (cfg.feature_set.cache_key(), cfg.k);
            let graph = &self.graphs[&graph_key];
            let partition = &self.partitions[&(graph_key.0, graph_key.1, shard_vertices)];
            let (Some(x_ref_slice), Some(posteriors), Some(averaged)) =
                (self.x_ref_slice.as_ref(), self.posteriors.as_ref(), self.averaged.as_ref())
            else {
                unreachable!("the ensure_* calls above populate the session cache")
            };

            // propagation mutates the beliefs, so each run works on a
            // copy of the cached averages
            let mut x = averaged.clone();
            let report = {
                let _s = span(stage::PROPAGATE);
                PropagateStage::run(graph, partition, &mut x, x_ref_slice, cfg)
            };

            let transitions = empirical_transitions(
                &self.model.train_corpus,
                cfg.trans_add_k,
                cfg.trans_power,
                cfg.trans_ratio_cap,
            );
            let test_posteriors = posteriors.test();
            let predictions = {
                let _s = span(stage::DECODE);
                attr("decode.sentences", self.test.len());
                DecodeStage::run(
                    self.test,
                    test_posteriors,
                    &self.interner,
                    &x,
                    cfg.alpha,
                    &transitions,
                )
            };

            // Baseline decode for comparison (not part of Algorithm 1):
            // a posterior re-decode of the already-computed test
            // posteriors under the same transitions, so α = 1 makes
            // `predictions` and `base_predictions` coincide.
            let base_predictions: Vec<Vec<BioTag>> =
                test_posteriors.par_iter().map(|post| viterbi_tags(post, &transitions)).collect();

            let stats = GraphStats::compute(graph, x_ref_slice, partition);
            (predictions, base_predictions, stats, report)
        });

        let timings = TestTimings::from_spans(&spans);
        obs_summary!(
            "graphner test: posteriors {:.3}s, graph {:.3}s, average {:.3}s, \
             propagate {:.3}s, decode {:.3}s ({} sweeps, converged={})",
            timings.posterior_seconds,
            timings.graph_seconds,
            timings.average_seconds,
            timings.propagate_seconds,
            timings.decode_seconds,
            report.iterations,
            report.converged
        );

        TestOutput {
            predictions,
            base_predictions,
            stats,
            timings,
            propagation_iterations: report.iterations,
            converged: report.converged,
        }
    }

    /// Freeze the session's propagated beliefs under `cfg` into a
    /// standalone [`GraphTagger`].
    pub fn tagger(&mut self, cfg: &GraphNerConfig) -> GraphTagger {
        self.ensure_posteriors();
        self.ensure_graph(cfg.feature_set, cfg.k);
        let shard_vertices = self.ensure_partition(cfg);
        self.ensure_averaged();
        self.ensure_x_ref_slice();
        let graph_key = (cfg.feature_set.cache_key(), cfg.k);
        let graph = &self.graphs[&graph_key];
        let partition = &self.partitions[&(graph_key.0, graph_key.1, shard_vertices)];
        let (Some(averaged), Some(x_ref_slice)) =
            (self.averaged.as_ref(), self.x_ref_slice.as_ref())
        else {
            unreachable!("the ensure_* calls above populate the session cache")
        };
        let mut x = averaged.clone();
        PropagateStage::run(graph, partition, &mut x, x_ref_slice, cfg);
        GraphTagger {
            base: self.model.base.clone(),
            interner: self.interner.clone(),
            x,
            alpha: cfg.alpha,
            transitions: empirical_transitions(
                &self.model.train_corpus,
                cfg.trans_add_k,
                cfg.trans_power,
                cfg.trans_ratio_cap,
            ),
        }
    }
}

/// The GraphNER decode as a serving-style [`Tagger`]: the base CRF plus
/// the propagated vertex beliefs frozen at the end of a [`TestSession`].
///
/// On the session's test sentences its predictions are exactly the
/// session's. On new sentences it is an *inductive* application of the
/// transductive model: tokens whose 3-gram appeared in `D_l ∪ D_u` get
/// the graph-interpolated belief, unseen 3-grams fall back to the CRF
/// posterior alone.
#[derive(Clone, Debug)]
pub struct GraphTagger {
    base: NerModel,
    interner: TrigramInterner,
    x: VertexBeliefs,
    alpha: f64,
    transitions: [[f64; NUM_TAGS]; NUM_TAGS],
}

impl Tagger for GraphTagger {
    fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
        let post = self.base.posteriors(sentence);
        combine_and_decode(sentence, &post, &self.interner, &self.x, self.alpha, &self.transitions)
    }

    /// The combined beliefs `P'_s` of line 8 — each row is a convex
    /// combination of distributions, hence itself a distribution.
    fn posteriors(&self, sentence: &Sentence) -> Vec<LabelDist> {
        let post = self.base.posteriors(sentence);
        combined_beliefs(sentence, &post, &self.interner, &self.x, self.alpha)
    }

    /// Sentences are independent at serving time, so the batch path
    /// fans out over the worker pool; order-preserving collection
    /// keeps the result identical to sentence-by-sentence prediction.
    ///
    /// The call records a `serve.tag_batch` span carrying the batch
    /// size and the pool-counter advance it caused, so batch traces
    /// show how much of the work the workers actually absorbed.
    // hot: parallel batch tagging, the serve-path throughput core
    fn tag_batch(&self, sentences: &[Sentence]) -> Vec<Vec<BioTag>> {
        let _s = span("serve.tag_batch");
        attr("batch.sentences", sentences.len());
        let before = rayon::pool_stats();
        // alloc: one exact-size result Vec per batch
        let out: Vec<Vec<BioTag>> = sentences.par_iter().map(|s| self.predict(s)).collect();
        let delta = rayon::pool_stats().delta(&before);
        attr("pool.threads", delta.threads);
        attr("pool.jobs", delta.jobs_submitted);
        attr("pool.chunks", delta.chunks_executed);
        attr("pool.chunks_on_workers", delta.chunks_on_workers);
        out
    }

    /// Fallible batch path with the same fan-out as `tag_batch`: each
    /// sentence computes its base-CRF posteriors once, checks them for
    /// non-finite entries, and decodes from that same posterior slice —
    /// so a clean batch produces tags byte-identical to `tag_batch`.
    /// The order-preserving collect plus the sequential error scan
    /// below make the reported error the lowest offending batch index
    /// at any thread count.
    fn try_tag_batch(&self, sentences: &[Sentence]) -> Result<Vec<Vec<BioTag>>, TagError> {
        validate_sentences(sentences)?;
        let _s = span("serve.tag_batch");
        attr("batch.sentences", sentences.len());
        let per: Vec<Result<Vec<BioTag>, TagError>> = sentences
            .par_iter()
            .enumerate()
            .map(|(index, s)| {
                let post = self.base.posteriors(s);
                check_posteriors_finite(index, &post)?;
                Ok(combine_and_decode(
                    s,
                    &post,
                    &self.interner,
                    &self.x,
                    self.alpha,
                    &self.transitions,
                ))
            })
            .collect();
        let mut out = Vec::with_capacity(per.len());
        for r in per {
            out.push(r?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_banner::NerConfig;
    use graphner_crf::{Order, TrainConfig};
    use graphner_text::{tokenize, BioTag::*};

    fn quick_base_cfg() -> NerConfig {
        NerConfig {
            order: Order::One,
            train: TrainConfig { max_iterations: 60, l2: 0.1, ..Default::default() },
            min_feature_count: 1,
        }
    }

    fn toy_train() -> Corpus {
        let mk =
            |id: &str, text: &str, tags: Vec<BioTag>| Sentence::labelled(id, tokenize(text), tags);
        Corpus::from_sentences(vec![
            mk("s0", "the WT1 gene was expressed", vec![O, B, O, O, O]),
            mk("s1", "mutation of SH2B3 was detected", vec![O, O, B, O, O]),
            mk("s2", "the KRAS gene was mutated", vec![O, B, O, O, O]),
            mk("s3", "expression of TP53 was low", vec![O, O, B, O, O]),
            mk("s4", "the patient was treated", vec![O, O, O, O]),
            mk("s5", "no mutation was found", vec![O, O, O, O]),
        ])
    }

    fn toy_test() -> Corpus {
        Corpus::from_sentences(vec![
            Sentence::unlabelled("t0", tokenize("the FLT3 gene was expressed")),
            Sentence::unlabelled("t1", tokenize("no mutation was found")),
        ])
    }

    fn count(spans: &[graphner_obs::SpanRecord], name: &str) -> usize {
        spans.iter().filter(|s| s.name == name).count()
    }

    #[test]
    fn session_matches_thin_driver_and_reuses_posteriors() {
        let train = toy_train();
        let test = toy_test();
        let (gner, _) = GraphNer::train(&train, &quick_base_cfg(), None, GraphNerConfig::default());
        let one_shot = gner.test(&test);

        let mut session = TestSession::new(&gner, &test);
        let (outs, spans) = with_capture(|| {
            let a = session.run(gner.config());
            let b = session.run(gner.config());
            (a, b)
        });
        // identical predictions on every run, cached or not
        assert_eq!(outs.0.predictions, one_shot.predictions);
        assert_eq!(outs.1.predictions, one_shot.predictions);
        assert_eq!(outs.0.base_predictions, one_shot.base_predictions);
        assert_eq!(outs.1.base_predictions, one_shot.base_predictions);
        // heavy stages ran once; only propagate + decode repeat
        assert_eq!(count(&spans, stage::POSTERIORS), 1);
        assert_eq!(count(&spans, stage::GRAPH), 1);
        assert_eq!(count(&spans, stage::AVERAGE), 1);
        assert_eq!(count(&spans, stage::PROPAGATE), 2);
        assert_eq!(count(&spans, stage::DECODE), 2);
        // and the cached second run reports zero seconds for them
        assert_eq!(outs.1.timings.posterior_seconds, 0.0);
        assert_eq!(outs.1.timings.graph_seconds, 0.0);
        assert!(outs.1.timings.propagate_seconds > 0.0);
    }

    #[test]
    fn session_sweep_matches_reconfigured_models() {
        let train = toy_train();
        let test = toy_test();
        let (gner, _) = GraphNer::train(&train, &quick_base_cfg(), None, GraphNerConfig::default());
        let variants = [
            GraphNerConfig { k: 5, ..GraphNerConfig::default() },
            GraphNerConfig { feature_set: GraphFeatureSet::Lexical, ..GraphNerConfig::default() },
            GraphNerConfig { alpha: 0.5, ..GraphNerConfig::default() },
        ];
        let mut session = TestSession::new(&gner, &test);
        for cfg in variants {
            let staged = session.run(&cfg);
            let fresh = gner.reconfigured(cfg).test(&test);
            assert_eq!(staged.predictions, fresh.predictions);
            assert_eq!(staged.stats.num_edges, fresh.stats.num_edges);
        }
        // All + Lexical vector sets; (All,10), (All,5), (Lexical,10) graphs
        assert_eq!(session.cached_vector_count(), 2);
        assert_eq!(session.cached_graph_count(), 3);
    }

    #[test]
    fn vectors_are_reused_across_k() {
        let train = toy_train();
        let test = toy_test();
        let (gner, _) = GraphNer::train(&train, &quick_base_cfg(), None, GraphNerConfig::default());
        let mut session = TestSession::new(&gner, &test);
        session.run(&GraphNerConfig { k: 10, ..GraphNerConfig::default() });
        session.run(&GraphNerConfig { k: 5, ..GraphNerConfig::default() });
        assert_eq!(session.cached_vector_count(), 1);
        assert_eq!(session.cached_graph_count(), 2);
    }

    #[test]
    fn partitions_are_cached_and_shard_size_never_changes_output() {
        use graphner_graph::{ShardSize, SweepSchedule};
        let train = toy_train();
        let test = toy_test();
        let (gner, _) = GraphNer::train(&train, &quick_base_cfg(), None, GraphNerConfig::default());
        let mut session = TestSession::new(&gner, &test);
        let base = session.run(&GraphNerConfig::default());
        assert_eq!(session.cached_partition_count(), 1);
        // rerunning the same schedule reuses the cached partition
        session.run(&GraphNerConfig::default());
        assert_eq!(session.cached_partition_count(), 1);
        // any shard size produces byte-identical predictions and stats
        for size in [1usize, 3, 1024] {
            let cfg = GraphNerConfig {
                schedule: SweepSchedule { shard_size: ShardSize::Fixed(size), active_set: false },
                ..GraphNerConfig::default()
            };
            let out = session.run(&cfg);
            assert_eq!(out.predictions, base.predictions, "shard size {size} changed the decode");
            assert_eq!(out.base_predictions, base.base_predictions);
        }
        // Fixed(1024) resolves to the same size Auto picked on this toy
        // graph, so only the two genuinely new sizes added partitions
        assert_eq!(session.cached_partition_count(), 3);
    }

    #[test]
    fn graph_tagger_matches_session_predictions() {
        let train = toy_train();
        let test = toy_test();
        let (gner, _) = GraphNer::train(&train, &quick_base_cfg(), None, GraphNerConfig::default());
        let mut session = TestSession::new(&gner, &test);
        let out = session.run(gner.config());
        let tagger = session.tagger(gner.config());
        for (sentence, expect) in test.sentences.iter().zip(&out.predictions) {
            assert_eq!(&tagger.predict(sentence), expect);
            // combined beliefs are distributions
            check::assert_distributions("tagger posteriors", &tagger.posteriors(sentence));
        }
        // inductive fallback: a sentence with unseen trigrams still tags
        let novel = Sentence::unlabelled("n0", tokenize("completely unrelated words here"));
        assert_eq!(tagger.predict(&novel).len(), 4);
    }
}
