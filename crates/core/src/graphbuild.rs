//! Similarity-graph construction over the partially labelled corpus.
//!
//! Vertices are the unique 3-grams of `D_l ∪ D_u`; each occurrence of a
//! 3-gram contributes the feature instances firing at its centre token
//! (per the chosen [`GraphFeatureSet`]) to the vertex's PMI vector; the
//! graph keeps the K nearest neighbours by cosine.

use crate::check;
use crate::config::GraphFeatureSet;
use graphner_banner::{extract_features, FeatureSet, NerModel};
use graphner_graph::{knn_inverted_index, KnnGraph, VertexFeatureCounts};
use graphner_obs::{obs_debug, obs_summary, span};
use graphner_text::{exactly_zero, Sentence, TrigramInterner, Vocab};
use rustc_hash::{FxHashMap, FxHashSet};

/// Mutual information between a binary feature's presence and the tag
/// the base CRF assigns, over all token occurrences. Used by the
/// `MI > τ` vertex representations of Table III.
pub fn feature_tag_mi(model: &NerModel, sentences: &[&Sentence]) -> FxHashMap<String, f64> {
    let mut n_ft: FxHashMap<(String, usize), f64> = FxHashMap::default();
    let mut n_f: FxHashMap<String, f64> = FxHashMap::default();
    let mut n_t = [0.0f64; 3];
    let mut total = 0.0f64;
    let mut buf = Vec::new();
    for sentence in sentences {
        if sentence.is_empty() {
            continue;
        }
        let tags = model.predict(sentence);
        for (i, tag) in tags.iter().enumerate() {
            let t = tag.index();
            model.feature_strings(sentence, i, &mut buf);
            buf.sort_unstable();
            buf.dedup();
            for f in &buf {
                *n_ft.entry((f.clone(), t)).or_insert(0.0) += 1.0;
                *n_f.entry(f.clone()).or_insert(0.0) += 1.0;
            }
            n_t[t] += 1.0;
            total += 1.0;
        }
    }
    if exactly_zero(total) {
        return FxHashMap::default();
    }

    let mut mi: FxHashMap<String, f64> = FxHashMap::default();
    for (f, nf) in &n_f {
        let p1 = nf / total;
        let p0 = 1.0 - p1;
        let mut m = 0.0;
        for t in 0..3 {
            let pt = n_t[t] / total;
            if exactly_zero(pt) {
                continue;
            }
            let p1t = n_ft.get(&(f.clone(), t)).copied().unwrap_or(0.0) / total;
            let p0t = pt - p1t;
            if p1t > 0.0 && p1 > 0.0 {
                m += p1t * (p1t / (p1 * pt)).ln();
            }
            if p0t > 0.0 && p0 > 0.0 {
                m += p0t * (p0t / (p0 * pt)).ln();
            }
        }
        mi.insert(f.clone(), m);
    }
    mi
}

/// Build the PMI feature vectors for every 3-gram vertex of
/// `sentences`, interning any 3-grams not yet in `interner`. The
/// returned vector list is indexed by vertex id and depends only on the
/// corpus and `feature_set` — not on K — so sessions sweeping K can
/// reuse it across [`knn_from_vectors`] calls.
pub fn build_vertex_vectors(
    model: &NerModel,
    interner: &mut TrigramInterner,
    sentences: &[&Sentence],
    feature_set: GraphFeatureSet,
) -> Vec<graphner_graph::SparseVec> {
    // MI selection needs a first pass over the corpus with the trained
    // model before feature filtering.
    let allowed: Option<FxHashSet<String>> = match feature_set {
        GraphFeatureSet::MiThreshold(tau) => {
            let _s = span("graph.mi_filter");
            let mi = feature_tag_mi(model, sentences);
            let total = mi.len();
            let allow: FxHashSet<String> =
                mi.into_iter().filter(|&(_, m)| m > tau).map(|(f, _)| f).collect();
            obs_debug!(
                "graph: MI filter keeps {}/{} features above tau {tau:.3e}",
                allow.len(),
                total
            );
            Some(allow)
        }
        _ => None,
    };

    let mut feature_vocab = Vocab::new();
    let mut counts = VertexFeatureCounts::new();
    {
        let _s = span("graph.vectors");
        let mut buf = Vec::new();
        for sentence in sentences {
            for i in 0..sentence.len() {
                let v = interner.intern_at(sentence, i);
                match feature_set {
                    GraphFeatureSet::Lexical => {
                        extract_features(sentence, i, FeatureSet::Lexical, None, &mut buf)
                    }
                    _ => model.feature_strings(sentence, i, &mut buf),
                }
                buf.sort_unstable();
                buf.dedup();
                for f in &buf {
                    if let Some(allow) = &allowed {
                        if !allow.contains(f) {
                            continue;
                        }
                    }
                    counts.add(v, feature_vocab.intern(f), 1.0);
                }
            }
        }
        graphner_obs::attr("graph.vertices", interner.len());
        graphner_obs::attr("graph.features", feature_vocab.len());
    }
    graphner_obs::counter("graph.features").add(feature_vocab.len() as u64);
    let _s = span("graph.pmi");
    let vectors = counts.pmi_vectors(interner.len());
    let nnz: u64 = vectors.iter().map(|v| v.entries().len() as u64).sum();
    graphner_obs::attr("pmi.nnz", nnz);
    check::assert_finite_sparse("PMI vertex vectors (GraphStage)", &vectors);
    vectors
}

/// Connect precomputed PMI vectors into the K-nearest-neighbour graph.
pub fn knn_from_vectors(vectors: &[graphner_graph::SparseVec], k: usize) -> KnnGraph {
    let graph = {
        let _s = span("graph.knn");
        graphner_obs::attr("knn.k", k);
        knn_inverted_index(vectors, k)
    };
    check::assert_edge_weights_symmetric("k-NN graph (GraphStage)", &graph);
    graphner_obs::counter("graph.vertices").add(graph.num_vertices() as u64);
    obs_summary!(
        "graph build: {} vertices, {} edges (k = {k})",
        graph.num_vertices(),
        graph.num_edges()
    );
    graph
}

/// Build the k-NN similarity graph. `interner` must already contain (or
/// will be extended with) every 3-gram of `sentences`; the returned
/// graph's vertex ids are the interner's.
///
/// One-shot composition of [`build_vertex_vectors`] and
/// [`knn_from_vectors`]; staged callers (the session cache in
/// [`crate::pipeline`]) invoke the pieces directly so the vectors can
/// be reused across K sweeps.
pub fn build_graph(
    model: &NerModel,
    interner: &mut TrigramInterner,
    sentences: &[&Sentence],
    feature_set: GraphFeatureSet,
    k: usize,
) -> KnnGraph {
    let vectors = build_vertex_vectors(model, interner, sentences, feature_set);
    knn_from_vectors(&vectors, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_banner::NerConfig;
    use graphner_crf::{Order, TrainConfig};
    use graphner_text::{tokenize, BioTag::*, Corpus};

    fn toy_model_and_corpus() -> (NerModel, Corpus) {
        let mk = |id: &str, text: &str, tags: Vec<graphner_text::BioTag>| {
            Sentence::labelled(id, tokenize(text), tags)
        };
        let corpus = Corpus::from_sentences(vec![
            mk("s0", "the WT1 gene was expressed", vec![O, B, O, O, O]),
            mk("s1", "mutation of SH2B3 was detected", vec![O, O, B, O, O]),
            mk("s2", "the KRAS gene was mutated", vec![O, B, O, O, O]),
            mk("s3", "no mutation was found", vec![O, O, O, O]),
        ]);
        let cfg = NerConfig {
            order: Order::One,
            train: TrainConfig { max_iterations: 50, ..Default::default() },
            min_feature_count: 1,
        };
        let (model, _) = NerModel::train(&corpus, &cfg, None);
        (model, corpus)
    }

    #[test]
    fn graph_covers_all_trigrams() {
        let (model, corpus) = toy_model_and_corpus();
        let refs: Vec<&Sentence> = corpus.sentences.iter().collect();
        let mut interner = TrigramInterner::new();
        let g = build_graph(&model, &mut interner, &refs, GraphFeatureSet::All, 3);
        assert_eq!(g.num_vertices(), interner.len());
        assert!(g.num_vertices() > 10);
        // every vertex has at most K out-edges
        for v in 0..g.num_vertices() as u32 {
            assert!(g.out_degree(v) <= 3);
        }
    }

    #[test]
    fn similar_contexts_are_neighbours() {
        let (model, corpus) = toy_model_and_corpus();
        let refs: Vec<&Sentence> = corpus.sentences.iter().collect();
        let mut interner = TrigramInterner::new();
        let g = build_graph(&model, &mut interner, &refs, GraphFeatureSet::All, 3);
        // [the WT1 gene] and [the KRAS gene] occupy the same context
        let v1 = interner.lookup_at(&corpus.sentences[0], 1).unwrap();
        let v2 = interner.lookup_at(&corpus.sentences[2], 1).unwrap();
        assert!(
            g.neighbors(v1).any(|(nb, _)| nb == v2),
            "expected {} among neighbours of {}",
            interner.render(v2),
            interner.render(v1)
        );
    }

    #[test]
    fn lexical_set_builds_smaller_vectors() {
        let (model, corpus) = toy_model_and_corpus();
        let refs: Vec<&Sentence> = corpus.sentences.iter().collect();
        let mut i1 = TrigramInterner::new();
        let mut i2 = TrigramInterner::new();
        let g_all = build_graph(&model, &mut i1, &refs, GraphFeatureSet::All, 3);
        let g_lex = build_graph(&model, &mut i2, &refs, GraphFeatureSet::Lexical, 3);
        assert_eq!(g_all.num_vertices(), g_lex.num_vertices());
    }

    #[test]
    fn mi_scores_nonnegative_and_informative_features_rank_high() {
        let (model, corpus) = toy_model_and_corpus();
        let refs: Vec<&Sentence> = corpus.sentences.iter().collect();
        let mi = feature_tag_mi(&model, &refs);
        assert!(!mi.is_empty());
        for &m in mi.values() {
            assert!(m > -1e-9, "negative MI");
        }
        // a gene-indicative feature must out-rank the constant bias
        let bias = mi["BIAS"];
        let hasdig = mi["ORTH=HASDIG"];
        assert!(hasdig > bias, "HASDIG {hasdig} vs BIAS {bias}");
        assert!(bias.abs() < 1e-9, "constant feature carries no information");
    }

    #[test]
    fn mi_threshold_filters_features() {
        let (model, corpus) = toy_model_and_corpus();
        let refs: Vec<&Sentence> = corpus.sentences.iter().collect();
        let mut interner = TrigramInterner::new();
        // with an impossible threshold no features survive: empty graph
        let g = build_graph(&model, &mut interner, &refs, GraphFeatureSet::MiThreshold(1e9), 3);
        assert_eq!(g.num_edges(), 0);
        // with a permissive threshold the graph has edges
        let mut interner2 = TrigramInterner::new();
        let g2 = build_graph(&model, &mut interner2, &refs, GraphFeatureSet::MiThreshold(1e-6), 3);
        assert!(g2.num_edges() > 0);
    }
}
