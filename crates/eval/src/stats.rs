//! Chi-square tests for the qualitative error analysis (section III-E).
//!
//! The paper uses "a chi-square two-sample test for equality of
//! proportions with continuity correction" (R's `prop.test`) to compare
//! the proportion of gene-related false positives between systems, and a
//! chi-square test of proportions for the corpus-annotation-error
//! comparison.

use graphner_text::{approx_eq, is_zero};

/// Complementary error function, Abramowitz & Stegun 7.1.26 (max error
/// 1.5e-7) extended to the full real line by symmetry.
pub fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let v = poly * (-x * x).exp();
    if x >= 0.0 {
        v
    } else {
        2.0 - v
    }
}

/// Upper tail of the chi-square distribution with 1 degree of freedom:
/// `P(X² ≥ x) = erfc(√(x/2))`.
pub fn chi2_sf_1df(x: f64) -> f64 {
    if x <= 0.0 {
        1.0
    } else {
        erfc((x / 2.0).sqrt())
    }
}

/// Result of a two-sample proportion test.
#[derive(Clone, Copy, Debug)]
pub struct ProportionTest {
    /// The chi-square statistic (with Yates continuity correction).
    pub statistic: f64,
    /// Two-sided p-value (1 df).
    pub p_value: f64,
    /// Sample proportions.
    pub p1: f64,
    /// Sample proportions.
    pub p2: f64,
}

/// Chi-square two-sample test for equality of proportions with
/// continuity correction (R's `prop.test` with two groups).
///
/// `x1` successes out of `n1` trials vs `x2` out of `n2`.
pub fn prop_test(x1: usize, n1: usize, x2: usize, n2: usize) -> ProportionTest {
    assert!(x1 <= n1 && x2 <= n2, "successes exceed trials");
    assert!(n1 > 0 && n2 > 0, "empty sample");
    let (x1f, n1f, x2f, n2f) = (x1 as f64, n1 as f64, x2 as f64, n2 as f64);
    let p1 = x1f / n1f;
    let p2 = x2f / n2f;
    let p_pool = (x1f + x2f) / (n1f + n2f);
    if is_zero(p_pool) || approx_eq(p_pool, 1.0) {
        return ProportionTest { statistic: 0.0, p_value: 1.0, p1, p2 };
    }
    // Yates correction, capped so the statistic cannot go negative.
    let diff = (p1 - p2).abs();
    let correction = (0.5 * (1.0 / n1f + 1.0 / n2f)).min(diff);
    let num = (diff - correction).powi(2);
    let den = p_pool * (1.0 - p_pool) * (1.0 / n1f + 1.0 / n2f);
    let statistic = num / den;
    ProportionTest { statistic, p_value: chi2_sf_1df(statistic), p1, p2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(1) ≈ 0.157299, erfc(-1) ≈ 1.842701
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
        assert!(erfc(5.0) < 1e-10);
    }

    #[test]
    fn chi2_sf_reference_values() {
        // P(X²₁ ≥ 3.841) ≈ 0.05, P(X²₁ ≥ 6.635) ≈ 0.01
        assert!((chi2_sf_1df(3.841) - 0.05).abs() < 1e-3);
        assert!((chi2_sf_1df(6.635) - 0.01).abs() < 1e-3);
        assert_eq!(chi2_sf_1df(0.0), 1.0);
    }

    #[test]
    fn prop_test_matches_r() {
        // R: prop.test(c(40, 60), c(100, 100)) -> X² = 7.22, p = 0.00721
        let t = prop_test(40, 100, 60, 100);
        assert!((t.statistic - 7.22).abs() < 0.01, "stat = {}", t.statistic);
        assert!((t.p_value - 0.00721).abs() < 0.0005, "p = {}", t.p_value);
    }

    #[test]
    fn prop_test_equal_proportions() {
        let t = prop_test(30, 100, 30, 100);
        assert!(t.statistic < 1e-12);
        assert!(t.p_value > 0.99);
    }

    #[test]
    fn prop_test_extreme_difference() {
        let t = prop_test(95, 100, 5, 100);
        assert!(t.p_value < 1e-10);
    }

    #[test]
    fn prop_test_degenerate_pool() {
        let t = prop_test(0, 50, 0, 70);
        assert_eq!(t.p_value, 1.0);
        let t = prop_test(50, 50, 70, 70);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn continuity_correction_capped() {
        // tiny samples where the correction would exceed the difference
        let t = prop_test(1, 2, 1, 2);
        assert!(t.statistic >= 0.0);
        assert!(t.p_value <= 1.0 && t.p_value > 0.9);
    }
}
