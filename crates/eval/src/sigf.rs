//! Approximate-randomization significance testing (sigf).
//!
//! Reimplements Padó's `sigf` tool, which the paper uses: "sigf
//! repeatedly constructs statistically identical models m3 and m4 by
//! taking the predictions that are produced by m1 or m2 but not both of
//! them, and randomly assigning those predictions to either m3 or m4.
//! How often m3 and m4 produce results that are at least as different as
//! results of m1 and m2 is interpreted as the p-value" (Yeh 2000).
//!
//! The shuffled unit is the sentence: each shuffle swaps the two
//! systems' per-sentence counts independently with probability ½. Units
//! where both systems produced identical counts are invariant under the
//! swap, which realizes the "produced by m1 or m2 but not both"
//! restriction without special-casing.

use crate::bc2::{Counts, Evaluation};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which metric the null hypothesis is about (Table V tests all three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Precision.
    Precision,
    /// Recall.
    Recall,
    /// F-score.
    FScore,
}

impl Metric {
    /// Evaluate the metric on aggregate counts.
    pub fn of(&self, c: &Counts) -> f64 {
        match self {
            Metric::Precision => c.precision(),
            Metric::Recall => c.recall(),
            Metric::FScore => c.f_score(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Precision => "Precision",
            Metric::Recall => "Recall",
            Metric::FScore => "F-score",
        }
    }
}

/// Result of a sigf run.
#[derive(Clone, Copy, Debug)]
pub struct SigfResult {
    /// Absolute observed metric difference between the two systems.
    pub observed_diff: f64,
    /// Estimated p-value, `(r + 1) / (reps + 1)` where `r` counts
    /// shuffles at least as extreme as the observation.
    pub p_value: f64,
    /// Number of shuffles run.
    pub repetitions: usize,
}

/// Run the approximate randomization test over two paired evaluations.
///
/// Both evaluations must cover the same sentences (they will, when
/// produced by [`crate::bc2::evaluate`] against the same gold set).
pub fn sigf(
    a: &Evaluation,
    b: &Evaluation,
    metric: Metric,
    repetitions: usize,
    seed: u64,
) -> SigfResult {
    // Pair the per-sentence counts.
    let mut ids: Vec<&String> = a.per_sentence.keys().collect();
    ids.sort_unstable();
    let pairs: Vec<(Counts, Counts)> = ids
        .iter()
        .map(|id| {
            let ca = a.per_sentence[*id];
            let cb = b.per_sentence.get(*id).copied().unwrap_or(Counts {
                tp: 0,
                detections: 0,
                gold: ca.gold,
            });
            (ca, cb)
        })
        .collect();

    let observed_diff = (metric.of(&a.totals) - metric.of(&b.totals)).abs();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut extreme = 0usize;
    const EPS: f64 = 1e-12;
    for _ in 0..repetitions {
        let mut ta = Counts::default();
        let mut tb = Counts::default();
        for &(ca, cb) in &pairs {
            if rng.gen::<bool>() {
                ta.merge(&cb);
                tb.merge(&ca);
            } else {
                ta.merge(&ca);
                tb.merge(&cb);
            }
        }
        if (metric.of(&ta) - metric.of(&tb)).abs() >= observed_diff - EPS {
            extreme += 1;
        }
    }
    SigfResult {
        observed_diff,
        p_value: (extreme as f64 + 1.0) / (repetitions as f64 + 1.0),
        repetitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashMap;

    fn eval_from(counts: Vec<(&str, Counts)>) -> Evaluation {
        let mut per_sentence = FxHashMap::default();
        let mut totals = Counts::default();
        for (id, c) in counts {
            totals.merge(&c);
            per_sentence.insert(id.to_string(), c);
        }
        Evaluation { per_sentence, totals }
    }

    fn c(tp: usize, det: usize, gold: usize) -> Counts {
        Counts { tp, detections: det, gold }
    }

    #[test]
    fn identical_systems_not_significant() {
        let counts: Vec<(String, Counts)> =
            (0..50).map(|i| (format!("s{i}"), c(i % 3, 3, 3))).collect();
        let a = eval_from(counts.iter().map(|(s, x)| (s.as_str(), *x)).collect());
        let b = a.clone();
        let r = sigf(&a, &b, Metric::FScore, 500, 1);
        assert_eq!(r.observed_diff, 0.0);
        // every shuffle is "at least as extreme" as 0
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn overwhelming_difference_is_significant() {
        // system A perfect, system B completely wrong, 200 sentences
        let a = eval_from(
            (0..200)
                .map(|i| (format!("s{i}"), c(2, 2, 2)))
                .collect::<Vec<_>>()
                .iter()
                .map(|(s, x)| (s.as_str(), *x))
                .collect(),
        );
        let b = eval_from(
            (0..200)
                .map(|i| (format!("s{i}"), c(0, 2, 2)))
                .collect::<Vec<_>>()
                .iter()
                .map(|(s, x)| (s.as_str(), *x))
                .collect(),
        );
        let r = sigf(&a, &b, Metric::FScore, 1000, 2);
        assert!(r.observed_diff > 0.9);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn tiny_difference_not_significant() {
        // one sentence differs out of 100
        let mk = |flip: bool| {
            let counts: Vec<(String, Counts)> = (0..100)
                .map(|i| {
                    let tp = if i == 0 && flip { 1 } else { 2 };
                    (format!("s{i}"), c(tp, 2, 2))
                })
                .collect();
            eval_from(counts.iter().map(|(s, x)| (s.as_str(), *x)).collect())
        };
        let r = sigf(&mk(false), &mk(true), Metric::FScore, 1000, 3);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = eval_from(
            (0..30)
                .map(|i| (format!("s{i}"), c(i % 2, 2, 2)))
                .collect::<Vec<_>>()
                .iter()
                .map(|(s, x)| (s.as_str(), *x))
                .collect(),
        );
        let b = eval_from(
            (0..30)
                .map(|i| (format!("s{i}"), c((i + 1) % 2, 2, 2)))
                .collect::<Vec<_>>()
                .iter()
                .map(|(s, x)| (s.as_str(), *x))
                .collect(),
        );
        let r1 = sigf(&a, &b, Metric::Precision, 300, 9);
        let r2 = sigf(&a, &b, Metric::Precision, 300, 9);
        assert_eq!(r1.p_value, r2.p_value);
    }

    #[test]
    fn metric_selector() {
        let x = c(3, 4, 6);
        assert!((Metric::Precision.of(&x) - 0.75).abs() < 1e-12);
        assert!((Metric::Recall.of(&x) - 0.5).abs() < 1e-12);
        assert!((Metric::FScore.of(&x) - 0.6).abs() < 1e-12);
    }
}
