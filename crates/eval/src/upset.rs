//! UpSet-style set-intersection computation (Lex et al. 2014).
//!
//! Figures 4 and 5 of the paper visualize the intersections of false
//! positive calls between GraphNER and its base CRF, split by error
//! category. An UpSet plot is a bar chart over *exclusive* intersection
//! regions: each item belongs to exactly one region, identified by the
//! subset of input sets that contain it.

use rustc_hash::{FxHashMap, FxHashSet};
use std::hash::Hash;

/// One exclusive intersection region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Names of the sets whose intersection (exclusively) this is,
    /// sorted.
    pub sets: Vec<String>,
    /// Number of items in the region.
    pub size: usize,
}

/// Compute the exclusive intersection regions of named sets.
///
/// Returns regions sorted by descending size (the UpSet bar order), ties
/// broken by the set-name list.
pub fn upset<T: Eq + Hash + Clone>(sets: &[(String, FxHashSet<T>)]) -> Vec<Region> {
    let mut membership: FxHashMap<&T, Vec<usize>> = FxHashMap::default();
    for (idx, (_, items)) in sets.iter().enumerate() {
        for item in items {
            membership.entry(item).or_default().push(idx);
        }
    }
    let mut regions: FxHashMap<Vec<usize>, usize> = FxHashMap::default();
    for (_, mut idxs) in membership {
        idxs.sort_unstable();
        *regions.entry(idxs).or_insert(0) += 1;
    }
    let mut out: Vec<Region> = regions
        .into_iter()
        .map(|(idxs, size)| Region {
            sets: idxs.into_iter().map(|i| sets[i].0.clone()).collect(),
            size,
        })
        .collect();
    out.sort_by(|a, b| b.size.cmp(&a.size).then(a.sets.cmp(&b.sets)));
    out
}

/// Render regions as a text table (the harness's stand-in for the plot).
pub fn render(regions: &[Region]) -> String {
    let mut s = String::new();
    for r in regions {
        s.push_str(&format!("{:>6}  {}\n", r.size, r.sets.join(" ∩ ")));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> FxHashSet<String> {
        items.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn two_set_regions() {
        let sets =
            vec![("A".to_string(), s(&["x", "y", "z"])), ("B".to_string(), s(&["y", "z", "w"]))];
        let regions = upset(&sets);
        let find = |names: &[&str]| {
            regions
                .iter()
                .find(|r| r.sets == names.iter().map(|x| x.to_string()).collect::<Vec<_>>())
                .map(|r| r.size)
        };
        assert_eq!(find(&["A", "B"]), Some(2)); // y, z
        assert_eq!(find(&["A"]), Some(1)); // x
        assert_eq!(find(&["B"]), Some(1)); // w
    }

    #[test]
    fn regions_are_exclusive_and_cover() {
        let sets = vec![
            ("A".to_string(), s(&["1", "2", "3", "4"])),
            ("B".to_string(), s(&["3", "4", "5"])),
            ("C".to_string(), s(&["4", "5", "6"])),
        ];
        let regions = upset(&sets);
        let total: usize = regions.iter().map(|r| r.size).sum();
        // distinct items: 1..6
        assert_eq!(total, 6);
    }

    #[test]
    fn sorted_by_size() {
        let sets = vec![("A".to_string(), s(&["a", "b", "c"])), ("B".to_string(), s(&["c"]))];
        let regions = upset(&sets);
        for w in regions.windows(2) {
            assert!(w[0].size >= w[1].size);
        }
    }

    #[test]
    fn empty_input() {
        let regions = upset::<String>(&[]);
        assert!(regions.is_empty());
    }

    #[test]
    fn render_contains_sizes() {
        let sets = vec![("A".to_string(), s(&["p", "q"]))];
        let text = render(&upset(&sets));
        assert!(text.contains('2'));
        assert!(text.contains('A'));
    }
}
