//! Evaluation substrate reproducing the paper's measurement tooling.
//!
//! * [`bc2`] — the BioCreative II gene-mention scorer: exact span match
//!   against primary mentions and their alternatives, with
//!   `FN = primary − TP` and `FP = detections − TP`;
//! * [`sigf`] — Padó's approximate-randomization significance test
//!   (Yeh 2000), used for every null hypothesis in Table V;
//! * [`stats`] — chi-square two-sample proportion tests with continuity
//!   correction, used in the §III-E qualitative analysis;
//! * [`upset`] — exclusive set-intersection regions (the UpSet plots of
//!   Figures 4 and 5);
//! * [`errors`] — false-positive extraction and gene-related/spurious
//!   categorization against a generator oracle.

pub mod bc2;
pub mod errors;
pub mod sigf;
pub mod stats;
pub mod upset;

pub use bc2::{evaluate, evaluate_tagger, Counts, Evaluation};
pub use errors::{false_positives, Category, CategoryCounts, ErrorCall};
pub use sigf::{sigf, Metric, SigfResult};
pub use stats::{chi2_sf_1df, erfc, prop_test, ProportionTest};
pub use upset::{render as render_upset, upset, Region};
