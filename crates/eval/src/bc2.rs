//! The BioCreative II gene-mention evaluation.
//!
//! Reimplements the shared task's scoring rule as the paper states it:
//! "The script compares detections with primary gene mentions and their
//! alternatives, and counts exact matches as true positives. ... The
//! number of false negatives will be the number of primary gene
//! mentions minus the number of true positives; and the number of false
//! positives will be the number of detections minus the number of true
//! positives."
//!
//! Alternatives are grouped with the primary mention they overlap (in
//! space-free character coordinates); a detection matching the primary
//! or any grouped alternative consumes that gold mention exactly once.

use graphner_text::bc2::{AnnotationSet, Bc2Annotation};
use graphner_text::sentence::tags_to_mentions;
use graphner_text::{is_zero, Corpus, Tagger};
use rustc_hash::FxHashMap;

/// Aggregate counts of an evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// True positives.
    pub tp: usize,
    /// Total detections made by the system.
    pub detections: usize,
    /// Total primary gold mentions.
    pub gold: usize,
}

impl Counts {
    /// False positives: `detections − tp`.
    pub fn fp(&self) -> usize {
        self.detections - self.tp
    }

    /// False negatives: `gold − tp`.
    pub fn fn_(&self) -> usize {
        self.gold - self.tp
    }

    /// Precision (1 when there are no detections).
    pub fn precision(&self) -> f64 {
        if self.detections == 0 {
            1.0
        } else {
            self.tp as f64 / self.detections as f64
        }
    }

    /// Recall (1 when there is no gold).
    pub fn recall(&self) -> f64 {
        if self.gold == 0 {
            1.0
        } else {
            self.tp as f64 / self.gold as f64
        }
    }

    /// F-score: harmonic mean of precision and recall.
    pub fn f_score(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if is_zero(p + r) {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merge two counts (e.g. accumulate over sentences).
    pub fn merge(&mut self, other: &Counts) {
        self.tp += other.tp;
        self.detections += other.detections;
        self.gold += other.gold;
    }
}

/// One gold mention with its acceptable alternative spans.
#[derive(Clone, Debug)]
struct GoldGroup {
    primary: (usize, usize),
    alternatives: Vec<(usize, usize)>,
    consumed: bool,
}

impl GoldGroup {
    fn matches(&self, span: (usize, usize)) -> bool {
        self.primary == span || self.alternatives.contains(&span)
    }
}

fn overlaps(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// Score one sentence's detections against its gold groups.
fn score_sentence(
    detections: &[(usize, usize)],
    primaries: &[&Bc2Annotation],
    alternatives: &[&Bc2Annotation],
) -> Counts {
    let mut groups: Vec<GoldGroup> = primaries
        .iter()
        .map(|p| GoldGroup { primary: p.span(), alternatives: Vec::new(), consumed: false })
        .collect();
    for alt in alternatives {
        for g in groups.iter_mut() {
            if overlaps(g.primary, alt.span()) {
                g.alternatives.push(alt.span());
            }
        }
    }
    let mut tp = 0;
    for &det in detections {
        if let Some(g) = groups.iter_mut().find(|g| !g.consumed && g.matches(det)) {
            g.consumed = true;
            tp += 1;
        }
    }
    Counts { tp, detections: detections.len(), gold: primaries.len() }
}

/// Per-sentence evaluation results, keyed by sentence id — the unit the
/// sigf randomization shuffles.
#[derive(Clone, Debug, Default)]
pub struct Evaluation {
    /// Per-sentence counts.
    pub per_sentence: FxHashMap<String, Counts>,
    /// Aggregate counts.
    pub totals: Counts,
}

impl Evaluation {
    /// Precision over the whole run.
    pub fn precision(&self) -> f64 {
        self.totals.precision()
    }

    /// Recall over the whole run.
    pub fn recall(&self) -> f64 {
        self.totals.recall()
    }

    /// F-score over the whole run.
    pub fn f_score(&self) -> f64 {
        self.totals.f_score()
    }
}

/// Evaluate a system's detections against a gold annotation set.
///
/// Detections use the same space-free inclusive-offset convention as the
/// gold annotations.
pub fn evaluate(system: &AnnotationSet, gold: &AnnotationSet) -> Evaluation {
    let mut eval = Evaluation::default();
    let empty: Vec<Bc2Annotation> = Vec::new();
    // union of sentence ids appearing in either set
    let mut ids: Vec<&String> = system.primary.keys().chain(gold.primary.keys()).collect();
    ids.sort_unstable();
    ids.dedup();
    for id in ids {
        let dets: Vec<(usize, usize)> =
            system.primary.get(id).unwrap_or(&empty).iter().map(Bc2Annotation::span).collect();
        let prim: Vec<&Bc2Annotation> = gold.primary.get(id).unwrap_or(&empty).iter().collect();
        let alts: Vec<&Bc2Annotation> =
            gold.alternatives.get(id).unwrap_or(&empty).iter().collect();
        let counts = score_sentence(&dets, &prim, &alts);
        eval.totals.merge(&counts);
        eval.per_sentence.insert(id.clone(), counts);
    }
    eval
}

/// Predict every sentence of `test` with a [`Tagger`], convert the
/// predictions to BC2 annotations, and score them against `gold`.
///
/// This is the one-call evaluation path for anything implementing the
/// trait — the base CRF, the LSTM-CRF baseline, or a GraphNER decode —
/// replacing the per-model predict/convert/evaluate glue the experiment
/// binaries used to duplicate.
pub fn evaluate_tagger(
    tagger: &impl Tagger,
    test: &Corpus,
    gold: &AnnotationSet,
) -> (Evaluation, AnnotationSet) {
    // one tag_batch call, so taggers with a parallel or batched
    // override get it on the evaluation path for free
    let tags = tagger.tag_batch(&test.sentences);
    let mut detections = AnnotationSet::new();
    for (sentence, tags) in test.sentences.iter().zip(&tags) {
        for m in tags_to_mentions(tags) {
            detections.add_primary(Bc2Annotation::from_mention(sentence, &m));
        }
    }
    (evaluate(&detections, gold), detections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(id: &str, f: usize, l: usize) -> Bc2Annotation {
        Bc2Annotation { sentence_id: id.to_string(), first: f, last: l, text: String::new() }
    }

    fn set(primary: &[(&str, usize, usize)], alts: &[(&str, usize, usize)]) -> AnnotationSet {
        let mut s = AnnotationSet::new();
        for &(id, f, l) in primary {
            s.add_primary(ann(id, f, l));
        }
        for &(id, f, l) in alts {
            s.add_alternative(ann(id, f, l));
        }
        s
    }

    #[test]
    fn exact_match_counts() {
        let gold = set(&[("s1", 0, 4), ("s1", 10, 14), ("s2", 3, 6)], &[]);
        let sys = set(&[("s1", 0, 4), ("s1", 20, 25), ("s2", 3, 6)], &[]);
        let e = evaluate(&sys, &gold);
        assert_eq!(e.totals, Counts { tp: 2, detections: 3, gold: 3 });
        assert!((e.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.f_score() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn alternative_spans_accepted() {
        // gold primary 0..=11 ("wilms tumor 1"), alternative 0..=4
        let gold = set(&[("s1", 0, 11)], &[("s1", 0, 4)]);
        let sys = set(&[("s1", 0, 4)], &[]);
        let e = evaluate(&sys, &gold);
        assert_eq!(e.totals.tp, 1);
        assert_eq!(e.totals.fp(), 0);
        assert_eq!(e.totals.fn_(), 0);
    }

    #[test]
    fn gold_mention_credited_once() {
        // both the primary and its alternative detected: only one TP,
        // the extra detection is a FP
        let gold = set(&[("s1", 0, 11)], &[("s1", 0, 4)]);
        let sys = set(&[("s1", 0, 11), ("s1", 0, 4)], &[]);
        let e = evaluate(&sys, &gold);
        assert_eq!(e.totals.tp, 1);
        assert_eq!(e.totals.fp(), 1);
    }

    #[test]
    fn alternatives_group_by_overlap() {
        // alternative (20, 24) overlaps only the second primary
        let gold = set(&[("s1", 0, 4), ("s1", 20, 30)], &[("s1", 20, 24)]);
        let sys = set(&[("s1", 20, 24)], &[]);
        let e = evaluate(&sys, &gold);
        assert_eq!(e.totals.tp, 1);
        assert_eq!(e.totals.fn_(), 1); // the first primary was missed
    }

    #[test]
    fn partial_overlap_is_not_a_match() {
        let gold = set(&[("s1", 0, 9)], &[]);
        let sys = set(&[("s1", 0, 5)], &[]);
        let e = evaluate(&sys, &gold);
        assert_eq!(e.totals.tp, 0);
        assert_eq!(e.totals.fp(), 1);
        assert_eq!(e.totals.fn_(), 1);
    }

    #[test]
    fn empty_system_and_empty_gold() {
        let gold = set(&[("s1", 0, 4)], &[]);
        let sys = AnnotationSet::new();
        let e = evaluate(&sys, &gold);
        assert_eq!(e.totals.tp, 0);
        assert_eq!(e.precision(), 1.0); // no detections
        assert_eq!(e.recall(), 0.0);
        assert_eq!(e.f_score(), 0.0);

        let e2 = evaluate(&AnnotationSet::new(), &AnnotationSet::new());
        assert_eq!(e2.f_score(), 1.0);
    }

    #[test]
    fn per_sentence_counts_sum_to_totals() {
        let gold = set(&[("s1", 0, 4), ("s2", 5, 9), ("s3", 1, 2)], &[]);
        let sys = set(&[("s1", 0, 4), ("s2", 0, 2), ("s4", 7, 8)], &[]);
        let e = evaluate(&sys, &gold);
        let mut sum = Counts::default();
        for c in e.per_sentence.values() {
            sum.merge(c);
        }
        assert_eq!(sum, e.totals);
        assert_eq!(e.per_sentence.len(), 4);
    }

    #[test]
    fn fscore_is_harmonic_mean() {
        let c = Counts { tp: 3, detections: 4, gold: 6 };
        let p = 0.75;
        let r = 0.5;
        assert!((c.f_score() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn evaluate_tagger_matches_manual_path() {
        use graphner_text::{BioTag, Sentence, NUM_TAGS};

        /// Tags every token that contains a digit as B.
        struct DigitTagger;
        impl Tagger for DigitTagger {
            fn predict(&self, s: &Sentence) -> Vec<BioTag> {
                s.tokens
                    .iter()
                    .map(
                        |t| {
                            if t.chars().any(|c| c.is_ascii_digit()) {
                                BioTag::B
                            } else {
                                BioTag::O
                            }
                        },
                    )
                    .collect()
            }
            fn posteriors(&self, s: &Sentence) -> Vec<[f64; NUM_TAGS]> {
                self.predict(s)
                    .into_iter()
                    .map(|t| {
                        let mut d = [0.0; NUM_TAGS];
                        d[t.index()] = 1.0;
                        d
                    })
                    .collect()
            }
        }

        let tokens = |ws: &[&str]| ws.iter().map(|w| w.to_string()).collect::<Vec<_>>();
        let test = Corpus::from_sentences(vec![
            Sentence::unlabelled("s1", tokens(&["the", "WT1", "gene"])),
            Sentence::unlabelled("s2", tokens(&["no", "genes", "here"])),
        ]);
        // gold: WT1 at space-free offsets 3..=5 in s1
        let gold = set(&[("s1", 3, 5)], &[]);
        let (e, detections) = evaluate_tagger(&DigitTagger, &test, &gold);
        assert_eq!(e.totals, Counts { tp: 1, detections: 1, gold: 1 });
        assert_eq!(detections.primary["s1"][0].text, "WT1");
    }
}
