//! Qualitative error analysis (section III-E of the paper).
//!
//! The authors manually categorized each false positive / false negative
//! as *gene-related* (actual genes, gene families, protein domains) or
//! *spurious* (annotations with no thematic relation to genes, e.g.
//! "Ann Arbor"). With a synthetic corpus the generator knows the true
//! category of every surface form, so the manual review is replaced by
//! an oracle predicate supplied by the caller.

use graphner_text::bc2::{AnnotationSet, Bc2Annotation};
use rustc_hash::FxHashSet;

/// Error category from the manual review.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Actual genes, gene families, or protein domains.
    GeneRelated,
    /// Entirely erroneous annotations unrelated to genes.
    Spurious,
}

/// A categorized error call, hashable so it can feed UpSet regions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ErrorCall {
    /// Sentence the call occurred in.
    pub sentence_id: String,
    /// Space-free character span of the call.
    pub span: (usize, usize),
    /// Gene-related or spurious.
    pub category: Category,
}

/// The false positives of a system run, categorized by the oracle.
///
/// A detection is a false positive when it matches neither a primary
/// gold span nor any alternative span of its sentence.
pub fn false_positives(
    system: &AnnotationSet,
    gold: &AnnotationSet,
    is_gene_related: impl Fn(&str) -> bool,
) -> Vec<ErrorCall> {
    let mut out = Vec::new();
    for (id, dets) in &system.primary {
        let empty = Vec::new();
        let gold_spans: FxHashSet<(usize, usize)> = gold
            .primary
            .get(id)
            .unwrap_or(&empty)
            .iter()
            .chain(gold.alternatives.get(id).unwrap_or(&empty))
            .map(Bc2Annotation::span)
            .collect();
        for det in dets {
            if !gold_spans.contains(&det.span()) {
                out.push(ErrorCall {
                    sentence_id: id.clone(),
                    span: det.span(),
                    category: if is_gene_related(&det.text) {
                        Category::GeneRelated
                    } else {
                        Category::Spurious
                    },
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.sentence_id, a.span).cmp(&(&b.sentence_id, b.span)));
    out
}

/// Counts of gene-related vs spurious calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// Gene-related calls.
    pub gene_related: usize,
    /// Spurious calls.
    pub spurious: usize,
}

impl CategoryCounts {
    /// Tally a list of error calls.
    pub fn tally(calls: &[ErrorCall]) -> CategoryCounts {
        let gene_related = calls.iter().filter(|c| c.category == Category::GeneRelated).count();
        CategoryCounts { gene_related, spurious: calls.len() - gene_related }
    }

    /// Total calls.
    pub fn total(&self) -> usize {
        self.gene_related + self.spurious
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(id: &str, f: usize, l: usize, text: &str) -> Bc2Annotation {
        Bc2Annotation { sentence_id: id.to_string(), first: f, last: l, text: text.to_string() }
    }

    #[test]
    fn categorizes_false_positives() {
        let mut gold = AnnotationSet::new();
        gold.add_primary(ann("s1", 0, 2, "WT1"));
        let mut sys = AnnotationSet::new();
        sys.add_primary(ann("s1", 0, 2, "WT1")); // TP
        sys.add_primary(ann("s1", 10, 20, "E3 ubiquitin")); // gene-related FP
        sys.add_primary(ann("s1", 30, 37, "Ann Arbor")); // spurious FP
        let lexicon: FxHashSet<&str> = ["E3 ubiquitin"].into_iter().collect();
        let fps = false_positives(&sys, &gold, |t| lexicon.contains(t));
        assert_eq!(fps.len(), 2);
        let counts = CategoryCounts::tally(&fps);
        assert_eq!(counts, CategoryCounts { gene_related: 1, spurious: 1 });
    }

    #[test]
    fn alternative_matches_are_not_fps() {
        let mut gold = AnnotationSet::new();
        gold.add_primary(ann("s1", 0, 11, "wilms tumor 1"));
        gold.add_alternative(ann("s1", 0, 4, "wilms"));
        let mut sys = AnnotationSet::new();
        sys.add_primary(ann("s1", 0, 4, "wilms"));
        let fps = false_positives(&sys, &gold, |_| true);
        assert!(fps.is_empty());
    }

    #[test]
    fn deterministic_order() {
        let gold = AnnotationSet::new();
        let mut sys = AnnotationSet::new();
        sys.add_primary(ann("s2", 5, 9, "b"));
        sys.add_primary(ann("s1", 0, 2, "a"));
        let fps = false_positives(&sys, &gold, |_| false);
        assert_eq!(fps[0].sentence_id, "s1");
        assert_eq!(fps[1].sentence_id, "s2");
    }

    #[test]
    fn empty_counts() {
        let c = CategoryCounts::tally(&[]);
        assert_eq!(c.total(), 0);
    }
}
