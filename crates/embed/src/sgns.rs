//! Skip-gram word embeddings with negative sampling (word2vec).
//!
//! The second distributional signal in BANNER-ChemDNER: "word2vec
//! embeddings are the hidden layer of a neural network, trained to
//! predict each word by using the words in its context." This is the
//! standard SGNS objective of Mikolov et al. (2013): for each
//! (centre, context) pair maximize `log σ(u·v)` and for `k` noise words
//! drawn from the unigram^0.75 distribution maximize `log σ(−u·v_n)`,
//! trained by SGD with a linearly decaying learning rate and frequent-
//! word subsampling. The run is fully seeded and single-threaded, so
//! embeddings are bit-reproducible.

use graphner_obs::obs_debug;
use graphner_text::{approx_eq, exactly_zero};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

/// SGNS hyper-parameters.
#[derive(Clone, Debug)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Maximum context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub learning_rate: f64,
    /// Frequent-word subsampling threshold (`t` in the word2vec paper);
    /// 0 disables subsampling.
    pub subsample: f64,
    /// Words rarer than this are skipped entirely.
    pub min_count: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> SgnsConfig {
        SgnsConfig {
            dim: 50,
            window: 5,
            negative: 5,
            epochs: 5,
            learning_rate: 0.025,
            subsample: 1e-3,
            min_count: 2,
            seed: 42,
        }
    }
}

/// Trained embeddings: one vector per known word id.
#[derive(Clone, Debug, Default)]
pub struct Embeddings {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Word id → embedding.
    pub vectors: FxHashMap<u32, Vec<f32>>,
}

impl Embeddings {
    /// The embedding of a word, if trained.
    pub fn get(&self, word: u32) -> Option<&[f32]> {
        self.vectors.get(&word).map(Vec::as_slice)
    }

    /// Cosine similarity between two word vectors (`None` when either is
    /// untrained).
    pub fn cosine(&self, a: u32, b: u32) -> Option<f64> {
        let va = self.get(a)?;
        let vb = self.get(b)?;
        let dot: f64 = va.iter().zip(vb).map(|(x, y)| *x as f64 * *y as f64).sum();
        let na: f64 = va.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
        if exactly_zero(na) || exactly_zero(nb) {
            return None;
        }
        Some(dot / (na * nb))
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x > 30.0 {
        1.0
    } else if x < -30.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

/// Train SGNS embeddings over sentences of interned word ids.
pub fn train_sgns(sentences: &[Vec<u32>], cfg: &SgnsConfig) -> Embeddings {
    // Vocabulary with counts.
    let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
    for s in sentences {
        for &w in s {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    counts.retain(|_, c| *c >= cfg.min_count);
    if counts.is_empty() {
        return Embeddings::default();
    }
    let mut vocab: Vec<u32> = counts.keys().copied().collect();
    vocab.sort_unstable();
    let index: FxHashMap<u32, usize> = vocab.iter().enumerate().map(|(i, &w)| (w, i)).collect();
    let n = vocab.len();
    let total_tokens: u64 = counts.values().sum();

    // Noise distribution: unigram^0.75 as a cumulative table for binary
    // search sampling.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for &w in &vocab {
        acc += (counts[&w] as f64).powf(0.75);
        cumulative.push(acc);
    }

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // input vectors random in [-0.5/dim, 0.5/dim], output vectors zero
    // (word2vec initialization)
    let mut input: Vec<f32> =
        (0..n * cfg.dim).map(|_| (rng.gen::<f32>() - 0.5) / cfg.dim as f32).collect();
    let mut output: Vec<f32> = vec![0.0; n * cfg.dim];

    let total_steps = (cfg.epochs * sentences.len()).max(1);
    let mut grad = vec![0.0f32; cfg.dim];
    for epoch in 0..cfg.epochs {
        // epoch loss is accumulated from quantities already computed in
        // the SGD updates, so instrumentation never touches the rng
        // stream and embeddings stay bit-identical
        let mut epoch_loss = 0.0f64;
        let mut epoch_pairs = 0u64;
        for (si, sent) in sentences.iter().enumerate() {
            let progress = (epoch * sentences.len() + si) as f64 / total_steps as f64;
            let lr = (cfg.learning_rate * (1.0 - progress)).max(cfg.learning_rate * 1e-4);

            // subsample + filter to vocabulary
            let kept: Vec<usize> = sent
                .iter()
                .filter_map(|w| index.get(w).copied())
                .filter(|&wi| {
                    if cfg.subsample <= 0.0 {
                        return true;
                    }
                    let f = counts[&vocab[wi]] as f64 / total_tokens as f64;
                    let keep = ((cfg.subsample / f).sqrt() + cfg.subsample / f).min(1.0);
                    rng.gen::<f64>() < keep
                })
                .collect();

            for (pos, &centre) in kept.iter().enumerate() {
                let radius = rng.gen_range(1..=cfg.window);
                let lo = pos.saturating_sub(radius);
                let hi = (pos + radius + 1).min(kept.len());
                for ctx_pos in lo..hi {
                    if ctx_pos == pos {
                        continue;
                    }
                    let context = kept[ctx_pos];
                    let v = &mut input[centre * cfg.dim..(centre + 1) * cfg.dim];
                    grad.fill(0.0);
                    // positive + negative updates on the output matrix
                    for neg in 0..=cfg.negative {
                        let (target, label) = if neg == 0 {
                            (context, 1.0f64)
                        } else {
                            let r = rng.gen::<f64>() * acc;
                            let t = cumulative.partition_point(|&c| c < r).min(n - 1);
                            if t == context {
                                continue;
                            }
                            (t, 0.0)
                        };
                        let u = &mut output[target * cfg.dim..(target + 1) * cfg.dim];
                        let dot: f64 =
                            v.iter().zip(u.iter()).map(|(a, b)| *a as f64 * *b as f64).sum();
                        let p = sigmoid(dot);
                        // −log σ(u·v) for positives, −log σ(−u·v) for noise
                        epoch_loss -=
                            if approx_eq(label, 1.0) { p } else { 1.0 - p }.max(1e-12).ln();
                        epoch_pairs += 1;
                        let g = ((label - p) * lr) as f32;
                        for d in 0..cfg.dim {
                            grad[d] += g * u[d];
                            u[d] += g * v[d];
                        }
                    }
                    for d in 0..cfg.dim {
                        v[d] += grad[d];
                    }
                }
            }
        }
        let mean_loss = epoch_loss / epoch_pairs.max(1) as f64;
        obs_debug!(
            "sgns: epoch {}/{} mean pair loss {mean_loss:.4} ({epoch_pairs} pairs)",
            epoch + 1,
            cfg.epochs
        );
        graphner_obs::gauge("sgns.epoch_loss").set(mean_loss);
    }

    let vectors = vocab
        .iter()
        .enumerate()
        .map(|(i, &w)| (w, input[i * cfg.dim..(i + 1) * cfg.dim].to_vec()))
        .collect();
    Embeddings { dim: cfg.dim, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus where words 0/1 are interchangeable (same contexts) and
    /// word 10 lives in a different context entirely.
    fn paradigm_corpus() -> Vec<Vec<u32>> {
        let mut s = Vec::new();
        for i in 0..120u32 {
            let a = i % 2; // 0 or 1
            s.push(vec![2, a, 3, 4]);
            s.push(vec![5, 10, 6, 7]);
        }
        s
    }

    fn small_cfg(seed: u64) -> SgnsConfig {
        SgnsConfig {
            dim: 16,
            window: 2,
            negative: 3,
            epochs: 6,
            min_count: 1,
            subsample: 0.0,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn interchangeable_words_are_close() {
        let emb = train_sgns(&paradigm_corpus(), &small_cfg(1));
        let same = emb.cosine(0, 1).unwrap();
        let diff = emb.cosine(0, 10).unwrap();
        assert!(same > diff, "cos(0,1)={same} should exceed cos(0,10)={diff}");
        assert!(same > 0.5, "cos(0,1)={same}");
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = paradigm_corpus();
        let a = train_sgns(&corpus, &small_cfg(7));
        let b = train_sgns(&corpus, &small_cfg(7));
        assert_eq!(a.get(0), b.get(0));
        let c = train_sgns(&corpus, &small_cfg(8));
        assert_ne!(a.get(0), c.get(0));
    }

    #[test]
    fn min_count_excludes_rare_words() {
        let mut corpus = paradigm_corpus();
        corpus.push(vec![99]);
        let cfg = SgnsConfig { min_count: 2, ..small_cfg(3) };
        let emb = train_sgns(&corpus, &cfg);
        assert!(emb.get(99).is_none());
        assert!(emb.get(0).is_some());
    }

    #[test]
    fn dimensions_respected() {
        let emb = train_sgns(&paradigm_corpus(), &small_cfg(5));
        assert_eq!(emb.dim, 16);
        assert_eq!(emb.get(0).unwrap().len(), 16);
    }

    #[test]
    fn empty_corpus_gives_empty_embeddings() {
        let emb = train_sgns(&[], &SgnsConfig::default());
        assert!(emb.vectors.is_empty());
    }

    #[test]
    fn vectors_are_finite() {
        let emb = train_sgns(&paradigm_corpus(), &small_cfg(11));
        for v in emb.vectors.values() {
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
