//! Brown clustering (Brown et al., 1992).
//!
//! BANNER-ChemDNER "takes advantage of abundant unlabelled data by using
//! Brown clustering ... Brown clustering constructs a cluster hierarchy
//! over the words by maximizing the mutual information of bi-grams."
//! This is the classical agglomerative algorithm: the `C` most frequent
//! words seed `C` clusters; every further word is added as a `C+1`-th
//! cluster and the pair whose merge costs the least average mutual
//! information (AMI) is merged; finally the surviving `C` clusters are
//! merged down to one, and the resulting binary tree assigns each
//! cluster a bit-string path. Downstream features use path *prefixes*
//! (e.g. 4/6/10/20 bits), so similar words share short prefixes.

use rustc_hash::FxHashMap;

/// Configuration for [`brown_cluster`].
#[derive(Clone, Debug)]
pub struct BrownConfig {
    /// Number of clusters maintained during the agglomerative pass.
    pub num_clusters: usize,
    /// Words occurring fewer times than this are left unclustered.
    pub min_count: u64,
}

impl Default for BrownConfig {
    fn default() -> BrownConfig {
        BrownConfig { num_clusters: 48, min_count: 2 }
    }
}

/// Result of Brown clustering: a bit path per clustered word id.
#[derive(Clone, Debug, Default)]
pub struct BrownClustering {
    /// Bit-string path (e.g. `"0110"`) per word id. Words below the
    /// frequency cutoff are absent.
    pub paths: FxHashMap<u32, String>,
}

impl BrownClustering {
    /// The path prefix of length `len` for a word, if clustered. Paths
    /// shorter than `len` are returned whole (standard practice for
    /// prefix features).
    pub fn prefix(&self, word: u32, len: usize) -> Option<&str> {
        self.paths.get(&word).map(|p| &p[..p.len().min(len)])
    }
}

/// Mutable clustering state: dense matrices over active clusters,
/// compacted with swap-remove on merge.
struct State {
    /// Words in each active cluster.
    members: Vec<Vec<u32>>,
    /// Unigram count per cluster.
    count: Vec<f64>,
    /// Directed bigram count `bigram[a][b]` between clusters.
    bigram: Vec<Vec<f64>>,
    /// Total bigram tokens (normalizer for probabilities).
    total_bigrams: f64,
    /// Total unigram tokens.
    total_unigrams: f64,
}

impl State {
    fn num(&self) -> usize {
        self.members.len()
    }

    /// Contribution of the (a, b) cell to the AMI.
    #[inline]
    fn q(&self, a: usize, b: usize) -> f64 {
        let pab = self.bigram[a][b] / self.total_bigrams;
        if pab <= 0.0 {
            return 0.0;
        }
        let pa = self.count[a] / self.total_unigrams;
        let pb = self.count[b] / self.total_unigrams;
        pab * (pab / (pa * pb)).ln()
    }

    /// Total AMI of the current clustering. Exercised directly by the
    /// merge-cost consistency test; production code only needs the
    /// incremental [`State::merge_cost`].
    #[cfg_attr(not(test), allow(dead_code))]
    fn ami(&self) -> f64 {
        let c = self.num();
        let mut total = 0.0;
        for a in 0..c {
            for b in 0..c {
                total += self.q(a, b);
            }
        }
        total
    }

    /// AMI loss of merging clusters `a` and `b` (non-negative up to
    /// floating error). O(C).
    fn merge_cost(&self, a: usize, b: usize) -> f64 {
        let c = self.num();
        let mut removed = 0.0;
        for d in 0..c {
            removed += self.q(a, d) + self.q(d, a) + self.q(b, d) + self.q(d, b);
        }
        // the four cells among {a,b} were double-counted above
        removed -= self.q(a, a) + self.q(b, b) + self.q(a, b) + self.q(b, a);

        // AMI terms of the hypothetical merged cluster m = a ∪ b
        let m_count = self.count[a] + self.count[b];
        let pm = m_count / self.total_unigrams;
        let mut added = 0.0;
        for d in 0..c {
            if d == a || d == b {
                continue;
            }
            let pd = self.count[d] / self.total_unigrams;
            let p_md = (self.bigram[a][d] + self.bigram[b][d]) / self.total_bigrams;
            if p_md > 0.0 {
                added += p_md * (p_md / (pm * pd)).ln();
            }
            let p_dm = (self.bigram[d][a] + self.bigram[d][b]) / self.total_bigrams;
            if p_dm > 0.0 {
                added += p_dm * (p_dm / (pd * pm)).ln();
            }
        }
        let p_mm = (self.bigram[a][a] + self.bigram[a][b] + self.bigram[b][a] + self.bigram[b][b])
            / self.total_bigrams;
        if p_mm > 0.0 {
            added += p_mm * (p_mm / (pm * pm)).ln();
        }
        removed - added
    }

    /// Pick the merge pair with minimum AMI loss (ties: lowest indices).
    fn best_merge(&self) -> (usize, usize) {
        let c = self.num();
        let mut best = (0, 1);
        let mut best_cost = f64::INFINITY;
        for a in 0..c {
            for b in a + 1..c {
                let cost = self.merge_cost(a, b);
                if cost < best_cost {
                    best_cost = cost;
                    best = (a, b);
                }
            }
        }
        best
    }

    /// Merge cluster `b` into `a`, then swap-remove `b`. Requires
    /// `a < b` so the swap-remove never relocates `a`.
    fn merge(&mut self, a: usize, b: usize) {
        debug_assert!(a < b);
        let c = self.num();
        self.count[a] += self.count[b];
        let moved: Vec<u32> = std::mem::take(&mut self.members[b]);
        self.members[a].extend(moved);
        // Fold row b into row a, then column b into column a. After the
        // row fold, bigram[a][b] holds old a→b plus old b→b, so folding
        // it into bigram[a][a] completes the a∪b self-transition count.
        for d in 0..c {
            self.bigram[a][d] += self.bigram[b][d];
        }
        for d in 0..c {
            if d != a {
                let v = self.bigram[d][b];
                self.bigram[d][a] += v;
            } else {
                let v = self.bigram[a][b];
                self.bigram[a][a] += v;
                self.bigram[a][b] = 0.0;
            }
        }
        // swap-remove index b from all structures
        let last = c - 1;
        self.members.swap(b, last);
        self.members.pop();
        self.count.swap(b, last);
        self.count.pop();
        self.bigram.swap(b, last);
        self.bigram.pop();
        for row in self.bigram.iter_mut() {
            row.swap(b, last);
            row.pop();
        }
    }
}

/// Run Brown clustering over sentences of interned word ids.
pub fn brown_cluster(sentences: &[Vec<u32>], cfg: &BrownConfig) -> BrownClustering {
    // Corpus statistics.
    let mut unigram: FxHashMap<u32, u64> = FxHashMap::default();
    let mut bigram: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    let mut total_unigrams = 0u64;
    let mut total_bigrams = 0u64;
    for sent in sentences {
        for &w in sent {
            *unigram.entry(w).or_insert(0) += 1;
            total_unigrams += 1;
        }
        for pair in sent.windows(2) {
            *bigram.entry((pair[0], pair[1])).or_insert(0) += 1;
            total_bigrams += 1;
        }
    }
    let mut words: Vec<(u32, u64)> =
        unigram.iter().filter(|&(_, &c)| c >= cfg.min_count).map(|(&w, &c)| (w, c)).collect();
    if words.is_empty() || total_bigrams == 0 {
        return BrownClustering::default();
    }
    words.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // Per-word directed bigram adjacency for fast cluster-count updates.
    let mut right: FxHashMap<u32, Vec<(u32, u64)>> = FxHashMap::default();
    let mut left: FxHashMap<u32, Vec<(u32, u64)>> = FxHashMap::default();
    for (&(a, b), &c) in &bigram {
        right.entry(a).or_default().push((b, c));
        left.entry(b).or_default().push((a, c));
    }

    let mut state = State {
        members: Vec::new(),
        count: Vec::new(),
        bigram: Vec::new(),
        total_bigrams: total_bigrams as f64,
        total_unigrams: total_unigrams as f64,
    };
    let mut word_cluster: FxHashMap<u32, usize> = FxHashMap::default();

    let insert_word =
        |state: &mut State, word_cluster: &mut FxHashMap<u32, usize>, w: u32, c: u64| {
            let idx = state.num();
            state.members.push(vec![w]);
            state.count.push(c as f64);
            for row in state.bigram.iter_mut() {
                row.push(0.0);
            }
            state.bigram.push(vec![0.0; idx + 1]);
            word_cluster.insert(w, idx);
            // accumulate bigram counts of w against clustered words (incl. itself)
            if let Some(rs) = right.get(&w) {
                for &(b, cnt) in rs {
                    if let Some(&cb) = word_cluster.get(&b) {
                        state.bigram[idx][cb] += cnt as f64;
                    }
                }
            }
            if let Some(ls) = left.get(&w) {
                for &(a, cnt) in ls {
                    if let Some(&ca) = word_cluster.get(&a) {
                        if ca != idx || a != w {
                            state.bigram[ca][idx] += cnt as f64;
                        }
                    }
                }
            }
        };

    for &(w, c) in &words {
        insert_word(&mut state, &mut word_cluster, w, c);
        if state.num() > cfg.num_clusters {
            let (a, b) = state.best_merge();
            merge_tracking(&mut state, &mut word_cluster, a, b);
        }
    }

    // Final agglomeration: merge down to one cluster, recording the tree.
    #[derive(Clone)]
    enum Node {
        Leaf(usize), // index into `leaves`
        Internal(Box<Node>, Box<Node>),
    }
    let leaves: Vec<Vec<u32>> = state.members.clone();
    let mut nodes: Vec<Node> = (0..state.num()).map(Node::Leaf).collect();
    while state.num() > 1 {
        let (a, b) = state.best_merge();
        let nb = nodes[b].clone();
        let na = std::mem::replace(&mut nodes[a], Node::Leaf(0));
        nodes[a] = Node::Internal(Box::new(na), Box::new(nb));
        let last = nodes.len() - 1;
        nodes.swap(b, last);
        nodes.pop();
        merge_tracking(&mut state, &mut word_cluster, a, b);
    }

    // Assign bit paths by walking the tree.
    let mut paths = FxHashMap::default();
    if let Some(root) = nodes.into_iter().next() {
        let mut stack = vec![(root, String::new())];
        while let Some((node, path)) = stack.pop() {
            match node {
                Node::Leaf(i) => {
                    let p = if path.is_empty() { "0".to_string() } else { path };
                    for &w in &leaves[i] {
                        paths.insert(w, p.clone());
                    }
                }
                Node::Internal(l, r) => {
                    stack.push((*l, format!("{path}0")));
                    stack.push((*r, format!("{path}1")));
                }
            }
        }
    }
    BrownClustering { paths }
}

/// Merge wrapper that keeps the word→cluster map consistent with
/// swap-remove index moves.
fn merge_tracking(state: &mut State, word_cluster: &mut FxHashMap<u32, usize>, a: usize, b: usize) {
    let last = state.num() - 1;
    for &w in &state.members[b] {
        word_cluster.insert(w, a);
    }
    if b != last {
        for &w in &state.members[last] {
            word_cluster.insert(w, b);
        }
    }
    state.merge(a, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic corpus with two interchangeable word classes:
    /// determiners {0,1} always precede nouns {2,3}, verbs {4,5} follow.
    fn two_class_corpus() -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for i in 0..40u32 {
            let det = i % 2;
            let noun = 2 + (i / 2) % 2;
            let verb = 4 + (i / 4) % 2;
            out.push(vec![det, noun, verb]);
        }
        out
    }

    #[test]
    fn interchangeable_words_share_cluster() {
        let corpus = two_class_corpus();
        let bc = brown_cluster(&corpus, &BrownConfig { num_clusters: 3, min_count: 1 });
        // words 0,1 behave identically, as do 2,3 and 4,5
        assert_eq!(bc.paths[&0], bc.paths[&1]);
        assert_eq!(bc.paths[&2], bc.paths[&3]);
        assert_eq!(bc.paths[&4], bc.paths[&5]);
        // and the classes are separated
        assert_ne!(bc.paths[&0], bc.paths[&2]);
        assert_ne!(bc.paths[&2], bc.paths[&4]);
    }

    #[test]
    fn paths_are_binary_strings() {
        let corpus = two_class_corpus();
        let bc = brown_cluster(&corpus, &BrownConfig { num_clusters: 3, min_count: 1 });
        for p in bc.paths.values() {
            assert!(!p.is_empty());
            assert!(p.chars().all(|c| c == '0' || c == '1'), "bad path {p}");
        }
    }

    #[test]
    fn prefix_truncates() {
        let mut bc = BrownClustering::default();
        bc.paths.insert(7, "010110".to_string());
        assert_eq!(bc.prefix(7, 4), Some("0101"));
        assert_eq!(bc.prefix(7, 10), Some("010110"));
        assert_eq!(bc.prefix(8, 4), None);
    }

    #[test]
    fn min_count_filters_rare_words() {
        let mut corpus = two_class_corpus();
        corpus.push(vec![99, 2, 4]); // word 99 occurs once
        let bc = brown_cluster(&corpus, &BrownConfig { num_clusters: 3, min_count: 2 });
        assert!(!bc.paths.contains_key(&99));
        assert!(bc.paths.contains_key(&0));
    }

    #[test]
    fn empty_corpus() {
        let bc = brown_cluster(&[], &BrownConfig::default());
        assert!(bc.paths.is_empty());
    }

    #[test]
    fn single_sentence_no_crash() {
        let bc = brown_cluster(
            &[vec![0, 1, 2, 0, 1, 2]],
            &BrownConfig { num_clusters: 2, min_count: 1 },
        );
        assert_eq!(bc.paths.len(), 3);
    }

    #[test]
    fn merge_cost_equals_actual_ami_drop() {
        // build a small state by hand and verify that merge_cost(a, b)
        // matches ami(before) − ami(after merging a and b)
        let mut state = State {
            members: vec![vec![0], vec![1], vec![2], vec![3]],
            count: vec![10.0, 8.0, 6.0, 4.0],
            bigram: vec![
                vec![2.0, 3.0, 1.0, 0.0],
                vec![1.0, 2.0, 2.0, 1.0],
                vec![0.0, 1.0, 1.0, 2.0],
                vec![1.0, 0.0, 2.0, 1.0],
            ],
            total_bigrams: 20.0,
            total_unigrams: 28.0,
        };
        for (a, b) in [(0usize, 1usize), (0, 3), (1, 2)] {
            let predicted = state.merge_cost(a, b);
            let before = state.ami();
            let mut merged = state.clone_for_test();
            merged.merge(a, b);
            let after = merged.ami();
            assert!(
                (predicted - (before - after)).abs() < 1e-9,
                "pair ({a},{b}): predicted {predicted} vs actual {}",
                before - after
            );
        }
        // merges never increase AMI
        let cost = state.merge_cost(0, 1);
        assert!(cost > -1e-9);
        // keep the borrow checker aware state is still usable
        state.count[0] += 0.0;
    }

    impl State {
        fn clone_for_test(&self) -> State {
            State {
                members: self.members.clone(),
                count: self.count.clone(),
                bigram: self.bigram.clone(),
                total_bigrams: self.total_bigrams,
                total_unigrams: self.total_unigrams,
            }
        }
    }

    #[test]
    fn merge_bookkeeping_preserves_totals() {
        // internal invariant: after any merge the bigram matrix still
        // sums to the corpus bigram total
        let corpus = two_class_corpus();
        let mut unigram: FxHashMap<u32, u64> = FxHashMap::default();
        for s in &corpus {
            for &w in s {
                *unigram.entry(w).or_insert(0) += 1;
            }
        }
        let bc = brown_cluster(&corpus, &BrownConfig { num_clusters: 2, min_count: 1 });
        // all six words clustered into exactly two top-level groups means
        // every path is non-empty and there are at most 2 distinct
        // 1-prefixes
        let prefixes: std::collections::HashSet<&str> =
            bc.paths.values().map(|p| &p[..1]).collect();
        assert!(prefixes.len() <= 2);
    }
}
