//! Distributional-feature substrate for the semi-supervised baseline.
//!
//! BANNER-ChemDNER raises BANNER's supervised CRF with features learned
//! from unlabelled text. This crate builds those features from scratch:
//!
//! * [`brown`] — agglomerative Brown clustering over word bigrams, with
//!   bit-path prefix features;
//! * [`sgns`] — skip-gram negative-sampling word embeddings (word2vec);
//! * [`kmeans`] — k-means over the embeddings, turning them into
//!   discrete cluster-id features.

// Index loops over parallel arrays are the clearest form for the
// numeric kernels in this crate; clippy's iterator rewrites would
// obscure the index relationships between the buffers.
#![allow(clippy::needless_range_loop)]

pub mod brown;
pub mod kmeans;
pub mod sgns;

pub use brown::{brown_cluster, BrownClustering, BrownConfig};
pub use kmeans::{kmeans, KMeansConfig, WordClusters};
pub use sgns::{train_sgns, Embeddings, SgnsConfig};
