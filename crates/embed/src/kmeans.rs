//! k-means clustering over word embeddings.
//!
//! BANNER-ChemDNER turns continuous word2vec vectors into discrete CRF
//! features by clustering them; a token then fires a
//! `embedding-cluster=<id>` feature. Standard Lloyd iterations with
//! k-means++ seeding, fully deterministic under the given seed.

use crate::sgns::Embeddings;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

/// k-means configuration.
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> KMeansConfig {
        KMeansConfig { k: 32, max_iterations: 50, seed: 17 }
    }
}

/// Result: word id → cluster id.
#[derive(Clone, Debug, Default)]
pub struct WordClusters {
    /// Assignment per word id.
    pub assignment: FxHashMap<u32, u32>,
    /// Number of clusters actually used.
    pub k: usize,
}

impl WordClusters {
    /// Cluster of a word, if embedded.
    pub fn get(&self, word: u32) -> Option<u32> {
        self.assignment.get(&word).copied()
    }
}

fn sq_dist(a: &[f32], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (*x as f64 - y).powi(2)).sum()
}

/// Cluster the embedding vectors into `k` groups.
pub fn kmeans(emb: &Embeddings, cfg: &KMeansConfig) -> WordClusters {
    let mut pairs: Vec<(u32, &[f32])> =
        emb.vectors.iter().map(|(w, v)| (*w, v.as_slice())).collect();
    pairs.sort_unstable_by_key(|&(w, _)| w);
    let n = pairs.len();
    if n == 0 {
        return WordClusters::default();
    }
    let k = cfg.k.min(n);
    let dim = emb.dim;
    let words: Vec<u32> = pairs.iter().map(|&(w, _)| w).collect();
    let data: Vec<&[f32]> = pairs.iter().map(|&(_, v)| v).collect();

    // k-means++ seeding.
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.gen_range(0..n);
    centroids.push(data[first].iter().map(|&x| x as f64).collect());
    let mut d2: Vec<f64> = data.iter().map(|v| sq_dist(v, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let r = rng.gen::<f64>() * total;
            let mut acc = 0.0;
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                acc += d;
                if acc >= r {
                    pick = i;
                    break;
                }
            }
            pick
        };
        let c: Vec<f64> = data[next].iter().map(|&x| x as f64).collect();
        for (i, v) in data.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(v, &c));
        }
        centroids.push(c);
    }

    // Lloyd iterations.
    let mut assign = vec![0u32; n];
    for _ in 0..cfg.max_iterations {
        let mut changed = false;
        for (i, v) in data.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| sq_dist(v, &centroids[a]).total_cmp(&sq_dist(v, &centroids[b])))
                .unwrap_or(0) as u32;
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, v) in data.iter().enumerate() {
            let c = assign[i] as usize;
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(v.iter()) {
                *s += x as f64;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centroids[c] = std::mem::take(&mut sums[c]);
            }
        }
    }

    WordClusters { assignment: words.into_iter().zip(assign).collect(), k }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_embeddings() -> Embeddings {
        // two obvious groups in 2-D
        let mut vectors = FxHashMap::default();
        vectors.insert(0, vec![0.0f32, 0.1]);
        vectors.insert(1, vec![0.1, 0.0]);
        vectors.insert(2, vec![0.05, 0.05]);
        vectors.insert(3, vec![5.0, 5.1]);
        vectors.insert(4, vec![5.1, 5.0]);
        vectors.insert(5, vec![5.05, 5.05]);
        Embeddings { dim: 2, vectors }
    }

    #[test]
    fn separates_obvious_clusters() {
        let wc = kmeans(&toy_embeddings(), &KMeansConfig { k: 2, ..Default::default() });
        assert_eq!(wc.k, 2);
        let a = wc.get(0).unwrap();
        assert_eq!(wc.get(1), Some(a));
        assert_eq!(wc.get(2), Some(a));
        let b = wc.get(3).unwrap();
        assert_ne!(a, b);
        assert_eq!(wc.get(4), Some(b));
        assert_eq!(wc.get(5), Some(b));
    }

    #[test]
    fn k_capped_at_point_count() {
        let wc = kmeans(&toy_embeddings(), &KMeansConfig { k: 100, ..Default::default() });
        assert_eq!(wc.k, 6);
    }

    #[test]
    fn deterministic_under_seed() {
        let emb = toy_embeddings();
        let a = kmeans(&emb, &KMeansConfig { k: 3, seed: 5, ..Default::default() });
        let b = kmeans(&emb, &KMeansConfig { k: 3, seed: 5, ..Default::default() });
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn empty_embeddings() {
        let wc = kmeans(&Embeddings::default(), &KMeansConfig::default());
        assert!(wc.assignment.is_empty());
        assert_eq!(wc.k, 0);
    }

    #[test]
    fn unknown_word_unassigned() {
        let wc = kmeans(&toy_embeddings(), &KMeansConfig { k: 2, ..Default::default() });
        assert_eq!(wc.get(77), None);
    }
}
