//! graphner-serve — train (or rather: grow from the seeded synthetic
//! profile) a smoke-scale GraphNER model and serve it over HTTP.
//!
//! ```text
//! graphner-serve [--addr 127.0.0.1:8080] [--scale 0.02] [--seed 42]
//!                [--queue-capacity N] [--max-batch N]
//!                [--linger-us N] [--deadline-ms N]
//! ```
//!
//! Endpoints: `POST /v1/tag` (newline-delimited sentences in,
//! `token\tTAG` lines out), `GET /healthz`, `GET /metrics`. The serving
//! knobs flow through `GraphNerConfig::builder()`, so invalid values
//! (zero, over the caps) die with a typed error at startup rather than
//! misbehaving under load.

use graphner_bench::RunOptions;
use graphner_core::{GraphNer, GraphNerConfig, TestSession};
use graphner_corpusgen::{generate, CorpusProfile};
use graphner_serve::start;

struct Args {
    addr: String,
    scale: f64,
    queue_capacity: Option<usize>,
    max_batch: Option<usize>,
    linger_us: Option<u64>,
    deadline_ms: Option<u64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        addr: "127.0.0.1:8080".to_string(),
        scale: 0.02,
        queue_capacity: None,
        max_batch: None,
        linger_us: None,
        deadline_ms: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                parsed.addr = args.get(i).expect("--addr needs host:port").clone();
            }
            "--scale" => {
                i += 1;
                parsed.scale = args[i].parse().expect("--scale needs a number");
            }
            "--queue-capacity" => {
                i += 1;
                parsed.queue_capacity =
                    Some(args[i].parse().expect("--queue-capacity needs a count"));
            }
            "--max-batch" => {
                i += 1;
                parsed.max_batch = Some(args[i].parse().expect("--max-batch needs a count"));
            }
            "--linger-us" => {
                i += 1;
                parsed.linger_us = Some(args[i].parse().expect("--linger-us needs microseconds"));
            }
            "--deadline-ms" => {
                i += 1;
                parsed.deadline_ms =
                    Some(args[i].parse().expect("--deadline-ms needs milliseconds"));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut builder = GraphNerConfig::builder();
    if let Some(v) = args.queue_capacity {
        builder = builder.queue_capacity(v);
    }
    if let Some(v) = args.max_batch {
        builder = builder.max_batch(v);
    }
    if let Some(v) = args.linger_us {
        builder = builder.linger_us(v);
    }
    if let Some(v) = args.deadline_ms {
        builder = builder.deadline_ms(v);
    }
    let cfg = builder.build().unwrap_or_else(|e| {
        eprintln!("graphner-serve: invalid configuration: {e}");
        std::process::exit(2);
    });

    eprintln!("graphner-serve: training smoke model at scale {}", args.scale);
    let profile = CorpusProfile::bc2gm().scaled(args.scale);
    let corpus = generate(&profile);
    let opts = RunOptions { scale: args.scale, ..RunOptions::default() };
    let (gner, _) = GraphNer::train(&corpus.train, &opts.ner_config(), None, cfg.clone());
    let test = corpus.test.without_tags();
    let mut session = TestSession::new(&gner, &test);
    let tagger = session.tagger(gner.config());

    let handle = start(tagger, cfg.serve, &args.addr).unwrap_or_else(|e| {
        eprintln!("graphner-serve: cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    println!("graphner-serve: listening on http://{}", handle.addr());
    println!(
        "graphner-serve: queue {} / batch {} / linger {} us / deadline {} ms",
        cfg.serve.queue_capacity, cfg.serve.max_batch, cfg.serve.linger_us, cfg.serve.deadline_ms
    );
    // serve until killed
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
