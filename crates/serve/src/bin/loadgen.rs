//! loadgen — seeded synthetic traffic against a graphner-serve
//! endpoint, open-loop, with a `BENCH_serve.json` latency trajectory.
//!
//! ```text
//! loadgen [--addr host:port]      # external server; else in-process
//!         [--rps 500] [--requests 1000] [--clients 8]
//!         [--scale 0.02] [--seed 42] [--sentences 1]
//!         [--deadline-ms 2000] [--min-success-rate 0.9]
//!         [--bench-out BENCH_serve.json] [--check BENCH_serve.json]
//! ```
//!
//! Open-loop means request `i` is *scheduled* at `i/rps` seconds after
//! start regardless of how fast responses come back, so server-side
//! queueing shows up as client-observed latency instead of silently
//! slowing the offered load. Request bodies come from the same seeded
//! `corpusgen` profile as the benchmarks — identical seeds, identical
//! traffic, run to run.
//!
//! Exit is nonzero when any request goes *unanswered* (transport
//! failure after one retry), when the 200-rate drops below
//! `--min-success-rate`, when p99 of successful requests reaches
//! `--deadline-ms`, or when `--check` finds a regression against the
//! committed baseline.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use graphner_bench::perf::{self, BenchReport, StageResult, DEFAULT_TOLERANCE, SCHEMA_VERSION};
use graphner_bench::RunOptions;
use graphner_core::{GraphNer, GraphNerConfig, TestSession};
use graphner_corpusgen::{generate, generate_unlabelled, CorpusProfile};
use graphner_obs::Stopwatch;
use graphner_serve::ServerHandle;

struct Args {
    addr: Option<String>,
    rps: f64,
    requests: usize,
    clients: usize,
    scale: f64,
    seed: u64,
    sentences: usize,
    deadline_ms: u64,
    min_success_rate: f64,
    bench_out: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        addr: None,
        rps: 500.0,
        requests: 1000,
        clients: 8,
        scale: 0.02,
        seed: 42,
        sentences: 1,
        deadline_ms: 2000,
        min_success_rate: 0.9,
        bench_out: None,
        check: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                parsed.addr = Some(args.get(i).expect("--addr needs host:port").clone());
            }
            "--rps" => {
                i += 1;
                parsed.rps = args[i].parse().expect("--rps needs a rate");
            }
            "--requests" => {
                i += 1;
                parsed.requests = args[i].parse().expect("--requests needs a count");
            }
            "--clients" => {
                i += 1;
                parsed.clients = args[i].parse().expect("--clients needs a count");
            }
            "--scale" => {
                i += 1;
                parsed.scale = args[i].parse().expect("--scale needs a number");
            }
            "--seed" => {
                i += 1;
                parsed.seed = args[i].parse().expect("--seed needs an integer");
            }
            "--sentences" => {
                i += 1;
                parsed.sentences = args[i].parse().expect("--sentences needs a count");
            }
            "--deadline-ms" => {
                i += 1;
                parsed.deadline_ms = args[i].parse().expect("--deadline-ms needs milliseconds");
            }
            "--min-success-rate" => {
                i += 1;
                parsed.min_success_rate =
                    args[i].parse().expect("--min-success-rate needs a fraction");
            }
            "--bench-out" => {
                i += 1;
                parsed.bench_out = Some(args.get(i).expect("--bench-out needs a path").clone());
            }
            "--check" => {
                i += 1;
                parsed.check = Some(args.get(i).expect("--check needs a path").clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(parsed.rps > 0.0, "--rps must be positive");
    assert!(parsed.requests > 0, "--requests must be positive");
    assert!(parsed.clients > 0, "--clients must be positive");
    assert!(parsed.sentences > 0, "--sentences must be positive");
    parsed
}

/// One request's outcome.
#[derive(Clone, Copy)]
struct Outcome {
    status: u16,
    latency_seconds: f64,
    answered: bool,
}

/// Read one HTTP response (status + content-length body), returning
/// the status code.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<u16> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(bad("connection closed before status line"));
    }
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| bad("unparseable content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(status)
}

/// POST one body over an existing connection.
fn post_tag(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    body: &str,
) -> std::io::Result<u16> {
    let request = format!(
        "POST /v1/tag HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    read_response(reader)
}

fn connect(addr: &str) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((stream, reader))
}

/// Drive the indices `client, client + clients, …` of the schedule.
fn run_client(
    addr: &str,
    bodies: Arc<Vec<String>>,
    client: usize,
    clients: usize,
    rps: f64,
    clock: Stopwatch,
) -> Vec<(usize, Outcome)> {
    let mut outcomes = Vec::new();
    let mut conn = connect(addr).ok();
    for i in (client..bodies.len()).step_by(clients) {
        // open-loop arrival: request i is due at i/rps seconds
        let due = i as f64 / rps;
        let now = clock.elapsed_seconds();
        if due > now {
            std::thread::sleep(Duration::from_secs_f64(due - now));
        }
        let request_clock = Stopwatch::start();
        let attempt = |conn: &mut Option<(TcpStream, BufReader<TcpStream>)>| {
            if conn.is_none() {
                *conn = connect(addr).ok();
            }
            let (stream, reader) = conn.as_mut()?;
            match post_tag(stream, reader, &bodies[i]) {
                Ok(status) => Some(status),
                Err(_) => {
                    *conn = None;
                    None
                }
            }
        };
        // one retry on a fresh connection before declaring it unanswered
        let status = attempt(&mut conn).or_else(|| attempt(&mut conn));
        let latency_seconds = request_clock.elapsed_seconds();
        outcomes.push((
            i,
            match status {
                Some(status) => Outcome { status, latency_seconds, answered: true },
                None => Outcome { status: 0, latency_seconds, answered: false },
            },
        ));
    }
    outcomes
}

/// Exact quantile of a sorted latency vector.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn latency_stage(name: &str, seconds: f64) -> StageResult {
    StageResult {
        name: name.to_string(),
        median_seconds: seconds,
        peak_alloc_bytes: 0,
        peak_rss_bytes: 0,
        pool_threads: 0,
        pool_jobs: 0,
        pool_chunks: 0,
        pool_chunks_on_workers: 0,
    }
}

/// Train the smoke model and start an in-process server on an
/// ephemeral port.
fn start_in_process(scale: f64, deadline_ms: u64) -> ServerHandle {
    eprintln!("loadgen: no --addr, starting in-process server (scale {scale})");
    let cfg = GraphNerConfig::builder()
        .deadline_ms(deadline_ms)
        .build()
        .expect("default serve config with CLI deadline");
    let profile = CorpusProfile::bc2gm().scaled(scale);
    let corpus = generate(&profile);
    let opts = RunOptions { scale, ..RunOptions::default() };
    let (gner, _) = GraphNer::train(&corpus.train, &opts.ner_config(), None, cfg.clone());
    let test = corpus.test.without_tags();
    let mut session = TestSession::new(&gner, &test);
    let tagger = session.tagger(gner.config());
    graphner_serve::start(tagger, cfg.serve, "127.0.0.1:0").expect("bind in-process server")
}

fn main() {
    let args = parse_args();

    let server = match &args.addr {
        Some(_) => None,
        None => Some(start_in_process(args.scale, args.deadline_ms)),
    };
    let addr = match (&args.addr, &server) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => unreachable!("in-process server started above"),
    };

    // seeded request bodies: the profile's unlabelled generator, one
    // body per request, tokens joined back into a line per sentence
    let profile = CorpusProfile::bc2gm().scaled(args.scale);
    let pool = generate_unlabelled(&profile, args.requests * args.sentences, args.seed);
    let bodies: Vec<String> = pool
        .sentences
        .chunks(args.sentences)
        .take(args.requests)
        .map(|chunk| {
            let mut body = String::new();
            for sentence in chunk {
                body.push_str(&sentence.tokens.join(" "));
                body.push('\n');
            }
            body
        })
        .collect();
    let bodies = Arc::new(bodies);
    eprintln!(
        "loadgen: {} requests x {} sentence(s) at {} rps over {} client(s) against {addr}",
        args.requests, args.sentences, args.rps, args.clients
    );

    let run_clock = Stopwatch::start();
    let mut threads = Vec::new();
    for client in 0..args.clients {
        let bodies = Arc::clone(&bodies);
        let addr = addr.clone();
        let (clients, rps) = (args.clients, args.rps);
        threads.push(std::thread::spawn(move || {
            run_client(&addr, bodies, client, clients, rps, run_clock)
        }));
    }
    let mut outcomes: Vec<(usize, Outcome)> = Vec::with_capacity(args.requests);
    for thread in threads {
        outcomes.extend(thread.join().expect("client thread"));
    }
    let wall_seconds = run_clock.elapsed_seconds();
    if let Some(handle) = server {
        handle.shutdown();
    }

    let answered = outcomes.iter().filter(|(_, o)| o.answered).count();
    let unanswered = args.requests - answered;
    let mut by_status: Vec<(u16, usize)> = Vec::new();
    for (_, o) in outcomes.iter().filter(|(_, o)| o.answered) {
        match by_status.iter_mut().find(|(s, _)| *s == o.status) {
            Some((_, n)) => *n += 1,
            None => by_status.push((o.status, 1)),
        }
    }
    by_status.sort_unstable();
    let mut ok_latencies: Vec<f64> = outcomes
        .iter()
        .filter(|(_, o)| o.answered && o.status == 200)
        .map(|(_, o)| o.latency_seconds)
        .collect();
    ok_latencies.sort_by(f64::total_cmp);
    let successes = ok_latencies.len();
    let (p50, p95, p99) = (
        quantile(&ok_latencies, 0.50),
        quantile(&ok_latencies, 0.95),
        quantile(&ok_latencies, 0.99),
    );
    let achieved_rps = answered as f64 / wall_seconds;

    println!(
        "loadgen: {answered}/{} answered ({unanswered} unanswered) in {wall_seconds:.2}s \
         = {achieved_rps:.0} rps",
        args.requests
    );
    for (status, n) in &by_status {
        println!("loadgen:   status {status}: {n}");
    }
    println!(
        "loadgen: latency over {successes} successes: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3
    );

    if let Some(path) = &args.bench_out {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            scale: args.scale,
            iters: args.requests as u64,
            stages: vec![
                latency_stage("serve.latency_p50", p50),
                latency_stage("serve.latency_p95", p95),
                latency_stage("serve.latency_p99", p99),
                latency_stage("serve.secs_per_request", wall_seconds / args.requests as f64),
            ],
        };
        std::fs::write(path, report.to_json()).expect("write --bench-out report");
        eprintln!("loadgen: report written to {path}");
    }

    let mut failed = false;
    if unanswered > 0 {
        eprintln!("loadgen: FAIL — {unanswered} request(s) went unanswered");
        failed = true;
    }
    let success_rate = successes as f64 / args.requests as f64;
    if success_rate < args.min_success_rate {
        eprintln!("loadgen: FAIL — success rate {success_rate:.3} below {}", args.min_success_rate);
        failed = true;
    }
    let deadline_seconds = args.deadline_ms as f64 / 1e3;
    if successes > 0 && p99 >= deadline_seconds {
        eprintln!(
            "loadgen: FAIL — p99 {:.1} ms reached the {} ms deadline",
            p99 * 1e3,
            args.deadline_ms
        );
        failed = true;
    }

    if let Some(path) = &args.check {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("loadgen: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline = BenchReport::parse(&text).unwrap_or_else(|e| {
            eprintln!("loadgen: baseline {path} unreadable: {e}");
            std::process::exit(2);
        });
        let fresh = BenchReport {
            schema_version: SCHEMA_VERSION,
            scale: args.scale,
            iters: args.requests as u64,
            stages: vec![
                latency_stage("serve.latency_p50", p50),
                latency_stage("serve.latency_p95", p95),
                latency_stage("serve.latency_p99", p99),
                latency_stage("serve.secs_per_request", wall_seconds / args.requests as f64),
            ],
        };
        let regressions = perf::compare(&baseline, &fresh, DEFAULT_TOLERANCE);
        if regressions.is_empty() {
            eprintln!(
                "loadgen: no regression against {path} ({} stages within {:.0}%)",
                baseline.stages.len(),
                DEFAULT_TOLERANCE * 100.0
            );
        } else {
            eprintln!("loadgen: {} regression(s) against {path}:", regressions.len());
            for r in &regressions {
                eprintln!(
                    "  {}: {:.4}s -> {:.4}s ({:.0}% over baseline)",
                    r.stage,
                    r.baseline_seconds,
                    r.fresh_seconds,
                    (r.ratio() - 1.0) * 100.0
                );
            }
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
}
