//! `graphner-serve`: the online face of GraphNER — a zero-dependency
//! HTTP tagging service over any [`graphner_text::Tagger`].
//!
//! The paper's pipeline is transductive batch inference; this crate is
//! the inductive serving story on top of the frozen
//! [`graphner_core::GraphTagger`]: novel sentences get the
//! graph-interpolated belief wherever their 3-grams appeared in
//! `D_l ∪ D_u` and fall back to the base CRF posterior elsewhere (the
//! fallback rate is exported at `/metrics`).
//!
//! Architecture, front to back:
//!
//! * [`http`] — a minimal HTTP/1.1 codec over `std::net`.
//! * [`queue`] — a bounded MPSC queue: `try_push` rejects when full
//!   (429 + `Retry-After`) instead of buffering unboundedly.
//! * [`batcher`] — one thread coalescing concurrent requests into
//!   single `try_tag_batch` calls, flushing on max-batch-size or
//!   max-linger, answering expired requests with 503. Batching is
//!   *provably invisible*: responses are byte-identical to unbatched
//!   tagging at any batch size or thread count (see the module docs
//!   for the ordering argument, and the determinism suite for the
//!   end-to-end proof).
//! * [`server`] — the accept loop, the endpoints, and the serve
//!   metrics (`serve.*` counters, latency quantiles, queue depth).
//!
//! The binaries: `graphner-serve` trains/loads a model and serves it;
//! `loadgen` replays seeded synthetic traffic open-loop at a target
//! RPS and writes a `BENCH_serve.json` latency trajectory.

pub mod batcher;
pub mod http;
pub mod queue;
pub mod server;

pub use batcher::{run_batcher, Deadline, ResponseSlot, TagRequest, TagResponse};
pub use http::{read_request, write_response, HttpError, Request, MAX_BODY_BYTES};
pub use queue::{BoundedQueue, PopResult, PushError};
pub use server::{parse_tag_body, render_tags, start, ServeMetrics, ServerHandle};
