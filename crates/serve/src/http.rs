//! A deliberately minimal HTTP/1.1 codec — just enough protocol for
//! `POST /v1/tag`, `GET /healthz`, and `GET /metrics` over keep-alive
//! connections, per the workspace's zero-dependency policy.
//!
//! Supported: request line + headers, `Content-Length` bodies (capped
//! at [`MAX_BODY_BYTES`]), `Connection: close`. Not supported (and
//! answered with an error rather than misparsed): chunked transfer
//! encoding, continuation lines, bodies above the cap.

use std::io::{self, BufRead, Write};

/// Largest request body accepted — 1 MiB of newline-delimited
/// sentences is far beyond any sane tagging request and keeps one
/// client from ballooning server memory.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parse/transport failure while reading one request.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (includes read timeouts).
    Io(io::Error),
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// Structurally invalid request; the message names the defect.
    Malformed(&'static str),
    /// `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Eof => write!(f, "connection closed"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte cap")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (no query parsing; the server's routes
    /// carry none).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, empty unless `Content-Length` said otherwise.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, without the ending.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::Eof);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parse one request off the wire. Blocks until a full request (or the
/// reader's own timeout) arrives; [`HttpError::Eof`] on a connection
/// the peer closed between requests.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => return Err(HttpError::Malformed("request line needs METHOD PATH VERSION")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("only HTTP/1.x is spoken here"));
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line without a colon"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request { method, path, headers, body: Vec::new() };
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Err(HttpError::Malformed("unparseable content-length")),
        },
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { body, ..request })
}

/// Reason phrase for the handful of statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one response, always with an explicit `Content-Length` so
/// keep-alive framing stays unambiguous. The whole response is
/// assembled first and written in one call: one packet per response
/// instead of a header/body dribble that trips Nagle + delayed-ACK
/// stalls on the 40 ms scale.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut response = Vec::with_capacity(128 + body.len());
    let _ = write!(response, "HTTP/1.1 {} {}\r\n", status, reason(status));
    let _ = write!(response, "Content-Length: {}\r\n", body.len());
    let _ = write!(response, "Content-Type: text/plain; charset=utf-8\r\n");
    for (name, value) in extra_headers {
        let _ = write!(response, "{name}: {value}\r\n");
    }
    let _ = write!(response, "\r\n");
    response.extend_from_slice(body);
    writer.write_all(&response)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/tag HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\nthe WT1 g";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/tag");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"the WT1 g");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_bare_lf_and_connection_close() {
        let raw = b"GET /healthz HTTP/1.0\nConnection: close\n\n";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(parse(b""), Err(HttpError::Eof)));
        assert!(matches!(parse(b"nonsense\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET / SPDY/3\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(raw.as_bytes()), Err(HttpError::BodyTooLarge(_))));
    }

    #[test]
    fn response_carries_length_and_extra_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 429, &[("Retry-After", "1")], b"busy\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\nbusy\n"));
    }
}
